//! The [`AlgorithmBank`]: the registry of on-demand functions.
//!
//! The host downloads bitstreams for bank members into the
//! co-processor's ROM; the microcontroller dispatches behavioural
//! images back through the bank after verifying their digests.

use crate::checksum::Crc32Kernel;
use crate::crypto::{Aes128, HmacSha1, Sha1, Sha256, TripleDes, Xtea};
use crate::dsp::{Fir, MatMul8};
use crate::dsp_ai::{Conv2d, Fft64, MatMul16};
use crate::kernel::{AlgoError, Kernel};
use crate::netlists::{Adder8Kernel, Crc8Kernel, Parity8Kernel, Popcount8Kernel};
use aaod_fabric::{DeviceGeometry, FunctionImage};
use std::sync::Arc;

/// A registry of kernels keyed by algorithm id.
///
/// # Examples
///
/// ```
/// use aaod_algos::{ids, AlgorithmBank};
///
/// let bank = AlgorithmBank::standard();
/// assert_eq!(bank.len(), ids::ALL.len());
/// assert!(bank.kernel(ids::SHA1).is_some());
/// assert!(bank.kernel(999).is_none());
/// ```
#[derive(Clone)]
pub struct AlgorithmBank {
    kernels: Vec<Arc<dyn Kernel>>,
}

impl AlgorithmBank {
    /// Creates an empty bank.
    pub fn new() -> Self {
        AlgorithmBank {
            kernels: Vec::new(),
        }
    }

    /// The standard thirteen-algorithm bank described in the crate docs.
    pub fn standard() -> Self {
        let mut bank = AlgorithmBank::new();
        bank.register(Arc::new(Aes128));
        bank.register(Arc::new(Xtea));
        bank.register(Arc::new(Sha1));
        bank.register(Arc::new(Sha256));
        bank.register(Arc::new(Crc32Kernel));
        bank.register(Arc::new(Fir));
        bank.register(Arc::new(MatMul8));
        bank.register(Arc::new(Crc8Kernel));
        bank.register(Arc::new(Adder8Kernel));
        bank.register(Arc::new(Popcount8Kernel));
        bank.register(Arc::new(Parity8Kernel));
        bank.register(Arc::new(TripleDes));
        bank.register(Arc::new(HmacSha1));
        bank
    }

    /// The standard bank plus the large-footprint DSP/AI tier
    /// ([`MatMul16`], [`Conv2d`], [`Fft64`]): sixteen kernels.
    ///
    /// Kept separate from [`standard`](AlgorithmBank::standard) so
    /// existing experiments, calibrations and golden traces keep
    /// their exact thirteen-algorithm bank.
    pub fn extended() -> Self {
        let mut bank = AlgorithmBank::standard();
        bank.register(Arc::new(MatMul16));
        bank.register(Arc::new(Conv2d));
        bank.register(Arc::new(Fft64));
        bank
    }

    /// Adds a kernel to the bank.
    ///
    /// # Panics
    ///
    /// Panics if a kernel with the same id is already registered —
    /// duplicate ids would make dispatch ambiguous.
    pub fn register(&mut self, kernel: Arc<dyn Kernel>) {
        assert!(
            self.kernel(kernel.algo_id()).is_none(),
            "duplicate algorithm id {}",
            kernel.algo_id()
        );
        self.kernels.push(kernel);
    }

    /// Looks up a kernel by id.
    pub fn kernel(&self, algo_id: u16) -> Option<&dyn Kernel> {
        self.kernels
            .iter()
            .find(|k| k.algo_id() == algo_id)
            .map(AsRef::as_ref)
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Iterates over the kernels in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Kernel> {
        self.kernels.iter().map(AsRef::as_ref)
    }

    /// Builds the configuration image for `algo_id` with its default
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AlgoError::UnknownAlgorithm`] for an unregistered id,
    /// or parameter errors from the kernel.
    pub fn build_image(
        &self,
        algo_id: u16,
        geom: DeviceGeometry,
    ) -> Result<FunctionImage, AlgoError> {
        let kernel = self
            .kernel(algo_id)
            .ok_or(AlgoError::UnknownAlgorithm(algo_id))?;
        kernel.build_image(&kernel.default_params(), geom)
    }

    /// Executes `algo_id` in software with its default parameters (the
    /// host baseline / golden model).
    ///
    /// # Errors
    ///
    /// Returns [`AlgoError::UnknownAlgorithm`] for an unregistered id,
    /// or input errors from the kernel.
    pub fn execute_software(&self, algo_id: u16, input: &[u8]) -> Result<Vec<u8>, AlgoError> {
        let kernel = self
            .kernel(algo_id)
            .ok_or(AlgoError::UnknownAlgorithm(algo_id))?;
        kernel.execute(&kernel.default_params(), input)
    }
}

impl Default for AlgorithmBank {
    fn default() -> Self {
        AlgorithmBank::standard()
    }
}

impl std::fmt::Debug for AlgorithmBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmBank")
            .field(
                "kernels",
                &self.kernels.iter().map(|k| k.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids;

    #[test]
    fn standard_bank_has_all_ids() {
        let bank = AlgorithmBank::standard();
        for id in ids::ALL {
            assert!(bank.kernel(id).is_some(), "missing {id}");
        }
        assert_eq!(bank.len(), 13);
        assert!(!bank.is_empty());
    }

    #[test]
    fn every_kernel_builds_a_decodable_image() {
        let bank = AlgorithmBank::standard();
        let geom = DeviceGeometry::default();
        for kernel in bank.iter() {
            let img = bank.build_image(kernel.algo_id(), geom).unwrap();
            assert_eq!(img.algo_id(), kernel.algo_id());
            // round-trip through frames
            let frames = img.encode(geom);
            let back = FunctionImage::decode_frames(&frames, geom).unwrap();
            assert_eq!(back, img, "{}", kernel.name());
            back.kind().unwrap();
        }
    }

    #[test]
    fn images_fit_the_default_device() {
        let bank = AlgorithmBank::standard();
        let geom = DeviceGeometry::default();
        let total: usize = bank
            .iter()
            .map(|k| {
                bank.build_image(k.algo_id(), geom)
                    .unwrap()
                    .frames_needed(geom)
            })
            .sum();
        // The full bank should overcommit the device (otherwise the
        // replacement policy would never trigger) but each function
        // must fit alone.
        assert!(total > geom.frames(), "bank too small: {total} frames");
        for kernel in bank.iter() {
            let frames = bank
                .build_image(kernel.algo_id(), geom)
                .unwrap()
                .frames_needed(geom);
            assert!(frames <= geom.frames(), "{} does not fit", kernel.name());
        }
    }

    #[test]
    fn extended_bank_adds_the_dsp_ai_tier() {
        let bank = AlgorithmBank::extended();
        assert_eq!(bank.len(), 16);
        let geom = DeviceGeometry::default();
        for id in ids::DSP_AI {
            let img = bank.build_image(id, geom).unwrap();
            assert_eq!(img.algo_id(), id);
            // the tier is large (5-20x the standard kernels) but every
            // member still fits the device alone
            let frames = img.frames_needed(geom);
            assert!(frames >= 56, "id {id}: only {frames} frames");
            assert!(frames <= geom.frames(), "id {id} does not fit");
            let frames_rt = FunctionImage::decode_frames(&img.encode(geom), geom).unwrap();
            assert_eq!(frames_rt, img);
        }
        // standard bank is untouched by the tier
        assert_eq!(AlgorithmBank::standard().len(), 13);
        assert!(AlgorithmBank::standard().kernel(ids::MATMUL16).is_none());
    }

    #[test]
    fn unknown_id_errors() {
        let bank = AlgorithmBank::standard();
        assert!(matches!(
            bank.build_image(999, DeviceGeometry::default()),
            Err(AlgoError::UnknownAlgorithm(999))
        ));
        assert!(bank.execute_software(999, &[]).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate algorithm id")]
    fn duplicate_registration_panics() {
        let mut bank = AlgorithmBank::standard();
        bank.register(Arc::new(crate::crypto::Aes128));
    }

    #[test]
    fn debug_lists_names() {
        let s = format!("{:?}", AlgorithmBank::standard());
        assert!(s.contains("aes128"));
        assert!(s.contains("parity8"));
    }
}

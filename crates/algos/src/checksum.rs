//! CRC-32 checksum kernel.
//!
//! Uses the CRC-32 from [`aaod_bitstream::crc`] as its golden model —
//! deliberately the same code path that protects bitstream payloads, so
//! the two implementations cross-check each other in the integration
//! tests. The hardware model is a 32-bit-parallel LFSR absorbing four
//! bytes per fabric cycle.

use crate::filler::behavioral_image;
use crate::ids;
use crate::kernel::{AlgoError, Kernel};
use aaod_bitstream::crc::crc32;
use aaod_fabric::{DeviceGeometry, FunctionImage};

/// The CRC-32 kernel. No parameters; output is the 4-byte CRC (LE).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Crc32Kernel;

impl Kernel for Crc32Kernel {
    fn algo_id(&self) -> u16 {
        ids::CRC32
    }

    fn name(&self) -> &'static str {
        "crc32"
    }

    fn default_params(&self) -> Vec<u8> {
        Vec::new()
    }

    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError> {
        if !params.is_empty() {
            return Err(AlgoError::BadParams {
                kernel: "crc32",
                reason: "takes no parameters".into(),
            });
        }
        Ok(crc32(input).to_le_bytes().to_vec())
    }

    fn input_width(&self) -> u16 {
        4
    }

    fn output_width(&self) -> u16 {
        4
    }

    fn build_image(&self, params: &[u8], geom: DeviceGeometry) -> Result<FunctionImage, AlgoError> {
        if !params.is_empty() {
            return Err(AlgoError::BadParams {
                kernel: "crc32",
                reason: "takes no parameters".into(),
            });
        }
        // A parallel CRC-32 LFSR is tiny: 2 frames.
        Ok(behavioral_image(
            self.algo_id(),
            params,
            self.input_width(),
            self.output_width(),
            2,
            geom,
        ))
    }

    fn fabric_cycles(&self, input_len: usize) -> u64 {
        // 4 bytes per cycle through the parallel LFSR
        input_len.div_ceil(4) as u64 + 2
    }

    fn software_cycles(&self, input_len: usize) -> u64 {
        // table-driven software CRC: ~5 cycles/byte
        5 * input_len as u64 + 50
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_bitstream_crc() {
        let out = Crc32Kernel.execute(&[], b"123456789").unwrap();
        assert_eq!(out, 0xCBF4_3926u32.to_le_bytes().to_vec());
    }

    #[test]
    fn rejects_params() {
        assert!(Crc32Kernel.execute(&[1], b"").is_err());
    }

    #[test]
    fn is_smallest_behavioral_function() {
        let geom = DeviceGeometry::default();
        let img = Crc32Kernel.build_image(&[], geom).unwrap();
        assert_eq!(img.frames_needed(geom), 2);
    }
}

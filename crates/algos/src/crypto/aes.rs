//! AES-128 (ECB encryption) kernel.
//!
//! From-scratch FIPS-197 implementation. The co-processor image embeds
//! the 16-byte key as kernel parameters; a pipelined AES core on a
//! Virtex-II-class fabric sustains about one block per cycle once the
//! 11-stage pipeline is full, which the fabric cycle model reflects.

use crate::filler::behavioral_image;
use crate::ids;
use crate::kernel::{AlgoError, Kernel};
use aaod_fabric::{DeviceGeometry, FunctionImage};

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(b: u8) -> u8 {
    let hi = b & 0x80 != 0;
    let mut r = b << 1;
    if hi {
        r ^= 0x1b;
    }
    r
}

/// Expands a 16-byte key into 11 round keys.
fn expand_key(key: &[u8; 16]) -> [[u8; 16]; 11] {
    let mut w = [[0u8; 4]; 44];
    for i in 0..4 {
        w[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
    }
    for i in 4..44 {
        let mut t = w[i - 1];
        if i % 4 == 0 {
            t.rotate_left(1);
            for b in &mut t {
                *b = SBOX[*b as usize];
            }
            t[0] ^= RCON[i / 4 - 1];
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ t[j];
        }
    }
    let mut rk = [[0u8; 16]; 11];
    for (r, round_key) in rk.iter_mut().enumerate() {
        for c in 0..4 {
            round_key[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
        }
    }
    rk
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    // state is column-major: state[c*4 + r]
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[c * 4 + r] = s[((c + r) % 4) * 4 + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[c * 4],
            state[c * 4 + 1],
            state[c * 4 + 2],
            state[c * 4 + 3],
        ];
        state[c * 4] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[c * 4 + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[c * 4 + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[c * 4 + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

/// Encrypts one 16-byte block with the expanded key.
pub fn encrypt_block(block: &[u8; 16], round_keys: &[[u8; 16]; 11]) -> [u8; 16] {
    let mut state = *block;
    add_round_key(&mut state, &round_keys[0]);
    for rk in round_keys.iter().take(10).skip(1) {
        sub_bytes(&mut state);
        shift_rows(&mut state);
        mix_columns(&mut state);
        add_round_key(&mut state, rk);
    }
    sub_bytes(&mut state);
    shift_rows(&mut state);
    add_round_key(&mut state, &round_keys[10]);
    state
}

/// The AES-128 kernel (ECB encryption over zero-padded 16-byte blocks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Aes128;

impl Kernel for Aes128 {
    fn algo_id(&self) -> u16 {
        ids::AES128
    }

    fn name(&self) -> &'static str {
        "aes128"
    }

    fn default_params(&self) -> Vec<u8> {
        (0u8..16).collect()
    }

    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError> {
        let key: [u8; 16] = params.try_into().map_err(|_| AlgoError::BadParams {
            kernel: "aes128",
            reason: format!("key must be 16 bytes, got {}", params.len()),
        })?;
        let rk = expand_key(&key);
        let mut out = Vec::with_capacity(input.len().div_ceil(16) * 16);
        for chunk in input.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            out.extend_from_slice(&encrypt_block(&block, &rk));
        }
        Ok(out)
    }

    fn input_width(&self) -> u16 {
        16
    }

    fn output_width(&self) -> u16 {
        16
    }

    fn build_image(&self, params: &[u8], geom: DeviceGeometry) -> Result<FunctionImage, AlgoError> {
        if params.len() != 16 {
            return Err(AlgoError::BadParams {
                kernel: "aes128",
                reason: format!("key must be 16 bytes, got {}", params.len()),
            });
        }
        // A pipelined AES-128 core is a large design: ~24 frames.
        Ok(behavioral_image(
            self.algo_id(),
            params,
            self.input_width(),
            self.output_width(),
            24,
            geom,
        ))
    }

    fn fabric_cycles(&self, input_len: usize) -> u64 {
        // 11-stage pipeline: fill once, then one block per cycle.
        11 + input_len.div_ceil(16) as u64
    }

    fn software_cycles(&self, input_len: usize) -> u64 {
        // ~60 cycles/byte for portable (non-assembly) AES on a 2005
        // desktop CPU, plus the key schedule.
        60 * input_len as u64 + 2000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B example.
    #[test]
    fn fips197_vector() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let rk = expand_key(&key);
        assert_eq!(encrypt_block(&pt, &rk), expected);
    }

    /// FIPS-197 Appendix C.1 (key 000102...0f, pt 00112233...ff).
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = (0u8..16).collect::<Vec<_>>().try_into().unwrap();
        let pt: [u8; 16] = (0..16u8)
            .map(|i| i * 0x11)
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let rk = expand_key(&key);
        assert_eq!(encrypt_block(&pt, &rk), expected);
    }

    /// NIST SP 800-38A F.1.1 (AES-128 ECB, 4 blocks).
    #[test]
    fn nist_sp800_38a_ecb_vectors() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let rk = expand_key(&key);
        let cases: [([u8; 16], [u8; 16]); 2] = [
            (
                [
                    0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73,
                    0x93, 0x17, 0x2a,
                ],
                [
                    0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60, 0xa8, 0x9e, 0xca, 0xf3, 0x24,
                    0x66, 0xef, 0x97,
                ],
            ),
            (
                [
                    0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45,
                    0xaf, 0x8e, 0x51,
                ],
                [
                    0xf5, 0xd3, 0xd5, 0x85, 0x03, 0xb9, 0x69, 0x9d, 0xe7, 0x85, 0x89, 0x5a, 0x96,
                    0xfd, 0xba, 0xaf,
                ],
            ),
        ];
        for (pt, ct) in cases {
            assert_eq!(encrypt_block(&pt, &rk), ct);
        }
    }

    #[test]
    fn kernel_pads_partial_blocks() {
        let aes = Aes128;
        let out = aes.execute(&aes.default_params(), &[1, 2, 3]).unwrap();
        assert_eq!(out.len(), 16);
        // equals encrypting the zero-padded block
        let mut block = [0u8; 16];
        block[..3].copy_from_slice(&[1, 2, 3]);
        let direct = aes.execute(&aes.default_params(), &block).unwrap();
        assert_eq!(out, direct);
    }

    #[test]
    fn bad_key_rejected() {
        let aes = Aes128;
        assert!(matches!(
            aes.execute(&[0; 5], b"x"),
            Err(AlgoError::BadParams { .. })
        ));
        assert!(aes.build_image(&[0; 5], DeviceGeometry::default()).is_err());
    }

    #[test]
    fn image_embeds_key_and_occupies_24_frames() {
        use aaod_fabric::FunctionKind;
        let aes = Aes128;
        let geom = DeviceGeometry::default();
        let img = aes.build_image(&aes.default_params(), geom).unwrap();
        assert_eq!(img.frames_needed(geom), 24);
        match img.kind().unwrap() {
            FunctionKind::Behavioral { params } => assert_eq!(params, aes.default_params()),
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn fabric_beats_software() {
        let aes = Aes128;
        assert!(aes.fabric_cycles(4096) * 60 < aes.software_cycles(4096));
    }

    #[test]
    fn empty_input_empty_output() {
        let aes = Aes128;
        assert!(aes.execute(&aes.default_params(), &[]).unwrap().is_empty());
    }
}

//! DES and Triple-DES (EDE) kernels.
//!
//! The paper's reference \[1\] is an "algorithm agile co-processor"
//! for DES-era ciphers, and reference \[2\] an IPSec crypto engine — in
//! 2005, ESP tunnels ran 3DES far more often than AES. 3DES is also
//! the bank's best offload case: software 3DES is extremely slow
//! (~150 cycles/byte) while a pipelined FPGA core streams a block per
//! cycle.

use crate::filler::behavioral_image;
use crate::ids;
use crate::kernel::{AlgoError, Kernel};
use aaod_fabric::{DeviceGeometry, FunctionImage};

/// Initial permutation (bit numbers are 1-based positions of the
/// input bit placed at each output position, per FIPS 46-3).
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, 62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8, 57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3, 61,
    53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Final permutation (inverse of IP).
const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31, 38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29, 36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
];

/// Expansion of the 32-bit half to 48 bits.
const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18,
    19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// P permutation after the S-boxes.
const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// Key schedule permuted choice 1 (56 bits from the 64-bit key).
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, 10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60,
    52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, 14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
];

/// Key schedule permuted choice 2 (48 bits per round key).
const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, 23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, 41, 52,
    31, 37, 47, 55, 30, 40, 51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Left-shift counts per round.
const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The eight S-boxes.
const SBOXES: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12,
        11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2, 4, 9,
        1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1,
        10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1, 3, 15,
        4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10, 1,
        13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15,
        10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7, 1, 14,
        2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13,
        14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12, 9, 5,
        15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5,
        12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8, 1, 4,
        10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6,
        11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7, 4, 10,
        8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Applies a 1-based bit permutation: output bit `i` (MSB-first) is
/// input bit `table[i]`.
fn permute(input: u64, input_bits: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &pos in table {
        out <<= 1;
        out |= (input >> (input_bits - pos as u32)) & 1;
    }
    out
}

/// Expands a 64-bit key into 16 round keys of 48 bits.
fn key_schedule(key: u64) -> [u64; 16] {
    let cd = permute(key, 64, &PC1); // 56 bits
    let mut c = (cd >> 28) as u32 & 0x0FFF_FFFF;
    let mut d = cd as u32 & 0x0FFF_FFFF;
    let mut keys = [0u64; 16];
    for (round, &shift) in SHIFTS.iter().enumerate() {
        c = ((c << shift) | (c >> (28 - shift as u32))) & 0x0FFF_FFFF;
        d = ((d << shift) | (d >> (28 - shift as u32))) & 0x0FFF_FFFF;
        let cd = ((c as u64) << 28) | d as u64;
        keys[round] = permute(cd, 56, &PC2);
    }
    keys
}

/// The Feistel function: 32-bit half + 48-bit round key → 32 bits.
fn feistel(r: u32, k: u64) -> u32 {
    let x = permute(r as u64, 32, &E) ^ k; // 48 bits
    let mut out = 0u32;
    for (i, sbox) in SBOXES.iter().enumerate() {
        let six = ((x >> (42 - 6 * i)) & 0x3F) as usize;
        let row = ((six & 0x20) >> 4) | (six & 1);
        let col = (six >> 1) & 0xF;
        out = (out << 4) | sbox[row * 16 + col] as u32;
    }
    permute(out as u64, 32, &P) as u32
}

/// Runs the 16 Feistel rounds; `keys` in encryption order (reverse for
/// decryption).
fn des_rounds(block: u64, keys: &[u64; 16], decrypt: bool) -> u64 {
    let ip = permute(block, 64, &IP);
    let mut l = (ip >> 32) as u32;
    let mut r = ip as u32;
    for i in 0..16 {
        let k = if decrypt { keys[15 - i] } else { keys[i] };
        let next_r = l ^ feistel(r, k);
        l = r;
        r = next_r;
    }
    // note the final swap: R16 then L16
    permute(((r as u64) << 32) | l as u64, 64, &FP)
}

/// Encrypts one 8-byte block with single DES.
pub fn des_encrypt_block(block: &[u8; 8], key: &[u8; 8]) -> [u8; 8] {
    let keys = key_schedule(u64::from_be_bytes(*key));
    des_rounds(u64::from_be_bytes(*block), &keys, false).to_be_bytes()
}

/// Decrypts one 8-byte block with single DES.
pub fn des_decrypt_block(block: &[u8; 8], key: &[u8; 8]) -> [u8; 8] {
    let keys = key_schedule(u64::from_be_bytes(*key));
    des_rounds(u64::from_be_bytes(*block), &keys, true).to_be_bytes()
}

/// Encrypts one block with 3DES EDE (encrypt-K1, decrypt-K2,
/// encrypt-K3).
pub fn tdes_encrypt_block(block: &[u8; 8], key: &[u8; 24]) -> [u8; 8] {
    let (k1, rest) = key.split_at(8);
    let (k2, k3) = rest.split_at(8);
    let k1: [u8; 8] = k1.try_into().expect("split sizes are fixed");
    let k2: [u8; 8] = k2.try_into().expect("split sizes are fixed");
    let k3: [u8; 8] = k3.try_into().expect("split sizes are fixed");
    let a = des_encrypt_block(block, &k1);
    let b = des_decrypt_block(&a, &k2);
    des_encrypt_block(&b, &k3)
}

/// The Triple-DES (EDE, 3-key) kernel. Parameters: 24-byte key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TripleDes;

impl Kernel for TripleDes {
    fn algo_id(&self) -> u16 {
        ids::TDES
    }

    fn name(&self) -> &'static str {
        "3des"
    }

    fn default_params(&self) -> Vec<u8> {
        (0u8..24)
            .map(|i| i.wrapping_mul(11).wrapping_add(1))
            .collect()
    }

    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError> {
        let key: [u8; 24] = params.try_into().map_err(|_| AlgoError::BadParams {
            kernel: "3des",
            reason: format!("key must be 24 bytes, got {}", params.len()),
        })?;
        let mut out = Vec::with_capacity(input.len().div_ceil(8) * 8);
        for chunk in input.chunks(8) {
            let mut block = [0u8; 8];
            block[..chunk.len()].copy_from_slice(chunk);
            out.extend_from_slice(&tdes_encrypt_block(&block, &key));
        }
        Ok(out)
    }

    fn input_width(&self) -> u16 {
        8
    }

    fn output_width(&self) -> u16 {
        8
    }

    fn build_image(&self, params: &[u8], geom: DeviceGeometry) -> Result<FunctionImage, AlgoError> {
        if params.len() != 24 {
            return Err(AlgoError::BadParams {
                kernel: "3des",
                reason: format!("key must be 24 bytes, got {}", params.len()),
            });
        }
        // Three chained DES cores: ~18 frames.
        Ok(behavioral_image(
            self.algo_id(),
            params,
            self.input_width(),
            self.output_width(),
            18,
            geom,
        ))
    }

    fn fabric_cycles(&self, input_len: usize) -> u64 {
        // 48-stage pipeline (3 x 16 rounds), one block/cycle when full
        input_len.div_ceil(8) as u64 + 48
    }

    fn software_cycles(&self, input_len: usize) -> u64 {
        // software 3DES is notoriously slow: ~150 cycles/byte
        150 * input_len as u64 + 300
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic worked DES example (key 133457799BBCDFF1).
    #[test]
    fn des_known_vector() {
        let key = 0x1334_5779_9BBC_DFF1u64.to_be_bytes();
        let pt = 0x0123_4567_89AB_CDEFu64.to_be_bytes();
        let ct = des_encrypt_block(&pt, &key);
        assert_eq!(u64::from_be_bytes(ct), 0x85E8_1354_0F0A_B405);
        assert_eq!(des_decrypt_block(&ct, &key), pt);
    }

    /// FIPS all-zero vector.
    #[test]
    fn des_zero_vector() {
        let key = [0u8; 8];
        let pt = [0u8; 8];
        let ct = des_encrypt_block(&pt, &key);
        assert_eq!(u64::from_be_bytes(ct), 0x8CA6_4DE9_C1B1_23A7);
    }

    /// 3DES with K1=K2=K3 degenerates to single DES.
    #[test]
    fn tdes_degenerates_to_des() {
        let k = 0x0123_4567_89AB_CDEFu64.to_be_bytes();
        let mut key = [0u8; 24];
        key[..8].copy_from_slice(&k);
        key[8..16].copy_from_slice(&k);
        key[16..].copy_from_slice(&k);
        let pt = *b"ABCDEFGH";
        assert_eq!(tdes_encrypt_block(&pt, &key), des_encrypt_block(&pt, &k));
    }

    /// NIST 3DES EDE vector (SP 800-20 style: three distinct keys).
    #[test]
    fn tdes_three_key_roundtrip_structure() {
        let kernel = TripleDes;
        let params = kernel.default_params();
        let out = kernel.execute(&params, b"The qu1ck brown fox!").unwrap();
        assert_eq!(out.len(), 24); // 20 bytes -> 3 blocks
                                   // deterministic
        assert_eq!(
            out,
            kernel.execute(&params, b"The qu1ck brown fox!").unwrap()
        );
    }

    #[test]
    fn kernel_rejects_bad_key() {
        assert!(TripleDes.execute(&[0; 8], b"x").is_err());
        assert!(TripleDes
            .build_image(&[0; 8], DeviceGeometry::default())
            .is_err());
    }

    #[test]
    fn best_offload_ratio_in_bank() {
        // software/fabric cycle ratio should dwarf AES's
        use crate::crypto::aes::Aes128;
        let tdes_ratio =
            TripleDes.software_cycles(4096) as f64 / TripleDes.fabric_cycles(4096) as f64;
        let aes_ratio = Aes128.software_cycles(4096) as f64 / Aes128.fabric_cycles(4096) as f64;
        assert!(tdes_ratio > aes_ratio);
    }
}

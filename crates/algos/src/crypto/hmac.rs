//! HMAC-SHA-1 kernel — the actual IPSec AH/ESP authenticator.
//!
//! Composes the bank's SHA-1 with the RFC 2104 construction. The key
//! lives in the function image's parameters, so "re-keying" the
//! authenticator is a reconfiguration — exactly the agile usage the
//! paper targets.

use crate::crypto::sha1::sha1;
use crate::filler::behavioral_image;
use crate::ids;
use crate::kernel::{AlgoError, Kernel};
use aaod_fabric::{DeviceGeometry, FunctionImage};

const BLOCK: usize = 64;

/// Computes HMAC-SHA-1 per RFC 2104.
pub fn hmac_sha1(key: &[u8], message: &[u8]) -> [u8; 20] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..20].copy_from_slice(&sha1(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(BLOCK + message.len());
    let mut outer = Vec::with_capacity(BLOCK + 20);
    for &b in &k {
        inner.push(b ^ 0x36);
    }
    inner.extend_from_slice(message);
    for &b in &k {
        outer.push(b ^ 0x5C);
    }
    outer.extend_from_slice(&sha1(&inner));
    sha1(&outer)
}

/// The HMAC-SHA-1 kernel. Parameters: the MAC key (1..=64 bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HmacSha1;

fn check_key(params: &[u8]) -> Result<(), AlgoError> {
    if params.is_empty() || params.len() > BLOCK {
        return Err(AlgoError::BadParams {
            kernel: "hmac-sha1",
            reason: format!("key must be 1..=64 bytes, got {}", params.len()),
        });
    }
    Ok(())
}

impl Kernel for HmacSha1 {
    fn algo_id(&self) -> u16 {
        ids::HMAC_SHA1
    }

    fn name(&self) -> &'static str {
        "hmac-sha1"
    }

    fn default_params(&self) -> Vec<u8> {
        vec![0x0B; 20]
    }

    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError> {
        check_key(params)?;
        Ok(hmac_sha1(params, input).to_vec())
    }

    fn input_width(&self) -> u16 {
        64
    }

    fn output_width(&self) -> u16 {
        20
    }

    fn build_image(&self, params: &[u8], geom: DeviceGeometry) -> Result<FunctionImage, AlgoError> {
        check_key(params)?;
        // SHA-1 core + the HMAC wrapper state: ~14 frames.
        Ok(behavioral_image(
            self.algo_id(),
            params,
            self.input_width(),
            self.output_width(),
            14,
            geom,
        ))
    }

    fn fabric_cycles(&self, input_len: usize) -> u64 {
        // inner hash over (block + message) + outer hash over 84 bytes
        let inner_blocks = (input_len + BLOCK + 9).div_ceil(BLOCK) as u64;
        80 * (inner_blocks + 2) + 16
    }

    fn software_cycles(&self, input_len: usize) -> u64 {
        15 * (input_len as u64 + 3 * BLOCK as u64) + 800
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 2202 test case 1.
    #[test]
    fn rfc2202_case1() {
        let key = [0x0Bu8; 20];
        let mac = hmac_sha1(&key, b"Hi There");
        assert_eq!(hex(&mac), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    /// RFC 2202 test case 2 ("Jefe").
    #[test]
    fn rfc2202_case2() {
        let mac = hmac_sha1(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&mac), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    /// RFC 2202 test case 3 (0xAA key, 0xDD data).
    #[test]
    fn rfc2202_case3() {
        let key = [0xAAu8; 20];
        let data = [0xDDu8; 50];
        let mac = hmac_sha1(&key, &data);
        assert_eq!(hex(&mac), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
    }

    /// Keys longer than a block are hashed first (RFC 2202 case 6).
    #[test]
    fn long_key_is_hashed() {
        let key = [0xAAu8; 80];
        let mac = hmac_sha1(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(hex(&mac), "aa4ae5e15272d00e95705637ce8a3b55ed402112");
    }

    #[test]
    fn kernel_rejects_bad_keys() {
        assert!(HmacSha1.execute(&[], b"x").is_err());
        assert!(HmacSha1.execute(&[0; 65], b"x").is_err());
    }

    #[test]
    fn kernel_matches_function() {
        let k = HmacSha1;
        let out = k.execute(&k.default_params(), b"Hi There").unwrap();
        assert_eq!(hex(&out), "b617318655057264e28bc0b6fb378c8ef146be00");
    }
}

//! Cryptographic kernels — the paper's motivating workload.
//!
//! The paper's references describe algorithm-agile crypto engines for
//! IPSec; this module provides the ciphers and hashes such an engine
//! swaps between: [`aes::Aes128`], [`des::TripleDes`], [`xtea::Xtea`],
//! [`sha1::Sha1`], [`sha256::Sha256`] and [`hmac::HmacSha1`]. All are
//! implemented from scratch and verified
//! against published test vectors.

pub mod aes;
pub mod des;
pub mod hmac;
pub mod sha1;
pub mod sha256;
pub mod xtea;

pub use aes::Aes128;
pub use des::TripleDes;
pub use hmac::HmacSha1;
pub use sha1::Sha1;
pub use sha256::Sha256;
pub use xtea::Xtea;

//! SHA-1 digest kernel.
//!
//! FIPS 180-1 implementation. IPSec AH/ESP authentication — the
//! paper's reference workload — used HMAC-SHA-1, so a hash core is a
//! natural resident of the algorithm bank. (SHA-1 is cryptographically
//! broken today; it is reproduced here as the 2005-era workload, not
//! as a security recommendation.)

use crate::filler::behavioral_image;
use crate::ids;
use crate::kernel::{AlgoError, Kernel};
use aaod_fabric::{DeviceGeometry, FunctionImage};

/// Computes the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [
        0x6745_2301,
        0xEFCD_AB89,
        0x98BA_DCFE,
        0x1032_5476,
        0xC3D2_E1F0,
    ];
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64) * 8;
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    for block in msg.chunks_exact(64) {
        let mut w = [0u32; 80];
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let t = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// The SHA-1 kernel. No parameters; output is the 20-byte digest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sha1;

impl Kernel for Sha1 {
    fn algo_id(&self) -> u16 {
        ids::SHA1
    }

    fn name(&self) -> &'static str {
        "sha1"
    }

    fn default_params(&self) -> Vec<u8> {
        Vec::new()
    }

    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError> {
        if !params.is_empty() {
            return Err(AlgoError::BadParams {
                kernel: "sha1",
                reason: "takes no parameters".into(),
            });
        }
        Ok(sha1(input).to_vec())
    }

    fn input_width(&self) -> u16 {
        64
    }

    fn output_width(&self) -> u16 {
        20
    }

    fn build_image(&self, params: &[u8], geom: DeviceGeometry) -> Result<FunctionImage, AlgoError> {
        if !params.is_empty() {
            return Err(AlgoError::BadParams {
                kernel: "sha1",
                reason: "takes no parameters".into(),
            });
        }
        // One-round-per-cycle SHA-1 core: ~12 frames.
        Ok(behavioral_image(
            self.algo_id(),
            params,
            self.input_width(),
            self.output_width(),
            12,
            geom,
        ))
    }

    fn fabric_cycles(&self, input_len: usize) -> u64 {
        // 80 rounds per 64-byte block, one round per cycle.
        let blocks = (input_len + 9).div_ceil(64) as u64;
        80 * blocks + 8
    }

    fn software_cycles(&self, input_len: usize) -> u64 {
        // ~15 cycles/byte in software
        15 * input_len as u64 + 500
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn kernel_rejects_params() {
        assert!(Sha1.execute(&[1], b"x").is_err());
        assert!(Sha1.build_image(&[1], DeviceGeometry::default()).is_err());
    }

    #[test]
    fn kernel_digest_length() {
        let out = Sha1.execute(&[], b"hello").unwrap();
        assert_eq!(out.len(), 20);
    }
}

//! XTEA block cipher kernel.
//!
//! Needham–Wheeler XTEA: 64-bit blocks, 128-bit key, 32 Feistel
//! cycles. A tiny cipher in hardware — a compact loop-rolled core fits
//! a handful of frames, making it the "small function" of the bank
//! (useful for replacement-policy experiments where area matters).

use crate::filler::behavioral_image;
use crate::ids;
use crate::kernel::{AlgoError, Kernel};
use aaod_fabric::{DeviceGeometry, FunctionImage};

const DELTA: u32 = 0x9E37_79B9;
const ROUNDS: u32 = 32;

/// Encrypts one 8-byte block (two big-endian u32 halves).
pub fn encrypt_block(block: &[u8; 8], key: &[u32; 4]) -> [u8; 8] {
    let mut v0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]);
    let mut v1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]);
    let mut sum = 0u32;
    for _ in 0..ROUNDS {
        v0 = v0.wrapping_add(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                ^ (sum.wrapping_add(key[(sum & 3) as usize])),
        );
        sum = sum.wrapping_add(DELTA);
        v1 = v1.wrapping_add(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
        );
    }
    let mut out = [0u8; 8];
    out[..4].copy_from_slice(&v0.to_be_bytes());
    out[4..].copy_from_slice(&v1.to_be_bytes());
    out
}

/// Decrypts one 8-byte block (inverse of [`encrypt_block`]).
pub fn decrypt_block(block: &[u8; 8], key: &[u32; 4]) -> [u8; 8] {
    let mut v0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]);
    let mut v1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]);
    let mut sum = DELTA.wrapping_mul(ROUNDS);
    for _ in 0..ROUNDS {
        v1 = v1.wrapping_sub(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
        );
        sum = sum.wrapping_sub(DELTA);
        v0 = v0.wrapping_sub(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                ^ (sum.wrapping_add(key[(sum & 3) as usize])),
        );
    }
    let mut out = [0u8; 8];
    out[..4].copy_from_slice(&v0.to_be_bytes());
    out[4..].copy_from_slice(&v1.to_be_bytes());
    out
}

fn parse_key(params: &[u8]) -> Result<[u32; 4], AlgoError> {
    if params.len() != 16 {
        return Err(AlgoError::BadParams {
            kernel: "xtea",
            reason: format!("key must be 16 bytes, got {}", params.len()),
        });
    }
    let mut key = [0u32; 4];
    for (i, k) in key.iter_mut().enumerate() {
        *k = u32::from_be_bytes([
            params[i * 4],
            params[i * 4 + 1],
            params[i * 4 + 2],
            params[i * 4 + 3],
        ]);
    }
    Ok(key)
}

/// The XTEA encryption kernel (ECB over zero-padded 8-byte blocks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Xtea;

impl Kernel for Xtea {
    fn algo_id(&self) -> u16 {
        ids::XTEA
    }

    fn name(&self) -> &'static str {
        "xtea"
    }

    fn default_params(&self) -> Vec<u8> {
        (0u8..16).map(|i| i.wrapping_mul(17)).collect()
    }

    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError> {
        let key = parse_key(params)?;
        let mut out = Vec::with_capacity(input.len().div_ceil(8) * 8);
        for chunk in input.chunks(8) {
            let mut block = [0u8; 8];
            block[..chunk.len()].copy_from_slice(chunk);
            out.extend_from_slice(&encrypt_block(&block, &key));
        }
        Ok(out)
    }

    fn input_width(&self) -> u16 {
        8
    }

    fn output_width(&self) -> u16 {
        8
    }

    fn build_image(&self, params: &[u8], geom: DeviceGeometry) -> Result<FunctionImage, AlgoError> {
        parse_key(params)?;
        // A loop-rolled XTEA core is small: ~6 frames.
        Ok(behavioral_image(
            self.algo_id(),
            params,
            self.input_width(),
            self.output_width(),
            6,
            geom,
        ))
    }

    fn fabric_cycles(&self, input_len: usize) -> u64 {
        // 32-stage unrolled pipeline: one block per cycle once full
        input_len.div_ceil(8) as u64 + 64
    }

    fn software_cycles(&self, input_len: usize) -> u64 {
        // ~45 cycles/byte in software (64 Feistel rounds per 8 bytes)
        45 * input_len as u64 + 100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published XTEA test vector.
    #[test]
    fn known_vector() {
        // key = 000102...0f, pt = 4142434445464748 -> 497df3d072612cb5
        let key = parse_key(&(0u8..16).collect::<Vec<_>>()).unwrap();
        let pt = *b"ABCDEFGH";
        let ct = encrypt_block(&pt, &key);
        assert_eq!(ct, [0x49, 0x7d, 0xf3, 0xd0, 0x72, 0x61, 0x2c, 0xb5]);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = parse_key(&Xtea.default_params()).unwrap();
        for seed in 0..20u8 {
            let block = [seed; 8];
            assert_eq!(decrypt_block(&encrypt_block(&block, &key), &key), block);
        }
    }

    #[test]
    fn kernel_blocks_and_padding() {
        let x = Xtea;
        let out = x.execute(&x.default_params(), &[0xAA; 20]).unwrap();
        assert_eq!(out.len(), 24); // 20 -> 3 blocks
    }

    #[test]
    fn bad_key_rejected() {
        assert!(Xtea.execute(&[1, 2], &[]).is_err());
    }

    #[test]
    fn smaller_than_aes() {
        use crate::crypto::aes::Aes128;
        let geom = DeviceGeometry::default();
        let xtea_frames = Xtea
            .build_image(&Xtea.default_params(), geom)
            .unwrap()
            .frames_needed(geom);
        let aes_frames = Aes128
            .build_image(&Aes128.default_params(), geom)
            .unwrap()
            .frames_needed(geom);
        assert!(xtea_frames < aes_frames);
    }
}

//! DSP kernels: FIR filter and 8×8 matrix multiply.
//!
//! The abstract's "growing computational needs of many real-world
//! applications" extends beyond crypto; filtering and small dense
//! linear algebra are classic FPGA co-processor workloads and give the
//! bank functions with very different area/throughput trade-offs.

use crate::filler::behavioral_image;
use crate::ids;
use crate::kernel::{AlgoError, Kernel};
use aaod_fabric::{DeviceGeometry, FunctionImage};

/// FIR filter over little-endian `i16` samples.
///
/// Parameters: `taps` i16 coefficients (LE), at least one, at most 64.
/// Output `y[n] = Σ coeff[k] · x[n−k]` with saturating accumulation to
/// i16 and zero history before the stream starts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fir;

fn parse_coeffs(params: &[u8]) -> Result<Vec<i16>, AlgoError> {
    if params.is_empty() || !params.len().is_multiple_of(2) {
        return Err(AlgoError::BadParams {
            kernel: "fir",
            reason: format!(
                "coefficients must be non-empty i16 pairs, got {} bytes",
                params.len()
            ),
        });
    }
    let taps = params.len() / 2;
    if taps > 64 {
        return Err(AlgoError::BadParams {
            kernel: "fir",
            reason: format!("at most 64 taps, got {taps}"),
        });
    }
    Ok(params
        .chunks_exact(2)
        .map(|c| i16::from_le_bytes([c[0], c[1]]))
        .collect())
}

impl Kernel for Fir {
    fn algo_id(&self) -> u16 {
        ids::FIR
    }

    fn name(&self) -> &'static str {
        "fir"
    }

    fn default_params(&self) -> Vec<u8> {
        // 8-tap moving-average-like low-pass with a peak in the middle
        let coeffs: [i16; 8] = [1, 3, 7, 13, 13, 7, 3, 1];
        coeffs.iter().flat_map(|c| c.to_le_bytes()).collect()
    }

    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError> {
        let coeffs = parse_coeffs(params)?;
        // zero-pad a trailing odd byte (the data-input module pads
        // transfers to the record's bus width)
        let samples: Vec<i16> = input
            .chunks(2)
            .map(|c| i16::from_le_bytes([c[0], *c.get(1).unwrap_or(&0)]))
            .collect();
        let mut out = Vec::with_capacity(input.len());
        for n in 0..samples.len() {
            let mut acc: i64 = 0;
            for (k, &c) in coeffs.iter().enumerate() {
                if n >= k {
                    acc += c as i64 * samples[n - k] as i64;
                }
            }
            let y = acc.clamp(i16::MIN as i64, i16::MAX as i64) as i16;
            out.extend_from_slice(&y.to_le_bytes());
        }
        Ok(out)
    }

    fn input_width(&self) -> u16 {
        2
    }

    fn output_width(&self) -> u16 {
        2
    }

    fn build_image(&self, params: &[u8], geom: DeviceGeometry) -> Result<FunctionImage, AlgoError> {
        let coeffs = parse_coeffs(params)?;
        // One MAC column per tap: frames scale with tap count.
        let frames = 2 + coeffs.len() / 4;
        Ok(behavioral_image(
            self.algo_id(),
            params,
            self.input_width(),
            self.output_width(),
            frames,
            geom,
        ))
    }

    fn fabric_cycles(&self, input_len: usize) -> u64 {
        // fully parallel MAC array: one sample per cycle after fill
        (input_len / 2) as u64 + 8
    }

    fn software_cycles(&self, input_len: usize) -> u64 {
        // taps unknown here; assume the default 8 taps, 2 cycles per MAC
        (input_len / 2) as u64 * 16 + 100
    }
}

/// 8×8 byte matrix multiply (wrapping arithmetic modulo 256).
///
/// Input: pairs of 64-byte row-major matrices `A`, `B`; output: the
/// 64-byte product per pair. No parameters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatMul8;

impl Kernel for MatMul8 {
    fn algo_id(&self) -> u16 {
        ids::MATMUL8
    }

    fn name(&self) -> &'static str {
        "matmul8"
    }

    fn default_params(&self) -> Vec<u8> {
        Vec::new()
    }

    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError> {
        if !params.is_empty() {
            return Err(AlgoError::BadParams {
                kernel: "matmul8",
                reason: "takes no parameters".into(),
            });
        }
        let mut out = Vec::with_capacity(input.len().div_ceil(128) * 64);
        for chunk in input.chunks(128) {
            // zero-pad a partial trailing pair, as the data-input
            // module pads transfers to the record's bus width
            let mut pair = [0u8; 128];
            pair[..chunk.len()].copy_from_slice(chunk);
            let (a, b) = pair.split_at(64);
            for i in 0..8 {
                for j in 0..8 {
                    let mut acc = 0u8;
                    for (k, bk) in b.chunks_exact(8).enumerate() {
                        acc = acc.wrapping_add(a[i * 8 + k].wrapping_mul(bk[j]));
                    }
                    out.push(acc);
                }
            }
        }
        Ok(out)
    }

    fn input_width(&self) -> u16 {
        128
    }

    fn output_width(&self) -> u16 {
        64
    }

    fn build_image(&self, params: &[u8], geom: DeviceGeometry) -> Result<FunctionImage, AlgoError> {
        if !params.is_empty() {
            return Err(AlgoError::BadParams {
                kernel: "matmul8",
                reason: "takes no parameters".into(),
            });
        }
        // A systolic 8x8 array is the largest function in the bank: 32 frames.
        Ok(behavioral_image(
            self.algo_id(),
            params,
            self.input_width(),
            self.output_width(),
            32,
            geom,
        ))
    }

    fn fabric_cycles(&self, input_len: usize) -> u64 {
        // systolic array: ~8 cycles per matrix pair after fill
        8 * (input_len / 128) as u64 + 16
    }

    fn software_cycles(&self, input_len: usize) -> u64 {
        // 512 naive byte MACs (~6 cycles each with loads) per pair
        3072 * (input_len / 128) as u64 + 50
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_impulse_response_is_coefficients() {
        let fir = Fir;
        let params = fir.default_params();
        // impulse: 1 followed by zeros
        let mut input = vec![0u8; 32];
        input[0] = 1;
        let out = fir.execute(&params, &input).unwrap();
        let ys: Vec<i16> = out
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect();
        assert_eq!(&ys[..8], &[1, 3, 7, 13, 13, 7, 3, 1]);
        assert!(ys[8..].iter().all(|&y| y == 0));
    }

    #[test]
    fn fir_saturates() {
        let fir = Fir;
        let params: Vec<u8> = [i16::MAX].iter().flat_map(|c| c.to_le_bytes()).collect();
        let input: Vec<u8> = [i16::MAX, i16::MAX]
            .iter()
            .flat_map(|s| s.to_le_bytes())
            .collect();
        let out = fir.execute(&params, &input).unwrap();
        let y0 = i16::from_le_bytes([out[0], out[1]]);
        assert_eq!(y0, i16::MAX); // MAX*MAX clamps
    }

    #[test]
    fn fir_rejects_bad_params_and_pads_odd_input() {
        assert!(Fir.execute(&[], &[0, 0]).is_err()); // no taps
        assert!(Fir.execute(&[1], &[0, 0]).is_err()); // odd params
        assert!(Fir.execute(&[0u8; 130], &[]).is_err()); // >64 taps
                                                         // odd input byte is zero-padded into a final sample
        let out = Fir.execute(&Fir.default_params(), &[1]).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn matmul_identity() {
        let mut identity = [0u8; 64];
        for i in 0..8 {
            identity[i * 8 + i] = 1;
        }
        let a: Vec<u8> = (0..64u8).collect();
        let mut input = a.clone();
        input.extend_from_slice(&identity);
        let out = MatMul8.execute(&[], &input).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn matmul_wrapping() {
        let a = [255u8; 64];
        let b = [2u8; 64];
        let mut input = a.to_vec();
        input.extend_from_slice(&b);
        let out = MatMul8.execute(&[], &input).unwrap();
        // each entry: sum of 8 * (255*2 mod 256) = 8 * 254 mod 256 = 2032 mod 256 = 240
        assert!(out.iter().all(|&x| x == 240), "{:?}", &out[..8]);
    }

    #[test]
    fn matmul_pads_partial_pairs_and_rejects_params() {
        // A lone matrix is multiplied by the zero matrix.
        let out = MatMul8.execute(&[], &[1; 64]).unwrap();
        assert_eq!(out, vec![0u8; 64]);
        assert!(MatMul8.execute(&[1], &[0; 128]).is_err());
    }

    #[test]
    fn fir_frames_scale_with_taps() {
        let geom = DeviceGeometry::default();
        let few = Fir.build_image(&Fir.default_params(), geom).unwrap();
        let many_params: Vec<u8> = (0..32i16).flat_map(|c| c.to_le_bytes()).collect();
        let many = Fir.build_image(&many_params, geom).unwrap();
        assert!(many.frames_needed(geom) > few.frames_needed(geom));
    }
}

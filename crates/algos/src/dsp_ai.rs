//! Large-footprint DSP/AI kernels: blocked 16×16 matrix multiply,
//! 3×3 image convolution and a 64-point fixed-point FFT.
//!
//! These are the "DSP/AI tier" of the bank: frame footprints 5–20×
//! the standard kernels (56–72 frames against the 96-frame default
//! device vs 2–32 for the rest of the bank) and proportionally larger
//! payloads, so bitstream download, frame-store dedup, PCI burst
//! staging and on-card RAM accounting are all actually stressed.
//! They live in [`AlgorithmBank::extended`](crate::AlgorithmBank::extended)
//! rather than `standard()` so existing experiments and golden traces
//! keep their exact bank.
//!
//! All three are behavioural kernels with bit-exact integer
//! reference semantics — no floating point anywhere on the data
//! path, so outputs are identical across hosts and the conformance
//! tier (`tests/kernel_conformance.rs`) can pin golden vectors.

use crate::filler::behavioral_image;
use crate::ids;
use crate::kernel::{AlgoError, Kernel};
use aaod_fabric::{DeviceGeometry, FunctionImage};

/// Blocked 16×16 signed matrix multiply.
///
/// Input: pairs of row-major 16×16 `i8` matrices `A`, `B` (256 bytes
/// each, 512 per pair; a partial trailing pair is zero-padded).
/// Output per pair: the 16×16 product, `i32`-accumulated and
/// saturated to `i16`, little-endian (512 bytes). No parameters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatMul16;

/// Bytes per input pair for [`MatMul16`]: two 16×16 `i8` matrices.
pub const MATMUL16_PAIR_BYTES: usize = 512;

impl Kernel for MatMul16 {
    fn algo_id(&self) -> u16 {
        ids::MATMUL16
    }

    fn name(&self) -> &'static str {
        "matmul16"
    }

    fn default_params(&self) -> Vec<u8> {
        Vec::new()
    }

    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError> {
        if !params.is_empty() {
            return Err(AlgoError::BadParams {
                kernel: "matmul16",
                reason: "takes no parameters".into(),
            });
        }
        let pairs = input.len().div_ceil(MATMUL16_PAIR_BYTES);
        let mut out = Vec::with_capacity(pairs * MATMUL16_PAIR_BYTES);
        for chunk in input.chunks(MATMUL16_PAIR_BYTES) {
            // zero-pad a partial trailing pair, as the data-input
            // module pads transfers to the record's bus width
            let mut pair = [0u8; MATMUL16_PAIR_BYTES];
            pair[..chunk.len()].copy_from_slice(chunk);
            let (a, b) = pair.split_at(256);
            for i in 0..16 {
                for j in 0..16 {
                    let mut acc: i32 = 0;
                    for k in 0..16 {
                        acc += a[i * 16 + k] as i8 as i32 * b[k * 16 + j] as i8 as i32;
                    }
                    let y = acc.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
                    out.extend_from_slice(&y.to_le_bytes());
                }
            }
        }
        Ok(out)
    }

    fn input_width(&self) -> u16 {
        MATMUL16_PAIR_BYTES as u16
    }

    fn output_width(&self) -> u16 {
        MATMUL16_PAIR_BYTES as u16
    }

    fn build_image(&self, params: &[u8], geom: DeviceGeometry) -> Result<FunctionImage, AlgoError> {
        if !params.is_empty() {
            return Err(AlgoError::BadParams {
                kernel: "matmul16",
                reason: "takes no parameters".into(),
            });
        }
        // A 16×16 systolic array with i32 accumulators is by far the
        // largest function in the bank: 72 frames (3/4 of the default
        // device) — any co-resident function forces reconfiguration.
        Ok(behavioral_image(
            self.algo_id(),
            params,
            self.input_width(),
            self.output_width(),
            72,
            geom,
        ))
    }

    fn fabric_cycles(&self, input_len: usize) -> u64 {
        // systolic: one result column per cycle after a 32-cycle fill
        16 * input_len.div_ceil(MATMUL16_PAIR_BYTES) as u64 + 32
    }

    fn software_cycles(&self, input_len: usize) -> u64 {
        // 4096 MACs (~3 cycles each with loads) per pair
        12_288 * input_len.div_ceil(MATMUL16_PAIR_BYTES) as u64 + 100
    }
}

/// 3×3 convolution over 32×32 8-bit grayscale tiles.
///
/// Input: 1024-byte row-major 32×32 `u8` images (a partial trailing
/// tile is zero-padded). Parameters: nine `i8` coefficients in
/// row-major kernel order followed by one right-shift byte (0–7).
/// Each output pixel is the `i32` dot product over the 3×3
/// neighbourhood (zero padding outside the tile), arithmetically
/// shifted right and clamped to `0..=255`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Conv2d;

/// Tile edge for [`Conv2d`]: images are 32×32 pixels.
pub const CONV2D_EDGE: usize = 32;
/// Bytes per input tile for [`Conv2d`].
pub const CONV2D_TILE_BYTES: usize = CONV2D_EDGE * CONV2D_EDGE;

fn parse_conv_params(params: &[u8]) -> Result<([i8; 9], u32), AlgoError> {
    if params.len() != 10 {
        return Err(AlgoError::BadParams {
            kernel: "conv2d",
            reason: format!(
                "expected 9 i8 coefficients + 1 shift byte, got {} bytes",
                params.len()
            ),
        });
    }
    let mut coeffs = [0i8; 9];
    for (c, &p) in coeffs.iter_mut().zip(params.iter()) {
        *c = p as i8;
    }
    let shift = params[9] as u32;
    if shift > 7 {
        return Err(AlgoError::BadParams {
            kernel: "conv2d",
            reason: format!("shift must be 0..=7, got {shift}"),
        });
    }
    Ok((coeffs, shift))
}

impl Kernel for Conv2d {
    fn algo_id(&self) -> u16 {
        ids::CONV2D
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn default_params(&self) -> Vec<u8> {
        // Gaussian-ish 3×3 blur, sum 16, shift 4 → unity DC gain
        let coeffs: [i8; 9] = [1, 2, 1, 2, 4, 2, 1, 2, 1];
        let mut p: Vec<u8> = coeffs.iter().map(|&c| c as u8).collect();
        p.push(4);
        p
    }

    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError> {
        let (coeffs, shift) = parse_conv_params(params)?;
        let tiles = input.len().div_ceil(CONV2D_TILE_BYTES);
        let mut out = Vec::with_capacity(tiles * CONV2D_TILE_BYTES);
        for chunk in input.chunks(CONV2D_TILE_BYTES) {
            let mut tile = [0u8; CONV2D_TILE_BYTES];
            tile[..chunk.len()].copy_from_slice(chunk);
            let e = CONV2D_EDGE as isize;
            for y in 0..e {
                for x in 0..e {
                    let mut acc: i32 = 0;
                    for ky in 0..3isize {
                        for kx in 0..3isize {
                            let (sy, sx) = (y + ky - 1, x + kx - 1);
                            if (0..e).contains(&sy) && (0..e).contains(&sx) {
                                let px = tile[(sy * e + sx) as usize] as i32;
                                acc += coeffs[(ky * 3 + kx) as usize] as i32 * px;
                            }
                        }
                    }
                    out.push((acc >> shift).clamp(0, 255) as u8);
                }
            }
        }
        Ok(out)
    }

    fn input_width(&self) -> u16 {
        CONV2D_TILE_BYTES as u16
    }

    fn output_width(&self) -> u16 {
        CONV2D_TILE_BYTES as u16
    }

    fn build_image(&self, params: &[u8], geom: DeviceGeometry) -> Result<FunctionImage, AlgoError> {
        parse_conv_params(params)?;
        // 9-MAC window pipeline + two 32-pixel line buffers: 56 frames.
        Ok(behavioral_image(
            self.algo_id(),
            params,
            self.input_width(),
            self.output_width(),
            56,
            geom,
        ))
    }

    fn fabric_cycles(&self, input_len: usize) -> u64 {
        // pipelined window: one pixel per cycle after line-buffer fill
        input_len as u64 + 128
    }

    fn software_cycles(&self, input_len: usize) -> u64 {
        // 9 MACs + clamp (~3 cycles each) per pixel
        30 * input_len as u64 + 200
    }
}

/// 64-point radix-2 fixed-point FFT.
///
/// Input: 256-byte blocks of 64 interleaved little-endian `i16`
/// complex samples `(re, im)`; a partial trailing block is
/// zero-padded. Decimation-in-time with Q14 twiddles from a hardcoded
/// quarter-wave table, each butterfly stage scaled by ½ (so the
/// transform is normalised by 1/64) with saturation to `i16`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fft64;

/// Points per block for [`Fft64`].
pub const FFT64_POINTS: usize = 64;
/// Bytes per input block for [`Fft64`]: 64 × (i16 re + i16 im).
pub const FFT64_BLOCK_BYTES: usize = FFT64_POINTS * 4;

/// Quarter-wave cosine table, Q14: `round(cos(pi*k/32) * 16384)` for
/// `k = 0..=16`. Hardcoded so the data path never touches `f64` —
/// outputs are bit-identical on every host.
const COS_Q14: [i32; 17] = [
    16384, 16305, 16069, 15679, 15137, 14449, 13623, 12665, 11585, 10394, 9102, 7723, 6270, 4756,
    3196, 1606, 0,
];

/// Q14 twiddle `W_64^k = cos(2πk/64) − j·sin(2πk/64)` for `k < 32`,
/// folded out of the quarter-wave table.
fn twiddle(k: usize) -> (i32, i32) {
    debug_assert!(k < 32);
    let cos = if k <= 16 {
        COS_Q14[k]
    } else {
        -COS_Q14[32 - k]
    };
    let sin = if k <= 16 {
        COS_Q14[16 - k]
    } else {
        COS_Q14[k - 16]
    };
    (cos, -sin)
}

fn fft64_block(block: &[u8]) -> [u8; FFT64_BLOCK_BYTES] {
    let mut re = [0i32; FFT64_POINTS];
    let mut im = [0i32; FFT64_POINTS];
    for p in 0..FFT64_POINTS {
        // bit-reversed load (6 bits) of zero-padded samples
        let src = (p as u32).reverse_bits() >> 26;
        let o = src as usize * 4;
        let get = |i: usize| -> i32 {
            let lo = *block.get(i).unwrap_or(&0);
            let hi = *block.get(i + 1).unwrap_or(&0);
            i16::from_le_bytes([lo, hi]) as i32
        };
        re[p] = get(o);
        im[p] = get(o + 2);
    }
    let mut m = 2;
    while m <= FFT64_POINTS {
        let stride = FFT64_POINTS / m;
        for base in (0..FFT64_POINTS).step_by(m) {
            for j in 0..m / 2 {
                let (wr, wi) = twiddle(j * stride);
                let (ai, bi) = (base + j, base + j + m / 2);
                let tr = (re[bi] * wr - im[bi] * wi) >> 14;
                let ti = (re[bi] * wi + im[bi] * wr) >> 14;
                // scale each stage by ½: normalises the transform by
                // 1/64 and keeps magnitudes inside i16 (saturating on
                // the rare off-axis worst case)
                let sat = |v: i32| v.clamp(i16::MIN as i32, i16::MAX as i32);
                let (ar, aim) = (re[ai], im[ai]);
                re[ai] = sat((ar + tr) >> 1);
                im[ai] = sat((aim + ti) >> 1);
                re[bi] = sat((ar - tr) >> 1);
                im[bi] = sat((aim - ti) >> 1);
            }
        }
        m *= 2;
    }
    let mut out = [0u8; FFT64_BLOCK_BYTES];
    for p in 0..FFT64_POINTS {
        out[p * 4..p * 4 + 2].copy_from_slice(&(re[p] as i16).to_le_bytes());
        out[p * 4 + 2..p * 4 + 4].copy_from_slice(&(im[p] as i16).to_le_bytes());
    }
    out
}

impl Kernel for Fft64 {
    fn algo_id(&self) -> u16 {
        ids::FFT64
    }

    fn name(&self) -> &'static str {
        "fft64"
    }

    fn default_params(&self) -> Vec<u8> {
        Vec::new()
    }

    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError> {
        if !params.is_empty() {
            return Err(AlgoError::BadParams {
                kernel: "fft64",
                reason: "takes no parameters".into(),
            });
        }
        let blocks = input.len().div_ceil(FFT64_BLOCK_BYTES);
        let mut out = Vec::with_capacity(blocks * FFT64_BLOCK_BYTES);
        for chunk in input.chunks(FFT64_BLOCK_BYTES) {
            out.extend_from_slice(&fft64_block(chunk));
        }
        Ok(out)
    }

    fn input_width(&self) -> u16 {
        FFT64_BLOCK_BYTES as u16
    }

    fn output_width(&self) -> u16 {
        FFT64_BLOCK_BYTES as u16
    }

    fn build_image(&self, params: &[u8], geom: DeviceGeometry) -> Result<FunctionImage, AlgoError> {
        if !params.is_empty() {
            return Err(AlgoError::BadParams {
                kernel: "fft64",
                reason: "takes no parameters".into(),
            });
        }
        // 6 pipelined butterfly stages + twiddle ROM + reorder
        // buffers: 64 frames (two thirds of the default device).
        Ok(behavioral_image(
            self.algo_id(),
            params,
            self.input_width(),
            self.output_width(),
            64,
            geom,
        ))
    }

    fn fabric_cycles(&self, input_len: usize) -> u64 {
        // 192 butterflies per block, two per cycle, pipelined
        96 * input_len.div_ceil(FFT64_BLOCK_BYTES) as u64 + 32
    }

    fn software_cycles(&self, input_len: usize) -> u64 {
        // 192 butterflies × ~10 cycles (4 muls, shifts, saturation)
        1_920 * input_len.div_ceil(FFT64_BLOCK_BYTES) as u64 + 100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack_i16(samples: &[i16]) -> Vec<u8> {
        samples.iter().flat_map(|s| s.to_le_bytes()).collect()
    }

    fn unpack_i16(bytes: &[u8]) -> Vec<i16> {
        bytes
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect()
    }

    #[test]
    fn matmul16_identity() {
        let mut identity = [0u8; 256];
        for i in 0..16 {
            identity[i * 16 + i] = 1;
        }
        let a: Vec<u8> = (0..=255u8).collect();
        let mut input = a.clone();
        input.extend_from_slice(&identity);
        let out = MatMul16.execute(&[], &input).unwrap();
        let got = unpack_i16(&out);
        let want: Vec<i16> = a.iter().map(|&x| x as i8 as i16).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn matmul16_saturates() {
        // A = B = all -128: each entry 16 * (-128 * -128) = 262144 → +MAX
        let input = vec![0x80u8; MATMUL16_PAIR_BYTES];
        let out = MatMul16.execute(&[], &input).unwrap();
        assert!(unpack_i16(&out).iter().all(|&y| y == i16::MAX));
    }

    #[test]
    fn matmul16_pads_partials_and_rejects_params() {
        let out = MatMul16.execute(&[], &[7u8; 256]).unwrap();
        assert_eq!(out, vec![0u8; MATMUL16_PAIR_BYTES]);
        assert!(MatMul16.execute(&[1], &[0; 512]).is_err());
    }

    #[test]
    fn conv2d_identity_kernel_is_a_copy() {
        let mut params = vec![0u8; 10];
        params[4] = 1; // centre tap 1, shift 0
        let tile: Vec<u8> = (0..CONV2D_TILE_BYTES).map(|i| (i % 251) as u8).collect();
        let out = Conv2d.execute(&params, &tile).unwrap();
        assert_eq!(out, tile);
    }

    #[test]
    fn conv2d_blur_preserves_flat_interior_and_dims_borders() {
        let params = Conv2d.default_params();
        let tile = vec![100u8; CONV2D_TILE_BYTES];
        let out = Conv2d.execute(&params, &tile).unwrap();
        // interior: unity DC gain; corners lose 7/16 of the kernel mass
        assert_eq!(out[33], 100);
        assert_eq!(out[0] as u32, 100 * 9 / 16);
    }

    #[test]
    fn conv2d_clamps_and_validates_params() {
        // all-positive kernel with shift 0 overflows u8 → clamps to 255
        let mut params = vec![4u8; 9];
        params.push(0);
        let out = Conv2d
            .execute(&params, &vec![200u8; CONV2D_TILE_BYTES])
            .unwrap();
        assert_eq!(out[33], 255);
        assert!(Conv2d.execute(&[0u8; 9], &[]).is_err()); // missing shift
        let mut bad = Conv2d.default_params();
        bad[9] = 8;
        assert!(Conv2d.execute(&bad, &[]).is_err()); // shift too large
    }

    #[test]
    fn fft64_zero_input_is_zero() {
        let out = Fft64.execute(&[], &[0u8; FFT64_BLOCK_BYTES]).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn fft64_dc_input_concentrates_in_bin_zero() {
        // constant re = 6400 → bin 0 = 6400 (normalised), rest 0
        let samples: Vec<i16> = (0..FFT64_POINTS).flat_map(|_| [6400, 0]).collect();
        let out = Fft64.execute(&[], &pack_i16(&samples)).unwrap();
        let ys = unpack_i16(&out);
        assert_eq!(ys[0], 6400);
        assert_eq!(ys[1], 0);
        assert!(ys[2..].iter().all(|&y| y.abs() <= 1), "{:?}", &ys[..8]);
    }

    #[test]
    fn fft64_single_tone_lands_in_its_bin() {
        // re[n] = round-free cosine is awkward in pure ints; use an
        // impulse instead: x[0] = A → flat spectrum A/64 in every bin.
        let mut samples = vec![0i16; FFT64_POINTS * 2];
        samples[0] = 6400;
        let out = Fft64.execute(&[], &pack_i16(&samples)).unwrap();
        let ys = unpack_i16(&out);
        for p in 0..FFT64_POINTS {
            assert_eq!(ys[p * 2], 100, "re bin {p}");
            assert_eq!(ys[p * 2 + 1], 0, "im bin {p}");
        }
    }

    #[test]
    fn fft64_pads_partial_blocks_and_rejects_params() {
        let out = Fft64.execute(&[], &[1u8; 10]).unwrap();
        assert_eq!(out.len(), FFT64_BLOCK_BYTES);
        assert!(Fft64.execute(&[0], &[]).is_err());
    }

    #[test]
    fn images_are_large_and_fit_alone() {
        let geom = DeviceGeometry::default();
        for (kernel, frames) in [
            (&MatMul16 as &dyn Kernel, 72),
            (&Conv2d as &dyn Kernel, 56),
            (&Fft64 as &dyn Kernel, 64),
        ] {
            let img = kernel.build_image(&kernel.default_params(), geom).unwrap();
            assert_eq!(img.frames_needed(geom), frames, "{}", kernel.name());
            assert!(img.frames_needed(geom) <= geom.frames());
        }
    }
}

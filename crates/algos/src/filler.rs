//! Synthetic configuration filler for behavioural kernels.
//!
//! A real AES or SHA core occupies thousands of LUTs whose
//! configuration bytes we do not synthesise. What matters for the
//! co-processor experiments is their *statistics* — compression
//! ratios (E2) and reconfiguration volumes (E3) depend on how sparse
//! and self-similar the configuration data is. [`generate`] produces
//! filler with realistic bitstream structure:
//!
//! * long zero stretches (unused LUTs and routing),
//! * a small set of column motifs repeated with point mutations
//!   (the CLB-column symmetry the paper's conclusion highlights),
//! * occasional dense random words (routing switch boxes).
//!
//! Deterministic in the seed, so every experiment is reproducible.

use aaod_sim::SplitMix64;

/// Fraction-denominator controlling how often a motif byte mutates.
const MUTATION_DENOM: u64 = 29;

/// Generates `len` bytes of realistic configuration filler from
/// `seed`. `motif_len` sets the column period (use the frame size or a
/// divisor of it for maximum inter-frame symmetry).
///
/// # Examples
///
/// ```
/// use aaod_algos::filler::generate;
///
/// let a = generate(7, 1024, 64);
/// let b = generate(7, 1024, 64);
/// assert_eq!(a, b); // deterministic
/// assert!(a.iter().filter(|&&x| x == 0).count() > 300); // sparse
/// ```
pub fn generate(seed: u64, len: usize, motif_len: usize) -> Vec<u8> {
    let motif_len = motif_len.max(1);
    let mut rng = SplitMix64::new(seed ^ 0xF117_E500_0000_0000);
    // One column motif per algorithm: sparse (roughly a third of the
    // bytes configured) with internal zero stretches, repeated every
    // `motif_len` bytes — the CLB-column periodicity of a real device.
    let mut motif = vec![0u8; motif_len];
    {
        let mut i = 0usize;
        while i < motif_len {
            // alternate a configured run and a zero gap
            let run = 1 + rng.index(4);
            for _ in 0..run.min(motif_len - i) {
                motif[i] = rng.next_u8();
                i += 1;
            }
            i += rng.index(24); // zero gap
        }
    }
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        // occasionally a fully blank column (unused area of the core)
        if rng.chance(0.1) {
            let blank = motif_len.min(len - out.len());
            out.extend(std::iter::repeat_n(0u8, blank));
            continue;
        }
        // a column: the motif with rare point mutations (per-column
        // routing differences)
        for &b in motif.iter().take(len - out.len()) {
            let byte = if rng.below(MUTATION_DENOM) == 0 {
                rng.next_u8()
            } else {
                b
            };
            out.push(byte);
        }
    }
    out
}

/// The filler seed [`behavioral_image`] derives for `algo_id`.
pub fn default_filler_seed(algo_id: u16) -> u64 {
    0xA160_0000 | algo_id as u64
}

/// Builds a behavioural [`aaod_fabric::FunctionImage`] sized to occupy
/// `target_frames` frames under `geom`: descriptor + params + enough
/// structured filler to fill the area a real core of that size would.
///
/// The filler seed is derived from `algo_id` so every algorithm has a
/// distinct but reproducible bitstream.
pub fn behavioral_image(
    algo_id: u16,
    params: &[u8],
    input_width: u16,
    output_width: u16,
    target_frames: usize,
    geom: aaod_fabric::DeviceGeometry,
) -> aaod_fabric::FunctionImage {
    behavioral_image_seeded(
        algo_id,
        params,
        input_width,
        output_width,
        target_frames,
        geom,
        default_filler_seed(algo_id),
    )
}

/// [`behavioral_image`] with an explicit `filler_seed` instead of the
/// id-derived one. Two algorithms built with the same seed, params and
/// frame target share every configuration byte outside the descriptor
/// frame — the frame-level redundancy [`AliasKernel`] exploits and the
/// DeltaV2 frame store deduplicates.
///
/// [`AliasKernel`]: crate::AliasKernel
pub fn behavioral_image_seeded(
    algo_id: u16,
    params: &[u8],
    input_width: u16,
    output_width: u16,
    target_frames: usize,
    geom: aaod_fabric::DeviceGeometry,
    filler_seed: u64,
) -> aaod_fabric::FunctionImage {
    let target_bytes = target_frames.max(1) * geom.frame_bytes();
    let overhead = aaod_fabric::image::DESCRIPTOR_BYTES + 2 + params.len();
    let filler_len = target_bytes.saturating_sub(overhead);
    // period = frame size, so adjacent frames are near-copies — the
    // inter-frame CLB symmetry the paper's conclusion highlights
    let filler = generate(filler_seed, filler_len, geom.frame_bytes());
    aaod_fabric::FunctionImage::from_behavioral(algo_id, params, &filler, input_width, output_width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavioral_image_fills_target_frames() {
        let geom = aaod_fabric::DeviceGeometry::new(32, 4);
        for frames in [1usize, 2, 7, 20] {
            let img = behavioral_image(3, &[1, 2, 3], 8, 8, frames, geom);
            assert_eq!(img.frames_needed(geom), frames, "target {frames}");
        }
    }

    #[test]
    fn exact_length() {
        for len in [0usize, 1, 63, 64, 1000, 4096] {
            assert_eq!(generate(1, len, 64).len(), len);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(42, 2048, 56), generate(42, 2048, 56));
        assert_ne!(generate(42, 2048, 56), generate(43, 2048, 56));
    }

    #[test]
    fn sparse_but_not_empty() {
        let data = generate(5, 8192, 64);
        let zeros = data.iter().filter(|&&b| b == 0).count();
        assert!(zeros > data.len() / 3, "not sparse: {zeros}/{}", data.len());
        assert!(zeros < data.len(), "all zero");
    }

    #[test]
    fn compressible_like_a_bitstream() {
        // sanity: RLE on the filler should compress at least 1.3x
        let data = generate(9, 16384, 64);
        let mut rle = Vec::new();
        let mut i = 0;
        while i < data.len() {
            let b = data[i];
            let mut run = 1;
            while run < 255 && i + run < data.len() && data[i + run] == b {
                run += 1;
            }
            rle.push(run as u8);
            rle.push(b);
            i += run;
        }
        assert!(
            (rle.len() as f64) < data.len() as f64 / 1.3,
            "rle {} vs {}",
            rle.len(),
            data.len()
        );
    }

    #[test]
    fn tiny_motif_ok() {
        assert_eq!(generate(1, 100, 0).len(), 100); // motif_len clamped to 1
    }
}

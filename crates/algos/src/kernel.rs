//! The [`Kernel`] trait: one entry of the algorithm bank.

use aaod_fabric::{DeviceGeometry, FunctionImage};
use std::error::Error;
use std::fmt;

/// Errors from kernel execution or image construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AlgoError {
    /// The bank has no kernel with this id.
    UnknownAlgorithm(u16),
    /// The parameter bytes do not instantiate this kernel.
    BadParams {
        /// Kernel name.
        kernel: &'static str,
        /// What was wrong.
        reason: String,
    },
    /// The input cannot be processed (e.g. odd length for a 16-bit
    /// sample stream).
    BadInput {
        /// Kernel name.
        kernel: &'static str,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::UnknownAlgorithm(id) => write!(f, "no algorithm with id {id}"),
            AlgoError::BadParams { kernel, reason } => {
                write!(f, "bad parameters for {kernel}: {reason}")
            }
            AlgoError::BadInput { kernel, reason } => {
                write!(f, "bad input for {kernel}: {reason}")
            }
        }
    }
}

impl Error for AlgoError {}

/// One algorithm of the bank.
///
/// A kernel provides (a) a golden software implementation — used both
/// as the host-side baseline and to verify hardware results, (b) the
/// construction of its configuration [`FunctionImage`], and (c) cycle
/// models for fabric and host execution.
///
/// Object-safe: the bank stores kernels as trait objects.
pub trait Kernel: Send + Sync {
    /// Stable identifier (see [`crate::ids`]).
    fn algo_id(&self) -> u16;

    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// Parameters used when the caller does not supply any (e.g. a
    /// default key or coefficient set). Must be accepted by
    /// [`Kernel::execute`].
    fn default_params(&self) -> Vec<u8>;

    /// Golden software execution.
    ///
    /// # Errors
    ///
    /// Returns [`AlgoError::BadParams`] or [`AlgoError::BadInput`].
    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError>;

    /// Bytes per data-input transfer (the "multiple of the width of
    /// the interface bus" of paper §2.3).
    fn input_width(&self) -> u16;

    /// Bytes per output transfer.
    fn output_width(&self) -> u16;

    /// Builds the configuration image for this kernel under `geom`.
    ///
    /// # Errors
    ///
    /// Returns [`AlgoError::BadParams`] if `params` cannot instantiate
    /// the kernel.
    fn build_image(&self, params: &[u8], geom: DeviceGeometry) -> Result<FunctionImage, AlgoError>;

    /// Fabric cycles (100 MHz domain) to process `input_len` bytes
    /// once configured.
    fn fabric_cycles(&self, input_len: usize) -> u64;

    /// Host-CPU cycles (software baseline) for the same work.
    fn software_cycles(&self, input_len: usize) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(AlgoError::UnknownAlgorithm(3).to_string().contains("3"));
        let e = AlgoError::BadParams {
            kernel: "aes128",
            reason: "key must be 16 bytes".into(),
        };
        assert!(e.to_string().contains("aes128"));
    }

    #[test]
    fn kernel_is_object_safe() {
        fn _takes(_k: &dyn Kernel) {}
    }

    #[test]
    fn send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<AlgoError>();
    }
}

//! The [`Kernel`] trait: one entry of the algorithm bank.

use aaod_fabric::{DeviceGeometry, FunctionImage};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors from kernel execution or image construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AlgoError {
    /// The bank has no kernel with this id.
    UnknownAlgorithm(u16),
    /// The parameter bytes do not instantiate this kernel.
    BadParams {
        /// Kernel name.
        kernel: &'static str,
        /// What was wrong.
        reason: String,
    },
    /// The input cannot be processed (e.g. odd length for a 16-bit
    /// sample stream).
    BadInput {
        /// Kernel name.
        kernel: &'static str,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::UnknownAlgorithm(id) => write!(f, "no algorithm with id {id}"),
            AlgoError::BadParams { kernel, reason } => {
                write!(f, "bad parameters for {kernel}: {reason}")
            }
            AlgoError::BadInput { kernel, reason } => {
                write!(f, "bad input for {kernel}: {reason}")
            }
        }
    }
}

impl Error for AlgoError {}

/// One algorithm of the bank.
///
/// A kernel provides (a) a golden software implementation — used both
/// as the host-side baseline and to verify hardware results, (b) the
/// construction of its configuration [`FunctionImage`], and (c) cycle
/// models for fabric and host execution.
///
/// Object-safe: the bank stores kernels as trait objects.
pub trait Kernel: Send + Sync {
    /// Stable identifier (see [`crate::ids`]).
    fn algo_id(&self) -> u16;

    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// Parameters used when the caller does not supply any (e.g. a
    /// default key or coefficient set). Must be accepted by
    /// [`Kernel::execute`].
    fn default_params(&self) -> Vec<u8>;

    /// Golden software execution.
    ///
    /// # Errors
    ///
    /// Returns [`AlgoError::BadParams`] or [`AlgoError::BadInput`].
    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError>;

    /// Bytes per data-input transfer (the "multiple of the width of
    /// the interface bus" of paper §2.3).
    fn input_width(&self) -> u16;

    /// Bytes per output transfer.
    fn output_width(&self) -> u16;

    /// Builds the configuration image for this kernel under `geom`.
    ///
    /// # Errors
    ///
    /// Returns [`AlgoError::BadParams`] if `params` cannot instantiate
    /// the kernel.
    fn build_image(&self, params: &[u8], geom: DeviceGeometry) -> Result<FunctionImage, AlgoError>;

    /// Fabric cycles (100 MHz domain) to process `input_len` bytes
    /// once configured.
    fn fabric_cycles(&self, input_len: usize) -> u64;

    /// Host-CPU cycles (software baseline) for the same work.
    fn software_cycles(&self, input_len: usize) -> u64;
}

/// A bank entry that re-publishes another kernel under a new id — the
/// "same IP core licensed into two algorithm slots" case.
///
/// Behaviour (execute, widths, cycle models) delegates to the inner
/// kernel. The configuration image is rebuilt with the alias's own id
/// but the *inner* kernel's filler seed and frame target, so for a
/// behavioural inner kernel every configuration frame except the
/// descriptor frame is byte-identical to the original's — the
/// cross-algorithm redundancy the DeltaV2 frame store deduplicates.
/// (A netlist inner kernel still aliases correctly, but its image is
/// re-expressed behaviourally, so only the filler statistics — not the
/// exact frames — are shared.)
pub struct AliasKernel {
    algo_id: u16,
    name: &'static str,
    inner: Arc<dyn Kernel>,
}

impl AliasKernel {
    /// Wraps `inner` under `algo_id` / `name`.
    ///
    /// # Panics
    ///
    /// Panics if `algo_id` equals the inner kernel's id — the bank
    /// would reject the duplicate anyway.
    pub fn new(algo_id: u16, name: &'static str, inner: Arc<dyn Kernel>) -> Self {
        assert_ne!(algo_id, inner.algo_id(), "alias must use a fresh id");
        AliasKernel {
            algo_id,
            name,
            inner,
        }
    }

    /// The aliased kernel's id.
    pub fn inner_id(&self) -> u16 {
        self.inner.algo_id()
    }
}

impl Kernel for AliasKernel {
    fn algo_id(&self) -> u16 {
        self.algo_id
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn default_params(&self) -> Vec<u8> {
        self.inner.default_params()
    }

    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError> {
        self.inner.execute(params, input)
    }

    fn input_width(&self) -> u16 {
        self.inner.input_width()
    }

    fn output_width(&self) -> u16 {
        self.inner.output_width()
    }

    fn build_image(&self, params: &[u8], geom: DeviceGeometry) -> Result<FunctionImage, AlgoError> {
        let original = self.inner.build_image(params, geom)?;
        Ok(crate::filler::behavioral_image_seeded(
            self.algo_id,
            params,
            self.inner.input_width(),
            self.inner.output_width(),
            original.frames_needed(geom),
            geom,
            crate::filler::default_filler_seed(self.inner.algo_id()),
        ))
    }

    fn fabric_cycles(&self, input_len: usize) -> u64 {
        self.inner.fabric_cycles(input_len)
    }

    fn software_cycles(&self, input_len: usize) -> u64 {
        self.inner.software_cycles(input_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(AlgoError::UnknownAlgorithm(3).to_string().contains("3"));
        let e = AlgoError::BadParams {
            kernel: "aes128",
            reason: "key must be 16 bytes".into(),
        };
        assert!(e.to_string().contains("aes128"));
    }

    #[test]
    fn kernel_is_object_safe() {
        fn _takes(_k: &dyn Kernel) {}
    }

    #[test]
    fn send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<AlgoError>();
    }

    #[test]
    fn alias_shares_all_body_frames_with_inner() {
        let inner: Arc<dyn Kernel> = Arc::new(crate::crypto::Sha1);
        let alias = AliasKernel::new(200, "sha1-alias", Arc::clone(&inner));
        assert_eq!(alias.inner_id(), inner.algo_id());
        let geom = DeviceGeometry::default();
        let params = inner.default_params();
        let a = inner.build_image(&params, geom).unwrap().encode(geom);
        let b = alias.build_image(&params, geom).unwrap().encode(geom);
        assert_eq!(a.len(), b.len(), "same frame count");
        assert_ne!(a[0], b[0], "descriptor frame carries the new id");
        for (i, (fa, fb)) in a.iter().zip(&b).enumerate().skip(1) {
            assert_eq!(fa, fb, "body frame {i} must be byte-identical");
        }
    }

    #[test]
    fn alias_delegates_behaviour() {
        let inner: Arc<dyn Kernel> = Arc::new(crate::crypto::Sha1);
        let alias = AliasKernel::new(201, "sha1-alias", Arc::clone(&inner));
        let params = alias.default_params();
        assert_eq!(
            alias.execute(&params, b"abc").unwrap(),
            inner.execute(&params, b"abc").unwrap()
        );
        assert_eq!(alias.input_width(), inner.input_width());
        assert_eq!(alias.output_width(), inner.output_width());
        assert_eq!(alias.fabric_cycles(64), inner.fabric_cycles(64));
        assert_eq!(alias.software_cycles(64), inner.software_cycles(64));
        assert_eq!(alias.algo_id(), 201);
        assert_eq!(alias.name(), "sha1-alias");
    }

    #[test]
    #[should_panic(expected = "fresh id")]
    fn alias_rejects_inner_id() {
        let inner: Arc<dyn Kernel> = Arc::new(crate::crypto::Sha1);
        let _ = AliasKernel::new(inner.algo_id(), "dup", inner);
    }
}

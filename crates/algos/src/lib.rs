//! The algorithm bank: every function the co-processor can execute
//! on demand.
//!
//! The paper's motivating workload (its references \[1\] and \[2\]) is
//! *algorithm-agile cryptography* — IPSec engines that must switch
//! ciphers on demand. This crate therefore provides a bank of
//! crypto and DSP kernels, in two implementation styles:
//!
//! * **Behavioural kernels** (AES-128, 3DES, XTEA, SHA-1, SHA-256,
//!   HMAC-SHA-1, CRC-32, FIR, 8×8 matrix multiply): executed by a software model, but
//!   bound to the fabric bit-faithfully — their configuration frames
//!   carry the kernel id, instantiation parameters (key schedule,
//!   coefficients) and a digest over the whole image, so corrupted
//!   frames are caught before dispatch.
//! * **Netlist kernels** (CRC-8, 8-bit adder, popcount, parity):
//!   genuine LUT netlists synthesised by this crate, serialised into
//!   frames and *evaluated from the decoded frame bits* by
//!   [`aaod_fabric`].
//!
//! Every kernel also carries two cycle models — fabric cycles (the
//! co-processor's execution cost) and host-CPU cycles (the software
//! baseline) — which drive the agility experiments (E5).
//!
//! # Examples
//!
//! ```
//! use aaod_algos::{ids, AlgorithmBank};
//!
//! let bank = AlgorithmBank::standard();
//! let aes = bank.kernel(ids::AES128).expect("in the bank");
//! let params = aes.default_params();
//! let ct = aes.execute(&params, b"sixteen byte blk")?;
//! assert_eq!(ct.len(), 16);
//! # Ok::<(), aaod_algos::AlgoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod checksum;
pub mod crypto;
pub mod dsp;
pub mod dsp_ai;
pub mod filler;
pub mod kernel;
pub mod netlists;

pub use bank::AlgorithmBank;
pub use kernel::{AlgoError, AliasKernel, Kernel};

/// Well-known algorithm identifiers for the standard bank.
pub mod ids {
    /// AES-128 ECB encryption.
    pub const AES128: u16 = 1;
    /// XTEA block encryption.
    pub const XTEA: u16 = 2;
    /// SHA-1 digest.
    pub const SHA1: u16 = 3;
    /// SHA-256 digest.
    pub const SHA256: u16 = 4;
    /// CRC-32 (IEEE).
    pub const CRC32: u16 = 5;
    /// FIR filter over i16 samples.
    pub const FIR: u16 = 6;
    /// 8×8 byte matrix multiply.
    pub const MATMUL8: u16 = 7;
    /// CRC-8/ATM as a true LUT netlist.
    pub const CRC8: u16 = 8;
    /// 8-bit adder as a true LUT netlist.
    pub const ADDER8: u16 = 9;
    /// 8-bit popcount as a true LUT netlist.
    pub const POPCNT8: u16 = 10;
    /// 8-bit parity as a true LUT netlist.
    pub const PARITY8: u16 = 11;
    /// Triple-DES (EDE, 3-key) encryption.
    pub const TDES: u16 = 12;
    /// HMAC-SHA-1 message authentication.
    pub const HMAC_SHA1: u16 = 13;

    /// Blocked 16×16 i8→i16 matrix multiply (DSP/AI tier).
    pub const MATMUL16: u16 = 14;
    /// 3×3 convolution over 32×32 u8 tiles (DSP/AI tier).
    pub const CONV2D: u16 = 15;
    /// 64-point radix-2 fixed-point FFT (DSP/AI tier).
    pub const FFT64: u16 = 16;

    /// Every id in the standard bank, in id order.
    pub const ALL: [u16; 13] = [
        AES128, XTEA, SHA1, SHA256, CRC32, FIR, MATMUL8, CRC8, ADDER8, POPCNT8, PARITY8, TDES,
        HMAC_SHA1,
    ];

    /// The large-footprint DSP/AI tier, only present in
    /// [`AlgorithmBank::extended`](crate::AlgorithmBank::extended).
    pub const DSP_AI: [u16; 3] = [MATMUL16, CONV2D, FFT64];
}

//! True LUT-netlist kernels.
//!
//! These four kernels are synthesised gate by gate into
//! [`aaod_fabric::Netlist`]s, serialised into configuration frames and
//! *executed from the decoded frame bits*. They prove the fabric model
//! is bit-faithful end to end: flip a configuration byte and the
//! function's output changes or its image fails to decode. They are
//! also the bank's smallest functions (1–2 frames), giving the
//! replacement-policy experiments area diversity.

use crate::ids;
use crate::kernel::{AlgoError, Kernel};
use aaod_fabric::{DeviceGeometry, FunctionImage, Netlist, NetlistBuilder, NetlistMode};

/// CRC-8/ATM polynomial.
const CRC8_POLY: u8 = 0x07;

/// Golden software CRC-8/ATM (init 0, MSB-first, no reflection).
pub fn crc8_reference(data: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &b in data {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ CRC8_POLY
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Synthesises the byte-parallel CRC-8 update as a streaming netlist:
/// inputs are the 8 data bits plus the 8 state bits; outputs are the
/// next state.
pub fn crc8_netlist() -> Netlist {
    let mut b = NetlistBuilder::new();
    let data = b.inputs(8);
    let state = b.inputs(8);
    // cur = state ^ byte
    let mut cur = b.xor_vec(&data, &state);
    // 8 shift-and-conditionally-xor iterations, polynomial 0x07
    for _ in 0..8 {
        let msb = cur[7];
        let mut next = Vec::with_capacity(8);
        next.push(msb); // bit 0 of poly is set: 0 ^ msb
        for (i, slot) in (1..8).enumerate() {
            let shifted = cur[slot - 1];
            let _ = i;
            if CRC8_POLY >> slot & 1 == 1 {
                next.push(b.xor2(shifted, msb));
            } else {
                next.push(shifted);
            }
        }
        cur = next;
    }
    b.output_vec(&cur);
    b.finish().expect("crc8 netlist is well-formed")
}

/// Synthesises an 8-bit ripple-carry adder: 16 inputs (a, b bytes) →
/// 9 outputs (sum bits, carry).
pub fn adder8_netlist() -> Netlist {
    let mut b = NetlistBuilder::new();
    let a = b.inputs(8);
    let c = b.inputs(8);
    let (sum, carry) = b.ripple_add(&a, &c);
    b.output_vec(&sum);
    b.output(carry);
    b.finish().expect("adder netlist is well-formed")
}

/// Synthesises an 8-bit popcount: 8 inputs → 4-bit count.
pub fn popcount8_netlist() -> Netlist {
    let mut b = NetlistBuilder::new();
    let bits = b.inputs(8);
    let zero = b.zero();
    // accumulate each bit into a 4-bit counter via ripple adds
    let mut acc = vec![bits[0], zero, zero, zero];
    for &bit in &bits[1..] {
        let addend = vec![bit, zero, zero, zero];
        let (sum, _) = b.ripple_add(&acc, &addend);
        acc = sum;
    }
    b.output_vec(&acc);
    b.finish().expect("popcount netlist is well-formed")
}

/// Synthesises an 8-bit parity: 8 inputs → 1 output.
pub fn parity8_netlist() -> Netlist {
    let mut b = NetlistBuilder::new();
    let bits = b.inputs(8);
    let p = b.xor_reduce(&bits);
    b.output(p);
    b.finish().expect("parity netlist is well-formed")
}

/// Shared plumbing for the four netlist kernels.
macro_rules! netlist_kernel {
    (
        $(#[$doc:meta])*
        $name:ident, $id:expr, $label:literal, $build:path, $mode:expr,
        exec: $exec:expr,
        fabric: $fabric:expr,
        soft: $soft:expr
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct $name;

        impl Kernel for $name {
            fn algo_id(&self) -> u16 {
                $id
            }

            fn name(&self) -> &'static str {
                $label
            }

            fn default_params(&self) -> Vec<u8> {
                Vec::new()
            }

            fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError> {
                if !params.is_empty() {
                    return Err(AlgoError::BadParams {
                        kernel: $label,
                        reason: "takes no parameters".into(),
                    });
                }
                #[allow(clippy::redundant_closure_call)]
                Ok(($exec)(input))
            }

            fn input_width(&self) -> u16 {
                1
            }

            fn output_width(&self) -> u16 {
                1
            }

            fn build_image(
                &self,
                params: &[u8],
                _geom: DeviceGeometry,
            ) -> Result<FunctionImage, AlgoError> {
                if !params.is_empty() {
                    return Err(AlgoError::BadParams {
                        kernel: $label,
                        reason: "takes no parameters".into(),
                    });
                }
                // synthesise, then optimise: frames are the scarce
                // resource, so ship the smallest equivalent netlist
                let (netlist, _stats) = aaod_fabric::opt::optimize(&$build())
                    .expect("builder netlists are valid");
                Ok(FunctionImage::from_netlist(
                    $id,
                    netlist,
                    $mode,
                    self.input_width(),
                    self.output_width(),
                ))
            }

            fn fabric_cycles(&self, input_len: usize) -> u64 {
                #[allow(clippy::redundant_closure_call)]
                ($fabric)(input_len)
            }

            fn software_cycles(&self, input_len: usize) -> u64 {
                #[allow(clippy::redundant_closure_call)]
                ($soft)(input_len)
            }
        }
    };
}

netlist_kernel!(
    /// CRC-8/ATM as a streaming LUT netlist (one byte per fabric cycle).
    Crc8Kernel, ids::CRC8, "crc8", crc8_netlist, NetlistMode::Streaming,
    exec: |input: &[u8]| vec![crc8_reference(input)],
    fabric: |len: usize| len as u64 + 1,
    soft: |len: usize| 9 * len as u64 + 20
);

netlist_kernel!(
    /// 8-bit adder as a combinational LUT netlist: each 2-byte chunk
    /// `(a, b)` yields the 16-bit little-endian sum `a + b`.
    Adder8Kernel, ids::ADDER8, "adder8", adder8_netlist, NetlistMode::Combinational,
    exec: |input: &[u8]| {
        let mut out = Vec::with_capacity(input.len().div_ceil(2) * 2);
        for chunk in input.chunks(2) {
            let a = chunk[0] as u16;
            let b = *chunk.get(1).unwrap_or(&0) as u16;
            out.extend_from_slice(&(a + b).to_le_bytes());
        }
        out
    },
    fabric: |len: usize| len.div_ceil(2) as u64 + 1,
    soft: |len: usize| len as u64 + 10
);

netlist_kernel!(
    /// 8-bit popcount as a combinational LUT netlist: one count byte
    /// per input byte.
    Popcount8Kernel, ids::POPCNT8, "popcount8", popcount8_netlist, NetlistMode::Combinational,
    exec: |input: &[u8]| input.iter().map(|b| b.count_ones() as u8).collect::<Vec<u8>>(),
    fabric: |len: usize| len as u64 + 1,
    soft: |len: usize| 2 * len as u64 + 10
);

netlist_kernel!(
    /// 8-bit parity as a combinational LUT netlist: 0 or 1 per byte.
    Parity8Kernel, ids::PARITY8, "parity8", parity8_netlist, NetlistMode::Combinational,
    exec: |input: &[u8]| input.iter().map(|b| (b.count_ones() % 2) as u8).collect::<Vec<u8>>(),
    fabric: |len: usize| len as u64 + 1,
    soft: |len: usize| 2 * len as u64 + 10
);

#[cfg(test)]
mod tests {
    use super::*;
    use aaod_sim::SplitMix64;

    #[test]
    fn crc8_reference_check_value() {
        // CRC-8/ATM ("SMBus") check value for "123456789" is 0xF4.
        assert_eq!(crc8_reference(b"123456789"), 0xF4);
    }

    #[test]
    fn crc8_netlist_matches_reference() {
        let img = Crc8Kernel
            .build_image(&[], DeviceGeometry::default())
            .unwrap();
        let mut rng = SplitMix64::new(0xCC);
        for len in [0usize, 1, 2, 16, 100] {
            let mut data = vec![0u8; len];
            rng.fill(&mut data);
            let hw = img.run_netlist(&data).unwrap();
            assert_eq!(hw, vec![crc8_reference(&data)], "len {len}");
        }
    }

    #[test]
    fn adder_netlist_matches_reference_exhaustively_sampled() {
        let img = Adder8Kernel
            .build_image(&[], DeviceGeometry::default())
            .unwrap();
        let mut rng = SplitMix64::new(0xAD);
        let mut input = vec![0u8; 64];
        rng.fill(&mut input);
        let hw = img.run_netlist(&input).unwrap();
        let sw = Adder8Kernel.execute(&[], &input).unwrap();
        assert_eq!(hw, sw);
    }

    #[test]
    fn popcount_netlist_all_bytes() {
        let img = Popcount8Kernel
            .build_image(&[], DeviceGeometry::default())
            .unwrap();
        let input: Vec<u8> = (0..=255).collect();
        let hw = img.run_netlist(&input).unwrap();
        let sw = Popcount8Kernel.execute(&[], &input).unwrap();
        assert_eq!(hw, sw);
    }

    #[test]
    fn parity_netlist_all_bytes() {
        let img = Parity8Kernel
            .build_image(&[], DeviceGeometry::default())
            .unwrap();
        let input: Vec<u8> = (0..=255).collect();
        let hw = img.run_netlist(&input).unwrap();
        let sw = Parity8Kernel.execute(&[], &input).unwrap();
        assert_eq!(hw, sw);
    }

    #[test]
    fn netlist_kernels_are_small() {
        let geom = DeviceGeometry::default();
        for (img, max_frames) in [
            (Crc8Kernel.build_image(&[], geom).unwrap(), 2),
            (Adder8Kernel.build_image(&[], geom).unwrap(), 2),
            (Popcount8Kernel.build_image(&[], geom).unwrap(), 2),
            (Parity8Kernel.build_image(&[], geom).unwrap(), 1),
        ] {
            assert!(
                img.frames_needed(geom) <= max_frames,
                "{} frames for algo {}",
                img.frames_needed(geom),
                img.algo_id()
            );
        }
    }

    #[test]
    fn netlist_sizes_reasonable() {
        assert!(crc8_netlist().n_luts() <= 32);
        assert!(parity8_netlist().n_luts() <= 4);
        assert!(adder8_netlist().n_luts() == 16);
        assert!(popcount8_netlist().n_luts() <= 64);
    }

    #[test]
    fn params_rejected() {
        assert!(Crc8Kernel.execute(&[1], &[]).is_err());
        assert!(Parity8Kernel
            .build_image(&[1], DeviceGeometry::default())
            .is_err());
    }
}

//! E10 (extension) — configuration scrubbing under single-event
//! upsets.
//!
//! Virtex-class configuration memory suffers bit upsets; the standard
//! defence is periodic readback scrubbing. This experiment measures
//! (a) the scrub-pass cost as the resident set grows, and (b) a fault
//! campaign: SEUs injected at increasing rates with scrubbing
//! repairing in the background, reporting how many corruptions the
//! digest caught at scrub time vs at invocation time.

use aaod_algos::ids;
use aaod_bench::criterion_fast;
use aaod_core::CoProcessor;
use aaod_mcu::{MiniOs, MiniOsConfig};
use aaod_sim::report::Table;
use aaod_sim::SplitMix64;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Flips one random bit in one random frame of the device.
fn inject_seu(os: &mut MiniOs, rng: &mut SplitMix64) {
    let geom = os.geometry();
    let frame = aaod_fabric::FrameAddress(rng.index(geom.frames()) as u16);
    let offset = rng.index(geom.frame_bytes());
    let bit = rng.index(8) as u8;
    let mut bytes = os.device().read_frame(frame).expect("in range").to_vec();
    bytes[offset] ^= 1 << bit;
    os.device_mut()
        .write_frame(frame, &bytes)
        .expect("in range");
}

fn print_tables() {
    // (a) scrub cost vs resident set
    let mut t = Table::new(
        "E10: scrub-pass cost vs resident set",
        &["resident functions", "frames checked", "scrub time"],
    );
    let sets: [&[u16]; 3] = [
        &[ids::CRC32],
        &[ids::CRC32, ids::SHA1, ids::XTEA],
        &[ids::CRC32, ids::SHA1, ids::XTEA, ids::AES128, ids::SHA256],
    ];
    for set in sets {
        let mut os = MiniOs::new(MiniOsConfig::default());
        for &id in set {
            os.install(id).expect("install");
            os.invoke(id, &[0u8; 16]).expect("warm");
        }
        let report = os.scrub().expect("scrub");
        t.row_owned(vec![
            set.len().to_string(),
            report.frames_checked.to_string(),
            report.time.to_string(),
        ]);
    }
    println!("{t}");

    // (b) fault campaign: SEUs between scrubs
    let mut t = Table::new(
        "E10b: SEU campaign (200 invokes, scrub every 20)",
        &[
            "seu per period",
            "repaired by scrub",
            "caught at invoke",
            "wrong results",
        ],
    );
    for seus in [1usize, 4, 16] {
        let mut os = MiniOs::new(MiniOsConfig::default());
        for &id in &[ids::SHA1, ids::CRC32, ids::XTEA] {
            os.install(id).expect("install");
            os.invoke(id, &[0u8; 16]).expect("warm");
        }
        let mut rng = SplitMix64::new(0x5E0);
        let mut repaired = 0u64;
        let mut caught = 0u64;
        let mut wrong = 0u64;
        let golden = aaod_algos::AlgorithmBank::standard();
        for i in 0..200usize {
            let id = [ids::SHA1, ids::CRC32, ids::XTEA][i % 3];
            let input = vec![(i % 251) as u8; 64];
            match os.invoke(id, &input) {
                Ok((out, _)) => {
                    let expect = golden.execute_software(id, &input).expect("golden");
                    if out != expect {
                        wrong += 1;
                    }
                }
                Err(_) => {
                    caught += 1;
                    // recover the function so the campaign continues
                    let _ = os.evict(id);
                    let _ = os.invoke(id, &input);
                }
            }
            if i % 20 == 19 {
                for _ in 0..seus {
                    inject_seu(&mut os, &mut rng);
                }
                repaired += os.scrub().expect("scrub").repaired.len() as u64;
            }
        }
        t.row_owned(vec![
            seus.to_string(),
            repaired.to_string(),
            caught.to_string(),
            wrong.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: scrub cost grows linearly with resident frames; the\n\
         digest guarantees zero wrong results — upsets are either repaired\n\
         by the next scrub or rejected at invocation, never silent.\n"
    );
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut group = c.benchmark_group("e10_scrub");
    let mut cp = CoProcessor::default();
    for id in [ids::SHA1, ids::AES128, ids::CRC32] {
        cp.install(id).expect("install");
        cp.invoke(id, &[0u8; 16]).expect("warm");
    }
    group.bench_function("scrub_three_resident", |b| {
        b.iter(|| black_box(cp.scrub().expect("scrub")));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

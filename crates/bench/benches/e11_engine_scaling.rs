//! E11 (extension) — concurrent serving engine scaling.
//!
//! Shards a skewed (Zipf) request stream over the full algorithm bank
//! across a pool of co-processor cards and compares the modelled
//! makespan against a single card serving the same stream serially.
//! The full bank (~134 frames) over-commits one 96-frame fabric, so a
//! single card thrashes; sharding both parallelises service *and*
//! shrinks each card's working set.
//!
//! Second table: decoded-bitstream cache ablation. A round-robin
//! stream over the three largest crypto functions on a 52-frame device
//! evicts on every request; with the cache on, every re-miss skips the
//! ROM fetch and window-by-window decompression and pays only the
//! configuration-port cost.

use aaod_bench::criterion_fast;
use aaod_core::{run_workload, CoProcessor, Engine, EngineConfig, ShardPolicy};
use aaod_fabric::DeviceGeometry;
use aaod_sim::report::Table;
use aaod_workload::{mixes, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn serving_workload() -> Workload {
    Workload::zipf(&mixes::full_bank(), 600, 1.1, 256, 1711)
}

fn serial_baseline(w: &Workload) -> aaod_core::RunResult {
    let mut cp = CoProcessor::default();
    for &id in &w.distinct_algos() {
        cp.install(id).expect("install");
    }
    run_workload(&mut cp, w, false).expect("serial run")
}

fn print_scaling_table() {
    let w = serving_workload();
    let serial = serial_baseline(&w);
    let serial_ns = serial.total_time.as_ns();
    let mut t = Table::new(
        "E11: engine scaling, zipf(s=1.1) over the full bank (600 reqs)",
        &[
            "config",
            "makespan",
            "speedup",
            "throughput",
            "hit%",
            "p99 latency",
            "batches",
        ],
    );
    t.row_owned(vec![
        "serial (1 card)".into(),
        serial.total_time.to_string(),
        "1.00x".into(),
        format!("{:.2} MB/s", serial.throughput_mb_s()),
        format!("{:.0}%", serial.hit_rate().unwrap_or(0.0) * 100.0),
        format!("{:.1}us", serial.latency.summary_ns().p99 / 1000.0),
        "-".into(),
    ]);
    let mut json_rows = vec![format!(
        "{{\"config\":\"serial\",\"makespan_ns\":{:.0},\"speedup\":1.0,\"hit_rate\":{:.4}}}",
        serial_ns,
        serial.hit_rate().unwrap_or(0.0)
    )];
    let mut speedup_at_4 = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::new(EngineConfig {
            workers,
            collect_outputs: false,
            shard: ShardPolicy::Balanced,
            ..EngineConfig::default()
        });
        let r = engine.serve(&w).expect("engine serve");
        let speedup = serial_ns / r.makespan.as_ns();
        if workers == 4 {
            speedup_at_4 = speedup;
        }
        t.row_owned(vec![
            format!("engine x{workers} (balanced)"),
            r.makespan.to_string(),
            format!("{speedup:.2}x"),
            format!("{:.2} MB/s", r.throughput_mb_s()),
            format!("{:.0}%", r.hit_rate() * 100.0),
            format!("{:.1}us", r.latency.summary_ns().p99 / 1000.0),
            format!("{} ({} coalesced)", r.batches, r.coalesced),
        ]);
        json_rows.push(format!(
            "{{\"config\":\"engine_x{}\",\"makespan_ns\":{:.0},\"speedup\":{:.3},\"hit_rate\":{:.4},\"batches\":{},\"coalesced\":{}}}",
            workers,
            r.makespan.as_ns(),
            speedup,
            r.hit_rate(),
            r.batches,
            r.coalesced
        ));
    }
    println!("{t}");
    assert!(
        speedup_at_4 >= 2.5,
        "regression: engine x4 modelled speedup {speedup_at_4:.2}x < 2.5x over serial"
    );
    println!(
        "BENCH_JSON {{\"experiment\":\"e11_engine_scaling\",\"rows\":[{}]}}",
        json_rows.join(",")
    );
}

fn thrash_coproc(decoded_cache_bytes: usize) -> CoProcessor {
    CoProcessor::builder()
        .geometry(DeviceGeometry::new(52, 16))
        .decoded_cache_bytes(decoded_cache_bytes)
        .build()
}

fn print_decoded_cache_table() {
    // AES(24) + 3DES(18) + SHA-256(16) = 58 frames on a 52-frame
    // device: strict rotation misses every request after the first
    // cycle, so the decoded cache is exercised on every re-miss.
    let big_three = [
        aaod_algos::ids::AES128,
        aaod_algos::ids::TDES,
        aaod_algos::ids::SHA256,
    ];
    let w = Workload::round_robin(&big_three, 120, 256);
    let mut t = Table::new(
        "E11b: decoded-bitstream cache on a thrashing 52-frame device",
        &[
            "cache",
            "decoded hit%",
            "mean reconfig/miss",
            "mean rom/miss",
            "bytes saved",
        ],
    );
    let mut json_rows = Vec::new();
    let mut reconfig_per_miss = [0.0f64; 2];
    for (i, cache_bytes) in [0usize, 64 * 1024].into_iter().enumerate() {
        let mut cp = thrash_coproc(cache_bytes);
        for &id in &big_three {
            cp.install(id).expect("install");
        }
        run_workload(&mut cp, &w, false).expect("run");
        let s = cp.stats();
        let misses = s.misses.max(1);
        reconfig_per_miss[i] = s.reconfig_time.as_ns() / misses as f64;
        let rom_per_miss = s.rom_time.as_ns() / misses as f64;
        t.row_owned(vec![
            if cache_bytes == 0 {
                "off".into()
            } else {
                format!("{} KiB", cache_bytes / 1024)
            },
            format!("{:.0}%", s.decoded_hit_rate() * 100.0),
            format!("{:.1}us", reconfig_per_miss[i] / 1000.0),
            format!("{:.1}us", rom_per_miss / 1000.0),
            s.decoded_bytes_saved.to_string(),
        ]);
        json_rows.push(format!(
            "{{\"cache_bytes\":{},\"decoded_hit_rate\":{:.4},\"reconfig_ns_per_miss\":{:.0},\"rom_ns_per_miss\":{:.0},\"bytes_saved\":{}}}",
            cache_bytes,
            s.decoded_hit_rate(),
            reconfig_per_miss[i],
            rom_per_miss,
            s.decoded_bytes_saved
        ));
    }
    println!("{t}");
    assert!(
        reconfig_per_miss[1] < reconfig_per_miss[0],
        "regression: decoded cache did not reduce mean miss reconfig time \
         ({:.0}ns on vs {:.0}ns off)",
        reconfig_per_miss[1],
        reconfig_per_miss[0]
    );
    println!(
        "BENCH_JSON {{\"experiment\":\"e11_decoded_cache\",\"rows\":[{}]}}",
        json_rows.join(",")
    );
}

fn bench(c: &mut Criterion) {
    print_scaling_table();
    print_decoded_cache_table();
    let w = serving_workload();
    let mut group = c.benchmark_group("e11_engine_scaling");
    for workers in [1usize, 4] {
        let engine = Engine::new(EngineConfig {
            workers,
            collect_outputs: false,
            shard: ShardPolicy::Balanced,
            ..EngineConfig::default()
        });
        group.bench_function(format!("zipf_full_bank_x{workers}"), |b| {
            b.iter(|| black_box(engine.serve(&w).expect("serve")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

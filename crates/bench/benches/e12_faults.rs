//! E12 (extension) — fault-rate sweep through the serving engine.
//!
//! Drives the same skewed request stream through a 4-shard pool while
//! the deterministic fault plan corrupts configuration frames, tears
//! reconfigurations, rots ROM payloads and aborts PCI transfers at an
//! increasing per-request rate. The engine's scrub/re-download/retry
//! recovery must absorb every fault (no failed jobs at the default
//! retry budget), keep the ledger balanced, and degrade throughput
//! gracefully rather than fall over.
//!
//! Second table: graceful degradation with a zeroed retry budget —
//! jobs whose fault is detected turn into typed errors, and the
//! requeue pass rescues all of them on a spare card.

use aaod_bench::criterion_fast;
use aaod_core::{Engine, EngineConfig, FaultConfig, ShardPolicy};
use aaod_sim::report::Table;
use aaod_sim::{FaultPlan, FaultRates};
use aaod_workload::{mixes, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const PLAN_SEED: u64 = 0xE12;

fn chaos_workload() -> Workload {
    Workload::zipf(&mixes::full_bank(), 400, 1.1, 192, 1205)
}

fn engine(faults: Option<FaultConfig>) -> Engine {
    Engine::new(EngineConfig {
        workers: 4,
        collect_outputs: false,
        shard: ShardPolicy::Balanced,
        faults,
        ..EngineConfig::default()
    })
}

fn print_sweep_table() {
    let w = chaos_workload();
    let mut t = Table::new(
        "E12: fault-rate sweep, 4-shard engine, zipf(s=1.1) over the full bank (400 reqs)",
        &[
            "rate/site",
            "injected",
            "recovered",
            "failed",
            "makespan",
            "throughput",
            "p99 recovery",
        ],
    );
    let mut json_rows = Vec::new();
    let mut throughput = Vec::new();
    for rate in [0.0f64, 0.01, 0.03, 0.05] {
        let plan = FaultPlan::new(PLAN_SEED, FaultRates::uniform(rate));
        let faults = (rate > 0.0).then(|| FaultConfig::new(plan));
        let r = engine(faults).serve(&w).expect("engine serve");
        assert!(r.faults.accounted(), "rate {rate}: {:?}", r.faults);
        assert!(
            r.failed.is_empty(),
            "rate {rate}: default retry budget must recover every job: {:?}",
            r.failed
        );
        if rate > 0.0 {
            assert!(r.faults.injected > 0, "rate {rate} landed nothing");
            assert!(
                r.recovery_latency.count() > 0,
                "rate {rate}: recoveries must record latency"
            );
        }
        let p99 = r.recovery_latency.summary_ns().p99;
        throughput.push(r.throughput_mb_s());
        t.row_owned(vec![
            format!("{:.0}%", rate * 100.0),
            r.faults.injected.to_string(),
            r.faults.recovered().to_string(),
            r.faults.failed_jobs.to_string(),
            r.makespan.to_string(),
            format!("{:.2} MB/s", r.throughput_mb_s()),
            format!("{:.1}us", p99 / 1000.0),
        ]);
        json_rows.push(format!(
            "{{\"rate\":{rate},\"injected\":{},\"recovered\":{},\"failed\":{},\
             \"makespan_ns\":{:.0},\"throughput_mb_s\":{:.3},\"p99_recovery_ns\":{p99:.0}}}",
            r.faults.injected,
            r.faults.recovered(),
            r.faults.failed_jobs,
            r.makespan.as_ns(),
            r.throughput_mb_s(),
        ));
    }
    println!("{t}");
    // graceful-degradation floors: light chaos (1%/site = 4% of
    // requests) keeps at least a quarter of fault-free throughput,
    // and even heavy chaos (5%/site = 20% of requests) never
    // collapses below ~a twelfth — scrub passes dominate recovery
    // cost on a full-bank working set.
    let light = throughput[1] / throughput[0];
    let heavy = throughput.last().unwrap() / throughput[0];
    assert!(
        light >= 0.25,
        "regression: 1%/site faults crushed throughput to {:.0}% of fault-free",
        light * 100.0
    );
    assert!(
        heavy >= 0.08,
        "regression: 5%/site faults crushed throughput to {:.0}% of fault-free",
        heavy * 100.0
    );
    println!(
        "BENCH_JSON {{\"experiment\":\"e12_faults\",\"rows\":[{}]}}",
        json_rows.join(",")
    );
}

fn print_degradation_table() {
    let w = chaos_workload();
    let plan = FaultPlan::new(
        PLAN_SEED,
        FaultRates {
            frame_bit_flip: 0.05,
            ..FaultRates::ZERO
        },
    );
    let mut t = Table::new(
        "E12b: zero retry budget — degrade to typed errors, then requeue",
        &["policy", "injected", "failed jobs", "requeued", "unserved"],
    );
    let mut json_rows = Vec::new();
    let mut unserved = Vec::new();
    for requeue in [false, true] {
        let mut cfg = FaultConfig::new(plan);
        cfg.max_retries = 0;
        cfg.requeue = requeue;
        let r = engine(Some(cfg)).serve(&w).expect("engine serve");
        assert!(r.faults.accounted(), "requeue={requeue}: {:?}", r.faults);
        unserved.push(r.failed.len());
        t.row_owned(vec![
            if requeue {
                "degrade + requeue".into()
            } else {
                "degrade only".into()
            },
            r.faults.injected.to_string(),
            r.faults.failed_jobs.to_string(),
            r.faults.requeues.to_string(),
            r.failed.len().to_string(),
        ]);
        json_rows.push(format!(
            "{{\"requeue\":{requeue},\"injected\":{},\"failed_jobs\":{},\
             \"requeues\":{},\"unserved\":{}}}",
            r.faults.injected,
            r.faults.failed_jobs,
            r.faults.requeues,
            r.failed.len(),
        ));
    }
    println!("{t}");
    assert!(
        unserved[0] > 0,
        "5% frame flips with no retries must degrade some jobs"
    );
    assert_eq!(
        unserved[1], 0,
        "requeue must rescue every degraded job, {} left",
        unserved[1]
    );
    println!(
        "BENCH_JSON {{\"experiment\":\"e12_degradation\",\"rows\":[{}]}}",
        json_rows.join(",")
    );
}

fn bench(c: &mut Criterion) {
    print_sweep_table();
    print_degradation_table();
    let w = chaos_workload();
    let mut group = c.benchmark_group("e12_faults");
    for rate in [0.0f64, 0.05] {
        let plan = FaultPlan::new(PLAN_SEED, FaultRates::uniform(rate));
        let eng = engine((rate > 0.0).then(|| FaultConfig::new(plan)));
        group.bench_function(format!("zipf_full_bank_rate_{rate}"), |b| {
            b.iter(|| black_box(eng.serve(&w).expect("serve")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

//! E13 (extension) — overload sweep through the deadline-aware engine.
//!
//! Calibrates the pool's capacity from a fault-free closed-loop run,
//! then offers the same skewed stream at 1x, 2x and 4x that capacity
//! with per-job deadlines, latency faults (configuration stalls, slow
//! PCI, stuck cards), the watchdog and per-shard circuit breakers all
//! engaged. The contract under test is *graceful* degradation: an
//! overloaded pool sheds late work at admission and keeps serving the
//! rest — goodput falls with offered load but never collapses — and
//! the job ledger stays conserved at every operating point.

use aaod_bench::criterion_fast;
use aaod_core::{
    BreakerConfig, DeadlinePolicy, Engine, EngineConfig, FaultConfig, OverloadConfig, ShardPolicy,
    WatchdogConfig,
};
use aaod_sim::report::Table;
use aaod_sim::{FaultPlan, FaultRates, LatencyRates, SimTime};
use aaod_workload::{mixes, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const PLAN_SEED: u64 = 0xE13;
const WORKERS: usize = 4;

fn overload_workload() -> Workload {
    Workload::zipf(&mixes::full_bank(), 400, 1.1, 192, 1307)
}

fn engine(overload: Option<OverloadConfig>, faults: Option<FaultConfig>) -> Engine {
    Engine::new(EngineConfig {
        workers: WORKERS,
        collect_outputs: false,
        shard: ShardPolicy::Balanced,
        overload,
        faults,
        ..EngineConfig::default()
    })
}

/// Overload tuning at `load` times the pool's calibrated capacity:
/// requests arrive every `capacity_interarrival / load`.
fn config_at(load: f64, capacity_interarrival: SimTime, budget: SimTime) -> OverloadConfig {
    let ia = (capacity_interarrival.as_ps() as f64 / load)
        .round()
        .max(1.0) as u64;
    OverloadConfig {
        interarrival: SimTime::from_ps(ia),
        deadline: DeadlinePolicy::Absolute(budget),
        // a watchdog timeout well under the deadline budget, so a
        // stuck card's job can still complete after the reset
        watchdog: WatchdogConfig {
            heartbeat: SimTime::from_us(100),
            missed_beats: 3,
        },
        // hair-trigger breaker: one deadline miss quarantines the
        // shard briefly, so the sweep exercises the trip / bounce /
        // redistribute path, not just admission shedding
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown: SimTime::from_us(100),
            ..BreakerConfig::default()
        },
        fairness: None,
    }
}

fn latency_plan() -> FaultPlan {
    FaultPlan::new(PLAN_SEED, FaultRates::ZERO).with_latency(LatencyRates::uniform(0.02))
}

/// Capacity calibration: drain the stream under the *same* latency
/// faults with instantaneous arrivals and effectively infinite
/// deadlines — the resulting makespan is the fastest this (faulted)
/// pool can serve the work, so arrivals spaced `makespan / n` offer
/// exactly 1x effective capacity. The deadline budget is a quarter of
/// that drain time: roomy at 1x, hopeless for the backlog tail at 4x.
fn calibrate(w: &Workload) -> (SimTime, SimTime) {
    let generous = OverloadConfig {
        interarrival: SimTime::from_ns(1),
        deadline: DeadlinePolicy::Absolute(SimTime::from_secs(100)),
        watchdog: WatchdogConfig {
            heartbeat: SimTime::from_us(100),
            missed_beats: 3,
        },
        breaker: BreakerConfig::default(),
        fairness: None,
    };
    let drain = engine(Some(generous), Some(FaultConfig::new(latency_plan())))
        .serve(w)
        .expect("calibration serve");
    assert_eq!(
        drain.overload.completed,
        w.len() as u64,
        "calibration must complete everything: {:?}",
        drain.overload
    );
    let capacity_ia = SimTime::from_ps(drain.makespan.as_ps() / w.len() as u64);
    let budget = SimTime::from_ps(drain.makespan.as_ps() / 4);
    (capacity_ia, budget)
}

fn print_overload_table() {
    let w = overload_workload();
    let (capacity_ia, budget) = calibrate(&w);
    let mut t = Table::new(
        "E13: offered-load sweep, 4-shard engine, 2%/site latency faults, zipf(s=1.1) full bank (400 reqs)",
        &[
            "load",
            "completed",
            "shed",
            "missed",
            "faulted",
            "goodput",
            "watchdog",
            "trips",
            "p99 latency",
        ],
    );
    let mut json_rows = Vec::new();
    let mut goodput = Vec::new();
    for load in [1.0f64, 2.0, 4.0] {
        let oc = config_at(load, capacity_ia, budget);
        let r = engine(Some(oc), Some(FaultConfig::new(latency_plan())))
            .serve(&w)
            .expect("overload serve");
        assert!(
            r.overload.accounted(),
            "load {load}: leaked jobs: {:?}",
            r.overload
        );
        assert!(
            r.overload.watchdog_resets > 0,
            "load {load}: 2% stuck-card rate must reset something"
        );
        assert!(
            r.overload.breaker_trips > 0,
            "load {load}: the hair-trigger breaker must trip"
        );
        goodput.push(r.goodput());
        let p99 = r.latency.summary_ns().p99;
        t.row_owned(vec![
            format!("{load:.0}x"),
            r.overload.completed.to_string(),
            r.overload.shed.to_string(),
            r.overload.deadline_missed.to_string(),
            r.overload.faulted.to_string(),
            format!("{:.0}%", r.goodput() * 100.0),
            r.overload.watchdog_resets.to_string(),
            r.overload.breaker_trips.to_string(),
            format!("{:.1}us", p99 / 1000.0),
        ]);
        json_rows.push(format!(
            "{{\"load\":{load},\"submitted\":{},\"completed\":{},\"shed\":{},\
             \"deadline_missed\":{},\"faulted\":{},\"goodput\":{:.4},\"shed_rate\":{:.4},\
             \"watchdog_resets\":{},\"breaker_trips\":{},\"breaker_rejections\":{},\
             \"wasted_time_ns\":{:.0},\"p99_latency_ns\":{p99:.0},\"makespan_ns\":{:.0}}}",
            r.overload.submitted,
            r.overload.completed,
            r.overload.shed,
            r.overload.deadline_missed,
            r.overload.faulted,
            r.goodput(),
            r.overload.shed_rate(),
            r.overload.watchdog_resets,
            r.overload.breaker_trips,
            r.overload.breaker_rejections,
            r.overload.wasted_time.as_ns(),
            r.makespan.as_ns(),
        ));
    }
    println!("{t}");
    // Regression floors: goodput must degrade monotonically-ish with
    // offered load but never collapse — the admission control sheds
    // the tail instead of letting the backlog starve everything.
    assert!(
        goodput[0] >= 0.70,
        "regression: 1x offered load should mostly complete, got {:.0}%",
        goodput[0] * 100.0
    );
    assert!(
        goodput[2] >= 0.40,
        "regression: 4x offered load collapsed goodput to {:.0}%",
        goodput[2] * 100.0
    );
    assert!(
        goodput[0] >= goodput[2],
        "goodput should not improve under heavier load: {goodput:?}"
    );
    println!(
        "BENCH_JSON {{\"experiment\":\"e13_overload\",\"rows\":[{}]}}",
        json_rows.join(",")
    );
}

fn bench(c: &mut Criterion) {
    print_overload_table();
    let w = overload_workload();
    let (capacity_ia, budget) = calibrate(&w);
    let mut group = c.benchmark_group("e13_overload");
    for load in [1.0f64, 4.0] {
        let oc = config_at(load, capacity_ia, budget);
        let eng = engine(Some(oc), Some(FaultConfig::new(latency_plan())));
        group.bench_function(format!("zipf_full_bank_load_{load}x"), |b| {
            b.iter(|| black_box(eng.serve(&w).expect("serve")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

//! E15 (extension) — dynamic work-stealing dispatch vs static
//! partitions on the adversarial straggler mix.
//!
//! The straggler mix hides a compute-dense hot algorithm (SHA-1 at 80
//! fabric cycles per 64-byte block) behind a small *byte* share:
//! byte-weighted `Balanced` and `algo_id % N` both concentrate the
//! hot stream on one shard, so the pool's makespan is that shard's
//! clock while the others idle. The cycle-aware planner behind
//! `ShardPolicy::Dynamic` deals each job to the shard with the lowest
//! modelled clock and rebalances at deterministic submission-index
//! epochs, spreading the hot stream across the pool.
//!
//! The regression floor this bench commits to (and CI re-asserts):
//! **≥ 1.2× makespan improvement over `Balanced` at 4 workers**.
//! Baselines live in `BENCH_dispatch.json`.

use aaod_bench::criterion_fast;
use aaod_core::{Engine, EngineConfig, EngineResult, ShardPolicy};
use aaod_sim::report::Table;
use aaod_workload::{mixes, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const WORKERS: usize = 4;
const N_REQS: usize = 1000;
const SEED: u64 = 1;

fn straggler() -> Workload {
    mixes::straggler_workload(N_REQS, SEED)
}

fn engine(policy: ShardPolicy, workers: usize) -> Engine {
    Engine::new(EngineConfig {
        workers,
        collect_outputs: false,
        shard: policy,
        ..EngineConfig::default()
    })
}

fn serve(policy: ShardPolicy, workers: usize, w: &Workload) -> EngineResult {
    engine(policy, workers).serve(w).expect("bench serve")
}

/// Shard-busy imbalance: busiest shard's share of total busy time,
/// normalised so 1.0 is a perfect split and `workers` is worst-case.
fn imbalance(r: &EngineResult) -> f64 {
    let total: u64 = r.shard_busy.iter().map(|t| t.as_ps()).sum();
    if total == 0 {
        return 1.0;
    }
    let max = r.shard_busy.iter().map(|t| t.as_ps()).max().unwrap_or(0);
    max as f64 * r.workers as f64 / total as f64
}

fn print_dispatch_table() {
    let w = straggler();
    let mut t = Table::new(
        "E15: dispatch policy sweep, straggler mix (SHA-1@256B hot 60%, CRC32/XTEA/CRC8@1500B cold, 1000 reqs, 4 shards)",
        &[
            "policy",
            "makespan",
            "imbalance",
            "steals",
            "affinity",
            "batches",
            "vs balanced",
        ],
    );
    let balanced = serve(ShardPolicy::Balanced, WORKERS, &w);
    let mut json_rows = Vec::new();
    let mut dynamic_speedup = 0.0;
    for policy in [
        ShardPolicy::AlgoModulo,
        ShardPolicy::RoundRobin,
        ShardPolicy::Balanced,
        ShardPolicy::Dynamic,
    ] {
        let r = serve(policy, WORKERS, &w);
        let speedup = balanced.makespan.as_ps() as f64 / r.makespan.as_ps() as f64;
        if policy == ShardPolicy::Dynamic {
            dynamic_speedup = speedup;
        }
        t.row_owned(vec![
            policy.name().to_string(),
            format!("{:.1}us", r.makespan.as_ns() / 1000.0),
            format!("{:.2}", imbalance(&r)),
            r.dispatch.steals.to_string(),
            r.dispatch.affinity_hits.to_string(),
            r.batches.to_string(),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(format!(
            "{{\"policy\":\"{}\",\"workers\":{WORKERS},\"makespan_ns\":{:.0},\
             \"imbalance\":{:.4},\"dealt\":{},\"steals\":{},\"steal_epochs\":{},\
             \"affinity_hits\":{},\"batches\":{},\"speedup_over_balanced\":{speedup:.4}}}",
            policy.name(),
            r.makespan.as_ns(),
            imbalance(&r),
            r.dispatch.dealt,
            r.dispatch.steals,
            r.dispatch.steal_epochs,
            r.dispatch.affinity_hits,
            r.batches,
        ));
    }
    println!("{t}");
    // The E15 regression floor: the dynamic planner must beat the
    // byte-weighted static partition by a clear margin on this mix.
    assert!(
        dynamic_speedup >= 1.2,
        "regression: dynamic dispatch speedup over balanced fell to \
         {dynamic_speedup:.3}x (floor 1.2x)"
    );
    println!(
        "BENCH_JSON {{\"experiment\":\"e15_dynamic_dispatch\",\"rows\":[{}]}}",
        json_rows.join(",")
    );
}

fn bench(c: &mut Criterion) {
    print_dispatch_table();
    let w = straggler();
    let mut group = c.benchmark_group("e15_dynamic_dispatch");
    for policy in [ShardPolicy::Balanced, ShardPolicy::Dynamic] {
        let eng = engine(policy, WORKERS);
        group.bench_function(format!("straggler_{}", policy.name()), |b| {
            b.iter(|| black_box(eng.serve(&w).expect("serve")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

//! E16 (extension) — host wall-clock performance of the simulator
//! itself.
//!
//! Every other experiment reports *modelled* time; this one reports
//! how fast the host actually grinds through simulated requests. Two
//! tables:
//!
//! 1. Throughput: simulated requests per wall-clock second (and input
//!    bytes per second) for the serial runner and the engine at
//!    1/2/4 workers, on the E11 zipf full-bank mix and the E15
//!    straggler mix.
//! 2. Ablation: the bit-sliced batch netlist evaluator
//!    ([`run_decoded_netlist_batch`], 64 lanes per walk) against the
//!    scalar per-input walk ([`run_decoded_netlist`]) on the bank's
//!    LUT netlists with E11-sized (256 B) inputs — the miss-batch
//!    evaluation path the controller takes on
//!    [`aaod_mcu::MiniOs::invoke_batch`].
//!
//! Regression floors this bench commits to (and CI re-asserts):
//! **combinational bit-sliced speedup ≥ 4×** over the scalar walk, and
//! absolute req/s floors set conservatively (~half of the recorded
//! baseline in `BENCH_hostperf.json`) so shared-runner noise cannot
//! trip them but losing an allocation-free or bit-sliced hot path
//! will.

use aaod_bench::criterion_fast;
use aaod_core::{run_workload, CoProcessor, Engine, EngineConfig, ShardPolicy};
use aaod_fabric::{run_decoded_netlist, run_decoded_netlist_batch, BatchScratch, NetlistMode};
use aaod_sim::report::Table;
use aaod_workload::{mixes, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// The E11 serving mix: zipf(s=1.1) over the full bank, 600 requests
/// of 256 bytes.
fn e11_mix() -> Workload {
    Workload::zipf(&mixes::full_bank(), 600, 1.1, 256, 1711)
}

/// The E15 adversarial straggler mix (1000 requests).
fn e15_mix() -> Workload {
    mixes::straggler_workload(1000, 1)
}

/// Best-of-`reps` wall time for one execution of `f`, in seconds.
/// Minimum (not mean) so scheduler noise on a shared runner biases
/// the figure up in throughput terms, never down.
fn best_wall_s<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn workload_bytes(w: &Workload) -> u64 {
    w.requests().iter().map(|r| r.input_len as u64).sum()
}

/// Wall-clock baselines (requests per second) for the CI floor. The
/// reference machine recorded ~34,900 (serial) and ~41,300 (engine
/// x4) in `BENCH_hostperf.json`; these are derated ~4x so a slower
/// shared CI runner still clears them, and the assert trips when a
/// run falls more than 20% below the derated baseline — a structural
/// regression (lost bit-sliced path, per-request allocation storm),
/// not scheduler noise.
const CI_BASELINE_SERIAL_E11_REQS_PER_S: f64 = 8_000.0;
const CI_BASELINE_ENGINE_X4_E11_REQS_PER_S: f64 = 9_000.0;
/// Trip level: more than 20% below the derated baseline fails.
const FLOOR_FRACTION: f64 = 0.8;
/// The acceptance floor for the tentpole: bit-sliced combinational
/// evaluation must beat the scalar walk by at least this factor.
const FLOOR_COMBINATIONAL_SPEEDUP: f64 = 4.0;

fn print_throughput_table() {
    let reps = 5;
    let mut t = Table::new(
        "E16: host throughput (wall clock), serial runner vs engine",
        &["mix", "config", "reqs", "wall", "req/s", "MB/s (input)"],
    );
    let mut json_rows = Vec::new();
    let mut floor_checks: Vec<(String, f64, f64)> = Vec::new();
    for (mix_name, w) in [("e11_zipf", e11_mix()), ("e15_straggler", e15_mix())] {
        let bytes = workload_bytes(&w);
        // Serial runner: one pre-installed card, repeated runs.
        let mut cp = CoProcessor::default();
        for &id in &w.distinct_algos() {
            cp.install(id).expect("install");
        }
        let serial_s = best_wall_s(reps, || {
            black_box(run_workload(&mut cp, &w, false).expect("serial run"));
        });
        let mut emit = |config: &str, wall_s: f64| {
            let reqs_per_s = w.len() as f64 / wall_s;
            let mb_per_s = bytes as f64 / wall_s / 1e6;
            t.row_owned(vec![
                mix_name.to_string(),
                config.to_string(),
                w.len().to_string(),
                format!("{:.2}ms", wall_s * 1e3),
                format!("{reqs_per_s:.0}"),
                format!("{mb_per_s:.1}"),
            ]);
            json_rows.push(format!(
                "{{\"mix\":\"{mix_name}\",\"config\":\"{config}\",\"reqs\":{},\
                 \"wall_ms\":{:.3},\"reqs_per_s\":{reqs_per_s:.0},\"input_bytes_per_s\":{:.0}}}",
                w.len(),
                wall_s * 1e3,
                bytes as f64 / wall_s,
            ));
            reqs_per_s
        };
        let serial_rps = emit("serial", serial_s);
        if mix_name == "e11_zipf" {
            floor_checks.push((
                "serial e11".into(),
                serial_rps,
                CI_BASELINE_SERIAL_E11_REQS_PER_S * FLOOR_FRACTION,
            ));
        }
        for workers in [1usize, 2, 4] {
            let engine = Engine::new(EngineConfig {
                workers,
                collect_outputs: false,
                shard: ShardPolicy::Balanced,
                ..EngineConfig::default()
            });
            let s = best_wall_s(reps, || {
                black_box(engine.serve(&w).expect("engine serve"));
            });
            let rps = emit(&format!("engine_x{workers}"), s);
            if mix_name == "e11_zipf" && workers == 4 {
                floor_checks.push((
                    "engine x4 e11".into(),
                    rps,
                    CI_BASELINE_ENGINE_X4_E11_REQS_PER_S * FLOOR_FRACTION,
                ));
            }
        }
    }
    println!("{t}");
    for (name, got, floor) in floor_checks {
        assert!(
            got >= floor,
            "regression: {name} host throughput fell to {got:.0} req/s (floor {floor:.0})"
        );
    }
    println!(
        "BENCH_JSON {{\"experiment\":\"e16_hostperf_throughput\",\"rows\":[{}]}}",
        json_rows.join(",")
    );
}

fn print_ablation_table() {
    let reps = 5;
    // E11-sized inputs: 600 requests of 256 bytes, deterministic fill.
    let mut rng = aaod_sim::SplitMix64::new(16);
    let inputs: Vec<Vec<u8>> = (0..600)
        .map(|_| {
            let mut v = vec![0u8; 256];
            rng.fill(&mut v);
            v
        })
        .collect();
    let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
    let total_bytes: usize = inputs.iter().map(Vec::len).sum();
    let cases = [
        (
            "adder8",
            aaod_algos::netlists::adder8_netlist(),
            NetlistMode::Combinational,
        ),
        (
            "parity8",
            aaod_algos::netlists::parity8_netlist(),
            NetlistMode::Combinational,
        ),
        (
            "popcount8",
            aaod_algos::netlists::popcount8_netlist(),
            NetlistMode::Combinational,
        ),
        (
            "crc8",
            aaod_algos::netlists::crc8_netlist(),
            NetlistMode::Streaming,
        ),
    ];
    let mut t = Table::new(
        "E16b: miss-batch netlist evaluation, scalar walk vs bit-sliced (600 x 256 B)",
        &[
            "netlist",
            "mode",
            "scalar",
            "sliced",
            "speedup",
            "MB/s sliced",
        ],
    );
    let mut json_rows = Vec::new();
    let mut worst_comb_speedup = f64::INFINITY;
    for (name, netlist, mode) in cases {
        let scalar_s = best_wall_s(reps, || {
            for input in &refs {
                black_box(run_decoded_netlist(&netlist, mode, input).expect("scalar"));
            }
        });
        let mut scratch = BatchScratch::default();
        let sliced_s = best_wall_s(reps, || {
            black_box(
                run_decoded_netlist_batch(&netlist, mode, &refs, &mut scratch).expect("sliced"),
            );
        });
        // Sanity: the two paths must agree before we time them apart.
        let batched = run_decoded_netlist_batch(&netlist, mode, &refs, &mut scratch).unwrap();
        for (input, got) in refs.iter().zip(&batched) {
            assert_eq!(got, &run_decoded_netlist(&netlist, mode, input).unwrap());
        }
        let speedup = scalar_s / sliced_s;
        if mode == NetlistMode::Combinational {
            worst_comb_speedup = worst_comb_speedup.min(speedup);
        }
        let mode_name = match mode {
            NetlistMode::Combinational => "combinational",
            NetlistMode::Streaming => "streaming",
        };
        t.row_owned(vec![
            name.to_string(),
            mode_name.to_string(),
            format!("{:.2}ms", scalar_s * 1e3),
            format!("{:.2}ms", sliced_s * 1e3),
            format!("{speedup:.1}x"),
            format!("{:.1}", total_bytes as f64 / sliced_s / 1e6),
        ]);
        json_rows.push(format!(
            "{{\"netlist\":\"{name}\",\"mode\":\"{mode_name}\",\"inputs\":{},\"bytes\":{total_bytes},\
             \"scalar_ms\":{:.3},\"sliced_ms\":{:.3},\"speedup\":{speedup:.2},\
             \"sliced_bytes_per_s\":{:.0}}}",
            refs.len(),
            scalar_s * 1e3,
            sliced_s * 1e3,
            total_bytes as f64 / sliced_s,
        ));
    }
    println!("{t}");
    assert!(
        worst_comb_speedup >= FLOOR_COMBINATIONAL_SPEEDUP,
        "regression: bit-sliced combinational evaluation speedup fell to \
         {worst_comb_speedup:.2}x (floor {FLOOR_COMBINATIONAL_SPEEDUP}x)"
    );
    println!(
        "BENCH_JSON {{\"experiment\":\"e16_hostperf_ablation\",\"rows\":[{}]}}",
        json_rows.join(",")
    );
}

fn bench(c: &mut Criterion) {
    print_throughput_table();
    print_ablation_table();
    let w = e11_mix();
    let mut group = c.benchmark_group("e16_hostperf");
    let engine = Engine::new(EngineConfig {
        workers: 4,
        collect_outputs: false,
        shard: ShardPolicy::Balanced,
        ..EngineConfig::default()
    });
    group.bench_function("e11_engine_x4", |b| {
        b.iter(|| black_box(engine.serve(&w).expect("serve")));
    });
    let netlist = aaod_algos::netlists::adder8_netlist();
    let mut rng = aaod_sim::SplitMix64::new(16);
    let inputs: Vec<Vec<u8>> = (0..64)
        .map(|_| {
            let mut v = vec![0u8; 256];
            rng.fill(&mut v);
            v
        })
        .collect();
    let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
    let mut scratch = BatchScratch::default();
    group.bench_function("adder8_sliced_64x256B", |b| {
        b.iter(|| {
            black_box(
                run_decoded_netlist_batch(
                    &netlist,
                    NetlistMode::Combinational,
                    &refs,
                    &mut scratch,
                )
                .expect("sliced"),
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

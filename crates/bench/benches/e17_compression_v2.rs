//! E17 — compression v2: frame-dedup delta codec + content-addressed
//! frame store, ablated against every v1 codec on the dedup-heavy mix
//! (SHA-1 published under two ids, seven algorithms overcommitting the
//! 96-frame device; see [`aaod_workload::mixes::dedup_mix`]).
//!
//! One serial arm per codec serves the same seeded bursty workload
//! from a cold card with the decoded cache disabled, so every miss
//! takes the full ROM → decompress → configure path. Two metrics:
//!
//! 1. **Shipped config bytes** — frame bytes actually fetched,
//!    decompressed and written to the fabric over the whole run.
//!    v1 codecs ship `frames_configured x frame_bytes`; DeltaV2
//!    subtracts what the content-addressed store served from residence
//!    (`frame_store_bytes_deduped`).
//! 2. **Mean miss reconfiguration latency** — modelled
//!    `reconfig_time / misses`; the store turns decompress work into
//!    cheap verified copies, so DeltaV2 must beat the PR-6 default
//!    (LZSS) baseline.
//!
//! Floors CI re-asserts: best-v1 shipped bytes / DeltaV2 shipped
//! bytes ≥ 1.3x, and DeltaV2 mean miss reconfiguration latency
//! strictly below the LZSS baseline. The bench also pins
//! engine-vs-serial byte identity on the dedup mix (alias id 100 is
//! not in the golden bank, so identity is checked against the serial
//! arm, not `verify`).

use aaod_bench::criterion_fast;
use aaod_bitstream::codec::{registry, CodecId};
use aaod_bitstream::Bitstream;
use aaod_core::{run_workload, CoProcessor, Engine, EngineConfig, ShardPolicy};
use aaod_fabric::DeviceGeometry;
use aaod_mcu::OsStats;
use aaod_sim::report::{f2, Table};
use aaod_workload::{mixes, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Requests in the measured serial arms.
const N_REQUESTS: usize = 400;
/// Acceptance floor: best v1 codec must ship at least this many times
/// more config bytes than DeltaV2 + store on the dedup mix.
const FLOOR_SHIPPED_RATIO: f64 = 1.3;

/// The dedup workload seed, overridable via `AAOD_COMPRESS_SEED` (the
/// determinism suite uses the same hook, so a CI sweep exercises both
/// with one knob).
fn compress_seed() -> u64 {
    aaod_bench::env_seed("AAOD_COMPRESS_SEED", 1717)
}

/// One arm's card: dedup bank, decoded cache off (every miss decodes),
/// default frame-store budget (only DeltaV2 consults it).
fn dedup_card(codec: CodecId) -> CoProcessor {
    CoProcessor::builder()
        .codec(codec)
        .bank(mixes::dedup_bank())
        .decoded_cache_bytes(0)
        .build()
}

struct Arm {
    codec: CodecId,
    /// Encoded ROM bytes of the whole mix under this codec.
    stream_bytes: usize,
    /// Config bytes actually shipped to the fabric over the run.
    shipped_bytes: u64,
    mean_miss_reconfig_ns: f64,
    stats: OsStats,
    outputs: Vec<Vec<u8>>,
}

fn run_arm(codec: CodecId, geom: DeviceGeometry, w: &Workload) -> Arm {
    let bank = mixes::dedup_bank();
    let boxed = registry::codec(codec, geom.frame_bytes());
    let stream_bytes: usize = mixes::dedup_mix()
        .iter()
        .map(|&id| {
            let image = bank.build_image(id, geom).expect("image");
            Bitstream::from_image(&image, geom)
                .encode(boxed.as_ref())
                .len()
        })
        .sum();
    let mut cp = dedup_card(codec);
    for &id in &w.distinct_algos() {
        cp.install(id).expect("install");
    }
    let mut outputs = Vec::with_capacity(w.len());
    for (i, req) in w.requests().iter().enumerate() {
        outputs.push(cp.invoke(req.algo_id, &w.input(i)).expect("invoke").0);
    }
    let stats = cp.stats();
    let shipped_bytes =
        stats.frames_configured * geom.frame_bytes() as u64 - stats.frame_store_bytes_deduped;
    let mean_miss_reconfig_ns =
        stats.reconfig_time.as_ps() as f64 / 1e3 / (stats.misses.max(1)) as f64;
    Arm {
        codec,
        stream_bytes,
        shipped_bytes,
        mean_miss_reconfig_ns,
        stats,
        outputs,
    }
}

fn print_ablation_table(geom: DeviceGeometry, w: &Workload, arms: &[Arm]) -> (f64, f64, f64) {
    let mut t = Table::new(
        "E17: compression v2 on the dedup mix (serial, decoded cache off)",
        &[
            "codec",
            "stream KiB",
            "shipped KiB",
            "store hits",
            "KiB deduped",
            "miss reconfig",
        ],
    );
    let mut json_rows = Vec::new();
    for arm in arms {
        t.row_owned(vec![
            arm.codec.to_string(),
            format!("{:.1}", arm.stream_bytes as f64 / 1024.0),
            format!("{:.1}", arm.shipped_bytes as f64 / 1024.0),
            arm.stats.frame_store_hits.to_string(),
            format!("{:.1}", arm.stats.frame_store_bytes_deduped as f64 / 1024.0),
            format!("{:.1}us", arm.mean_miss_reconfig_ns / 1e3),
        ]);
        json_rows.push(format!(
            "{{\"codec\":\"{}\",\"stream_bytes\":{},\"shipped_bytes\":{},\
             \"frame_store_hits\":{},\"frame_store_misses\":{},\"bytes_deduped\":{},\
             \"misses\":{},\"mean_miss_reconfig_us\":{:.2}}}",
            arm.codec,
            arm.stream_bytes,
            arm.shipped_bytes,
            arm.stats.frame_store_hits,
            arm.stats.frame_store_misses,
            arm.stats.frame_store_bytes_deduped,
            arm.stats.misses,
            arm.mean_miss_reconfig_ns / 1e3,
        ));
    }
    println!("{t}");

    let v2 = arms
        .iter()
        .find(|a| a.codec == CodecId::DeltaV2)
        .expect("deltav2 arm");
    let best_v1 = arms
        .iter()
        .filter(|a| a.codec != CodecId::DeltaV2)
        .min_by_key(|a| a.shipped_bytes)
        .expect("v1 arms");
    let baseline = arms
        .iter()
        .find(|a| a.codec == CodecId::Lzss)
        .expect("lzss arm");
    let shipped_ratio = best_v1.shipped_bytes as f64 / v2.shipped_bytes as f64;
    let mut s = Table::new(
        "E17 summary: DeltaV2 + frame store vs best v1",
        &["metric", "best v1", "delta-v2", "gain"],
    );
    s.row_owned(vec![
        "shipped config KiB".into(),
        format!(
            "{:.1} ({})",
            best_v1.shipped_bytes as f64 / 1024.0,
            best_v1.codec
        ),
        format!("{:.1}", v2.shipped_bytes as f64 / 1024.0),
        format!("{}x", f2(shipped_ratio)),
    ]);
    s.row_owned(vec![
        "mean miss reconfig".into(),
        format!("{:.1}us (lzss)", baseline.mean_miss_reconfig_ns / 1e3),
        format!("{:.1}us", v2.mean_miss_reconfig_ns / 1e3),
        format!(
            "{}x",
            f2(baseline.mean_miss_reconfig_ns / v2.mean_miss_reconfig_ns)
        ),
    ]);
    println!("{s}");
    println!(
        "BENCH_JSON {{\"experiment\":\"e17_compression_v2\",\"requests\":{},\"seed\":{},\
         \"frame_bytes\":{},\"rows\":[{}],\
         \"summary\":{{\"best_v1\":\"{}\",\"shipped_ratio\":{:.3},\
         \"baseline_mean_miss_us\":{:.2},\"v2_mean_miss_us\":{:.2}}}}}",
        w.len(),
        compress_seed(),
        geom.frame_bytes(),
        json_rows.join(","),
        best_v1.codec,
        shipped_ratio,
        baseline.mean_miss_reconfig_ns / 1e3,
        v2.mean_miss_reconfig_ns / 1e3,
    );
    (
        shipped_ratio,
        baseline.mean_miss_reconfig_ns,
        v2.mean_miss_reconfig_ns,
    )
}

fn assert_floors(arms: &[Arm], shipped_ratio: f64, baseline_ns: f64, v2_ns: f64) {
    // Every codec arm computes byte-identical outputs — the ablation
    // varies shipping, never results.
    for pair in arms.windows(2) {
        assert_eq!(
            pair[0].outputs, pair[1].outputs,
            "outputs diverged between {} and {}",
            pair[0].codec, pair[1].codec
        );
    }
    let v2 = arms.iter().find(|a| a.codec == CodecId::DeltaV2).unwrap();
    assert!(
        v2.stats.frame_store_hits > 0,
        "dedup mix never hit the frame store"
    );
    assert!(
        shipped_ratio >= FLOOR_SHIPPED_RATIO,
        "regression: DeltaV2 shipped-bytes gain fell to {shipped_ratio:.2}x \
         (floor {FLOOR_SHIPPED_RATIO}x)"
    );
    assert!(
        v2_ns < baseline_ns,
        "regression: DeltaV2 mean miss reconfig {:.1}us not below the LZSS \
         baseline {:.1}us",
        v2_ns / 1e3,
        baseline_ns / 1e3,
    );
}

/// Engine-vs-serial byte identity on the dedup mix: the store is
/// per-shard state, so partitioning must never change results.
fn assert_engine_matches_serial(w: &Workload, serial: &[Vec<u8>]) {
    for policy in [ShardPolicy::AlgoModulo, ShardPolicy::Dynamic] {
        let engine = Engine::with_factory(
            EngineConfig {
                workers: 4,
                shard: policy,
                ..EngineConfig::default()
            },
            || dedup_card(CodecId::DeltaV2),
        );
        let r = engine.serve(w).expect("engine serve");
        assert_eq!(
            r.outputs.as_deref().expect("outputs kept"),
            serial,
            "engine ({policy:?}) diverged from serial on the dedup mix"
        );
    }
}

fn bench(c: &mut Criterion) {
    let geom = DeviceGeometry::default();
    let w = mixes::dedup_workload(N_REQUESTS, compress_seed());
    let arms: Vec<Arm> = registry::all(geom.frame_bytes())
        .iter()
        .map(|codec| run_arm(codec.id(), geom, &w))
        .collect();
    let (shipped_ratio, baseline_ns, v2_ns) = print_ablation_table(geom, &w, &arms);
    assert_floors(&arms, shipped_ratio, baseline_ns, v2_ns);
    let v2 = arms.iter().find(|a| a.codec == CodecId::DeltaV2).unwrap();
    assert_engine_matches_serial(&w, &v2.outputs);

    // Wall-clock: the serving hot path with and without the store.
    let w_small = mixes::dedup_workload(120, compress_seed());
    let mut group = c.benchmark_group("e17_compression_v2");
    for codec in [CodecId::Lzss, CodecId::DeltaV2] {
        let mut cp = dedup_card(codec);
        for &id in &w_small.distinct_algos() {
            cp.install(id).expect("install");
        }
        group.bench_function(format!("serve_dedup_{codec}"), |b| {
            b.iter(|| black_box(run_workload(&mut cp, &w_small, false).expect("run")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

//! E18 — fleet-scale cluster with fault-domain failover and
//! health-checked routing.
//!
//! A 16-card fleet serves the three-tenant fleet mix
//! ([`aaod_workload::mixes::fleet_workload`]) while a seeded kill
//! schedule takes 0, 1 and 2 cards down mid-run. The router fails
//! work over around the dead fault domains (per-card breakers,
//! bounded retries, hedged re-dispatch of stranded jobs) and the
//! surviving assignment executes on the remaining card engines.
//!
//! Floors CI re-asserts:
//!
//! 1. **goodput ≥ 90% with 1 of 16 cards dead** — losing one fault
//!    domain must cost at most the jobs stranded in flight, never a
//!    whole residency's worth of traffic;
//! 2. **byte identity** — every surviving output equals the
//!    fault-free serial oracle, at every operating point;
//! 3. **conservation** — the job ledger balances and the redirection
//!    counters reconcile against the breaker timelines at every
//!    operating point.

use aaod_algos::AlgorithmBank;
use aaod_bench::criterion_fast;
use aaod_core::{Cluster, ClusterConfig, ClusterResult, CoProcessor};
use aaod_sim::report::{f2, Table};
use aaod_sim::{CardFaultRates, ClusterFaultPlan, SimTime};
use aaod_workload::{mixes, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Requests in the measured fleet runs.
const N_REQUESTS: usize = 600;
/// Fleet size the floors are calibrated for.
const CARDS: usize = 16;
/// Acceptance floor: goodput with one dead card of sixteen.
const FLOOR_GOODPUT_ONE_DEAD: f64 = 0.90;
/// The fault horizon the kill schedules live in: the arrival span of
/// the run (interarrival 2 us x N jobs), so kill fractions land
/// mid-run rather than after the last job.
const HORIZON: SimTime = SimTime::from_us(2 * N_REQUESTS as u64);

/// The fleet workload seed, overridable via `AAOD_CLUSTER_SEED` (the
/// cluster chaos suite uses the same hook, so a CI sweep exercises
/// both with one knob).
fn cluster_seed() -> u64 {
    aaod_bench::env_seed("AAOD_CLUSTER_SEED", 0xC1A57E2)
}

fn fleet_config(plan: Option<ClusterFaultPlan>) -> ClusterConfig {
    ClusterConfig {
        cards: CARDS,
        replication: 3,
        card_workers: 2,
        plan,
        ..ClusterConfig::default()
    }
}

/// A kill schedule taking `dead` cards down: the first at 30% of the
/// horizon, the second at 55%.
fn kill_plan(dead: usize) -> Option<ClusterFaultPlan> {
    if dead == 0 {
        return None;
    }
    let mut plan = ClusterFaultPlan::new(cluster_seed(), CardFaultRates::ZERO, HORIZON);
    let fracs = [0.30, 0.55];
    for (card, &frac) in fracs.iter().take(dead).enumerate() {
        // Kill odd-numbered cards so the dead set spreads across the
        // placement rather than clustering at one end.
        plan = plan.with_kill(card * 2 + 1, frac);
    }
    Some(plan)
}

/// Fault-free serial oracle: the whole stream on one card.
fn serial_oracle(workload: &Workload) -> Vec<Vec<u8>> {
    let mut cp = CoProcessor::default();
    for &algo in &workload.distinct_algos() {
        cp.install(algo).unwrap();
    }
    workload
        .requests()
        .iter()
        .enumerate()
        .map(|(i, req)| cp.invoke(req.algo_id, &workload.input(i)).unwrap().0)
        .collect()
}

struct Arm {
    dead: usize,
    result: ClusterResult,
}

fn run_arm(dead: usize, workload: &Workload, bank: &AlgorithmBank) -> Arm {
    let cluster = Cluster::new(fleet_config(kill_plan(dead)));
    let result = cluster.serve(workload, bank).expect("fleet serve");
    Arm { dead, result }
}

fn print_cluster_table() {
    let workload = mixes::fleet_workload(N_REQUESTS, cluster_seed());
    let bank = AlgorithmBank::standard();
    let oracle = serial_oracle(&workload);
    let arms: Vec<Arm> = [0usize, 1, 2]
        .iter()
        .map(|&dead| run_arm(dead, &workload, &bank))
        .collect();

    let mut t = Table::new(
        &format!(
            "E18 — {CARDS}-card fleet, {N_REQUESTS} jobs, seed {} (goodput vs dead cards)",
            cluster_seed()
        ),
        &[
            "dead",
            "goodput",
            "completed",
            "lost",
            "failovers",
            "hedges",
            "dupes",
            "trips",
            "p99 us",
            "makespan us",
        ],
    );
    let mut json_rows = Vec::new();
    for arm in &arms {
        let r = &arm.result;
        let s = &r.stats;
        // Byte identity: every surviving output equals the oracle.
        let outputs = r.outputs.as_ref().expect("outputs collected");
        for (i, out) in outputs.iter().enumerate() {
            let survived = r.assignment[i].is_some()
                && !r.failed.contains_key(&i)
                && !r.deadline_missed.contains_key(&i);
            if survived {
                assert_eq!(
                    out, &oracle[i],
                    "dead={}: survivor {i} diverged from the serial oracle",
                    arm.dead
                );
            }
        }
        assert!(s.accounted(), "dead={}: ledger {s:?}", arm.dead);
        assert!(s.reconciled(), "dead={}: ledger {s:?}", arm.dead);
        let trips: u64 = r.card_health.iter().map(|h| h.trips).sum();
        let p99_us = r.sojourn.summary_ns().p99 / 1e3;
        t.row_owned(vec![
            arm.dead.to_string(),
            f2(s.goodput()),
            s.completed.to_string(),
            s.lost_unrecoverable.to_string(),
            s.failovers.to_string(),
            s.hedges.to_string(),
            s.hedge_duplicates.to_string(),
            trips.to_string(),
            format!("{p99_us:.1}"),
            format!("{:.1}", r.makespan.as_ns() / 1e3),
        ]);
        json_rows.push(format!(
            "{{\"dead\":{},\"submitted\":{},\"completed\":{},\"lost\":{},\
             \"faulted\":{},\"goodput\":{:.3},\"failovers\":{},\"hedges\":{},\
             \"hedge_duplicates\":{},\"breaker_trips\":{},\"breaker_rejections\":{},\
             \"card_failures\":{},\"wasted_time_ns\":{},\"p99_sojourn_ns\":{:.0},\
             \"makespan_ns\":{}}}",
            arm.dead,
            s.submitted,
            s.completed,
            s.lost_unrecoverable,
            s.faulted,
            s.goodput(),
            s.failovers,
            s.hedges,
            s.hedge_duplicates,
            trips,
            s.breaker_rejections,
            s.card_failures,
            s.wasted_time.as_ns(),
            r.sojourn.summary_ns().p99,
            r.makespan.as_ns(),
        ));
    }
    println!("{t}");

    // Non-vacuity: the dead-card arms must actually reroute work, or
    // the goodput floor below proves nothing.
    for arm in arms.iter().filter(|a| a.dead > 0) {
        let s = &arm.result.stats;
        assert!(
            s.failovers + s.hedges > 0,
            "dead={}: kill schedule never redirected a job — the floor is vacuous",
            arm.dead
        );
    }

    // Regression floors.
    let goodput: Vec<f64> = arms.iter().map(|a| a.result.stats.goodput()).collect();
    assert!(
        (goodput[0] - 1.0).abs() < f64::EPSILON,
        "healthy fleet must complete everything, got {:.3}",
        goodput[0]
    );
    assert!(
        goodput[1] >= FLOOR_GOODPUT_ONE_DEAD,
        "regression: 1 dead card of {CARDS} dropped goodput to {:.1}% (floor {:.0}%)",
        goodput[1] * 100.0,
        FLOOR_GOODPUT_ONE_DEAD * 100.0
    );
    assert!(
        goodput[2] >= 0.80,
        "regression: 2 dead cards collapsed goodput to {:.1}%",
        goodput[2] * 100.0
    );
    println!(
        "BENCH_JSON {{\"experiment\":\"e18_cluster\",\"requests\":{},\"cards\":{},\"seed\":{},\
         \"replication\":3,\"rows\":[{}],\
         \"summary\":{{\"goodput_one_dead\":{:.3},\"floor\":{:.2}}}}}",
        N_REQUESTS,
        CARDS,
        cluster_seed(),
        json_rows.join(","),
        goodput[1],
        FLOOR_GOODPUT_ONE_DEAD,
    );
}

fn bench(c: &mut Criterion) {
    print_cluster_table();
    let workload = mixes::fleet_workload(N_REQUESTS, cluster_seed());
    let bank = AlgorithmBank::standard();
    let mut group = c.benchmark_group("e18_cluster");
    for dead in [0usize, 1] {
        let cluster = Cluster::new(ClusterConfig {
            collect_outputs: false,
            ..fleet_config(kill_plan(dead))
        });
        group.bench_function(format!("fleet_16_cards_{dead}_dead"), |b| {
            b.iter(|| black_box(cluster.serve(&workload, &bank).expect("serve")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

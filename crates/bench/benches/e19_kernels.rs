//! E19 — DSP/AI kernel tier with realistic traffic and weighted-fair
//! multi-tenant admission.
//!
//! Three arms over the extended bank's large-footprint kernels
//! (matmul16 72 frames, conv2d 56, fft64 64 — 192 frames against the
//! 96-frame device, so the tier can never co-reside):
//!
//! 1. **throughput** — each kernel alone, plus the rotating three-way
//!    mix, through the 4-shard engine; modelled req/s and bytes/s
//!    must stay within 20% of the calibrated baselines;
//! 2. **weighted-fair admission** — the canonical flood scenario
//!    ([`mixes::fair_overload_workload`]) at 2× overload, drop-newest
//!    vs weighted-fair: with fairness on, no tenant finishes more
//!    than 10% below its weighted share of completions (capped by
//!    what it offered), the flood actually trips the policy, and the
//!    per-tenant ledgers conserve;
//! 3. **tenant quotas** — a hard cap on the flooding tenant is
//!    enforced exactly: `quota_exceeded == offered − quota`, dropped
//!    at submission without ever entering a shard queue.
//!
//! The seed comes from `AAOD_KERNEL_SEED` (the CI kernel matrix
//! sweeps it) so this bench, the conformance tier and the kernel
//! determinism suite all move together.

use aaod_algos::{ids, AlgorithmBank};
use aaod_bench::criterion_fast;
use aaod_core::{
    CoProcessor, DeadlinePolicy, Engine, EngineConfig, EngineResult, FairnessConfig,
    OverloadConfig, ShardPolicy,
};
use aaod_sim::report::{f2, Table};
use aaod_sim::SimTime;
use aaod_workload::{mixes, TenantSpec, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Requests per measured run.
const N_REQUESTS: usize = 240;
/// Payload bytes per request (8 matrix pairs / 4 tiles / 16 blocks).
const INPUT_LEN: usize = 4096;
/// Modelled-throughput floors, 20% under the calibrated rates
/// (single-kernel runs are reconfigure-once then stream, so the mix —
/// which swaps images every batch — sits far below them).
const FLOOR_REQS_PER_S: [(u16, f64); 3] = [
    (ids::MATMUL16, 27_000.0),
    (ids::CONV2D, 23_000.0),
    (ids::FFT64, 26_000.0),
];
/// Floor for the rotating mix, which pays a ~60 KiB bitstream swap
/// per kernel switch.
const FLOOR_MIX_REQS_PER_S: f64 = 1_000.0;
/// Fairness floor: with the weighted-fair layer on, every tenant
/// completes at least this fraction of its weighted share.
const FAIR_SHARE_FLOOR: f64 = 0.90;

fn kernel_seed() -> u64 {
    aaod_bench::env_seed("AAOD_KERNEL_SEED", 42)
}

/// A card serving the extended (DSP/AI) bank.
fn kernel_card() -> CoProcessor {
    CoProcessor::builder()
        .bank(AlgorithmBank::extended())
        .build()
}

fn engine(overload: Option<OverloadConfig>) -> Engine {
    Engine::with_factory(
        EngineConfig {
            workers: 4,
            shard: ShardPolicy::RoundRobin,
            overload,
            ..EngineConfig::default()
        },
        kernel_card,
    )
}

/// Modelled requests per second for a run of `n` jobs.
fn reqs_per_s(n: usize, makespan: SimTime) -> f64 {
    n as f64 / (makespan.as_ns() * 1e-9)
}

fn kernel_name(id: u16) -> &'static str {
    AlgorithmBank::extended().kernel(id).unwrap().name()
}

fn print_throughput_table() -> Vec<String> {
    let mut t = Table::new(
        &format!(
            "E19 — DSP/AI kernel throughput, {N_REQUESTS} x {INPUT_LEN} B, seed {} (modelled)",
            kernel_seed()
        ),
        &["workload", "makespan ms", "req/s", "MB/s", "floor req/s"],
    );
    let mut json_rows = Vec::new();
    let mut arm = |label: &str, w: &Workload, floor: f64| {
        let r = engine(None).serve(w).expect("throughput serve");
        let rps = reqs_per_s(w.len(), r.makespan);
        let bps = rps * INPUT_LEN as f64;
        t.row_owned(vec![
            label.to_string(),
            format!("{:.3}", r.makespan.as_ns() / 1e6),
            format!("{rps:.0}"),
            format!("{:.1}", bps / 1e6),
            format!("{floor:.0}"),
        ]);
        assert!(
            rps >= floor,
            "regression: {label} fell to {rps:.0} req/s (floor {floor:.0})"
        );
        json_rows.push(format!(
            "{{\"workload\":\"{label}\",\"requests\":{},\"makespan_ns\":{},\
             \"reqs_per_s\":{rps:.0},\"bytes_per_s\":{bps:.0},\"floor_reqs_per_s\":{floor:.0}}}",
            w.len(),
            r.makespan.as_ns(),
        ));
    };
    for (id, floor) in FLOOR_REQS_PER_S {
        let w = Workload::uniform(&[id], N_REQUESTS, INPUT_LEN, kernel_seed());
        arm(kernel_name(id), &w, floor);
    }
    let mix = mixes::kernel_workload(N_REQUESTS, kernel_seed());
    arm("kernel_mix", &mix, FLOOR_MIX_REQS_PER_S);
    println!("{t}");
    json_rows
}

/// The 2×-overload operating point for the fairness arms: calibrate
/// the pool's drain time, then offer twice that rate with a deadline
/// budget of a quarter drain, so admission — not raw deadlines —
/// decides who completes.
fn overload_point(w: &Workload) -> (SimTime, SimTime) {
    let generous = OverloadConfig {
        interarrival: SimTime::from_ns(1),
        deadline: DeadlinePolicy::Absolute(SimTime::from_secs(100)),
        ..OverloadConfig::default()
    };
    let drain = engine(Some(generous))
        .serve(w)
        .expect("calibration")
        .makespan;
    let ia = SimTime::from_ps((drain.as_ps() / (2 * w.len() as u64)).max(1));
    let budget = SimTime::from_ps((drain.as_ps() / 4).max(1));
    (ia, budget)
}

fn serve_overloaded(
    w: &Workload,
    ia: SimTime,
    budget: SimTime,
    fairness: Option<FairnessConfig>,
) -> EngineResult {
    engine(Some(OverloadConfig {
        interarrival: ia,
        deadline: DeadlinePolicy::Absolute(budget),
        fairness,
        ..OverloadConfig::default()
    }))
    .serve(w)
    .expect("overloaded serve")
}

/// Checks global + per-tenant conservation on an overloaded run.
fn assert_conserved(label: &str, r: &EngineResult) {
    assert!(
        r.overload.accounted(),
        "{label}: global leak {:?}",
        r.overload
    );
    for t in &r.tenants {
        assert!(t.accounted(), "{label}: tenant leak {t:?}");
    }
    let sum = |f: fn(&aaod_core::TenantStats) -> u64| r.tenants.iter().map(f).sum::<u64>();
    assert_eq!(sum(|t| t.submitted), r.overload.submitted, "{label}");
    assert_eq!(sum(|t| t.completed), r.overload.completed, "{label}");
    assert_eq!(sum(|t| t.shed), r.overload.shed, "{label}");
    assert_eq!(
        sum(|t| t.quota_exceeded),
        r.overload.quota_exceeded,
        "{label}"
    );
}

fn print_fairness_table() -> (Vec<String>, f64) {
    let w = mixes::fair_overload_workload(N_REQUESTS, kernel_seed());
    let (ia, budget) = overload_point(&w);
    let base = serve_overloaded(&w, ia, budget, None);
    let fair = serve_overloaded(&w, ia, budget, Some(FairnessConfig::default()));
    assert_conserved("drop-newest", &base);
    assert_conserved("weighted-fair", &fair);
    assert_eq!(
        base.overload.fair_shed, 0,
        "fairness off must not fair-shed"
    );
    assert!(
        fair.overload.fair_shed > 0,
        "non-vacuity: the flood never tripped the weighted-fair policy"
    );

    let total_weight: u64 = fair.tenants.iter().map(|t| t.weight as u64).sum();
    let mut t = Table::new(
        &format!(
            "E19 — weighted-fair admission at 2x overload, {N_REQUESTS} jobs, seed {}",
            kernel_seed()
        ),
        &[
            "tenant",
            "w",
            "submitted",
            "base done",
            "fair done",
            "share",
            "attained",
        ],
    );
    let mut json_rows = Vec::new();
    let mut worst_attained = f64::INFINITY;
    for (b, f) in base.tenants.iter().zip(fair.tenants.iter()) {
        // the tenant's weighted share of what the pool completed,
        // capped by what it actually offered
        let share = (fair.overload.completed * f.weight as u64) / total_weight;
        let entitled = share.min(f.submitted);
        let attained = if entitled == 0 {
            1.0
        } else {
            f.completed as f64 / entitled as f64
        };
        worst_attained = worst_attained.min(attained);
        t.row_owned(vec![
            f.name.clone(),
            f.weight.to_string(),
            f.submitted.to_string(),
            b.completed.to_string(),
            f.completed.to_string(),
            entitled.to_string(),
            f2(attained),
        ]);
        json_rows.push(format!(
            "{{\"tenant\":\"{}\",\"weight\":{},\"submitted\":{},\
             \"completed_drop_newest\":{},\"completed_weighted_fair\":{},\
             \"entitled\":{},\"attained\":{:.3},\"shed\":{},\"fair_shed_total\":{}}}",
            f.name,
            f.weight,
            f.submitted,
            b.completed,
            f.completed,
            entitled,
            attained,
            f.shed,
            fair.overload.fair_shed,
        ));
    }
    println!("{t}");
    assert!(
        worst_attained >= FAIR_SHARE_FLOOR,
        "regression: a tenant fell to {:.0}% of its weighted share (floor {:.0}%)",
        worst_attained * 100.0,
        FAIR_SHARE_FLOOR * 100.0
    );
    (json_rows, worst_attained)
}

fn print_quota_row() -> String {
    let quota = 40u64;
    let mut specs: Vec<TenantSpec> = mixes::fair_overload_workload(1, kernel_seed())
        .tenant_specs()
        .expect("fair workload carries specs")
        .to_vec();
    specs.last_mut().expect("flood spec").quota = Some(quota);
    let w = Workload::multi_tenant(&specs, N_REQUESTS, kernel_seed());
    let flood = (specs.len() - 1) as u16;
    let offered = (0..w.len())
        .filter(|&i| w.tenant_of(i) == Some(flood))
        .count() as u64;
    assert!(offered > quota, "quota arm must actually overflow");
    let r = serve_overloaded(
        &w,
        SimTime::from_us(50),
        SimTime::from_secs(100),
        Some(FairnessConfig::default()),
    );
    assert_conserved("quota", &r);
    assert_eq!(
        r.overload.quota_exceeded,
        offered - quota,
        "quota must drop exactly the excess"
    );
    assert_eq!(r.quota_exceeded.len() as u64, offered - quota);
    println!(
        "E19 quota: flood offered {offered}, quota {quota}, dropped {} at submission",
        r.overload.quota_exceeded
    );
    format!(
        "{{\"flood_offered\":{offered},\"quota\":{quota},\"quota_exceeded\":{}}}",
        r.overload.quota_exceeded
    )
}

fn bench(c: &mut Criterion) {
    let throughput_rows = print_throughput_table();
    let (fair_rows, worst_attained) = print_fairness_table();
    let quota_row = print_quota_row();
    println!(
        "BENCH_JSON {{\"experiment\":\"e19_kernels\",\"requests\":{N_REQUESTS},\
         \"input_len\":{INPUT_LEN},\"seed\":{},\"throughput\":[{}],\
         \"fairness\":[{}],\"quota\":{},\
         \"summary\":{{\"worst_attained_share\":{:.3},\"floor\":{:.2}}}}}",
        kernel_seed(),
        throughput_rows.join(","),
        fair_rows.join(","),
        quota_row,
        worst_attained,
        FAIR_SHARE_FLOOR,
    );

    let mix = mixes::kernel_workload(N_REQUESTS, kernel_seed());
    let mut group = c.benchmark_group("e19_kernels");
    group.bench_function("kernel_mix_4_shards", |b| {
        let eng = engine(None);
        b.iter(|| black_box(eng.serve(&mix).expect("serve")));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

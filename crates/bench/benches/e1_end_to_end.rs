//! E1 / Figure 1 — the end-to-end architecture path.
//!
//! Regenerates the block-diagram walk: host → PCI → microcontroller →
//! ROM → configuration module → FPGA → output collection → host, as a
//! latency-breakdown table for a cold (miss) and warm (hit)
//! invocation of each function class, then Criterion-measures the
//! simulator's wall-clock cost for the same paths.

use aaod_algos::ids;
use aaod_bench::{criterion_fast, installed_coproc};
use aaod_core::CoProcessor;
use aaod_fabric::DeviceGeometry;
use aaod_mcu::LruPolicy;
use aaod_sim::report::Table;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_table() {
    let mut cp = installed_coproc(
        DeviceGeometry::default(),
        Box::new(LruPolicy),
        &[ids::AES128, ids::SHA1, ids::CRC32, ids::CRC8],
    );
    let mut t = Table::new(
        "E1 (Fig.1): per-block latency, cold then warm",
        &[
            "function", "state", "pci-in", "lookup", "rom", "reconfig", "input", "exec", "output",
            "pci-out", "total",
        ],
    );
    for (id, input) in [
        (ids::AES128, vec![0u8; 1504]),
        (ids::SHA1, vec![0u8; 1500]),
        (ids::CRC32, vec![0u8; 1500]),
        (ids::CRC8, vec![0u8; 256]),
    ] {
        for state in ["cold", "warm"] {
            let (_, r) = cp.invoke(id, &input).expect("bench invoke");
            t.row_owned(vec![
                format!("algo {id}"),
                state.into(),
                r.pci_input_time.to_string(),
                r.os.lookup_time.to_string(),
                r.os.rom_time.to_string(),
                r.os.reconfig_time.to_string(),
                r.os.input_time.to_string(),
                r.os.exec_time.to_string(),
                r.os.output_time.to_string(),
                r.pci_output_time.to_string(),
                r.total().to_string(),
            ]);
        }
    }
    println!("{t}");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("e1_end_to_end");

    // warm path: function resident
    let mut cp = installed_coproc(DeviceGeometry::default(), Box::new(LruPolicy), &[ids::SHA1]);
    cp.invoke(ids::SHA1, b"warm-up").expect("warm-up");
    group.bench_function("invoke_hit_sha1_1500B", |b| {
        let input = vec![0u8; 1500];
        b.iter(|| {
            let (out, _) = cp.invoke(ids::SHA1, black_box(&input)).expect("invoke");
            black_box(out)
        });
    });

    // cold path: build + install + first invoke (full swap-in)
    group.bench_function("cold_install_and_swap_in_crc32", |b| {
        b.iter(|| {
            let mut cp = CoProcessor::default();
            cp.install(ids::CRC32).expect("install");
            let (out, _) = cp
                .invoke(ids::CRC32, black_box(b"123456789" as &[u8]))
                .expect("invoke");
            black_box(out)
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

//! E20 (extension) — online predictive policy vs the offline planner.
//!
//! The offline `ShardPolicy::Dynamic` planner sees the whole workload
//! before dealing a job; `aaod_core::predict` is the *online* stack
//! that must approach it while seeing one arrival at a time:
//!
//! 1. **engine/straggler** — the E15 straggler mix on a 16-frame
//!    card (SHA-1 alone takes 12 frames, so residency churns).
//!    Speculative prefetch rides the idle window after each batch;
//!    it may never cost the planner more than 10% makespan and must
//!    never change an output byte.
//! 2. **engine/rotation** — the E9 big-three rotation (58 frames of
//!    working set against a 52-frame card): a perfectly predictable
//!    stream where speculation must actually land
//!    (`prefetch_hits > 0`).
//! 3. **cluster/flash-crowd** — the E19 flash-crowd stream through a
//!    4-card fleet. Online: every algorithm starts at one replica and
//!    the hysteresis gate earns/retires replicas from the live
//!    popularity EWMA. Offline: the static 2-replica placement that
//!    saw the whole stream. The online fleet must finish within 1.1×
//!    of the offline makespan, drive a full replicate → de-replicate
//!    cycle, never flip inside the refractory window — and stay
//!    byte-identical.
//!
//! The seed comes from `AAOD_PREDICT_SEED` (the CI predictive matrix
//! sweeps it) so this bench and the determinism suite move together.
//! Baselines live in `BENCH_predictive.json`.

use aaod_algos::{ids, AlgorithmBank};
use aaod_bench::criterion_fast;
use aaod_core::{
    Cluster, ClusterConfig, ClusterResult, CoProcessor, Engine, EngineConfig, EngineResult, Flip,
    PredictConfig, ShardPolicy,
};
use aaod_fabric::DeviceGeometry;
use aaod_sim::report::Table;
use aaod_workload::{mixes, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Online-vs-offline makespan ceiling (the E20 acceptance floor).
const MAKESPAN_CEILING: f64 = 1.1;

fn predict_seed() -> u64 {
    aaod_bench::env_seed("AAOD_PREDICT_SEED", 11)
}

/// A card small enough that the straggler mix churns: SHA-1 (12
/// frames) plus two of the cold algorithms fill it exactly, so XTEA
/// always evicts something.
fn tight_card() -> CoProcessor {
    CoProcessor::builder()
        .geometry(DeviceGeometry::new(16, 16))
        .build()
}

/// The E9 over-committed card: 52 frames against the 58-frame
/// big-three crypto rotation.
fn churn_card() -> CoProcessor {
    CoProcessor::builder()
        .geometry(DeviceGeometry::new(52, 16))
        .build()
}

fn serve(
    w: &Workload,
    workers: usize,
    predict: Option<PredictConfig>,
    factory: fn() -> CoProcessor,
) -> EngineResult {
    Engine::with_factory(
        EngineConfig {
            workers,
            shard: ShardPolicy::Dynamic,
            predict,
            ..EngineConfig::default()
        },
        factory,
    )
    .serve(w)
    .expect("bench serve")
}

/// One engine arm: offline Dynamic vs Dynamic + online speculation on
/// the same cards, returning `(offline, online)`.
fn engine_arm(
    w: &Workload,
    workers: usize,
    factory: fn() -> CoProcessor,
) -> (EngineResult, EngineResult) {
    let offline = serve(w, workers, None, factory);
    let online = serve(w, workers, Some(PredictConfig::default()), factory);
    assert_eq!(
        offline.outputs,
        online.outputs,
        "speculative configuration changed output bytes on {}",
        w.name()
    );
    (offline, online)
}

/// The flash-crowd fleet stream: the hot id rides the tail Zipf rank
/// (~12% of the baseline) so the spike drives a full hysteresis
/// cycle — up through `hot_up`, back down through `cold_down`.
fn crowd_workload(seed: u64) -> Workload {
    let crowd = [ids::CRC32, ids::CRC8, ids::XTEA, ids::SHA1];
    Workload::flash_crowd(&crowd, ids::SHA1, 400, 20, 32, seed)
}

fn cluster_arm(seed: u64) -> (ClusterResult, ClusterResult) {
    let w = crowd_workload(seed);
    let bank = AlgorithmBank::standard();
    let offline = Cluster::new(ClusterConfig {
        cards: 4,
        card_workers: 2,
        replication: 2,
        ..ClusterConfig::default()
    })
    .serve(&w, &bank)
    .expect("offline cluster serve");
    let online = Cluster::new(ClusterConfig {
        cards: 4,
        card_workers: 2,
        predict: Some(PredictConfig::default()),
        ..ClusterConfig::default()
    })
    .serve(&w, &bank)
    .expect("online cluster serve");
    assert_eq!(
        offline.outputs, online.outputs,
        "online replication changed output bytes"
    );
    (offline, online)
}

fn ratio(online_ps: u64, offline_ps: u64) -> f64 {
    online_ps as f64 / offline_ps as f64
}

fn print_predictive_table() {
    let seed = predict_seed();
    let cfg = PredictConfig::default();
    let mut t = Table::new(
        "E20: online predictive policy vs offline Dynamic planner",
        &[
            "arm",
            "offline",
            "online",
            "ratio",
            "prefetches",
            "pf hits",
            "flips",
        ],
    );
    let mut json_rows = Vec::new();

    // Arm 1+2: engine speculation. The straggler arm runs the full
    // 4-shard pool: Dynamic's affinity parks each algorithm on its
    // own shard, so speculation is (correctly) near-silent there and
    // the arm checks it costs nothing. The rotation arm runs one
    // shard — the E9 scenario through the engine — where the stream
    // is perfectly predictable and speculation must land.
    let straggler = mixes::straggler_workload(1000, seed);
    let rotation = Workload::round_robin(&[ids::AES128, ids::TDES, ids::SHA256], 240, 512);
    for (arm, w, workers, factory) in [
        (
            "engine-straggler",
            &straggler,
            4,
            tight_card as fn() -> CoProcessor,
        ),
        ("engine-rotation", &rotation, 1, churn_card),
    ] {
        let (offline, online) = engine_arm(w, workers, factory);
        let r = ratio(online.makespan.as_ps(), offline.makespan.as_ps());
        assert!(
            r <= MAKESPAN_CEILING,
            "{arm}: online makespan {r:.3}x offline (ceiling {MAKESPAN_CEILING}x)"
        );
        if arm == "engine-rotation" {
            // A strict rotation is perfectly predictable: speculation
            // must fire and must actually convert into residency hits.
            assert!(
                online.stats.prefetches > 0,
                "rotation arm: the predictor never speculated"
            );
            assert!(
                online.stats.prefetch_hits > 0,
                "rotation arm: no prefetch ever landed"
            );
        }
        t.row_owned(vec![
            arm.to_string(),
            format!("{:.1}us", offline.makespan.as_ns() / 1000.0),
            format!("{:.1}us", online.makespan.as_ns() / 1000.0),
            format!("{r:.3}x"),
            online.stats.prefetches.to_string(),
            online.stats.prefetch_hits.to_string(),
            "-".to_string(),
        ]);
        json_rows.push(format!(
            "{{\"arm\":\"{arm}\",\"seed\":{seed},\"offline_makespan_ns\":{:.0},\
             \"online_makespan_ns\":{:.0},\"ratio\":{r:.4},\"prefetches\":{},\
             \"prefetch_hits\":{},\"prefetch_aborted\":{}}}",
            offline.makespan.as_ns(),
            online.makespan.as_ns(),
            online.stats.prefetches,
            online.stats.prefetch_hits,
            online.stats.prefetch_aborted,
        ));
    }

    // Arm 3: online cluster replication.
    let (offline, online) = cluster_arm(seed);
    let r = ratio(online.makespan.as_ps(), offline.makespan.as_ps());
    assert!(
        r <= MAKESPAN_CEILING,
        "cluster: online makespan {r:.3}x offline static placement \
         (ceiling {MAKESPAN_CEILING}x)"
    );
    let reps = online
        .flips
        .iter()
        .filter(|f| f.kind == Flip::Replicate)
        .count() as u64;
    let dereps = online
        .flips
        .iter()
        .filter(|f| f.kind == Flip::Dereplicate)
        .count() as u64;
    assert!(reps >= 1, "flash crowd never triggered a replication");
    assert!(dereps >= 1, "dispersal never triggered a de-replication");
    assert_eq!(
        (online.stats.replicates, online.stats.dereplicates),
        (reps, dereps),
        "flip ledger out of step with the flip log"
    );
    // Zero flips inside the refractory window: the oscillation the
    // hysteresis gate exists to prevent.
    let mut last: std::collections::BTreeMap<u16, u64> = std::collections::BTreeMap::new();
    for f in &online.flips {
        if let Some(prev) = last.insert(f.algo, f.at) {
            assert!(
                f.at - prev >= cfg.refractory,
                "algo {} flipped at {} and again at {} (refractory {})",
                f.algo,
                prev,
                f.at,
                cfg.refractory
            );
        }
    }
    t.row_owned(vec![
        "cluster-flash-crowd".to_string(),
        format!("{:.1}us", offline.makespan.as_ns() / 1000.0),
        format!("{:.1}us", online.makespan.as_ns() / 1000.0),
        format!("{r:.3}x"),
        "-".to_string(),
        "-".to_string(),
        format!("{reps}+{dereps}"),
    ]);
    json_rows.push(format!(
        "{{\"arm\":\"cluster-flash-crowd\",\"seed\":{seed},\
         \"offline_makespan_ns\":{:.0},\"online_makespan_ns\":{:.0},\
         \"ratio\":{r:.4},\"replicates\":{reps},\"dereplicates\":{dereps},\
         \"refractory\":{}}}",
        offline.makespan.as_ns(),
        online.makespan.as_ns(),
        cfg.refractory,
    ));

    println!("{t}");
    println!(
        "expected shape: speculation is free or better on churning\n\
         streams (the rotation arm lands most prefetches); the online\n\
         fleet earns the spike replica mid-crowd and retires it after,\n\
         closing most of the gap to the 2-replica offline placement.\n"
    );
    println!(
        "BENCH_JSON {{\"experiment\":\"e20_predictive\",\"rows\":[{}]}}",
        json_rows.join(",")
    );
}

fn bench(c: &mut Criterion) {
    print_predictive_table();
    let rotation = Workload::round_robin(&[ids::AES128, ids::TDES, ids::SHA256], 80, 512);
    let mut group = c.benchmark_group("e20_predictive");
    for (name, predict) in [
        ("rotation_offline", None),
        ("rotation_online", Some(PredictConfig::default())),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(serve(&rotation, 1, predict, churn_card)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

//! E2 — bitstream compression: ratio vs decompression cost per codec.
//!
//! Regenerates the compression table over the whole algorithm bank
//! (modelled numbers; see also `examples/compression_survey.rs` for
//! the per-function breakdown), then Criterion-measures real
//! compress/decompress wall-clock throughput of each codec on the
//! AES-128 bitstream.

use aaod_algos::{ids, AlgorithmBank};
use aaod_bench::criterion_fast;
use aaod_bitstream::codec::{decompress_all, registry};
use aaod_bitstream::{Bitstream, CompressionStats};
use aaod_fabric::DeviceGeometry;
use aaod_sim::report::{f2, Table};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bank_flats(geom: DeviceGeometry) -> Vec<(u16, Vec<u8>)> {
    let bank = AlgorithmBank::standard();
    bank.iter()
        .map(|k| {
            let image = bank.build_image(k.algo_id(), geom).expect("image");
            (k.algo_id(), Bitstream::from_image(&image, geom).flat())
        })
        .collect()
}

fn print_table() {
    let geom = DeviceGeometry::default();
    let flats = bank_flats(geom);
    let raw_total: usize = flats.iter().map(|(_, f)| f.len()).sum();
    let mut t = Table::new(
        "E2: whole-bank compression by codec",
        &[
            "codec",
            "bank KiB",
            "ratio",
            "model cycles/B",
            "decompress MB/s @50MHz",
        ],
    );
    for codec in registry::all(geom.frame_bytes()) {
        let compressed: usize = flats
            .iter()
            .map(|(_, f)| CompressionStats::measure(codec.as_ref(), f).compressed)
            .sum();
        let cpb = codec.cycles_per_output_byte();
        t.row_owned(vec![
            codec.id().to_string(),
            format!("{:.1}", compressed as f64 / 1024.0),
            f2(raw_total as f64 / compressed as f64),
            cpb.to_string(),
            f2(50.0 / cpb as f64),
        ]);
    }
    println!("{t}");
}

fn bench(c: &mut Criterion) {
    print_table();
    let geom = DeviceGeometry::default();
    let flats = bank_flats(geom);
    let aes_flat = &flats
        .iter()
        .find(|(id, _)| *id == ids::AES128)
        .expect("aes present")
        .1;

    let mut group = c.benchmark_group("e2_compression");
    for codec in registry::all(geom.frame_bytes()) {
        let name = codec.id().to_string();
        group.bench_function(format!("compress_aes_{name}"), |b| {
            b.iter(|| black_box(codec.compress(black_box(aes_flat))));
        });
        let compressed = codec.compress(aes_flat);
        group.bench_function(format!("decompress_aes_{name}"), |b| {
            b.iter(|| {
                black_box(
                    decompress_all(codec.as_ref(), black_box(&compressed)).expect("roundtrip"),
                )
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

//! E2 — bitstream compression: ratio vs decompression cost per codec.
//!
//! Regenerates the compression table over the whole algorithm bank
//! (modelled numbers; see also `examples/compression_survey.rs` for
//! the per-function breakdown), then Criterion-measures real
//! compress/decompress wall-clock throughput of each codec on the
//! AES-128 bitstream.
//!
//! The bank corpus is generated **once** and shared by the table and
//! every Criterion group, so the E2 ratios are directly comparable
//! with E17's (same flats, same codecs). The table asserts the E2
//! compression-ratio floors CI re-checks: each production codec must
//! keep beating stored size on the whole bank.

use aaod_algos::{ids, AlgorithmBank};
use aaod_bench::criterion_fast;
use aaod_bitstream::codec::{decompress_all, registry, CodecId};
use aaod_bitstream::{Bitstream, CompressionStats};
use aaod_fabric::DeviceGeometry;
use aaod_sim::report::{f2, Table};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Whole-bank compression-ratio floors (conservative: well under the
/// recorded ratios, so structural regressions trip them but codec
/// tweaks don't).
const RATIO_FLOORS: [(CodecId, f64); 5] = [
    (CodecId::Rle, 1.5),
    (CodecId::Lzss, 2.0),
    (CodecId::Huffman, 1.2),
    (CodecId::FrameXor, 1.5),
    (CodecId::DeltaV2, 2.0),
];

fn bank_flats(geom: DeviceGeometry) -> Vec<(u16, Vec<u8>)> {
    let bank = AlgorithmBank::standard();
    bank.iter()
        .map(|k| {
            let image = bank.build_image(k.algo_id(), geom).expect("image");
            (k.algo_id(), Bitstream::from_image(&image, geom).flat())
        })
        .collect()
}

fn print_table(geom: DeviceGeometry, flats: &[(u16, Vec<u8>)]) {
    let raw_total: usize = flats.iter().map(|(_, f)| f.len()).sum();
    let mut t = Table::new(
        "E2: whole-bank compression by codec",
        &[
            "codec",
            "bank KiB",
            "ratio",
            "model cycles/B",
            "decompress MB/s @50MHz",
        ],
    );
    for codec in registry::all(geom.frame_bytes()) {
        let compressed: usize = flats
            .iter()
            .map(|(_, f)| CompressionStats::measure(codec.as_ref(), f).compressed)
            .sum();
        let ratio = raw_total as f64 / compressed as f64;
        let cpb = codec.cycles_per_output_byte();
        t.row_owned(vec![
            codec.id().to_string(),
            format!("{:.1}", compressed as f64 / 1024.0),
            f2(ratio),
            cpb.to_string(),
            f2(50.0 / cpb as f64),
        ]);
        if let Some(&(_, floor)) = RATIO_FLOORS.iter().find(|(id, _)| *id == codec.id()) {
            assert!(
                ratio >= floor,
                "regression: {} whole-bank ratio fell to {ratio:.2} (floor {floor})",
                codec.id()
            );
        }
    }
    println!("{t}");
}

fn bench(c: &mut Criterion) {
    let geom = DeviceGeometry::default();
    // One corpus for the table and every timed group.
    let flats = bank_flats(geom);
    print_table(geom, &flats);
    let aes_flat = &flats
        .iter()
        .find(|(id, _)| *id == ids::AES128)
        .expect("aes present")
        .1;

    let mut group = c.benchmark_group("e2_compression");
    for codec in registry::all(geom.frame_bytes()) {
        let name = codec.id().to_string();
        group.bench_function(format!("compress_aes_{name}"), |b| {
            b.iter(|| black_box(codec.compress(black_box(aes_flat))));
        });
        let compressed = codec.compress(aes_flat);
        group.bench_function(format!("decompress_aes_{name}"), |b| {
            b.iter(|| {
                black_box(
                    decompress_all(codec.as_ref(), black_box(&compressed)).expect("roundtrip"),
                )
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

//! E3 — reconfiguration latency: partial vs full, compressed vs raw,
//! as a function of function size in frames.
//!
//! The central claim of the paper's architecture: partial
//! reconfiguration makes swap-in cost proportional to the *function*
//! size rather than the *device* size, and ROM compression trades MCU
//! decompression cycles against ROM-fetch volume.

use aaod_algos::ids;
use aaod_bench::criterion_fast;
use aaod_bitstream::codec::CodecId;
use aaod_core::{CoProcessor, ReconfigMode};
use aaod_sim::report::Table;
use aaod_sim::SimTime;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// (first) swap-in reconfiguration time for one algorithm under the
/// given codec and mode.
fn swap_in_time(algo: u16, codec: CodecId, mode: ReconfigMode) -> (usize, SimTime) {
    let mut cp = CoProcessor::builder().codec(codec).mode(mode).build();
    cp.install(algo).expect("install");
    let (_, report) = cp.invoke(algo, &[0u8; 64]).expect("invoke");
    let frames = cp.os().rom().lookup(algo).expect("record").n_frames as usize;
    (frames, report.os.reconfig_time + report.os.rom_time)
}

fn print_table() {
    let mut t = Table::new(
        "E3: swap-in latency vs function size (96-frame device)",
        &[
            "function",
            "frames",
            "partial+lzss",
            "partial+raw",
            "full+lzss",
            "full/partial",
        ],
    );
    for algo in [
        ids::PARITY8,
        ids::CRC32,
        ids::XTEA,
        ids::SHA1,
        ids::SHA256,
        ids::AES128,
        ids::MATMUL8,
    ] {
        let (frames, p_lzss) = swap_in_time(algo, CodecId::Lzss, ReconfigMode::Partial);
        let (_, p_raw) = swap_in_time(algo, CodecId::Null, ReconfigMode::Partial);
        let (_, f_lzss) = swap_in_time(algo, CodecId::Lzss, ReconfigMode::Full);
        t.row_owned(vec![
            format!("algo {algo}"),
            frames.to_string(),
            p_lzss.to_string(),
            p_raw.to_string(),
            f_lzss.to_string(),
            format!("{:.1}x", f_lzss.as_ns() / p_lzss.as_ns()),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: partial latency grows with frame count; full-device\n\
         reconfiguration is flat (device-sized) and dominates small functions.\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("e3_reconfig");
    // wall-clock of a full swap-in cycle (evict + reconfigure) in the
    // simulator, small vs large function
    for (label, algo) in [("small_crc32", ids::CRC32), ("large_aes", ids::AES128)] {
        let mut cp = CoProcessor::default();
        cp.install(algo).expect("install");
        group.bench_function(format!("swap_cycle_{label}"), |b| {
            b.iter(|| {
                let (_, r) = cp.invoke(algo, black_box(&[0u8; 64])).expect("invoke");
                cp.os_mut().evict(algo).expect("evict");
                black_box(r.total())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

//! E4 — frame replacement policy: hit rate and mean service time.
//!
//! The paper mandates evicting the algorithm with the oldest access
//! timestamp (LRU over whole functions). This experiment sweeps that
//! policy against FIFO, LFU, random and the Belady oracle across
//! workload shapes and device capacities.

use aaod_bench::{criterion_fast, installed_coproc};
use aaod_core::run_workload;
use aaod_fabric::DeviceGeometry;
use aaod_mcu::replacement::policy_by_name;
use aaod_mcu::{BeladyPolicy, LruPolicy, ReplacementPolicy};
use aaod_sim::report::Table;
use aaod_workload::{mixes, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const POLICIES: [&str; 5] = ["lru", "fifo", "lfu", "random", "belady"];

fn make_policy(name: &str, trace: &Workload) -> Box<dyn ReplacementPolicy> {
    if name == "belady" {
        Box::new(BeladyPolicy::new(trace.algo_trace()))
    } else {
        policy_by_name(name, 42)
    }
}

fn workloads(algos: &[u16]) -> Vec<Workload> {
    vec![
        Workload::zipf(algos, 250, 1.2, 256, 21),
        Workload::uniform(algos, 250, 256, 22),
        Workload::round_robin(algos, 250, 256),
        Workload::phased(algos, 250, 25, 3, 256, 23),
        Workload::bursty(algos, 250, 10, 256, 24),
    ]
}

fn print_tables() {
    let algos = mixes::full_bank();
    for frames in [40u16, 64, 96] {
        let geom = DeviceGeometry::new(frames, 16);
        let mut t = Table::new(
            &format!("E4: hit rate / mean service by policy ({frames} frames)"),
            &["workload", "lru", "fifo", "lfu", "random", "belady"],
        );
        for w in workloads(&algos) {
            let mut row = vec![w.name().to_string()];
            for name in POLICIES {
                let mut cp = installed_coproc(geom, make_policy(name, &w), &algos);
                let r = run_workload(&mut cp, &w, false).expect("run");
                row.push(format!(
                    "{:.0}% {}",
                    r.hit_rate().unwrap_or(0.0) * 100.0,
                    r.mean_latency()
                ));
            }
            t.row_owned(row);
        }
        println!("{t}");
    }
    println!(
        "expected shape: belady is the upper bound everywhere; LRU leads the\n\
         practical policies on zipf/phased/bursty; round-robin at capacity is\n\
         LRU's worst case; hit rates rise monotonically with device size.\n"
    );
}

fn bench(c: &mut Criterion) {
    print_tables();
    let algos = mixes::full_bank();
    let w = Workload::zipf(&algos, 100, 1.2, 256, 77);
    let mut group = c.benchmark_group("e4_replacement");
    group.bench_function("zipf_100req_lru_64frames", |b| {
        b.iter(|| {
            let mut cp = installed_coproc(DeviceGeometry::new(64, 16), Box::new(LruPolicy), &algos);
            black_box(run_workload(&mut cp, &w, false).expect("run"))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

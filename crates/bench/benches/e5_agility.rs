//! E5 — the agility payoff: agile co-processor vs every alternative.
//!
//! Services the same request streams on (a) the paper's agile card,
//! (b) an FPGA card without partial reconfiguration, (c) a
//! fixed-function AES accelerator with software fallback, and (d) the
//! host CPU, sweeping workload locality; then reports the per-kernel
//! offload crossover.

use aaod_algos::ids;
use aaod_bench::criterion_fast;
use aaod_core::baselines::{FixedFunctionCoProcessor, SoftwareExecutor};
use aaod_core::{run_workload, CoProcessor, Executor, ReconfigMode};
use aaod_sim::report::{f2, Table};
use aaod_workload::{mixes, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn heavy_algos() -> Vec<u16> {
    vec![ids::AES128, ids::TDES, ids::SHA256]
}

fn print_tables() {
    // locality sweep: phase length controls how often the cipher suite
    // changes
    let mut t = Table::new(
        "E5: mean service time by system vs cipher-swap frequency",
        &[
            "phase len",
            "agile(lru)",
            "full-reconfig",
            "fixed(aes)",
            "software",
        ],
    );
    for phase_len in [10usize, 40, 160] {
        let w = Workload::phased(&heavy_algos(), 320, phase_len, 2, 1504, 31);
        let mut row = vec![phase_len.to_string()];
        let mut agile = CoProcessor::default();
        let mut full = CoProcessor::builder().mode(ReconfigMode::Full).build();
        for &id in &heavy_algos() {
            agile.install(id).expect("install");
            full.install(id).expect("install");
        }
        let mut fixed = FixedFunctionCoProcessor::new(ids::AES128).expect("fixed");
        let mut software = SoftwareExecutor::new();
        let systems: Vec<&mut dyn Executor> =
            vec![&mut agile, &mut full, &mut fixed, &mut software];
        for system in systems {
            let r = run_workload(system, &w, false).expect("run");
            row.push(r.mean_latency().to_string());
        }
        t.row_owned(row);
    }
    println!("{t}");

    // per-kernel crossover table
    let mut t = Table::new(
        "E5b: offload crossover (warm hit vs software)",
        &["function", "bytes", "hw hit", "software", "speedup"],
    );
    let mut warm = CoProcessor::default();
    let mut sw = SoftwareExecutor::new();
    for id in ids::ALL {
        warm.install(id).expect("install");
    }
    for id in ids::ALL {
        let len = mixes::default_input_len(id);
        let input = vec![0x5Au8; len];
        warm.invoke(id, &input).expect("swap-in");
        let (_, hw) = warm.invoke(id, &input).expect("hit");
        let (_, sw_t) = sw.invoke(id, &input).expect("software");
        t.row_owned(vec![
            format!("algo {id}"),
            len.to_string(),
            hw.total().to_string(),
            sw_t.to_string(),
            f2(sw_t.as_ns() / hw.total().as_ns()),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: agile wins whenever phases are long enough to\n\
         amortise swap-ins and the kernels are compute-heavy; full-reconfig\n\
         loses by ~an order of magnitude at high swap frequency; crossover\n\
         shows speedup > 1 for ciphers, < 1 for trivial kernels.\n"
    );
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut group = c.benchmark_group("e5_agility");
    let w = Workload::phased(&heavy_algos(), 60, 20, 2, 1504, 5);
    group.bench_function("agile_60req_phased", |b| {
        b.iter(|| {
            let mut cp = CoProcessor::default();
            for &id in &heavy_algos() {
                cp.install(id).expect("install");
            }
            black_box(run_workload(&mut cp, &w, false).expect("run"))
        });
    });
    group.bench_function("software_60req_phased", |b| {
        b.iter(|| {
            let mut sw = SoftwareExecutor::new();
            black_box(run_workload(&mut sw, &w, false).expect("run"))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

//! E6 — the dual-ended ROM: capacity behaviour and record-lookup cost.
//!
//! The ROM stores bitstreams from one end and the record table from
//! the other (paper §2.2). This experiment measures (a) how many
//! functions fit as ROM capacity grows, codec by codec, and (b) the
//! linear-scan record-lookup cost as the bank grows — the paper's
//! microcontroller walks the table for every request.

use aaod_bench::criterion_fast;
use aaod_bitstream::codec::CodecId;
use aaod_core::CoProcessor;
use aaod_mem::{RecordFields, Rom, RECORD_BYTES};
use aaod_sim::report::Table;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_tables() {
    // capacity: functions installed before the regions collide
    let mut t = Table::new(
        "E6: bank functions fitting in ROM vs capacity and codec",
        &["rom KiB", "null", "rle", "lzss", "huffman", "frame-xor"],
    );
    for kib in [16usize, 32, 64, 128] {
        let mut row = vec![kib.to_string()];
        for codec in CodecId::ALL {
            let mut cp = CoProcessor::builder()
                .rom_capacity(kib * 1024)
                .codec(codec)
                .build();
            let mut installed = 0;
            for id in aaod_algos::ids::ALL {
                if cp.install(id).is_ok() {
                    installed += 1;
                }
            }
            row.push(installed.to_string());
        }
        t.row_owned(row);
    }
    println!("{t}");

    // lookup cost: linear record-table scan
    let mut t = Table::new(
        "E6b: record lookup probes (linear table scan)",
        &["records", "probes: first", "probes: last", "probes: miss"],
    );
    for n in [4u16, 16, 64, 256] {
        let mut rom = Rom::new(1 << 20);
        for i in 0..n {
            rom.download(
                RecordFields {
                    algo_id: i,
                    uncompressed_len: 64,
                    codec: 0,
                    input_width: 4,
                    output_width: 4,
                    n_frames: 1,
                },
                &[0u8; 16],
            )
            .expect("fits");
        }
        let probes = |rom: &Rom, id: u16| {
            let before = rom.record_probes();
            let _ = rom.lookup(id);
            rom.record_probes() - before
        };
        t.row_owned(vec![
            n.to_string(),
            probes(&rom, 0).to_string(),
            probes(&rom, n - 1).to_string(),
            probes(&rom, 9999).to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: capacity scales with codec ratio (lzss fits the most);\n\
         lookup probes are O(position) with worst case = table size.\n"
    );
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut group = c.benchmark_group("e6_rom");
    let mut rom = Rom::new(1 << 20);
    for i in 0..256u16 {
        rom.download(
            RecordFields {
                algo_id: i,
                uncompressed_len: 64,
                codec: 0,
                input_width: 4,
                output_width: 4,
                n_frames: 1,
            },
            &[0u8; 16],
        )
        .expect("fits");
    }
    group.bench_function("lookup_last_of_256", |b| {
        b.iter(|| black_box(rom.lookup(black_box(255))));
    });
    group.bench_function("download_plus_record", |b| {
        b.iter(|| {
            let mut rom = Rom::new(64 * 1024);
            for i in 0..16u16 {
                rom.download(
                    RecordFields {
                        algo_id: i,
                        uncompressed_len: 1024,
                        codec: 1,
                        input_width: 8,
                        output_width: 8,
                        n_frames: 2,
                    },
                    black_box(&[7u8; 512]),
                )
                .expect("fits");
            }
            black_box(rom.free_bytes())
        });
    });
    group.finish();
    let _ = RECORD_BYTES;
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

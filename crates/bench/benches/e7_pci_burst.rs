//! E7 — PCI transfer efficiency: burst length vs effective bandwidth,
//! and the width-multiple padding overhead of the data modules.
//!
//! The card "can be fitted to a standard desktop computer" over PCI;
//! every host↔card byte crosses this bus, so its burst behaviour caps
//! the whole system. Compares the paper-era 32-bit/33 MHz slot with
//! the Stratix board's 64-bit/66 MHz interface.

use aaod_bench::criterion_fast;
use aaod_mcu::data_modules::pad_to_width;
use aaod_pci::{Direction, PciBus, PciConfig};
use aaod_sim::report::{f2, pct, Table};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_tables() {
    let mut t = Table::new(
        "E7: effective PCI bandwidth (MB/s) vs burst length, 64 KiB writes",
        &["burst words", "pci 32/33", "pci 64/66", "% of 64/66 peak"],
    );
    for burst in [4u64, 16, 64, 256] {
        let legacy = PciConfig {
            max_burst_words: burst,
            ..PciConfig::pci33_32()
        };
        let modern = PciConfig {
            max_burst_words: burst,
            ..PciConfig::default()
        };
        let bw_legacy = PciBus::new(legacy).effective_bandwidth(64 * 1024, Direction::Write);
        let bw_modern = PciBus::new(modern).effective_bandwidth(64 * 1024, Direction::Write);
        t.row_owned(vec![
            burst.to_string(),
            f2(bw_legacy / 1e6),
            f2(bw_modern / 1e6),
            pct(bw_modern / modern.peak_bandwidth()),
        ]);
    }
    println!("{t}");

    let mut t = Table::new(
        "E7b: width-multiple padding overhead (paper §2.3)",
        &[
            "payload bytes",
            "width 4",
            "width 16",
            "width 64",
            "width 128",
        ],
    );
    for len in [1usize, 20, 100, 1500] {
        let mut row = vec![len.to_string()];
        for width in [4u16, 16, 64, 128] {
            let padded = pad_to_width(len, width);
            row.push(format!("{padded} (+{})", padded - len));
        }
        t.row_owned(row);
    }
    println!("{t}");
    println!(
        "expected shape: bandwidth saturates with burst length and tops out\n\
         below peak (per-transaction overheads); padding overhead is worst\n\
         for small payloads on wide records.\n"
    );
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut group = c.benchmark_group("e7_pci");
    let mut bus = PciBus::new(PciConfig::default());
    group.bench_function("model_64KiB_write", |b| {
        b.iter(|| black_box(bus.write(black_box(64 * 1024))));
    });
    let mut legacy = PciBus::new(PciConfig::pci33_32());
    group.bench_function("model_64KiB_write_legacy", |b| {
        b.iter(|| black_box(legacy.write(black_box(64 * 1024))));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

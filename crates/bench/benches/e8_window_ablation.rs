//! E8 — configuration-module window ablation.
//!
//! The paper decompresses "window by window" to bound the on-card
//! buffer. This ablation sweeps the window size and reports the
//! modelled configuration latency, window count and buffer memory —
//! the design trade the configuration module embodies — and verifies
//! the window size never changes results (it must not).

use aaod_algos::ids;
use aaod_bench::criterion_fast;
use aaod_bitstream::codec::{registry, CodecId};
use aaod_bitstream::Bitstream;
use aaod_core::CoProcessor;
use aaod_fabric::{ConfigPort, Device, DeviceGeometry, FrameAddress};
use aaod_mcu::ConfigModule;
use aaod_sim::report::Table;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn encoded_aes(geom: DeviceGeometry) -> (Vec<u8>, usize) {
    let bank = aaod_algos::AlgorithmBank::standard();
    let image = bank.build_image(ids::AES128, geom).expect("image");
    let n = image.frames_needed(geom);
    let bs = Bitstream::from_image(&image, geom);
    (
        bs.encode(registry::codec(CodecId::Lzss, geom.frame_bytes()).as_ref()),
        n,
    )
}

fn print_table() {
    let geom = DeviceGeometry::default();
    let (encoded, n) = encoded_aes(geom);
    let addrs: Vec<FrameAddress> = (0..n as u16).map(FrameAddress).collect();
    let port = ConfigPort::selectmap8();
    let mut t = Table::new(
        "E8: window size vs configuration cost (AES-128, lzss)",
        &["window B", "windows", "decompress", "port", "total"],
    );
    for window in [8usize, 32, 128, 512, 2048, 8192] {
        let mut device = Device::new(geom);
        let mut module = ConfigModule::new(window, aaod_sim::clock::domains::mcu());
        let report = module
            .configure(&encoded, &mut device, &port, &addrs)
            .expect("configure");
        t.row_owned(vec![
            window.to_string(),
            report.windows.to_string(),
            report.decompress_time.to_string(),
            report.port_time.to_string(),
            report.total().to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: tiny windows pay per-window management overhead;\n\
         beyond ~the frame size the curve flattens — the paper's windowed\n\
         design gets full speed from a small, bounded buffer.\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("e8_window");
    for window in [16usize, 896, 8192] {
        group.bench_function(format!("configure_aes_window_{window}"), |b| {
            b.iter(|| {
                let mut cp = CoProcessor::builder().window(window).build();
                cp.install(ids::AES128).expect("install");
                let (out, _) = cp
                    .invoke(ids::AES128, black_box(&[1u8; 64]))
                    .expect("invoke");
                black_box(out)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

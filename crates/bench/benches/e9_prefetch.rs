//! E9 (extension) — speculative-configuration ablation.
//!
//! The paper's controller is purely reactive; this extension lets the
//! mini-OS pre-configure the Markov-predicted next algorithm into free
//! frames during idle time. The ablation compares hit rate and mean
//! service time with prefetching on and off, across workload shapes —
//! prefetching helps predictable streams (alternation, phases) and is
//! harmless noise on random ones.

use aaod_bench::criterion_fast;
use aaod_core::{run_workload, CoProcessor};
use aaod_fabric::DeviceGeometry;
use aaod_sim::report::Table;
use aaod_workload::{mixes, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn run(prefetch: bool, w: &Workload, algos: &[u16], frames: u16) -> (f64, String, u64) {
    let mut cp = CoProcessor::builder()
        .geometry(DeviceGeometry::new(frames, 16))
        .prefetch(prefetch)
        .build();
    for &id in algos {
        cp.install(id).expect("install");
    }
    let r = run_workload(&mut cp, w, false).expect("run");
    let s = cp.stats();
    (
        r.hit_rate().unwrap_or(0.0),
        r.mean_latency().to_string(),
        s.prefetch_hits,
    )
}

fn print_table() {
    let algos = mixes::crypto_mix();
    // a device that holds roughly half the crypto bank: eviction is
    // constant, so prediction quality matters
    let frames = 52u16;
    // AES(24) + 3DES(18) + SHA-256(16) = 58 frames > 52: strict
    // rotation misses every time reactively, but is perfectly
    // predictable for the prefetcher.
    let big_three = [
        aaod_algos::ids::AES128,
        aaod_algos::ids::TDES,
        aaod_algos::ids::SHA256,
    ];
    let workloads = vec![
        Workload::round_robin(&big_three, 240, 512),
        Workload::phased(&algos, 240, 30, 2, 512, 91),
        Workload::bursty(&algos, 240, 8, 512, 92),
        Workload::uniform(&algos, 240, 512, 93),
    ];
    let mut t = Table::new(
        "E9: prefetch ablation (52-frame device, crypto bank)",
        &[
            "workload",
            "hit% off",
            "hit% on",
            "mean off",
            "mean on",
            "prefetch hits",
        ],
    );
    for w in workloads {
        let (h_off, m_off, _) = run(false, &w, &algos, frames);
        let (h_on, m_on, ph) = run(true, &w, &algos, frames);
        t.row_owned(vec![
            w.name().to_string(),
            format!("{:.0}%", h_off * 100.0),
            format!("{:.0}%", h_on * 100.0),
            m_off,
            m_on,
            ph.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: predictable over-committed streams (round-robin)\n\
         jump from ~0% to near-perfect hit rates; uniform streams gain a\n\
         little; phase boundaries can cost a mispredicted swap.\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let algos = mixes::crypto_mix();
    let w = Workload::round_robin(
        &[
            aaod_algos::ids::AES128,
            aaod_algos::ids::TDES,
            aaod_algos::ids::SHA256,
        ],
        80,
        512,
    );
    let mut group = c.benchmark_group("e9_prefetch");
    for prefetch in [false, true] {
        group.bench_function(format!("round_robin_prefetch_{prefetch}"), |b| {
            b.iter(|| {
                let mut cp = CoProcessor::builder()
                    .geometry(DeviceGeometry::new(52, 16))
                    .prefetch(prefetch)
                    .build();
                for &id in &algos {
                    cp.install(id).expect("install");
                }
                black_box(run_workload(&mut cp, &w, false).expect("run"))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_fast();
    targets = bench
}
criterion_main!(benches);

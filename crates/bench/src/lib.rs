//! Shared setup helpers for the experiment benches (E1–E8).
//!
//! Each bench in `benches/` regenerates one experiment table from
//! DESIGN.md/EXPERIMENTS.md: it prints the modelled-time table (the
//! paper-style result) and then takes Criterion wall-clock
//! measurements of the simulator itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aaod_core::CoProcessor;
use aaod_mcu::ReplacementPolicy;

/// Builds a co-processor with the given policy and geometry, with all
/// of `algos` installed.
///
/// # Panics
///
/// Panics if an install fails (bench configuration error).
pub fn installed_coproc(
    geometry: aaod_fabric::DeviceGeometry,
    policy: Box<dyn ReplacementPolicy>,
    algos: &[u16],
) -> CoProcessor {
    let mut cp = CoProcessor::builder()
        .geometry(geometry)
        .policy(policy)
        .build();
    for &id in algos {
        cp.install(id).expect("bench install");
    }
    cp
}

/// The default fast Criterion configuration for these benches: the
/// tables are the experiment output; the wall-clock numbers are
/// secondary, so keep sampling short.
pub fn criterion_fast() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(700))
}

/// The canonical seed-from-environment helper shared by the chaos and
/// determinism suites: `var` parsed as a decimal `u64` when set (the
/// CI seed matrices sweep it), else `default`.
pub fn env_seed(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

//! LUT-symmetry canonicalisation (the paper's open problem, v2).
//!
//! A 4-input LUT's truth table is a 16-bit word; permuting the LUT's
//! *inputs* permutes the table's bits without changing the logic
//! function (the router absorbs the pin swap). Two configuration
//! frames that differ only by such input permutations therefore
//! configure the *same* hardware up to wiring — the CLB symmetry the
//! source paper's conclusion asks compression to exploit.
//!
//! This module maps every 16-bit LUT word to the lexicographically
//! smallest member of its input-permutation class (the canonical
//! representative) and records which of the 24 permutations achieved
//! it, so the exact original word — and thus the exact original frame
//! — is recoverable byte for byte. Frames are canonicalised word by
//! word (2-byte little-endian words; a trailing odd byte passes
//! through untouched), hashed in canonical form for the
//! content-addressed [`FrameStore`](crate::FrameStore), and
//! de-canonicalised on decode with the recorded inverse permutations.

/// Number of input permutations of a 4-input LUT (4! = 24).
pub const N_PERMS: usize = 24;

/// The 24 permutations of four inputs, lexicographic order. Entry `p`
/// is the permutation `[p0, p1, p2, p3]`: input line `k` of the
/// permuted LUT reads original input line `p[k]`.
const PERMS: [[u8; 4]; N_PERMS] = [
    [0, 1, 2, 3],
    [0, 1, 3, 2],
    [0, 2, 1, 3],
    [0, 2, 3, 1],
    [0, 3, 1, 2],
    [0, 3, 2, 1],
    [1, 0, 2, 3],
    [1, 0, 3, 2],
    [1, 2, 0, 3],
    [1, 2, 3, 0],
    [1, 3, 0, 2],
    [1, 3, 2, 0],
    [2, 0, 1, 3],
    [2, 0, 3, 1],
    [2, 1, 0, 3],
    [2, 1, 3, 0],
    [2, 3, 0, 1],
    [2, 3, 1, 0],
    [3, 0, 1, 2],
    [3, 0, 2, 1],
    [3, 1, 0, 2],
    [3, 1, 2, 0],
    [3, 2, 0, 1],
    [3, 2, 1, 0],
];

/// Bit-index maps: `TABLES[p][i]` is the table position the bit at
/// position `i` moves to under permutation `p`, plus each
/// permutation's inverse — built once on first use.
struct PermTables {
    /// `maps[p][i]`: position in the permuted table whose value is
    /// `table[i]` of the original.
    maps: [[u8; 16]; N_PERMS],
    /// `inverse[p]` is the index of the permutation undoing `PERMS[p]`.
    inverse: [u8; N_PERMS],
}

fn tables() -> &'static PermTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<PermTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut maps = [[0u8; 16]; N_PERMS];
        for (p, perm) in PERMS.iter().enumerate() {
            for (i, slot) in maps[p].iter_mut().enumerate() {
                // index bit k of the permuted position takes the value
                // of index bit perm[k] of the original position
                let mut j = 0usize;
                for (k, &src) in perm.iter().enumerate() {
                    j |= ((i >> src) & 1) << k;
                }
                *slot = j as u8;
            }
        }
        let mut inverse = [0u8; N_PERMS];
        for (p, perm) in PERMS.iter().enumerate() {
            let mut inv = [0u8; 4];
            for (k, &src) in perm.iter().enumerate() {
                inv[src as usize] = k as u8;
            }
            inverse[p] = PERMS
                .iter()
                .position(|q| *q == inv)
                .expect("S4 is closed under inversion") as u8;
        }
        PermTables { maps, inverse }
    })
}

/// Applies input permutation `perm` (an index into the 24-element
/// permutation group) to truth table `t`.
///
/// # Panics
///
/// Panics if `perm >= 24`.
pub fn apply_perm(t: u16, perm: u8) -> u16 {
    let map = &tables().maps[perm as usize];
    let mut out = 0u16;
    for (i, &j) in map.iter().enumerate() {
        out |= ((t >> i) & 1) << j;
    }
    out
}

/// The index of the permutation that undoes `perm`.
///
/// # Panics
///
/// Panics if `perm >= 24`.
pub fn inverse_perm(perm: u8) -> u8 {
    tables().inverse[perm as usize]
}

/// Canonicalises one LUT4 truth table: returns the lexicographically
/// smallest input-permuted form and the permutation index that
/// produced it (ties break on the lowest index, so the result is a
/// pure function of `t`).
pub fn canon_word(t: u16) -> (u16, u8) {
    let mut best = t;
    let mut best_p = 0u8;
    for p in 0..N_PERMS as u8 {
        let candidate = apply_perm(t, p);
        if candidate < best {
            best = candidate;
            best_p = p;
        }
    }
    (best, best_p)
}

/// Undoes [`canon_word`]: recovers the original table from its
/// canonical form and the recorded permutation index.
///
/// # Panics
///
/// Panics if `perm >= 24`.
pub fn decanon_word(canonical: u16, perm: u8) -> u16 {
    apply_perm(canonical, inverse_perm(perm))
}

/// Applies one input permutation to *every* LUT word of a frame — the
/// global pin swap a placement tool performs consistently over a
/// region. 2-byte little-endian words; a trailing odd byte is copied
/// unchanged.
///
/// # Panics
///
/// Panics if `perm >= 24`.
pub fn permute_frame(frame: &[u8], perm: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(frame.len());
    for w in frame.chunks_exact(2) {
        let t = apply_perm(u16::from_le_bytes([w[0], w[1]]), perm);
        out.extend_from_slice(&t.to_le_bytes());
    }
    if frame.len() % 2 == 1 {
        out.push(frame[frame.len() - 1]);
    }
    out
}

/// Canonicalises a frame: picks, among the 24 global input
/// permutations applied via [`permute_frame`], the lexicographically
/// smallest resulting byte string (ties break on the lowest
/// permutation index, so the result is a pure function of the frame).
/// Returns the canonical bytes and the permutation that produced
/// them; [`decanon_frame`] inverts it exactly.
///
/// Frames that are global pin swaps of one another share a canonical
/// form — the frame-level equivalence the content-addressed store
/// hashes by. (Per-word symmetry classes are exposed separately by
/// [`canon_word`] / [`decanon_word`].)
pub fn canon_frame(frame: &[u8]) -> (Vec<u8>, u8) {
    let mut best = permute_frame(frame, 0);
    let mut best_p = 0u8;
    for p in 1..N_PERMS as u8 {
        let candidate = permute_frame(frame, p);
        if candidate < best {
            best = candidate;
            best_p = p;
        }
    }
    (best, best_p)
}

/// Undoes [`canon_frame`]: recovers the original frame from its
/// canonical form and the recorded permutation index.
///
/// # Panics
///
/// Panics if `perm >= 24` (callers validate wire data first).
pub fn decanon_frame(canonical: &[u8], perm: u8) -> Vec<u8> {
    permute_frame(canonical, inverse_perm(perm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaod_sim::SplitMix64;

    #[test]
    fn perm_tables_are_permutations() {
        for p in 0..N_PERMS as u8 {
            let mut seen = [false; 16];
            for i in 0..16u16 {
                let one = 1u16 << i;
                let moved = apply_perm(one, p);
                assert_eq!(moved.count_ones(), 1, "perm {p} not a bit permutation");
                let j = moved.trailing_zeros() as usize;
                assert!(!seen[j], "perm {p} collides at {j}");
                seen[j] = true;
            }
        }
    }

    #[test]
    fn inverse_undoes_apply() {
        let mut rng = SplitMix64::new(0xCA_0401);
        for _ in 0..500 {
            let t = rng.next_u64() as u16;
            for p in 0..N_PERMS as u8 {
                assert_eq!(apply_perm(apply_perm(t, p), inverse_perm(p)), t);
            }
        }
    }

    #[test]
    fn canon_decanon_word_identity() {
        for t in 0..=u16::MAX {
            let (c, p) = canon_word(t);
            assert_eq!(decanon_word(c, p), t, "table {t:#06x}");
            assert!(c <= t, "canonical form is minimal");
        }
    }

    #[test]
    fn canon_is_permutation_invariant() {
        let mut rng = SplitMix64::new(0xCA_0402);
        for _ in 0..2000 {
            let t = rng.next_u64() as u16;
            let p = rng.index(N_PERMS) as u8;
            assert_eq!(
                canon_word(apply_perm(t, p)).0,
                canon_word(t).0,
                "permuted table {t:#06x} left its class under perm {p}"
            );
        }
    }

    #[test]
    fn canon_frame_roundtrips_odd_and_even() {
        let mut rng = SplitMix64::new(0xCA_0403);
        for len in [0usize, 1, 2, 3, 15, 16, 896, 897] {
            let mut frame = vec![0u8; len];
            rng.fill(&mut frame);
            let (canonical, perm) = canon_frame(&frame);
            assert_eq!(canonical.len(), frame.len());
            assert!(canonical <= frame, "canonical form is minimal");
            assert_eq!(decanon_frame(&canonical, perm), frame, "len {len}");
        }
    }

    #[test]
    fn permuted_frames_share_canonical_form() {
        // a frame whose every LUT word is permuted by the same pin swap
        // canonicalises to the identical byte string
        let mut rng = SplitMix64::new(0xCA_0404);
        let mut frame = vec![0u8; 128];
        rng.fill(&mut frame);
        for p in 1..N_PERMS as u8 {
            let permuted = permute_frame(&frame, p);
            assert_eq!(canon_frame(&permuted).0, canon_frame(&frame).0, "perm {p}");
        }
    }

    #[test]
    fn permute_frame_composes_like_apply_perm() {
        let mut rng = SplitMix64::new(0xCA_0405);
        let mut frame = vec![0u8; 33];
        rng.fill(&mut frame);
        for p in 0..N_PERMS as u8 {
            let back = permute_frame(&permute_frame(&frame, p), inverse_perm(p));
            assert_eq!(back, frame, "perm {p}");
        }
    }
}

//! DeltaV2 — frame-dedup delta codec (compression v2).
//!
//! The v1 codecs treat the bitstream as a flat byte string. DeltaV2
//! instead encodes it *frame by frame*, exploiting the structure the
//! paper's conclusion points at: configuration frames repeat — inside
//! one bitstream, across bitstreams of different algorithms, and up to
//! LUT-input permutation (CLB symmetry). Each frame becomes one of
//! four records, whichever serialises smallest:
//!
//! * `REF_EXACT` — a 2-byte reference to an earlier byte-identical
//!   frame of the same stream;
//! * `REF_CANON` — a reference to an earlier frame whose LUT-canonical
//!   form matches (a global pin swap of this frame, see
//!   [`canon`](crate::canon)), plus the one permutation index that
//!   rebuilds this frame byte-exactly;
//! * `XOR` — an RLE-compressed XOR delta against one of the previous
//!   few frames (near-identical neighbours);
//! * `V1` — fall back to the best of Null/Rle/Lzss/Huffman for this
//!   frame alone.
//!
//! Large frames additionally carry a **store hint**: the canonical and
//! raw content hashes of the decoded frame, a CRC-32 guard, and the
//! frame's canonical permutation index. The configuration module
//! probes the card's content-addressed [`FrameStore`](crate::FrameStore)
//! with these hints and skips the decode entirely on a hit — that
//! cross-bitstream dedup is where the reconfiguration-latency win
//! comes from. The stream itself stays fully self-contained: every
//! record still carries its body, so a store-less decoder (or a store
//! miss) always succeeds.

use super::registry;
use super::rle::Rle;
use super::{decompress_all, Codec, CodecId, Decompressor};
use crate::canon::{canon_frame, decanon_frame, N_PERMS};
use crate::crc::crc32;
use crate::error::BitstreamError;
use crate::store::content_hash;
use std::collections::HashMap;
use std::sync::Arc;

/// Record opcodes (low nibble of the op byte).
const OP_V1: u8 = 0;
const OP_REF_EXACT: u8 = 1;
const OP_REF_CANON: u8 = 2;
const OP_XOR: u8 = 3;
/// High bit: a store hint precedes the record body.
const FLAG_HINT: u8 = 0x80;

/// Bytes a store hint occupies: canonical hash (16) + raw hash (8) +
/// frame CRC (4) + canonical permutation index (1).
const HINT_BYTES: usize = 29;

/// Frames at least this long carry a store hint (below it the hint
/// costs more than dedup can save).
const HINT_MIN_FRAME: usize = 4 * HINT_BYTES;

/// How many immediately preceding frames are tried as XOR bases.
const XOR_CANDIDATES: usize = 4;

/// Inner codecs eligible as per-frame V1 fallback bodies (frame-level
/// codecs are excluded to keep decoding non-recursive).
const V1_FALLBACKS: [CodecId; 4] = [CodecId::Null, CodecId::Rle, CodecId::Lzss, CodecId::Huffman];

fn err(msg: &str) -> BitstreamError {
    BitstreamError::CorruptPayload(format!("delta-v2: {msg}"))
}

/// The frame-dedup delta codec. `frame_bytes` must match the device
/// geometry the bitstream was built for, exactly as for `FrameXor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaV2 {
    frame_bytes: usize,
}

impl DeltaV2 {
    /// Creates the codec for a given frame length (clamped to ≥ 1).
    pub fn new(frame_bytes: usize) -> Self {
        DeltaV2 {
            frame_bytes: frame_bytes.max(1),
        }
    }

    /// The frame length this codec chunks by.
    pub fn frame_bytes(&self) -> usize {
        self.frame_bytes
    }
}

/// The store-probe hint attached to large frames' records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreHint {
    /// 128-bit hash of the frame's canonical form (store bucket key).
    pub canon_hash: u128,
    /// 64-bit hash of the exact frame bytes (variant key).
    pub raw_hash: u64,
    /// CRC-32 of the exact frame bytes — guards every store-served
    /// reconstruction, so a hash collision degrades to a decode, never
    /// to wrong bytes.
    pub frame_crc: u32,
    /// The permutation index rebuilding this frame from its canonical
    /// form via [`decanon_frame`].
    pub perm: u8,
}

/// One parsed (not yet decoded) frame record.
#[derive(Debug, Clone)]
pub struct RecordView {
    /// Frame index within the stream.
    pub index: usize,
    /// Exact decoded length of this frame.
    pub expected_len: usize,
    /// Store-probe hint, when the encoder attached one.
    pub hint: Option<StoreHint>,
    op: u8,
    /// Body bounds within the compressed stream.
    body: (usize, usize),
}

/// Streaming record-level reader over a DeltaV2 stream. The generic
/// [`Decompressor`] drives it record by record; the configuration
/// module uses it directly so it can substitute store-served frames
/// for decoded ones (every decoded-or-served frame is retained because
/// later records may reference it).
pub struct DeltaV2Reader<'a> {
    data: &'a [u8],
    frame_bytes: usize,
    pos: usize,
    total_len: usize,
    produced: usize,
    next_index: usize,
    frames: Vec<Arc<Vec<u8>>>,
}

impl<'a> DeltaV2Reader<'a> {
    /// Parses the stream header.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::CorruptPayload`] on a truncated
    /// header.
    pub fn new(frame_bytes: usize, data: &'a [u8]) -> Result<Self, BitstreamError> {
        if data.len() < 4 {
            return Err(err("missing length header"));
        }
        let total_len = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
        Ok(DeltaV2Reader {
            data,
            frame_bytes: frame_bytes.max(1),
            pos: 4,
            total_len,
            produced: 0,
            next_index: 0,
            frames: Vec::new(),
        })
    }

    /// Total decoded byte length declared by the stream.
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// True once every declared byte has a frame.
    pub fn done(&self) -> bool {
        self.produced == self.total_len
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], BitstreamError> {
        if self.pos + n > self.data.len() {
            return Err(err(&format!("{what} truncated")));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn read_u16(&mut self, what: &str) -> Result<u16, BitstreamError> {
        let s = self.take(2, what)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn read_u32(&mut self, what: &str) -> Result<u32, BitstreamError> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn read_perm(&mut self, what: &str) -> Result<u8, BitstreamError> {
        let p = self.take(1, what)?[0];
        if usize::from(p) >= N_PERMS {
            return Err(err("perm index out of range"));
        }
        Ok(p)
    }

    /// Parses the next record's envelope without decoding its body.
    /// Returns `None` when the stream is complete.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::CorruptPayload`] on malformed wire
    /// data, including trailing garbage after the final record.
    pub fn next_record(&mut self) -> Result<Option<RecordView>, BitstreamError> {
        if self.done() {
            if self.pos != self.data.len() {
                return Err(err("trailing bytes after final frame"));
            }
            return Ok(None);
        }
        let expected_len = self.frame_bytes.min(self.total_len - self.produced);
        let op_byte = self.take(1, "op byte")?[0];
        let op = op_byte & 0x0F;
        if op > OP_XOR || (op_byte & !(FLAG_HINT | 0x0F)) != 0 {
            return Err(err("unknown record op"));
        }
        let hint = if op_byte & FLAG_HINT != 0 {
            let canon_bytes = self.take(16, "hint canon hash")?;
            let canon_hash = u128::from_le_bytes(canon_bytes.try_into().expect("16 bytes"));
            let raw_bytes = self.take(8, "hint raw hash")?;
            let raw_hash = u64::from_le_bytes(raw_bytes.try_into().expect("8 bytes"));
            let frame_crc = self.read_u32("hint crc")?;
            let perm = self.read_perm("hint perm")?;
            Some(StoreHint {
                canon_hash,
                raw_hash,
                frame_crc,
                perm,
            })
        } else {
            None
        };
        let body_start = self.pos;
        match op {
            OP_V1 => {
                let inner = self.take(1, "v1 codec id")?[0];
                if !V1_FALLBACKS.iter().any(|c| c.to_byte() == inner) {
                    return Err(err("v1 body names a frame-level codec"));
                }
                let len = self.read_u32("v1 body length")? as usize;
                self.take(len, "v1 body")?;
            }
            OP_REF_EXACT => {
                self.read_u16("ref index")?;
            }
            OP_REF_CANON => {
                self.read_u16("ref index")?;
                self.read_perm("ref perm")?;
            }
            OP_XOR => {
                self.read_u16("ref index")?;
                let len = self.read_u32("xor body length")? as usize;
                self.take(len, "xor body")?;
            }
            _ => unreachable!("op validated above"),
        }
        let view = RecordView {
            index: self.next_index,
            expected_len,
            hint,
            op,
            body: (body_start, self.pos),
        };
        Ok(Some(view))
    }

    fn ref_frame(&self, at: usize) -> Result<&Arc<Vec<u8>>, BitstreamError> {
        self.frames.get(at).ok_or_else(|| err("forward reference"))
    }

    /// Decodes `record`'s body into the frame bytes, retains the frame
    /// for later references, and returns it.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::CorruptPayload`] when the body is
    /// inconsistent (bad reference, wrong decoded length, …).
    pub fn decode_record(&mut self, record: &RecordView) -> Result<Arc<Vec<u8>>, BitstreamError> {
        let body = &self.data[record.body.0..record.body.1];
        let frame = match record.op {
            OP_V1 => {
                let inner = CodecId::from_byte(body[0])?;
                let len = u32::from_le_bytes(body[1..5].try_into().expect("4 bytes")) as usize;
                let codec = registry::codec(inner, self.frame_bytes);
                decompress_all(codec.as_ref(), &body[5..5 + len])?
            }
            OP_REF_EXACT => {
                let at = u16::from_le_bytes([body[0], body[1]]) as usize;
                self.ref_frame(at)?.as_ref().clone()
            }
            OP_REF_CANON => {
                let at = u16::from_le_bytes([body[0], body[1]]) as usize;
                let perm = body[2];
                let (canonical, _) = canon_frame(self.ref_frame(at)?);
                decanon_frame(&canonical, perm)
            }
            OP_XOR => {
                let at = u16::from_le_bytes([body[0], body[1]]) as usize;
                let len = u32::from_le_bytes(body[2..6].try_into().expect("4 bytes")) as usize;
                let delta = decompress_all(&Rle, &body[6..6 + len])?;
                let base = self.ref_frame(at)?;
                if delta.len() != base.len() {
                    return Err(err("xor delta length mismatch"));
                }
                base.iter().zip(&delta).map(|(b, d)| b ^ d).collect()
            }
            _ => unreachable!("op validated during parse"),
        };
        if frame.len() != record.expected_len {
            return Err(err("frame length mismatch"));
        }
        let frame = Arc::new(frame);
        self.retain(record, Arc::clone(&frame));
        Ok(frame)
    }

    /// Accepts an externally-obtained frame (a store hit) in place of
    /// decoding, retaining it for later references. The caller is
    /// responsible for having CRC-verified it against the record's
    /// hint.
    ///
    /// # Errors
    ///
    /// Rejects frames of the wrong length.
    pub fn accept_frame(
        &mut self,
        record: &RecordView,
        frame: Arc<Vec<u8>>,
    ) -> Result<(), BitstreamError> {
        if frame.len() != record.expected_len {
            return Err(err("accepted frame length mismatch"));
        }
        self.retain(record, frame);
        Ok(())
    }

    fn retain(&mut self, record: &RecordView, frame: Arc<Vec<u8>>) {
        debug_assert_eq!(record.index, self.next_index, "records consumed in order");
        self.produced += frame.len();
        self.frames.push(frame);
        self.next_index += 1;
    }
}

impl Codec for DeltaV2 {
    fn id(&self) -> CodecId {
        CodecId::DeltaV2
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let fb = self.frame_bytes;
        let mut out = Vec::with_capacity(data.len() / 2 + 8);
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        // first occurrence of each exact frame / canonical class, for
        // back-references (lookup only — iteration order never matters)
        let mut exact: HashMap<&[u8], usize> = HashMap::new();
        let mut classes: HashMap<u128, (usize, Vec<u8>)> = HashMap::new();
        let mut frames: Vec<&[u8]> = Vec::new();
        for frame in data.chunks(fb) {
            let index = frames.len();
            let (canonical, perm) = canon_frame(frame);
            let canon_hash = content_hash(&canonical);
            // candidate records: (serialised body, tie-break rank)
            let mut candidates: Vec<(Vec<u8>, u8)> = Vec::new();
            if let Some(&at) = exact.get(frame) {
                if at <= usize::from(u16::MAX) {
                    let mut rec = vec![OP_REF_EXACT];
                    rec.extend_from_slice(&(at as u16).to_le_bytes());
                    candidates.push((rec, 0));
                }
            }
            if let Some((at, class_canonical)) = classes.get(&canon_hash) {
                if *at <= usize::from(u16::MAX) && class_canonical == &canonical {
                    let mut rec = vec![OP_REF_CANON];
                    rec.extend_from_slice(&(*at as u16).to_le_bytes());
                    rec.push(perm);
                    candidates.push((rec, 1));
                }
            }
            let first_xor = index.saturating_sub(XOR_CANDIDATES);
            let mut best_xor: Option<Vec<u8>> = None;
            for at in (first_xor..index).rev() {
                let base = frames[at];
                if base.len() != frame.len() || at > usize::from(u16::MAX) {
                    continue;
                }
                let delta: Vec<u8> = base.iter().zip(frame).map(|(b, f)| b ^ f).collect();
                let rle = Rle.compress(&delta);
                let mut rec = vec![OP_XOR];
                rec.extend_from_slice(&(at as u16).to_le_bytes());
                rec.extend_from_slice(&(rle.len() as u32).to_le_bytes());
                rec.extend_from_slice(&rle);
                if best_xor.as_ref().is_none_or(|b| rec.len() < b.len()) {
                    best_xor = Some(rec);
                }
            }
            if let Some(rec) = best_xor {
                candidates.push((rec, 2));
            }
            let mut best_v1: Option<Vec<u8>> = None;
            for inner in V1_FALLBACKS {
                let body = registry::codec(inner, fb).compress(frame);
                let mut rec = vec![OP_V1, inner.to_byte()];
                rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
                rec.extend_from_slice(&body);
                if best_v1.as_ref().is_none_or(|b| rec.len() < b.len()) {
                    best_v1 = Some(rec);
                }
            }
            candidates.push((best_v1.expect("at least null fallback"), 3));
            let (record, _) = candidates
                .into_iter()
                .min_by_key(|(rec, rank)| (rec.len(), *rank))
                .expect("non-empty candidates");
            if frame.len() >= HINT_MIN_FRAME {
                out.push(record[0] | FLAG_HINT);
                out.extend_from_slice(&canon_hash.to_le_bytes());
                let raw_hash = (content_hash(frame) >> 64) as u64;
                out.extend_from_slice(&raw_hash.to_le_bytes());
                out.extend_from_slice(&crc32(frame).to_le_bytes());
                out.push(perm);
                out.extend_from_slice(&record[1..]);
            } else {
                out.extend_from_slice(&record);
            }
            exact.entry(frame).or_insert(index);
            classes.entry(canon_hash).or_insert((index, canonical));
            frames.push(frame);
        }
        out
    }

    fn decompressor<'a>(&self, data: &'a [u8]) -> Box<dyn Decompressor + 'a> {
        Box::new(DeltaV2Decompressor {
            reader: DeltaV2Reader::new(self.frame_bytes, data),
            current: None,
            offset: 0,
        })
    }

    fn cycles_per_output_byte(&self) -> u64 {
        // XOR/REF reconstruction plus store-insert canonicalisation,
        // comparable to the LZSS copy loop
        2
    }
}

struct DeltaV2Decompressor<'a> {
    reader: Result<DeltaV2Reader<'a>, BitstreamError>,
    current: Option<Arc<Vec<u8>>>,
    offset: usize,
}

impl Decompressor for DeltaV2Decompressor<'_> {
    fn read(&mut self, out: &mut [u8]) -> Result<usize, BitstreamError> {
        let reader = match &mut self.reader {
            Ok(r) => r,
            Err(e) => return Err(e.clone()),
        };
        let mut produced = 0;
        while produced < out.len() {
            if self.current.is_none() {
                match reader.next_record()? {
                    Some(record) => {
                        self.current = Some(reader.decode_record(&record)?);
                        self.offset = 0;
                    }
                    None => break,
                }
            }
            let frame = self.current.as_ref().expect("just filled");
            let n = (frame.len() - self.offset).min(out.len() - produced);
            out[produced..produced + n].copy_from_slice(&frame[self.offset..self.offset + n]);
            produced += n;
            self.offset += n;
            if self.offset == frame.len() {
                self.current = None;
            }
        }
        Ok(produced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::permute_frame;
    use aaod_sim::SplitMix64;

    fn roundtrip(frame_bytes: usize, data: &[u8]) -> Vec<u8> {
        let codec = DeltaV2::new(frame_bytes);
        let compressed = codec.compress(data);
        decompress_all(&codec, &compressed).expect("roundtrip")
    }

    #[test]
    fn roundtrips_samples() {
        for (i, input) in crate::codec::tests::sample_inputs().iter().enumerate() {
            for fb in [1usize, 7, 128, 896] {
                assert_eq!(&roundtrip(fb, input), input, "sample {i} fb {fb}");
            }
        }
    }

    #[test]
    fn repeated_frames_collapse_to_refs() {
        let mut rng = SplitMix64::new(0xD2_0001);
        let mut frame = vec![0u8; 896];
        rng.fill(&mut frame);
        let mut data = Vec::new();
        for _ in 0..16 {
            data.extend_from_slice(&frame);
        }
        let compressed = DeltaV2::new(896).compress(&data);
        // 15 of 16 frames should cost only a hint + 3-byte ref
        assert!(
            compressed.len() < 896 + 16 * 64,
            "refs not taken: {} bytes",
            compressed.len()
        );
        assert_eq!(
            decompress_all(&DeltaV2::new(896), &compressed).unwrap(),
            data
        );
    }

    #[test]
    fn permuted_frames_collapse_to_canon_refs() {
        // frame 0 random, frames 1..N are whole-frame pin swaps of it:
        // v1 codecs see unrelated bytes, DeltaV2 sees one class
        let mut rng = SplitMix64::new(0xD2_0002);
        let mut frame = vec![0u8; 896];
        rng.fill(&mut frame);
        let mut data = frame.clone();
        for p in 1..12u8 {
            data.extend_from_slice(&permute_frame(&frame, p));
        }
        let codec = DeltaV2::new(896);
        let compressed = codec.compress(&data);
        assert_eq!(decompress_all(&codec, &compressed).unwrap(), data);
        let lzss = registry::codec(CodecId::Lzss, 896).compress(&data);
        assert!(
            compressed.len() * 2 < lzss.len(),
            "canon refs should beat lzss ≥2x on permuted frames: v2={} lzss={}",
            compressed.len(),
            lzss.len()
        );
    }

    #[test]
    fn near_identical_frames_use_xor_deltas() {
        let mut rng = SplitMix64::new(0xD2_0003);
        let mut frame = vec![0u8; 896];
        rng.fill(&mut frame);
        let mut data = Vec::new();
        for i in 0..8usize {
            let mut variant = frame.clone();
            // a handful of point mutations per frame
            for m in 0..5 {
                let at = (i * 131 + m * 47) % variant.len();
                variant[at] ^= 0x5A;
            }
            data.extend_from_slice(&variant);
        }
        let codec = DeltaV2::new(896);
        let compressed = codec.compress(&data);
        assert_eq!(decompress_all(&codec, &compressed).unwrap(), data);
        assert!(
            compressed.len() < 896 + 7 * 200,
            "xor deltas not taken: {} bytes",
            compressed.len()
        );
    }

    #[test]
    fn hints_present_on_large_frames_only() {
        let codec = DeltaV2::new(896);
        let mut rng = SplitMix64::new(0xD2_0004);
        let mut data = vec![0u8; 896 * 2];
        rng.fill(&mut data);
        let compressed = codec.compress(&data);
        let mut reader = DeltaV2Reader::new(896, &compressed).unwrap();
        while let Some(record) = reader.next_record().unwrap() {
            let hint = record.hint.as_ref().expect("large frames carry hints");
            let start = record.index * 896;
            let frame = &data[start..start + record.expected_len];
            assert_eq!(hint.frame_crc, crc32(frame));
            assert_eq!(hint.raw_hash, (content_hash(frame) >> 64) as u64);
            let (canonical, perm) = canon_frame(frame);
            assert_eq!(hint.canon_hash, content_hash(&canonical));
            assert_eq!(hint.perm, perm);
            assert_eq!(decanon_frame(&canonical, hint.perm), frame);
            reader.decode_record(&record).unwrap();
        }
        let small = DeltaV2::new(64);
        let compressed = small.compress(&data[..256]);
        let mut reader = DeltaV2Reader::new(64, &compressed).unwrap();
        while let Some(record) = reader.next_record().unwrap() {
            assert!(record.hint.is_none(), "small frames skip hints");
            reader.decode_record(&record).unwrap();
        }
    }

    #[test]
    fn truncated_and_malformed_streams_error() {
        let codec = DeltaV2::new(128);
        assert!(decompress_all(&codec, &[]).is_err(), "no header");
        assert!(
            decompress_all(&codec, &[10, 0, 0, 0]).is_err(),
            "missing records"
        );
        // unknown op
        let mut bad = (4u32).to_le_bytes().to_vec();
        bad.push(0x07);
        assert!(decompress_all(&codec, &bad).is_err(), "bad op");
        // forward reference
        let mut fwd = (4u32).to_le_bytes().to_vec();
        fwd.push(OP_REF_EXACT);
        fwd.extend_from_slice(&5u16.to_le_bytes());
        assert!(decompress_all(&codec, &fwd).is_err(), "forward ref");
        // trailing garbage
        let mut ok = codec.compress(&[1, 2, 3]);
        ok.push(0);
        assert!(decompress_all(&codec, &ok).is_err(), "trailing byte");
        // recursive inner codec
        let mut rec = (1u32).to_le_bytes().to_vec();
        rec.push(OP_V1);
        rec.push(CodecId::FrameXor.to_byte());
        rec.extend_from_slice(&1u32.to_le_bytes());
        rec.push(0);
        assert!(decompress_all(&codec, &rec).is_err(), "recursive body");
        // out-of-range permutation index
        let mut perm = (128u32).to_le_bytes().to_vec();
        perm.push(OP_REF_CANON);
        perm.extend_from_slice(&0u16.to_le_bytes());
        perm.push(99);
        assert!(decompress_all(&codec, &perm).is_err(), "bad perm index");
    }

    #[test]
    fn accept_frame_substitutes_for_decode() {
        // simulate the store-hit path: feed the reader the frames
        // externally and check later refs still resolve
        let mut rng = SplitMix64::new(0xD2_0005);
        let mut frame = vec![0u8; 896];
        rng.fill(&mut frame);
        let mut data = frame.clone();
        data.extend_from_slice(&frame);
        let codec = DeltaV2::new(896);
        let compressed = codec.compress(&data);
        let mut reader = DeltaV2Reader::new(896, &compressed).unwrap();
        let first = reader.next_record().unwrap().expect("frame 0");
        reader
            .accept_frame(&first, Arc::new(frame.clone()))
            .unwrap();
        let second = reader.next_record().unwrap().expect("frame 1");
        let decoded = reader.decode_record(&second).expect("ref resolves");
        assert_eq!(decoded.as_slice(), frame.as_slice());
        assert!(reader.done());
    }
}

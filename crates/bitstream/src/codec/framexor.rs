//! Frame-delta XOR codec — the paper's open problem.
//!
//! The conclusion of the paper asks for compression "that can exploit
//! the symmetry in the CLB architectures of FPGAs". Adjacent
//! configuration frames configure identical CLB columns, so they are
//! near-copies of each other: XORing each frame with its predecessor
//! turns that symmetry into long zero runs, which a cheap RLE pass then
//! collapses. The first frame is XORed with zero (stored as-is).
//!
//! Decompression keeps exactly one previous frame of state — bounded
//! memory, streamable window by window.

use super::rle::Rle;
use super::{Codec, CodecId, Decompressor};
use crate::error::BitstreamError;

/// Frame-XOR + RLE codec. `frame_bytes` must match the geometry of the
/// frames being compressed (the ROM record supplies it at decode time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameXor {
    frame_bytes: usize,
}

impl FrameXor {
    /// Creates the codec for a given frame size.
    ///
    /// # Panics
    ///
    /// Panics if `frame_bytes` is zero.
    pub fn new(frame_bytes: usize) -> Self {
        assert!(frame_bytes > 0, "frame size must be non-zero");
        FrameXor { frame_bytes }
    }

    /// The frame size this codec deltas across.
    pub fn frame_bytes(&self) -> usize {
        self.frame_bytes
    }
}

impl Codec for FrameXor {
    fn id(&self) -> CodecId {
        CodecId::FrameXor
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut delta = Vec::with_capacity(data.len());
        for (i, &b) in data.iter().enumerate() {
            let prev = if i >= self.frame_bytes {
                data[i - self.frame_bytes]
            } else {
                0
            };
            delta.push(b ^ prev);
        }
        Rle.compress(&delta)
    }

    fn decompressor<'a>(&self, data: &'a [u8]) -> Box<dyn Decompressor + 'a> {
        Box::new(FrameXorDecompressor {
            inner: Rle.decompressor(data),
            prev: vec![0u8; self.frame_bytes],
            cur: vec![0u8; self.frame_bytes],
            pos: 0,
        })
    }

    fn cycles_per_output_byte(&self) -> u64 {
        2
    }
}

struct FrameXorDecompressor<'a> {
    inner: Box<dyn Decompressor + 'a>,
    prev: Vec<u8>,
    cur: Vec<u8>,
    pos: usize,
}

impl Decompressor for FrameXorDecompressor<'_> {
    fn read(&mut self, out: &mut [u8]) -> Result<usize, BitstreamError> {
        let mut produced = 0;
        while produced < out.len() {
            // pull at most to the end of the current frame so the swap
            // happens at exactly the frame boundary
            let room = (out.len() - produced).min(self.prev.len() - self.pos);
            let n = self.inner.read(&mut out[produced..produced + room])?;
            if n == 0 {
                break;
            }
            for b in &mut out[produced..produced + n] {
                *b ^= self.prev[self.pos];
                self.cur[self.pos] = *b;
                self.pos += 1;
            }
            if self.pos == self.prev.len() {
                std::mem::swap(&mut self.prev, &mut self.cur);
                self.pos = 0;
            }
            produced += n;
        }
        Ok(produced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decompress_all;
    use aaod_sim::SplitMix64;

    #[test]
    fn identical_frames_collapse() {
        // 16 identical 64-byte frames: everything after frame 0 XORs to zero.
        let frame: Vec<u8> = (0..64u8).collect();
        let mut data = Vec::new();
        for _ in 0..16 {
            data.extend_from_slice(&frame);
        }
        let c = FrameXor::new(64);
        let compressed = c.compress(&data);
        assert!(
            compressed.len() < 200,
            "symmetry not exploited: {}",
            compressed.len()
        );
        assert_eq!(decompress_all(&c, &compressed).unwrap(), data);
    }

    #[test]
    fn beats_plain_rle_on_repeated_nonzero_frames() {
        let mut rng = SplitMix64::new(9);
        let mut frame = vec![0u8; 128];
        rng.fill(&mut frame);
        let mut data = Vec::new();
        for _ in 0..32 {
            data.extend_from_slice(&frame);
        }
        let fx = FrameXor::new(128).compress(&data);
        let rle = Rle.compress(&data);
        assert!(
            fx.len() < rle.len() / 4,
            "fx {} rle {}",
            fx.len(),
            rle.len()
        );
    }

    #[test]
    fn roundtrip_random_unaligned_tail() {
        let mut rng = SplitMix64::new(10);
        let mut data = vec![0u8; 1000]; // not a multiple of 64
        rng.fill(&mut data);
        let c = FrameXor::new(64);
        assert_eq!(decompress_all(&c, &c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn roundtrip_small_inputs() {
        let c = FrameXor::new(64);
        for data in [vec![], vec![1], vec![9; 63], vec![7; 64], vec![3; 65]] {
            assert_eq!(decompress_all(&c, &c.compress(&data)).unwrap(), data);
        }
    }

    #[test]
    fn corrupt_inner_stream_propagates() {
        let c = FrameXor::new(8);
        assert!(decompress_all(&c, &[0, 1]).is_err());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frame_size_panics() {
        let _ = FrameXor::new(0);
    }
}

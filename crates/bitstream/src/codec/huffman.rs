//! Canonical Huffman coding over bytes.
//!
//! Entropy coding squeezes the residual redundancy of configuration
//! bytes that RLE/LZSS structure matching misses. The price is the most
//! expensive decoder of the suite — a real trade-off on the 50 MHz
//! microcontroller that experiment E2 measures.
//!
//! Wire format: `u32` LE uncompressed length, 256 code-length bytes
//! (0 = symbol absent), then the MSB-first code stream. Codes are
//! canonical, so the lengths alone reconstruct the codebook.

use super::{Codec, CodecId, Decompressor};
use crate::error::BitstreamError;
use std::collections::BinaryHeap;

/// Canonical Huffman codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Huffman;

const MAX_LEN: usize = 63;

/// Computes code lengths from byte frequencies via a standard
/// heap-built Huffman tree.
fn code_lengths(freq: &[u64; 256]) -> [u8; 256] {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        // tiebreaker for determinism
        order: u32,
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(u8),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap; invert for min-heap behaviour.
            other
                .weight
                .cmp(&self.weight)
                .then(other.order.cmp(&self.order))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut lengths = [0u8; 256];
    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    let mut order = 0u32;
    for (sym, &w) in freq.iter().enumerate() {
        if w > 0 {
            heap.push(Node {
                weight: w,
                order,
                kind: NodeKind::Leaf(sym as u8),
            });
            order += 1;
        }
    }
    match heap.len() {
        0 => return lengths,
        1 => {
            if let NodeKind::Leaf(sym) = heap.pop().expect("len checked").kind {
                lengths[sym as usize] = 1;
            }
            return lengths;
        }
        _ => {}
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        heap.push(Node {
            weight: a.weight + b.weight,
            order,
            kind: NodeKind::Internal(Box::new(a), Box::new(b)),
        });
        order += 1;
    }
    // walk depths iteratively
    let root = heap.pop().expect("one node remains");
    let mut stack = vec![(root, 0u8)];
    while let Some((node, depth)) = stack.pop() {
        match node.kind {
            NodeKind::Leaf(sym) => lengths[sym as usize] = depth.max(1),
            NodeKind::Internal(a, b) => {
                stack.push((*a, depth + 1));
                stack.push((*b, depth + 1));
            }
        }
    }
    lengths
}

/// Canonical code assignment: symbols sorted by (length, value).
/// Returns per-symbol `(code, len)`, and the decode tables
/// `(first_code, first_index, symbols)` indexed by length.
type Codebook = ([u64; 256], [u8; 256]);

fn canonical_codes(lengths: &[u8; 256]) -> Codebook {
    let mut symbols: Vec<u8> = (0..=255u8).filter(|&s| lengths[s as usize] > 0).collect();
    symbols.sort_by_key(|&s| (lengths[s as usize], s));
    let mut codes = [0u64; 256];
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for &s in &symbols {
        let l = lengths[s as usize];
        code <<= l - prev_len;
        codes[s as usize] = code;
        code += 1;
        prev_len = l;
    }
    (codes, *lengths)
}

impl Codec for Huffman {
    fn id(&self) -> CodecId {
        CodecId::Huffman
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        let mut freq = [0u64; 256];
        for &b in data {
            freq[b as usize] += 1;
        }
        let lengths = code_lengths(&freq);
        out.extend_from_slice(&lengths);
        let (codes, lens) = canonical_codes(&lengths);
        let mut acc = 0u64;
        let mut nbits = 0u32;
        for &b in data {
            let l = lens[b as usize] as u32;
            acc = (acc << l) | codes[b as usize];
            nbits += l;
            while nbits >= 8 {
                nbits -= 8;
                out.push((acc >> nbits) as u8);
            }
        }
        if nbits > 0 {
            out.push((acc << (8 - nbits)) as u8);
        }
        out
    }

    fn decompressor<'a>(&self, data: &'a [u8]) -> Box<dyn Decompressor + 'a> {
        Box::new(HuffmanDecompressor::new(data))
    }

    fn cycles_per_output_byte(&self) -> u64 {
        4
    }
}

struct HuffmanDecompressor<'a> {
    data: &'a [u8],
    /// current byte position in the code stream
    pos: usize,
    bit: u8,
    remaining: usize,
    /// decode tables
    first_code: [u64; MAX_LEN + 1],
    count: [u32; MAX_LEN + 1],
    offset: [u32; MAX_LEN + 1],
    symbols: Vec<u8>,
    err: Option<BitstreamError>,
}

impl<'a> HuffmanDecompressor<'a> {
    fn new(data: &'a [u8]) -> Self {
        let mut d = HuffmanDecompressor {
            data,
            pos: 0,
            bit: 0,
            remaining: 0,
            first_code: [0; MAX_LEN + 1],
            count: [0; MAX_LEN + 1],
            offset: [0; MAX_LEN + 1],
            symbols: Vec::new(),
            err: None,
        };
        if data.len() < 4 {
            d.err = Some(BitstreamError::CorruptPayload(
                "huffman length header truncated".into(),
            ));
            return d;
        }
        d.remaining = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
        if d.remaining == 0 {
            d.pos = data.len();
            return d;
        }
        if data.len() < 4 + 256 {
            d.err = Some(BitstreamError::CorruptPayload(
                "huffman code-length table truncated".into(),
            ));
            return d;
        }
        let lengths: &[u8] = &data[4..260];
        let mut symbols: Vec<u8> = (0..=255u8).filter(|&s| lengths[s as usize] > 0).collect();
        symbols.sort_by_key(|&s| (lengths[s as usize], s));
        if symbols.is_empty() {
            d.err = Some(BitstreamError::CorruptPayload(
                "huffman table empty but data expected".into(),
            ));
            return d;
        }
        for &s in &symbols {
            let l = lengths[s as usize] as usize;
            if l > MAX_LEN {
                d.err = Some(BitstreamError::CorruptPayload(format!(
                    "huffman code length {l} exceeds limit"
                )));
                return d;
            }
            d.count[l] += 1;
        }
        // canonical first codes and symbol offsets per length
        let mut code = 0u64;
        let mut idx = 0u32;
        for l in 1..=MAX_LEN {
            code <<= 1;
            d.first_code[l] = code;
            d.offset[l] = idx;
            code += d.count[l] as u64;
            idx += d.count[l];
        }
        d.symbols = symbols;
        d.pos = 260;
        d
    }

    fn next_bit(&mut self) -> Result<u64, BitstreamError> {
        if self.pos >= self.data.len() {
            return Err(BitstreamError::CorruptPayload(
                "huffman code stream truncated".into(),
            ));
        }
        let b = (self.data[self.pos] >> (7 - self.bit)) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.pos += 1;
        }
        Ok(b as u64)
    }

    fn next_symbol(&mut self) -> Result<u8, BitstreamError> {
        let mut code = 0u64;
        for l in 1..=MAX_LEN {
            code = (code << 1) | self.next_bit()?;
            let rel = code.wrapping_sub(self.first_code[l]);
            if rel < self.count[l] as u64 && code >= self.first_code[l] {
                return Ok(self.symbols[(self.offset[l] as u64 + rel) as usize]);
            }
        }
        Err(BitstreamError::CorruptPayload(
            "huffman code exceeds maximum length".into(),
        ))
    }
}

impl Decompressor for HuffmanDecompressor<'_> {
    fn read(&mut self, out: &mut [u8]) -> Result<usize, BitstreamError> {
        if let Some(e) = &self.err {
            return Err(e.clone());
        }
        let mut produced = 0;
        while produced < out.len() && self.remaining > 0 {
            out[produced] = self.next_symbol()?;
            produced += 1;
            self.remaining -= 1;
        }
        Ok(produced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decompress_all;
    use aaod_sim::SplitMix64;

    #[test]
    fn roundtrip_skewed() {
        let mut data = vec![0u8; 4000];
        for i in 0..200 {
            data[i * 17] = (i % 5) as u8 + 1;
        }
        let compressed = Huffman.compress(&data);
        // heavily skewed distribution should compress well below 1/4
        assert!(compressed.len() < data.len() / 4);
        assert_eq!(decompress_all(&Huffman, &compressed).unwrap(), data);
    }

    #[test]
    fn roundtrip_uniform_random() {
        let mut rng = SplitMix64::new(7);
        let mut data = vec![0u8; 6000];
        rng.fill(&mut data);
        assert_eq!(
            decompress_all(&Huffman, &Huffman.compress(&data)).unwrap(),
            data
        );
    }

    #[test]
    fn roundtrip_single_symbol() {
        let data = vec![0xAB; 1234];
        assert_eq!(
            decompress_all(&Huffman, &Huffman.compress(&data)).unwrap(),
            data
        );
    }

    #[test]
    fn roundtrip_one_byte() {
        let data = vec![0x01];
        assert_eq!(
            decompress_all(&Huffman, &Huffman.compress(&data)).unwrap(),
            data
        );
    }

    #[test]
    fn empty_input() {
        let compressed = Huffman.compress(&[]);
        assert_eq!(
            decompress_all(&Huffman, &compressed).unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn truncated_header_is_corrupt() {
        assert!(matches!(
            decompress_all(&Huffman, &[1, 0]).unwrap_err(),
            BitstreamError::CorruptPayload(_)
        ));
    }

    #[test]
    fn truncated_code_stream_is_corrupt() {
        let data = vec![0x55u8; 100];
        let mut compressed = Huffman.compress(&data);
        compressed.truncate(compressed.len() - 1);
        // May or may not fail depending on padding, so force a bigger cut.
        compressed.truncate(264);
        assert!(decompress_all(&Huffman, &compressed).is_err());
    }

    #[test]
    fn all_symbols_roundtrip() {
        let mut data: Vec<u8> = (0..=255).collect();
        data.extend((0..=255).rev());
        assert_eq!(
            decompress_all(&Huffman, &Huffman.compress(&data)).unwrap(),
            data
        );
    }
}

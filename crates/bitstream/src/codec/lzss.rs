//! LZSS with a 4 KiB sliding window.
//!
//! Configuration bitstreams repeat identical CLB columns and routing
//! motifs at distances well within a few KiB, which back-references
//! capture better than pure run-length coding.
//!
//! Wire format: groups of up to eight tokens preceded by a flag byte
//! (LSB first; 1 = literal byte, 0 = match). A match is two bytes:
//! `offset[7:0]`, then `offset[11:8] << 4 | (len - MIN_MATCH)`, with
//! `offset` counting back from the current output position
//! (`1..=4096`) and `len` in `3..=18`.
//!
//! The decompressor keeps only a 4 KiB history ring — bounded memory,
//! as the windowed configuration module requires.

use super::{Codec, CodecId, Decompressor};
use crate::error::BitstreamError;

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;
const CHAIN_LIMIT: usize = 64;

/// LZSS codec (4 KiB window, 3–18 byte matches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lzss {
    _private: (),
}

impl Lzss {
    /// Creates the codec.
    pub fn new() -> Self {
        Lzss { _private: () }
    }
}

impl Default for Lzss {
    fn default() -> Self {
        Lzss::new()
    }
}

fn hash3(data: &[u8], pos: usize) -> usize {
    let h = (data[pos] as u32)
        .wrapping_mul(0x9E37)
        .wrapping_add((data[pos + 1] as u32).wrapping_mul(0x79B9))
        .wrapping_add((data[pos + 2] as u32).wrapping_mul(0x7F4A));
    (h as usize) & (WINDOW - 1)
}

impl Codec for Lzss {
    fn id(&self) -> CodecId {
        CodecId::Lzss
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut head = vec![usize::MAX; WINDOW];
        let mut prev = vec![usize::MAX; data.len()];

        let mut tokens: Vec<(bool, u8, u16, u8)> = Vec::with_capacity(8); // (is_literal, lit, offset, len)
        let flush = |out: &mut Vec<u8>, tokens: &mut Vec<(bool, u8, u16, u8)>| {
            if tokens.is_empty() {
                return;
            }
            let mut flags = 0u8;
            for (i, t) in tokens.iter().enumerate() {
                if t.0 {
                    flags |= 1 << i;
                }
            }
            out.push(flags);
            for &(is_lit, lit, offset, len) in tokens.iter() {
                if is_lit {
                    out.push(lit);
                } else {
                    out.push((offset & 0xFF) as u8);
                    out.push((((offset >> 8) as u8) << 4) | (len - MIN_MATCH as u8));
                }
            }
            tokens.clear();
        };

        let mut i = 0;
        while i < data.len() {
            let mut best_len = 0usize;
            let mut best_off = 0usize;
            if i + MIN_MATCH <= data.len() {
                let h = hash3(data, i);
                let mut cand = head[h];
                let mut steps = 0;
                while cand != usize::MAX && steps < CHAIN_LIMIT {
                    // offset must fit the 12-bit field, so strictly < WINDOW
                    if i - cand < WINDOW {
                        let max = MAX_MATCH.min(data.len() - i);
                        let mut l = 0;
                        while l < max && data[cand + l] == data[i + l] {
                            l += 1;
                        }
                        if l > best_len {
                            best_len = l;
                            best_off = i - cand;
                            if l == MAX_MATCH {
                                break;
                            }
                        }
                    } else {
                        break; // chain is ordered by recency; older = farther
                    }
                    cand = prev[cand];
                    steps += 1;
                }
            }
            if best_len >= MIN_MATCH {
                tokens.push((false, 0, best_off as u16, best_len as u8));
                // insert all covered positions into the hash chains
                #[allow(clippy::needless_range_loop)] // p is a position, not an element index
                for p in i..i + best_len {
                    if p + MIN_MATCH <= data.len() {
                        let h = hash3(data, p);
                        prev[p] = head[h];
                        head[h] = p;
                    }
                }
                i += best_len;
            } else {
                tokens.push((true, data[i], 0, 0));
                if i + MIN_MATCH <= data.len() {
                    let h = hash3(data, i);
                    prev[i] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
            if tokens.len() == 8 {
                flush(&mut out, &mut tokens);
            }
        }
        flush(&mut out, &mut tokens);
        out
    }

    fn decompressor<'a>(&self, data: &'a [u8]) -> Box<dyn Decompressor + 'a> {
        Box::new(LzssDecompressor {
            data,
            pos: 0,
            flags: 0,
            flags_left: 0,
            history: vec![0u8; WINDOW],
            hist_pos: 0,
            match_off: 0,
            match_left: 0,
        })
    }

    fn cycles_per_output_byte(&self) -> u64 {
        2
    }
}

struct LzssDecompressor<'a> {
    data: &'a [u8],
    pos: usize,
    flags: u8,
    flags_left: u8,
    history: Vec<u8>,
    hist_pos: usize,
    match_off: usize,
    match_left: usize,
}

impl LzssDecompressor<'_> {
    fn emit(&mut self, byte: u8, out: &mut [u8], produced: &mut usize) {
        out[*produced] = byte;
        *produced += 1;
        self.history[self.hist_pos] = byte;
        self.hist_pos = (self.hist_pos + 1) & (WINDOW - 1);
    }
}

impl Decompressor for LzssDecompressor<'_> {
    fn read(&mut self, out: &mut [u8]) -> Result<usize, BitstreamError> {
        let mut produced = 0;
        while produced < out.len() {
            // Continue a match already in progress.
            if self.match_left > 0 {
                let src = (self.hist_pos + WINDOW - self.match_off) & (WINDOW - 1);
                let byte = self.history[src];
                self.emit(byte, out, &mut produced);
                self.match_left -= 1;
                continue;
            }
            if self.flags_left == 0 {
                if self.pos == self.data.len() {
                    break;
                }
                self.flags = self.data[self.pos];
                self.pos += 1;
                self.flags_left = 8;
            }
            // A flag byte may cover fewer than 8 tokens at stream end.
            if self.pos == self.data.len() {
                break;
            }
            let is_literal = self.flags & 1 == 1;
            self.flags >>= 1;
            self.flags_left -= 1;
            if is_literal {
                let byte = self.data[self.pos];
                self.pos += 1;
                self.emit(byte, out, &mut produced);
            } else {
                if self.pos + 2 > self.data.len() {
                    return Err(BitstreamError::CorruptPayload(
                        "lzss match token truncated".into(),
                    ));
                }
                let lo = self.data[self.pos] as usize;
                let second = self.data[self.pos + 1] as usize;
                self.pos += 2;
                let offset = lo | ((second >> 4) << 8);
                let len = (second & 0x0F) + MIN_MATCH;
                if offset == 0 {
                    return Err(BitstreamError::CorruptPayload("lzss zero offset".into()));
                }
                self.match_off = offset;
                self.match_left = len;
            }
        }
        Ok(produced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decompress_all;
    use aaod_sim::SplitMix64;

    #[test]
    fn roundtrip_repetitive() {
        let mut data = Vec::new();
        for _ in 0..100 {
            data.extend_from_slice(b"frame-config-pattern-0123456789");
        }
        let c = Lzss::new();
        let compressed = c.compress(&data);
        assert!(
            compressed.len() < data.len() / 4,
            "only {} -> {}",
            data.len(),
            compressed.len()
        );
        assert_eq!(decompress_all(&c, &compressed).unwrap(), data);
    }

    #[test]
    fn roundtrip_random() {
        let mut rng = SplitMix64::new(42);
        let mut data = vec![0u8; 8192];
        rng.fill(&mut data);
        let c = Lzss::new();
        assert_eq!(decompress_all(&c, &c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn roundtrip_overlapping_match() {
        // "aaaa..." forces matches whose source overlaps the output.
        let data = vec![b'a'; 1000];
        let c = Lzss::new();
        let compressed = c.compress(&data);
        assert!(compressed.len() < 200);
        assert_eq!(decompress_all(&c, &compressed).unwrap(), data);
    }

    #[test]
    fn roundtrip_long_distance() {
        // Repeat separated by nearly the full window.
        let mut data = vec![0x11u8; 64];
        data.extend(vec![0xEEu8; 4000]);
        data.extend(vec![0x11u8; 64]);
        let c = Lzss::new();
        assert_eq!(decompress_all(&c, &c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn truncated_match_is_corrupt() {
        // flags byte says "match", then only one byte follows.
        let err = decompress_all(&Lzss::new(), &[0x00, 0x05]).unwrap_err();
        assert!(matches!(err, BitstreamError::CorruptPayload(_)));
    }

    #[test]
    fn zero_offset_is_corrupt() {
        let err = decompress_all(&Lzss::new(), &[0x00, 0x00, 0x00]).unwrap_err();
        assert!(matches!(err, BitstreamError::CorruptPayload(_)));
    }

    #[test]
    fn empty_input() {
        let c = Lzss::new();
        assert!(c.compress(&[]).is_empty());
        assert!(decompress_all(&c, &[]).unwrap().is_empty());
    }
}

//! Compression codecs with windowed (streaming) decompression.
//!
//! The configuration module of the paper decompresses a bitstream
//! *window by window* so the on-card buffer stays small. Every codec
//! here therefore exposes a [`Decompressor`] that yields output
//! incrementally from bounded working memory (RLE run state, a 4 KiB
//! LZSS history ring, one previous frame for the frame-XOR codec).
//!
//! Codecs also carry a per-output-byte cycle cost used by the
//! microcontroller timing model, so experiment E2/E8 can trade ratio
//! against decompression speed.

pub mod deltav2;
pub mod framexor;
pub mod huffman;
pub mod lzss;
pub mod null;
pub mod rle;

use crate::error::BitstreamError;
use std::fmt;

/// Identifies a codec in bitstream headers and ROM records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecId {
    /// Stored, no compression.
    Null = 0,
    /// Byte run-length encoding.
    Rle = 1,
    /// LZSS, 4 KiB window, 3–18 byte matches.
    Lzss = 2,
    /// Canonical Huffman over bytes.
    Huffman = 3,
    /// Frame-delta XOR + RLE (exploits inter-frame CLB symmetry).
    FrameXor = 4,
    /// Frame-dedup delta codec: exact/canonical frame references,
    /// XOR deltas and per-frame v1 fallback, with content-hash hints
    /// for the [`FrameStore`](crate::FrameStore) (compression v2).
    DeltaV2 = 5,
}

impl CodecId {
    /// All codec ids, in id order.
    pub const ALL: [CodecId; 6] = [
        CodecId::Null,
        CodecId::Rle,
        CodecId::Lzss,
        CodecId::Huffman,
        CodecId::FrameXor,
        CodecId::DeltaV2,
    ];

    /// The wire byte for this codec.
    pub fn to_byte(self) -> u8 {
        self as u8
    }

    /// Parses a wire byte.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::UnknownCodec`] for unassigned ids.
    pub fn from_byte(b: u8) -> Result<Self, BitstreamError> {
        match b {
            0 => Ok(CodecId::Null),
            1 => Ok(CodecId::Rle),
            2 => Ok(CodecId::Lzss),
            3 => Ok(CodecId::Huffman),
            4 => Ok(CodecId::FrameXor),
            5 => Ok(CodecId::DeltaV2),
            other => Err(BitstreamError::UnknownCodec(other)),
        }
    }
}

impl fmt::Display for CodecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CodecId::Null => "null",
            CodecId::Rle => "rle",
            CodecId::Lzss => "lzss",
            CodecId::Huffman => "huffman",
            CodecId::FrameXor => "frame-xor",
            CodecId::DeltaV2 => "delta-v2",
        };
        f.write_str(name)
    }
}

/// A compression codec.
///
/// Object-safe so the configuration module can be handed any codec at
/// run time (the ROM record names the codec per function).
pub trait Codec {
    /// This codec's identifier.
    fn id(&self) -> CodecId;

    /// Compresses `data` into a fresh buffer.
    fn compress(&self, data: &[u8]) -> Vec<u8>;

    /// Creates a streaming decompressor over compressed `data`.
    fn decompressor<'a>(&self, data: &'a [u8]) -> Box<dyn Decompressor + 'a>;

    /// Modelled microcontroller cycles consumed per *output* byte
    /// during decompression.
    fn cycles_per_output_byte(&self) -> u64;
}

/// Incremental decompression: repeatedly fill a caller-provided window.
pub trait Decompressor {
    /// Writes up to `out.len()` decompressed bytes into `out`,
    /// returning how many were produced. `Ok(0)` signals end of
    /// stream.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::CorruptPayload`] when the compressed
    /// data is inconsistent.
    fn read(&mut self, out: &mut [u8]) -> Result<usize, BitstreamError>;
}

/// Decompresses an entire payload through a codec's streaming
/// interface (testing / convenience; the configuration module streams
/// instead).
///
/// # Errors
///
/// Propagates decoder errors.
pub fn decompress_all(codec: &dyn Codec, data: &[u8]) -> Result<Vec<u8>, BitstreamError> {
    let mut d = codec.decompressor(data);
    let mut out = Vec::new();
    let mut window = [0u8; 1024];
    loop {
        let n = d.read(&mut window)?;
        if n == 0 {
            return Ok(out);
        }
        out.extend_from_slice(&window[..n]);
    }
}

/// Codec construction.
pub mod registry {
    use super::deltav2::DeltaV2;
    use super::framexor::FrameXor;
    use super::huffman::Huffman;
    use super::lzss::Lzss;
    use super::null::Null;
    use super::rle::Rle;
    use super::{Codec, CodecId};

    /// Instantiates the codec for `id`. `frame_bytes` parameterises
    /// the frame-level codecs (other codecs ignore it).
    pub fn codec(id: CodecId, frame_bytes: usize) -> Box<dyn Codec> {
        match id {
            CodecId::Null => Box::new(Null),
            CodecId::Rle => Box::new(Rle),
            CodecId::Lzss => Box::new(Lzss::new()),
            CodecId::Huffman => Box::new(Huffman),
            CodecId::FrameXor => Box::new(FrameXor::new(frame_bytes)),
            CodecId::DeltaV2 => Box::new(DeltaV2::new(frame_bytes)),
        }
    }

    /// Instantiates every codec (for the compression survey, E2).
    pub fn all(frame_bytes: usize) -> Vec<Box<dyn Codec>> {
        CodecId::ALL
            .iter()
            .map(|&id| codec(id, frame_bytes))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaod_sim::SplitMix64;

    /// Sample inputs exercising edge cases for every codec.
    pub(crate) fn sample_inputs() -> Vec<Vec<u8>> {
        let mut rng = SplitMix64::new(0xC0DEC);
        let mut random = vec![0u8; 3000];
        rng.fill(&mut random);
        let mut runs = Vec::new();
        for i in 0..40 {
            runs.extend(std::iter::repeat_n((i * 7) as u8, 1 + (i % 300)));
        }
        let mut texty = Vec::new();
        for _ in 0..50 {
            texty.extend_from_slice(b"configuration frame CLB switch-block ");
        }
        vec![
            vec![],
            vec![0x42],
            vec![0u8; 5000],
            vec![0xFF; 257],
            (0..=255u8).collect(),
            random,
            runs,
            texty,
        ]
    }

    #[test]
    fn codec_id_roundtrip() {
        for id in CodecId::ALL {
            assert_eq!(CodecId::from_byte(id.to_byte()).unwrap(), id);
        }
        assert!(matches!(
            CodecId::from_byte(99),
            Err(BitstreamError::UnknownCodec(99))
        ));
    }

    #[test]
    fn every_codec_roundtrips_every_sample() {
        for codec in registry::all(128) {
            for (i, input) in sample_inputs().iter().enumerate() {
                let compressed = codec.compress(input);
                let back = decompress_all(codec.as_ref(), &compressed)
                    .unwrap_or_else(|e| panic!("{} failed on sample {i}: {e}", codec.id()));
                assert_eq!(&back, input, "{} mangled sample {i}", codec.id());
            }
        }
    }

    #[test]
    fn windowed_reads_match_bulk_for_all_codecs() {
        let input = sample_inputs().pop().unwrap();
        for codec in registry::all(128) {
            let compressed = codec.compress(&input);
            for window in [1usize, 3, 64, 1000] {
                let mut d = codec.decompressor(&compressed);
                let mut out = Vec::new();
                let mut buf = vec![0u8; window];
                loop {
                    let n = d.read(&mut buf).unwrap();
                    if n == 0 {
                        break;
                    }
                    out.extend_from_slice(&buf[..n]);
                }
                assert_eq!(out, input, "{} window {window}", codec.id());
            }
        }
    }

    #[test]
    fn cycle_costs_are_positive() {
        for codec in registry::all(64) {
            assert!(codec.cycles_per_output_byte() > 0, "{}", codec.id());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(CodecId::Lzss.to_string(), "lzss");
        assert_eq!(CodecId::FrameXor.to_string(), "frame-xor");
    }
}

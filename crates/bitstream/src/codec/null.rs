//! Stored (identity) codec — the uncompressed baseline for E2/E3.

use super::{Codec, CodecId, Decompressor};
use crate::error::BitstreamError;

/// The identity codec: output equals input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Null;

impl Codec for Null {
    fn id(&self) -> CodecId {
        CodecId::Null
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        data.to_vec()
    }

    fn decompressor<'a>(&self, data: &'a [u8]) -> Box<dyn Decompressor + 'a> {
        Box::new(NullDecompressor { data, pos: 0 })
    }

    fn cycles_per_output_byte(&self) -> u64 {
        1
    }
}

struct NullDecompressor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Decompressor for NullDecompressor<'_> {
    fn read(&mut self, out: &mut [u8]) -> Result<usize, BitstreamError> {
        let n = out.len().min(self.data.len() - self.pos);
        out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decompress_all;

    #[test]
    fn identity() {
        let data = b"abcdef".to_vec();
        let c = Null;
        assert_eq!(c.compress(&data), data);
        assert_eq!(decompress_all(&c, &data).unwrap(), data);
    }

    #[test]
    fn empty() {
        let c = Null;
        assert_eq!(decompress_all(&c, &[]).unwrap(), Vec::<u8>::new());
    }
}

//! Byte run-length encoding.
//!
//! Configuration bitstreams are dominated by long zero runs (unused
//! LUTs and routing), which plain RLE already exploits well; it is also
//! the cheapest decoder, which matters on the 50 MHz microcontroller.
//!
//! Wire format: a sequence of `(count, byte)` pairs where `count` is
//! `1..=255`. Runs longer than 255 are split.

use super::{Codec, CodecId, Decompressor};
use crate::error::BitstreamError;

/// Byte-wise run-length codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rle;

impl Codec for Rle {
    fn id(&self) -> CodecId {
        CodecId::Rle
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < data.len() {
            let byte = data[i];
            let mut run = 1usize;
            while run < 255 && i + run < data.len() && data[i + run] == byte {
                run += 1;
            }
            out.push(run as u8);
            out.push(byte);
            i += run;
        }
        out
    }

    fn decompressor<'a>(&self, data: &'a [u8]) -> Box<dyn Decompressor + 'a> {
        Box::new(RleDecompressor {
            data,
            pos: 0,
            run_byte: 0,
            run_left: 0,
        })
    }

    fn cycles_per_output_byte(&self) -> u64 {
        1
    }
}

struct RleDecompressor<'a> {
    data: &'a [u8],
    pos: usize,
    run_byte: u8,
    run_left: usize,
}

impl Decompressor for RleDecompressor<'_> {
    fn read(&mut self, out: &mut [u8]) -> Result<usize, BitstreamError> {
        let mut produced = 0;
        while produced < out.len() {
            if self.run_left == 0 {
                if self.pos == self.data.len() {
                    break;
                }
                if self.pos + 2 > self.data.len() {
                    return Err(BitstreamError::CorruptPayload("rle pair truncated".into()));
                }
                let count = self.data[self.pos] as usize;
                if count == 0 {
                    return Err(BitstreamError::CorruptPayload("rle zero count".into()));
                }
                self.run_byte = self.data[self.pos + 1];
                self.run_left = count;
                self.pos += 2;
            }
            let n = self.run_left.min(out.len() - produced);
            out[produced..produced + n].fill(self.run_byte);
            produced += n;
            self.run_left -= n;
        }
        Ok(produced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decompress_all;

    #[test]
    fn compresses_zero_runs_well() {
        let data = vec![0u8; 10_000];
        let compressed = Rle.compress(&data);
        assert!(compressed.len() < 100, "len {}", compressed.len());
        assert_eq!(decompress_all(&Rle, &compressed).unwrap(), data);
    }

    #[test]
    fn expands_random_data_by_at_most_2x() {
        let data: Vec<u8> = (0..=255).collect();
        let compressed = Rle.compress(&data);
        assert_eq!(compressed.len(), data.len() * 2);
        assert_eq!(decompress_all(&Rle, &compressed).unwrap(), data);
    }

    #[test]
    fn run_longer_than_255_splits() {
        let data = vec![7u8; 300];
        let compressed = Rle.compress(&data);
        assert_eq!(compressed, vec![255, 7, 45, 7]);
    }

    #[test]
    fn truncated_pair_is_corrupt() {
        let err = decompress_all(&Rle, &[5]).unwrap_err();
        assert!(matches!(err, BitstreamError::CorruptPayload(_)));
    }

    #[test]
    fn zero_count_is_corrupt() {
        let err = decompress_all(&Rle, &[0, 1]).unwrap_err();
        assert!(matches!(err, BitstreamError::CorruptPayload(_)));
    }

    #[test]
    fn windowed_read_split_mid_run() {
        let data = vec![9u8; 100];
        let compressed = Rle.compress(&data);
        let mut d = Rle.decompressor(&compressed);
        let mut buf = [0u8; 33];
        let mut total = 0;
        loop {
            let n = d.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            assert!(buf[..n].iter().all(|&b| b == 9));
            total += n;
        }
        assert_eq!(total, 100);
    }
}

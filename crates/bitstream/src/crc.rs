//! CRC-32 (IEEE 802.3, reflected) over bitstream payloads.
//!
//! Also serves as the golden model for the algorithm bank's CRC-32
//! kernel, so hardware results can be checked against an independent
//! implementation path.

/// Reflected polynomial for CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// Computes CRC-32 (IEEE) of `data`, table-free bitwise variant.
///
/// # Examples
///
/// ```
/// use aaod_bitstream::crc::crc32;
///
/// assert_eq!(crc32(b"123456789"), 0xCBF43926); // standard check value
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finish()
}

/// Incremental CRC-32 state.
///
/// # Examples
///
/// ```
/// use aaod_bitstream::crc::{crc32, Crc32};
///
/// let mut c = Crc32::new();
/// c.update(b"1234");
/// c.update(b"56789");
/// assert_eq!(c.finish(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state ^= b as u32;
            for _ in 0..8 {
                let lsb = self.state & 1;
                self.state >>= 1;
                if lsb != 0 {
                    self.state ^= POLY;
                }
            }
        }
    }

    /// Final CRC value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..200u8).collect();
        for split in [0, 1, 99, 200] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(&data));
        }
    }

    #[test]
    fn detects_single_byte_change() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}

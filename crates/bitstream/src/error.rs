//! Bitstream error type.

use std::error::Error;
use std::fmt;

/// Errors from bitstream parsing, decompression or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BitstreamError {
    /// The sync word or header structure is wrong.
    Malformed(String),
    /// The header names a codec this build does not know.
    UnknownCodec(u8),
    /// The payload CRC check failed.
    CrcMismatch {
        /// CRC stored in the header.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The compressed payload is corrupt (a decoder hit an impossible
    /// token or ran out of input mid-token).
    CorruptPayload(String),
    /// Decompressed data does not divide into whole frames of the
    /// stated frame size.
    FrameMisaligned {
        /// Total decompressed length.
        len: usize,
        /// Frame size from the header.
        frame_bytes: usize,
    },
}

impl fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitstreamError::Malformed(msg) => write!(f, "malformed bitstream: {msg}"),
            BitstreamError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            BitstreamError::CrcMismatch { stored, computed } => write!(
                f,
                "payload crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            BitstreamError::CorruptPayload(msg) => write!(f, "corrupt payload: {msg}"),
            BitstreamError::FrameMisaligned { len, frame_bytes } => write!(
                f,
                "decompressed length {len} is not a multiple of frame size {frame_bytes}"
            ),
        }
    }
}

impl Error for BitstreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(BitstreamError::UnknownCodec(7).to_string().contains("7"));
        assert!(BitstreamError::Malformed("x".into())
            .to_string()
            .contains("x"));
    }

    #[test]
    fn send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<BitstreamError>();
    }
}

//! The on-ROM bitstream container format.
//!
//! Mirrors the structure of a Virtex-II SelectMAP stream at the level
//! the co-processor cares about: a sync word, a small header naming the
//! function and its codec, and a CRC-protected compressed payload that
//! expands to whole configuration frames.

use crate::codec::{registry, Codec, CodecId};
use crate::crc::crc32;
use crate::error::BitstreamError;
use aaod_fabric::{DeviceGeometry, FunctionImage};

/// The configuration sync word (as on Virtex-II).
pub const SYNC_WORD: u32 = 0xAA99_5566;
/// Container format version.
const VERSION: u8 = 1;
/// Serialised header length in bytes.
pub const HEADER_BYTES: usize = 32;

/// Parsed bitstream header.
///
/// The configuration module parses this straight out of ROM, then
/// streams the payload through the named codec window by window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitstreamHeader {
    /// Algorithm this bitstream configures.
    pub algo_id: u16,
    /// Compression codec of the payload.
    pub codec: CodecId,
    /// Data-input transfer width (bytes).
    pub input_width: u16,
    /// Output transfer width (bytes).
    pub output_width: u16,
    /// Number of configuration frames the payload expands to.
    pub n_frames: u16,
    /// Size of one frame in bytes.
    pub frame_bytes: u32,
    /// Total decompressed length (`n_frames * frame_bytes`).
    pub uncompressed_len: u32,
    /// Compressed payload length.
    pub compressed_len: u32,
    /// CRC-32 over the compressed payload.
    pub payload_crc: u32,
}

impl BitstreamHeader {
    /// Parses a header from the front of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::Malformed`] for truncated data, a bad
    /// sync word, version or inconsistent lengths, and
    /// [`BitstreamError::UnknownCodec`] for an unassigned codec id.
    pub fn parse(bytes: &[u8]) -> Result<Self, BitstreamError> {
        if bytes.len() < HEADER_BYTES {
            return Err(BitstreamError::Malformed(format!(
                "{} bytes is shorter than the {HEADER_BYTES}-byte header",
                bytes.len()
            )));
        }
        let sync = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        if sync != SYNC_WORD {
            return Err(BitstreamError::Malformed(format!(
                "bad sync word {sync:#010x}"
            )));
        }
        if bytes[4] != VERSION {
            return Err(BitstreamError::Malformed(format!(
                "unsupported version {}",
                bytes[4]
            )));
        }
        let codec = CodecId::from_byte(bytes[5])?;
        let header = BitstreamHeader {
            codec,
            algo_id: u16::from_le_bytes([bytes[6], bytes[7]]),
            input_width: u16::from_le_bytes([bytes[8], bytes[9]]),
            output_width: u16::from_le_bytes([bytes[10], bytes[11]]),
            n_frames: u16::from_le_bytes([bytes[12], bytes[13]]),
            frame_bytes: u32::from_le_bytes([bytes[14], bytes[15], bytes[16], bytes[17]]),
            uncompressed_len: u32::from_le_bytes([bytes[18], bytes[19], bytes[20], bytes[21]]),
            compressed_len: u32::from_le_bytes([bytes[22], bytes[23], bytes[24], bytes[25]]),
            payload_crc: u32::from_le_bytes([bytes[26], bytes[27], bytes[28], bytes[29]]),
        };
        if header.uncompressed_len != header.n_frames as u32 * header.frame_bytes {
            return Err(BitstreamError::Malformed(format!(
                "uncompressed length {} != {} frames x {} bytes",
                header.uncompressed_len, header.n_frames, header.frame_bytes
            )));
        }
        if header.frame_bytes == 0 || header.n_frames == 0 {
            return Err(BitstreamError::Malformed(
                "zero frame size or frame count".into(),
            ));
        }
        Ok(header)
    }

    /// Serialises the header.
    pub fn to_bytes(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[0..4].copy_from_slice(&SYNC_WORD.to_le_bytes());
        out[4] = VERSION;
        out[5] = self.codec.to_byte();
        out[6..8].copy_from_slice(&self.algo_id.to_le_bytes());
        out[8..10].copy_from_slice(&self.input_width.to_le_bytes());
        out[10..12].copy_from_slice(&self.output_width.to_le_bytes());
        out[12..14].copy_from_slice(&self.n_frames.to_le_bytes());
        out[14..18].copy_from_slice(&self.frame_bytes.to_le_bytes());
        out[18..22].copy_from_slice(&self.uncompressed_len.to_le_bytes());
        out[22..26].copy_from_slice(&self.compressed_len.to_le_bytes());
        out[26..30].copy_from_slice(&self.payload_crc.to_le_bytes());
        out
    }

    /// Instantiates this header's codec.
    pub fn make_codec(&self) -> Box<dyn Codec> {
        registry::codec(self.codec, self.frame_bytes as usize)
    }

    /// Verifies the payload CRC against `payload`.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::CrcMismatch`] when the payload does
    /// not match the header's CRC, or [`BitstreamError::Malformed`] if
    /// the payload length disagrees with the header.
    pub fn verify_payload(&self, payload: &[u8]) -> Result<(), BitstreamError> {
        if payload.len() != self.compressed_len as usize {
            return Err(BitstreamError::Malformed(format!(
                "payload length {} != header compressed length {}",
                payload.len(),
                self.compressed_len
            )));
        }
        let computed = crc32(payload);
        if computed != self.payload_crc {
            return Err(BitstreamError::CrcMismatch {
                stored: self.payload_crc,
                computed,
            });
        }
        Ok(())
    }
}

/// A function's configuration bitstream: frames plus the metadata
/// needed to store, transport and reconfigure it.
///
/// # Examples
///
/// ```
/// use aaod_bitstream::{codec::{registry, CodecId}, Bitstream};
///
/// let frames = vec![vec![0u8; 64]; 3];
/// let bs = Bitstream::new(1, 8, 8, 64, frames)?;
/// let rom = bs.encode(registry::codec(CodecId::FrameXor, 64).as_ref());
/// assert_eq!(Bitstream::decode(&rom)?, bs);
/// # Ok::<(), aaod_bitstream::BitstreamError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitstream {
    algo_id: u16,
    input_width: u16,
    output_width: u16,
    frame_bytes: usize,
    frames: Vec<Vec<u8>>,
}

impl Bitstream {
    /// Builds a bitstream from frames.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::Malformed`] if `frames` is empty or
    /// any frame's length differs from `frame_bytes`.
    pub fn new(
        algo_id: u16,
        input_width: u16,
        output_width: u16,
        frame_bytes: usize,
        frames: Vec<Vec<u8>>,
    ) -> Result<Self, BitstreamError> {
        if frames.is_empty() {
            return Err(BitstreamError::Malformed("no frames".into()));
        }
        if frame_bytes == 0 {
            return Err(BitstreamError::Malformed("zero frame size".into()));
        }
        for (i, f) in frames.iter().enumerate() {
            if f.len() != frame_bytes {
                return Err(BitstreamError::Malformed(format!(
                    "frame {i} has {} bytes, expected {frame_bytes}",
                    f.len()
                )));
            }
        }
        Ok(Bitstream {
            algo_id,
            input_width,
            output_width,
            frame_bytes,
            frames,
        })
    }

    /// Builds the bitstream for a function image under a device
    /// geometry (the normal production path: image → frames → stream).
    pub fn from_image(image: &FunctionImage, geom: DeviceGeometry) -> Self {
        Bitstream {
            algo_id: image.algo_id(),
            input_width: image.input_width(),
            output_width: image.output_width(),
            frame_bytes: geom.frame_bytes(),
            frames: image.encode(geom),
        }
    }

    /// Algorithm id.
    pub fn algo_id(&self) -> u16 {
        self.algo_id
    }

    /// Data-input transfer width in bytes.
    pub fn input_width(&self) -> u16 {
        self.input_width
    }

    /// Output transfer width in bytes.
    pub fn output_width(&self) -> u16 {
        self.output_width
    }

    /// Frame size in bytes.
    pub fn frame_bytes(&self) -> usize {
        self.frame_bytes
    }

    /// The configuration frames.
    pub fn frames(&self) -> &[Vec<u8>] {
        &self.frames
    }

    /// Number of frames.
    pub fn n_frames(&self) -> usize {
        self.frames.len()
    }

    /// Concatenated (uncompressed) frame bytes.
    pub fn flat(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.n_frames() * self.frame_bytes);
        for f in &self.frames {
            out.extend_from_slice(f);
        }
        out
    }

    /// Serialises header + compressed payload — the bytes downloaded
    /// into the co-processor's ROM.
    pub fn encode(&self, codec: &dyn Codec) -> Vec<u8> {
        let flat = self.flat();
        let payload = codec.compress(&flat);
        let header = BitstreamHeader {
            algo_id: self.algo_id,
            codec: codec.id(),
            input_width: self.input_width,
            output_width: self.output_width,
            n_frames: self.frames.len() as u16,
            frame_bytes: self.frame_bytes as u32,
            uncompressed_len: flat.len() as u32,
            compressed_len: payload.len() as u32,
            payload_crc: crc32(&payload),
        };
        let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
        out.extend_from_slice(&header.to_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses and fully decompresses an encoded bitstream.
    ///
    /// The configuration module does *not* use this (it streams
    /// window by window); this is the host-side / test path.
    ///
    /// # Errors
    ///
    /// Propagates header, CRC and codec errors; returns
    /// [`BitstreamError::FrameMisaligned`] if the decompressed data is
    /// not whole frames.
    pub fn decode(bytes: &[u8]) -> Result<Self, BitstreamError> {
        let header = BitstreamHeader::parse(bytes)?;
        let payload = &bytes[HEADER_BYTES..];
        header.verify_payload(payload)?;
        let codec = header.make_codec();
        let flat = crate::codec::decompress_all(codec.as_ref(), payload)?;
        if flat.len() != header.uncompressed_len as usize {
            return Err(BitstreamError::CorruptPayload(format!(
                "decompressed to {} bytes, header says {}",
                flat.len(),
                header.uncompressed_len
            )));
        }
        let fb = header.frame_bytes as usize;
        if flat.len() % fb != 0 {
            return Err(BitstreamError::FrameMisaligned {
                len: flat.len(),
                frame_bytes: fb,
            });
        }
        let frames = flat.chunks(fb).map(<[u8]>::to_vec).collect();
        Bitstream::new(
            header.algo_id,
            header.input_width,
            header.output_width,
            fb,
            frames,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::registry;
    use aaod_sim::SplitMix64;

    fn sample(frames: usize, fb: usize, seed: u64) -> Bitstream {
        let mut rng = SplitMix64::new(seed);
        let frames: Vec<Vec<u8>> = (0..frames)
            .map(|_| {
                let mut f = vec![0u8; fb];
                // sparse fill: realistic bitstream statistics
                for _ in 0..fb / 8 {
                    let i = rng.index(fb);
                    f[i] = rng.next_u8();
                }
                f
            })
            .collect();
        Bitstream::new(7, 16, 8, fb, frames).unwrap()
    }

    #[test]
    fn roundtrip_every_codec() {
        let bs = sample(12, 128, 1);
        for codec in registry::all(128) {
            let bytes = bs.encode(codec.as_ref());
            let back = Bitstream::decode(&bytes).unwrap_or_else(|e| panic!("{}: {e}", codec.id()));
            assert_eq!(back, bs, "{}", codec.id());
        }
    }

    #[test]
    fn header_roundtrip() {
        let bs = sample(3, 64, 2);
        let bytes = bs.encode(registry::codec(CodecId::Rle, 64).as_ref());
        let h = BitstreamHeader::parse(&bytes).unwrap();
        assert_eq!(h.algo_id, 7);
        assert_eq!(h.codec, CodecId::Rle);
        assert_eq!(h.n_frames, 3);
        assert_eq!(h.frame_bytes, 64);
        assert_eq!(h.uncompressed_len, 192);
        assert_eq!(h.input_width, 16);
        assert_eq!(h.output_width, 8);
    }

    #[test]
    fn bad_sync_rejected() {
        let bs = sample(2, 64, 3);
        let mut bytes = bs.encode(registry::codec(CodecId::Null, 64).as_ref());
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Bitstream::decode(&bytes),
            Err(BitstreamError::Malformed(_))
        ));
    }

    #[test]
    fn payload_corruption_caught_by_crc() {
        let bs = sample(4, 64, 4);
        let mut bytes = bs.encode(registry::codec(CodecId::Lzss, 64).as_ref());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Bitstream::decode(&bytes),
            Err(BitstreamError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn truncated_payload_detected() {
        let bs = sample(4, 64, 5);
        let mut bytes = bs.encode(registry::codec(CodecId::Null, 64).as_ref());
        bytes.truncate(bytes.len() - 3);
        assert!(Bitstream::decode(&bytes).is_err());
    }

    #[test]
    fn empty_frames_rejected() {
        assert!(Bitstream::new(1, 1, 1, 64, vec![]).is_err());
    }

    #[test]
    fn ragged_frames_rejected() {
        let frames = vec![vec![0u8; 64], vec![0u8; 63]];
        assert!(Bitstream::new(1, 1, 1, 64, frames).is_err());
    }

    #[test]
    fn from_image_matches_geometry() {
        use aaod_fabric::{DeviceGeometry, FunctionImage};
        let geom = DeviceGeometry::new(8, 2);
        let img = FunctionImage::from_behavioral(5, &[1, 2], &[9u8; 400], 8, 8);
        let bs = Bitstream::from_image(&img, geom);
        assert_eq!(bs.algo_id(), 5);
        assert_eq!(bs.frame_bytes(), geom.frame_bytes());
        assert_eq!(bs.n_frames(), img.frames_needed(geom));
        // frames decode back into the image
        let back = FunctionImage::decode_frames(bs.frames(), geom).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn compressed_is_smaller_for_sparse_frames() {
        let bs = sample(32, 256, 6);
        let raw = bs.encode(registry::codec(CodecId::Null, 256).as_ref());
        let rle = bs.encode(registry::codec(CodecId::Rle, 256).as_ref());
        assert!(
            rle.len() < raw.len() / 2,
            "rle {} raw {}",
            rle.len(),
            raw.len()
        );
    }
}

//! Configuration bitstream format and compression codecs.
//!
//! The paper stores *compressed configuration bit-streams* in the
//! co-processor's ROM and decompresses them "window by window" inside
//! the configuration module (§2.3); its conclusion poses
//! symmetry-exploiting compression as an open problem. This crate
//! provides:
//!
//! * [`Bitstream`] — a packetised serialisation of a function's
//!   configuration frames (sync word, header, CRC-protected compressed
//!   payload), modelled on the Virtex-II SelectMAP stream.
//! * [`codec`] — pluggable compression codecs with **streaming
//!   decompressors** whose working memory is bounded, so the
//!   configuration module can honour the paper's windowed design:
//!   byte-wise RLE, LZSS with a 4 KiB history window, canonical
//!   Huffman, and a frame-XOR codec that exploits inter-frame CLB
//!   symmetry (the paper's open problem), plus a stored/null codec.
//! * [`crc`] — the CRC-32 used to protect payloads (and reused by the
//!   algorithm bank's CRC kernel as a golden model).
//!
//! # Examples
//!
//! ```
//! use aaod_bitstream::{codec::{registry, CodecId}, Bitstream};
//!
//! let frames = vec![vec![0u8; 128]; 4];
//! let bs = Bitstream::new(3, 8, 8, 128, frames).unwrap();
//! let codec = registry::codec(CodecId::Rle, 128);
//! let rom_bytes = bs.encode(codec.as_ref());
//! let back = Bitstream::decode(&rom_bytes).unwrap();
//! assert_eq!(back, bs);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod codec;
pub mod crc;
pub mod error;
pub mod format;
pub mod stats;
pub mod store;

pub use error::BitstreamError;
pub use format::{Bitstream, BitstreamHeader, HEADER_BYTES, SYNC_WORD};
pub use stats::CompressionStats;
pub use store::{frame_key, FrameKey, FrameStore, FrameStoreStats};

//! Compression measurement helpers for experiment E2.

use crate::codec::Codec;
use std::fmt;

/// The outcome of compressing one bitstream with one codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionStats {
    /// Uncompressed payload bytes.
    pub original: usize,
    /// Compressed payload bytes.
    pub compressed: usize,
    /// Modelled decompression cycles (codec cost × output bytes).
    pub decompress_cycles: u64,
}

impl CompressionStats {
    /// Compresses `data` with `codec` and records the sizes and the
    /// modelled decompression cost.
    pub fn measure(codec: &dyn Codec, data: &[u8]) -> Self {
        let compressed = codec.compress(data);
        CompressionStats {
            original: data.len(),
            compressed: compressed.len(),
            decompress_cycles: codec.cycles_per_output_byte() * data.len() as u64,
        }
    }

    /// Compression ratio (`original / compressed`); ∞-safe: returns
    /// 0 when nothing was compressed.
    pub fn ratio(&self) -> f64 {
        if self.compressed == 0 {
            0.0
        } else {
            self.original as f64 / self.compressed as f64
        }
    }

    /// Space saving as a fraction (`1 - compressed/original`).
    pub fn saving(&self) -> f64 {
        if self.original == 0 {
            0.0
        } else {
            1.0 - self.compressed as f64 / self.original as f64
        }
    }
}

impl fmt::Display for CompressionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} bytes (ratio {:.2})",
            self.original,
            self.compressed,
            self.ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::registry;
    use crate::codec::CodecId;

    #[test]
    fn measures_sizes() {
        let codec = registry::codec(CodecId::Rle, 64);
        let s = CompressionStats::measure(codec.as_ref(), &[0u8; 1000]);
        assert_eq!(s.original, 1000);
        assert!(s.compressed < 20);
        assert!(s.ratio() > 50.0);
        assert!(s.saving() > 0.9);
        assert_eq!(s.decompress_cycles, 1000);
    }

    #[test]
    fn degenerate_cases() {
        let s = CompressionStats {
            original: 0,
            compressed: 0,
            decompress_cycles: 0,
        };
        assert_eq!(s.ratio(), 0.0);
        assert_eq!(s.saving(), 0.0);
    }

    #[test]
    fn display() {
        let s = CompressionStats {
            original: 100,
            compressed: 50,
            decompress_cycles: 200,
        };
        assert!(s.to_string().contains("ratio 2.00"));
    }
}

//! Content-addressed frame store.
//!
//! The store keeps decoded configuration frames keyed by a two-level
//! deterministic content hash:
//!
//! * the **canonical hash** — a 128-bit hash of the frame's
//!   LUT-symmetry canonical form (see [`canon`](crate::canon)) — names
//!   the frame's *equivalence class*: all input-permuted variants of a
//!   frame land in the same bucket;
//! * the **raw hash** — a 64-bit hash of the exact bytes — selects a
//!   concrete variant inside the bucket.
//!
//! A frame that recurs across different algorithms' bitstreams (or in
//! a permuted guise) is fetched, decompressed and verified once and
//! then served from RAM. The store is the co-processor-side half of
//! the [`DeltaV2`](crate::codec::CodecId::DeltaV2) pipeline: the codec
//! embeds frame hashes in its per-frame records and the configuration
//! module probes the store before spending decompressor cycles.
//!
//! Two invariants keep dedup honest:
//!
//! * **store hit ⇒ byte-equal frame**: every insert byte-compares
//!   against the resident entry under the same key; if two *different*
//!   frames ever collide, the key is poisoned and never served again
//!   (collisions make lookups slower, never wrong). Canonical-level
//!   serving is additionally CRC-guarded by the caller, because the
//!   probing record's original frame was never itself inserted.
//! * bounded memory: entries are evicted least-recently-used against a
//!   byte budget (raw + cached canonical bytes both count), mirroring
//!   the `DecodedCache` discipline, so the store models a fixed slice
//!   of card RAM.

use crate::canon::canon_frame;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Deterministic 128-bit content hash: two independent FNV-1a-64
/// passes with distinct offset bases, packed high/low, plus a length
/// tag. Stable across runs, platforms and map iteration order.
pub fn content_hash(bytes: &[u8]) -> u128 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut a: u64 = 0xCBF2_9CE4_8422_2325; // standard FNV offset basis
    let mut b: u64 = 0x6C62_272E_07BB_0142;
    for &byte in bytes {
        a = (a ^ u64::from(byte)).wrapping_mul(PRIME);
        b = (b ^ u64::from(byte.rotate_left(3))).wrapping_mul(PRIME);
    }
    a = (a ^ bytes.len() as u64).wrapping_mul(PRIME);
    (u128::from(a) << 64) | u128::from(b)
}

/// The two-level store key of a frame: canonical-class hash plus
/// exact-content hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FrameKey {
    /// 128-bit hash of the frame's LUT-canonical form.
    pub canon: u128,
    /// 64-bit hash of the frame's exact bytes.
    pub raw: u64,
}

/// Computes a frame's store key (canonicalises internally).
pub fn frame_key(frame: &[u8]) -> FrameKey {
    let (canonical, _) = canon_frame(frame);
    FrameKey {
        canon: content_hash(&canonical),
        raw: (content_hash(frame) >> 64) as u64,
    }
}

#[derive(Debug)]
struct Entry {
    raw: Arc<Vec<u8>>,
    canonical: Arc<Vec<u8>>,
    stamp: u64,
}

impl Entry {
    fn bytes(&self) -> usize {
        self.raw.len() + self.canonical.len()
    }
}

/// Counters describing store effectiveness; folded into `OsStats` by
/// the MCU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStoreStats {
    /// Lookups answered from the store (raw or canonical level).
    pub hits: u64,
    /// Lookups that fell through to the decompressor.
    pub misses: u64,
    /// Frame bytes that did not need decoding thanks to hits.
    pub bytes_deduped: u64,
    /// Frames newly inserted.
    pub inserted: u64,
    /// Entries dropped to stay within the byte budget.
    pub evicted: u64,
    /// Keys poisoned because two different frames collided (never
    /// observed in practice; counted so it cannot hide).
    pub collisions: u64,
}

/// Byte-bounded, LRU-evicting, content-addressed store of decoded
/// configuration frames.
///
/// A capacity of zero disables the store: every lookup misses and
/// inserts are dropped, which the codec path treats as "decode
/// everything locally".
#[derive(Debug)]
pub struct FrameStore {
    capacity_bytes: usize,
    bytes: usize,
    entries: BTreeMap<(u128, u64), Entry>,
    /// `(stamp, key)` recency index — smallest stamp is the LRU entry.
    recency: BTreeSet<(u64, (u128, u64))>,
    /// Exact keys that witnessed a raw-content collision; never served.
    poisoned_raw: BTreeSet<(u128, u64)>,
    /// Canonical hashes whose bucket held two different canonical
    /// forms; canonical-level serving disabled for them.
    poisoned_canon: BTreeSet<u128>,
    next_stamp: u64,
    stats: FrameStoreStats,
}

impl FrameStore {
    /// Creates a store bounded to `capacity_bytes` of frame payload
    /// (raw plus cached canonical bytes).
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            capacity_bytes,
            bytes: 0,
            entries: BTreeMap::new(),
            recency: BTreeSet::new(),
            poisoned_raw: BTreeSet::new(),
            poisoned_canon: BTreeSet::new(),
            next_stamp: 0,
            stats: FrameStoreStats::default(),
        }
    }

    /// True when the store can hold anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently resident.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of resident frames.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no frames are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Effectiveness counters since the last [`reset_stats`](Self::reset_stats).
    pub fn stats(&self) -> FrameStoreStats {
        self.stats
    }

    /// Zeroes the counters without touching resident frames.
    pub fn reset_stats(&mut self) {
        self.stats = FrameStoreStats::default();
    }

    fn promote(&mut self, key: (u128, u64)) {
        let next = self.next_stamp;
        let entry = self.entries.get_mut(&key).expect("promote of resident");
        self.recency.remove(&(entry.stamp, key));
        entry.stamp = next;
        self.recency.insert((next, key));
        self.next_stamp += 1;
    }

    /// Looks up the exact frame for `key`, promoting it and counting a
    /// hit; `None` (a counted miss) when absent or poisoned.
    pub fn get_raw(&mut self, key: FrameKey) -> Option<Arc<Vec<u8>>> {
        let k = (key.canon, key.raw);
        if self.poisoned_raw.contains(&k) || !self.entries.contains_key(&k) {
            self.stats.misses += 1;
            return None;
        }
        self.promote(k);
        let frame = Arc::clone(&self.entries[&k].raw);
        self.stats.hits += 1;
        self.stats.bytes_deduped += frame.len() as u64;
        Some(frame)
    }

    /// Looks up the *canonical form* resident under canonical hash
    /// `canon` — any permuted variant of the wanted frame serves it.
    /// The bucket member with the smallest raw hash answers (a
    /// deterministic choice; all unpoisoned members carry byte-equal
    /// canonical forms). Counts a hit/miss like [`get_raw`](Self::get_raw).
    pub fn get_canon(&mut self, canon: u128) -> Option<Arc<Vec<u8>>> {
        if self.poisoned_canon.contains(&canon) {
            self.stats.misses += 1;
            return None;
        }
        let key = match self
            .entries
            .range((canon, 0)..=(canon, u64::MAX))
            .map(|(&k, _)| k)
            .find(|k| !self.poisoned_raw.contains(k))
        {
            Some(k) => k,
            None => {
                self.stats.misses += 1;
                return None;
            }
        };
        self.promote(key);
        let canonical = Arc::clone(&self.entries[&key].canonical);
        self.stats.hits += 1;
        self.stats.bytes_deduped += canonical.len() as u64;
        Some(canonical)
    }

    /// Peeks without promoting or counting — used by tests and
    /// encoders probing what a card already holds.
    pub fn contains(&self, key: FrameKey) -> bool {
        let k = (key.canon, key.raw);
        !self.poisoned_raw.contains(&k) && self.entries.contains_key(&k)
    }

    /// Inserts a decoded frame. Returns `true` when newly stored. A
    /// byte-identical duplicate refreshes recency; a *different* frame
    /// under the same key poisons that key (the resident entry is
    /// dropped and the key is never served again).
    pub fn insert(&mut self, frame: &[u8]) -> bool {
        let (canonical, _) = canon_frame(frame);
        if !self.is_enabled() || frame.len() + canonical.len() > self.capacity_bytes {
            return false;
        }
        let canon = content_hash(&canonical);
        let raw = (content_hash(frame) >> 64) as u64;
        let k = (canon, raw);
        if self.poisoned_raw.contains(&k) {
            return false;
        }
        if let Some(entry) = self.entries.get(&k) {
            if entry.raw.as_slice() == frame {
                // refresh recency so hot shared frames survive eviction
                self.promote(k);
                return false;
            }
            // genuine collision on the full two-level key: refuse to
            // ever serve it again
            self.stats.collisions += 1;
            let entry = self.entries.remove(&k).expect("present");
            self.recency.remove(&(entry.stamp, k));
            self.bytes -= entry.bytes();
            self.poisoned_raw.insert(k);
            self.poisoned_canon.insert(canon);
            return false;
        }
        // canonical-level guard: a bucket member whose canonical form
        // differs means the 128-bit canonical hash collided — disable
        // canonical serving for the bucket (raw serving stays valid)
        if !self.poisoned_canon.contains(&canon)
            && self
                .entries
                .range((canon, 0)..=(canon, u64::MAX))
                .any(|(_, e)| e.canonical.as_slice() != canonical.as_slice())
        {
            self.stats.collisions += 1;
            self.poisoned_canon.insert(canon);
        }
        while self.bytes + frame.len() + canonical.len() > self.capacity_bytes {
            let &(stamp, victim) = self.recency.iter().next().expect("over budget ⇒ non-empty");
            self.recency.remove(&(stamp, victim));
            let entry = self.entries.remove(&victim).expect("indexed");
            self.bytes -= entry.bytes();
            self.stats.evicted += 1;
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.bytes += frame.len() + canonical.len();
        self.entries.insert(
            k,
            Entry {
                raw: Arc::new(frame.to_vec()),
                canonical: Arc::new(canonical),
                stamp,
            },
        );
        self.recency.insert((stamp, k));
        self.stats.inserted += 1;
        true
    }

    /// Drops every resident frame (the watchdog's card reset); poison
    /// sets survive, counters are reset separately via
    /// [`reset_stats`](Self::reset_stats).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::{canon_frame, permute_frame};
    use aaod_sim::SplitMix64;

    #[test]
    fn hash_is_content_deterministic() {
        let a = content_hash(b"frame-contents");
        assert_eq!(a, content_hash(b"frame-contents"));
        assert_ne!(a, content_hash(b"frame-content!"));
        assert_ne!(content_hash(&[0u8; 8]), content_hash(&[0u8; 9]));
    }

    #[test]
    fn raw_hit_returns_byte_equal_frame() {
        let mut store = FrameStore::new(1 << 16);
        let mut rng = SplitMix64::new(0x57_0001);
        let mut frames = Vec::new();
        for _ in 0..32 {
            let mut f = vec![0u8; 64];
            rng.fill(&mut f);
            store.insert(&f);
            frames.push(f);
        }
        for f in &frames {
            let got = store.get_raw(frame_key(f)).expect("resident");
            assert_eq!(got.as_slice(), f.as_slice());
        }
        assert_eq!(store.stats().hits, 32);
        assert_eq!(store.stats().bytes_deduped, 32 * 64);
    }

    #[test]
    fn permuted_variant_serves_canonical_form() {
        let mut store = FrameStore::new(1 << 16);
        let mut rng = SplitMix64::new(0x57_0002);
        let mut frame = vec![0u8; 64];
        rng.fill(&mut frame);
        let variant = permute_frame(&frame, 17);
        store.insert(&frame);
        let key = frame_key(&variant);
        // exact variant absent ...
        assert!(!store.contains(key));
        // ... but its canonical class is resident
        let canonical = store.get_canon(key.canon).expect("class resident");
        assert_eq!(canonical.as_slice(), canon_frame(&variant).0.as_slice());
    }

    #[test]
    fn duplicate_insert_refreshes_without_growth() {
        let mut store = FrameStore::new(1024);
        assert!(store.insert(&[1u8; 64]));
        assert!(!store.insert(&[1u8; 64]));
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().inserted, 1);
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        // entries cost raw + canonical bytes, i.e. 128 each here
        let mut store = FrameStore::new(256);
        let a = vec![0xAAu8; 64];
        let b = vec![0xBBu8; 64];
        let c = vec![0xCCu8; 64];
        store.insert(&a);
        store.insert(&b);
        // touch a so b becomes LRU
        assert!(store.get_raw(frame_key(&a)).is_some());
        store.insert(&c);
        assert!(store.contains(frame_key(&a)));
        assert!(!store.contains(frame_key(&b)), "LRU entry evicted");
        assert!(store.contains(frame_key(&c)));
        assert_eq!(store.bytes(), 256);
        assert_eq!(store.stats().evicted, 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut store = FrameStore::new(0);
        assert!(!store.is_enabled());
        assert!(!store.insert(&[1, 2, 3]));
        assert!(store.get_raw(frame_key(&[1, 2, 3])).is_none());
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn oversized_frame_is_rejected_not_thrashed() {
        let mut store = FrameStore::new(64);
        store.insert(&[7u8; 16]);
        assert!(!store.insert(&[9u8; 64]));
        assert!(store.contains(frame_key(&[7u8; 16])), "resident survives");
    }

    #[test]
    fn misses_are_counted() {
        let mut store = FrameStore::new(1024);
        assert!(store.get_raw(frame_key(b"absent")).is_none());
        assert!(store.get_canon(frame_key(b"absent").canon).is_none());
        assert_eq!(
            store.stats(),
            FrameStoreStats {
                misses: 2,
                ..FrameStoreStats::default()
            }
        );
    }

    #[test]
    fn clear_drops_frames_but_keeps_counters() {
        let mut store = FrameStore::new(1024);
        store.insert(&[5u8; 32]);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.bytes(), 0);
        assert_eq!(store.stats().inserted, 1);
    }
}

//! The systems the agile co-processor is compared against (E5).
//!
//! * [`SoftwareExecutor`] — the host CPU runs every kernel itself. No
//!   PCI, no reconfiguration, but crypto throughput is limited by the
//!   software cycle counts.
//! * [`FixedFunctionCoProcessor`] — one function is implemented in
//!   dedicated hardware (the "application-specific co-processor" of
//!   the paper's introduction); every other request falls back to the
//!   host CPU. Fast on its one function, useless for agility.

use crate::coproc::CoProcessor;
use crate::error::CoreError;
use aaod_algos::AlgorithmBank;
use aaod_sim::{Clock, SimTime};

/// Host CPU clock for the software baseline: a 2005-era 2 GHz
/// desktop-class machine.
pub fn host_clock() -> Clock {
    Clock::from_hz(2_000_000_000)
}

/// The host CPU executing kernels in software.
#[derive(Debug, Clone)]
pub struct SoftwareExecutor {
    bank: AlgorithmBank,
    clock: Clock,
    total_time: SimTime,
    requests: u64,
}

impl SoftwareExecutor {
    /// Creates the baseline over the standard bank at the default
    /// host clock.
    pub fn new() -> Self {
        SoftwareExecutor::with_bank(AlgorithmBank::standard())
    }

    /// Creates the baseline over a specific bank.
    pub fn with_bank(bank: AlgorithmBank) -> Self {
        SoftwareExecutor {
            bank,
            clock: host_clock(),
            total_time: SimTime::ZERO,
            requests: 0,
        }
    }

    /// Executes `algo_id` in software, returning output and modelled
    /// CPU time.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Algo`] for unknown ids or bad input.
    pub fn invoke(&mut self, algo_id: u16, input: &[u8]) -> Result<(Vec<u8>, SimTime), CoreError> {
        let kernel = self.bank.kernel(algo_id).ok_or(CoreError::Algo(
            aaod_algos::AlgoError::UnknownAlgorithm(algo_id),
        ))?;
        let output = kernel.execute(&kernel.default_params(), input)?;
        let t = self.clock.cycles(kernel.software_cycles(input.len()));
        self.total_time += t;
        self.requests += 1;
        Ok((output, t))
    }

    /// Total modelled CPU time so far.
    pub fn total_time(&self) -> SimTime {
        self.total_time
    }

    /// Requests serviced.
    pub fn requests(&self) -> u64 {
        self.requests
    }
}

impl Default for SoftwareExecutor {
    fn default() -> Self {
        SoftwareExecutor::new()
    }
}

/// A co-processor with exactly one function in silicon; everything
/// else runs on the host.
#[derive(Debug)]
pub struct FixedFunctionCoProcessor {
    fixed_algo: u16,
    card: CoProcessor,
    software: SoftwareExecutor,
}

impl FixedFunctionCoProcessor {
    /// Builds the baseline accelerating `fixed_algo`. The function is
    /// installed and made permanently resident (its one configuration
    /// cost is paid here, mimicking an ASIC/boot-time load).
    ///
    /// # Errors
    ///
    /// Propagates install errors for `fixed_algo`.
    pub fn new(fixed_algo: u16) -> Result<Self, CoreError> {
        let mut card = CoProcessor::default();
        card.install(fixed_algo)?;
        // one warm-up invoke so the function is resident; a fixed
        // co-processor ships configured
        card.invoke(fixed_algo, &[0u8; 16])?;
        Ok(FixedFunctionCoProcessor {
            fixed_algo,
            card,
            software: SoftwareExecutor::new(),
        })
    }

    /// The accelerated function's id.
    pub fn fixed_algo(&self) -> u16 {
        self.fixed_algo
    }

    /// Invokes `algo_id`: in hardware if it is the fixed function,
    /// otherwise on the host CPU.
    ///
    /// # Errors
    ///
    /// Propagates card or software errors.
    pub fn invoke(&mut self, algo_id: u16, input: &[u8]) -> Result<(Vec<u8>, SimTime), CoreError> {
        if algo_id == self.fixed_algo {
            let (out, report) = self.card.invoke(algo_id, input)?;
            debug_assert!(report.hit(), "fixed function must stay resident");
            Ok((out, report.total()))
        } else {
            self.software.invoke(algo_id, input)
        }
    }

    /// Requests that fell back to software.
    pub fn software_requests(&self) -> u64 {
        self.software.requests()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaod_algos::ids;
    use aaod_workload::mixes;

    #[test]
    fn software_matches_golden_and_takes_time() {
        let mut sw = SoftwareExecutor::new();
        let (out, t) = sw.invoke(ids::SHA1, b"abc").unwrap();
        assert_eq!(
            out,
            AlgorithmBank::standard()
                .execute_software(ids::SHA1, b"abc")
                .unwrap()
        );
        assert!(t > SimTime::ZERO);
        assert_eq!(sw.requests(), 1);
    }

    #[test]
    fn software_unknown_algo_errors() {
        let mut sw = SoftwareExecutor::new();
        assert!(sw.invoke(4242, b"").is_err());
    }

    #[test]
    fn fixed_function_is_fast_on_its_algo_only() {
        let mut fixed = FixedFunctionCoProcessor::new(ids::AES128).unwrap();
        let input = vec![0u8; mixes::default_input_len(ids::AES128)];
        let (_, hw_time) = fixed.invoke(ids::AES128, &input).unwrap();
        let mut sw = SoftwareExecutor::new();
        let (_, sw_time) = sw.invoke(ids::AES128, &input).unwrap();
        assert!(
            hw_time < sw_time,
            "hardware {hw_time} should beat software {sw_time}"
        );
        // a different algorithm falls back to software
        let (_, t) = fixed.invoke(ids::SHA1, b"abc").unwrap();
        assert_eq!(fixed.software_requests(), 1);
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn fixed_function_outputs_match_software() {
        let mut fixed = FixedFunctionCoProcessor::new(ids::CRC32).unwrap();
        let (hw, _) = fixed.invoke(ids::CRC32, b"123456789").unwrap();
        assert_eq!(hw, 0xCBF4_3926u32.to_le_bytes().to_vec());
    }
}

//! Generic circuit breaker, shared by shard- and card-level health
//! checking.
//!
//! A serving engine quarantines a sick shard instead of letting it
//! poison every request routed to it: after `failure_threshold`
//! *consecutive* failures the breaker trips open and the shard stops
//! accepting work; after a modelled cool-down it half-opens and lets a
//! single probe through — a success closes it again, another failure
//! re-opens it. All transitions happen in modelled [`SimTime`], so a
//! run's health timeline is a pure function of the workload and fault
//! plan.
//!
//! The state machine is deliberately independent of its driver: it
//! only sees "now", successes and failures, which keeps it unit
//! testable and reusable. The engine drives one breaker per shard;
//! the cluster router drives one per card. A flapping resource that
//! keeps failing its half-open probes can be held off progressively
//! longer via [`BreakerConfig::penalty_growth`]: every re-open
//! multiplies the effective cool-down by the growth factor (capped at
//! [`BreakerConfig::penalty_cap`] doublings), and a successful probe
//! resets the penalty. The default growth of 1 reproduces the legacy
//! fixed-cool-down behaviour exactly.
//!
//! # Examples
//!
//! ```
//! use aaod_core::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
//! use aaod_sim::SimTime;
//!
//! let mut b = CircuitBreaker::new(BreakerConfig {
//!     failure_threshold: 2,
//!     cooldown: SimTime::from_ms(1),
//!     ..BreakerConfig::default()
//! });
//! let t = SimTime::from_us(10);
//! b.record_failure(t);
//! b.record_failure(t);
//! assert_eq!(b.state(), BreakerState::Open);
//! assert!(!b.allow(t)); // still cooling down
//! assert!(b.allow(t + SimTime::from_ms(1))); // half-open probe
//! b.record_success();
//! assert_eq!(b.state(), BreakerState::Closed);
//! ```

use aaod_sim::SimTime;

/// The three classic breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Healthy: requests flow normally.
    Closed,
    /// Tripped: requests are rejected until the cool-down elapses.
    Open,
    /// Probing: one request is let through to test the shard.
    HalfOpen,
}

impl BreakerState {
    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Modelled time an open breaker waits before half-opening.
    pub cooldown: SimTime,
    /// Cool-down multiplier applied per consecutive re-open (a
    /// half-open probe that fails again). `1` (the default) keeps the
    /// cool-down fixed — the legacy behaviour; `2` doubles the penalty
    /// window every time a flapping resource fails its probe, so the
    /// probe schedule backs off instead of hammering a card that
    /// bounces every probe. A successful probe resets the penalty.
    pub penalty_growth: u32,
    /// Most growth applications the penalty may accumulate (bounds the
    /// cool-down at `cooldown × growth^cap`). Irrelevant when the
    /// growth factor is 1.
    pub penalty_cap: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: SimTime::from_ms(5),
            penalty_growth: 1,
            penalty_cap: 8,
        }
    }
}

impl BreakerConfig {
    /// Checks the tuning is usable.
    ///
    /// # Panics
    ///
    /// Panics if the failure threshold is zero (the breaker would trip
    /// before the first request) or the penalty growth is zero (the
    /// cool-down would collapse to nothing on the first re-open).
    pub fn validate(&self) {
        assert!(
            self.failure_threshold >= 1,
            "breaker failure threshold must be at least 1"
        );
        assert!(
            self.penalty_growth >= 1,
            "breaker penalty growth must be at least 1"
        );
    }

    /// The effective cool-down at penalty level `level`:
    /// `cooldown × growth^min(level, cap)`, saturating.
    pub fn cooldown_at(&self, level: u32) -> SimTime {
        let mut ps = self.cooldown.as_ps();
        if self.penalty_growth > 1 {
            for _ in 0..level.min(self.penalty_cap) {
                ps = ps.saturating_mul(self.penalty_growth as u64);
            }
        }
        SimTime::from_ps(ps)
    }
}

/// The breaker itself: state, counters and a health timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: SimTime,
    penalty_level: u32,
    trips: u64,
    reopens: u64,
    rejections: u64,
    probes: u64,
    failures: u64,
    timeline: Vec<(SimTime, BreakerState)>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid; see [`BreakerConfig::validate`].
    pub fn new(config: BreakerConfig) -> Self {
        config.validate();
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: SimTime::ZERO,
            penalty_level: 0,
            trips: 0,
            reopens: 0,
            rejections: 0,
            probes: 0,
            failures: 0,
            timeline: vec![(SimTime::ZERO, BreakerState::Closed)],
        }
    }

    fn transition(&mut self, now: SimTime, to: BreakerState) {
        self.state = to;
        self.timeline.push((now, to));
    }

    /// Asks whether a request may proceed at modelled time `now`.
    ///
    /// Closed and half-open let it through; open rejects it unless the
    /// cool-down has elapsed, in which case the breaker half-opens and
    /// this request becomes the probe.
    pub fn allow(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= self.opened_at + self.config.cooldown_at(self.penalty_level) {
                    self.transition(now, BreakerState::HalfOpen);
                    self.probes += 1;
                    true
                } else {
                    self.rejections += 1;
                    false
                }
            }
        }
    }

    /// Records a served request: resets the failure streak (and the
    /// penalty level) and closes a half-open breaker.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            // the probe came back healthy — close at the time the
            // probe was admitted (already in the timeline)
            let at = self.timeline.last().map_or(SimTime::ZERO, |&(t, _)| t);
            self.penalty_level = 0;
            self.transition(at, BreakerState::Closed);
        }
    }

    /// Records a failed request (fault, deadline miss or watchdog
    /// reset) at modelled time `now`: a half-open probe failure
    /// re-opens immediately; a closed breaker trips once the streak
    /// reaches the threshold.
    pub fn record_failure(&mut self, now: SimTime) {
        self.failures += 1;
        match self.state {
            BreakerState::HalfOpen => {
                self.reopens += 1;
                self.penalty_level = (self.penalty_level + 1).min(self.config.penalty_cap);
                self.opened_at = now;
                self.transition(now, BreakerState::Open);
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trips += 1;
                    self.consecutive_failures = 0;
                    self.opened_at = now;
                    self.transition(now, BreakerState::Open);
                }
            }
            BreakerState::Open => {
                // failures reported against an already-open breaker
                // (in-flight work finishing late) don't re-trip it
            }
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the breaker is open right now (no cool-down check).
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// Current consecutive-failure streak.
    pub fn failure_streak(&self) -> u32 {
        self.consecutive_failures
    }

    /// Closed→open trips so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Half-open probe failures that re-opened the breaker.
    pub fn reopens(&self) -> u64 {
        self.reopens
    }

    /// Requests rejected while open.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Half-open probes admitted.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Every [`CircuitBreaker::record_failure`] call, regardless of
    /// state — the raw failure count conservation ledgers reconcile
    /// against.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Current penalty level: consecutive re-opens since the last
    /// successful probe, capped at the configured maximum. The
    /// effective cool-down is [`BreakerConfig::cooldown_at`] of this.
    pub fn penalty_level(&self) -> u32 {
        self.penalty_level
    }

    /// The tuning this breaker runs with.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Every state transition as `(modelled time, new state)`,
    /// starting with the initial closed state at time zero.
    pub fn timeline(&self) -> &[(SimTime, BreakerState)] {
        &self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_us: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: SimTime::from_us(cooldown_us),
            ..BreakerConfig::default()
        })
    }

    fn escalating(threshold: u32, cooldown_us: u64, growth: u32, cap: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: SimTime::from_us(cooldown_us),
            penalty_growth: growth,
            penalty_cap: cap,
        })
    }

    #[test]
    fn starts_closed_and_allows() {
        let mut b = breaker(3, 100);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(SimTime::ZERO));
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = breaker(3, 100);
        let t = SimTime::from_us(1);
        b.record_failure(t);
        b.record_failure(t);
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.record_failure(t);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = breaker(3, 100);
        let t = SimTime::from_us(1);
        b.record_failure(t);
        b.record_failure(t);
        b.record_success();
        assert_eq!(b.failure_streak(), 0);
        b.record_failure(t);
        b.record_failure(t);
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
        b.record_failure(t);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_rejects_until_cooldown() {
        let mut b = breaker(1, 100);
        b.record_failure(SimTime::from_us(10));
        assert!(!b.allow(SimTime::from_us(50)));
        assert!(!b.allow(SimTime::from_us(109)));
        assert_eq!(b.rejections(), 2);
        // cool-down elapsed: half-open probe admitted
        assert!(b.allow(SimTime::from_us(110)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.probes(), 1);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let mut b = breaker(1, 100);
        b.record_failure(SimTime::from_us(10));
        assert!(b.allow(SimTime::from_us(200)));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(SimTime::from_us(201)));
        assert_eq!(b.reopens(), 0);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = breaker(1, 100);
        b.record_failure(SimTime::from_us(10));
        assert!(b.allow(SimTime::from_us(200)));
        b.record_failure(SimTime::from_us(250));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.reopens(), 1);
        assert_eq!(b.trips(), 1, "re-open is not a fresh trip");
        // the cool-down restarts from the probe failure
        assert!(!b.allow(SimTime::from_us(300)));
        assert!(b.allow(SimTime::from_us(350)));
    }

    #[test]
    fn full_cycle_closed_open_half_open_closed() {
        let mut b = breaker(2, 50);
        let t = SimTime::from_us(5);
        b.record_failure(t);
        b.record_failure(t);
        assert!(b.is_open());
        assert!(b.allow(SimTime::from_us(60)));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        let states: Vec<BreakerState> = b.timeline().iter().map(|&(_, s)| s).collect();
        assert_eq!(
            states,
            vec![
                BreakerState::Closed,
                BreakerState::Open,
                BreakerState::HalfOpen,
                BreakerState::Closed,
            ]
        );
    }

    #[test]
    fn timeline_times_are_monotonic() {
        let mut b = breaker(1, 10);
        let mut now = SimTime::from_us(1);
        for _ in 0..4 {
            b.record_failure(now);
            now += SimTime::from_us(20);
            assert!(b.allow(now));
            b.record_success();
            now += SimTime::from_us(1);
        }
        let times: Vec<SimTime> = b.timeline().iter().map(|&(t, _)| t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        assert_eq!(b.trips(), 4);
        assert_eq!(b.probes(), 4);
    }

    #[test]
    fn failures_while_open_do_not_retrip() {
        let mut b = breaker(1, 100);
        b.record_failure(SimTime::from_us(10));
        // in-flight work reporting failure after the trip
        b.record_failure(SimTime::from_us(20));
        b.record_failure(SimTime::from_us(30));
        assert_eq!(b.trips(), 1);
        // opened_at unchanged: cool-down runs from the original trip
        assert!(b.allow(SimTime::from_us(110)));
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut b = breaker(2, 75);
            let mut now = SimTime::ZERO;
            for i in 0..20u64 {
                now += SimTime::from_us(10);
                if b.allow(now) {
                    if i % 3 == 0 {
                        b.record_failure(now);
                    } else {
                        b.record_success();
                    }
                }
            }
            (
                b.trips(),
                b.reopens(),
                b.rejections(),
                b.probes(),
                b.timeline().to_vec(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "failure threshold must be at least 1")]
    fn zero_threshold_panics() {
        let _ = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 0,
            cooldown: SimTime::ZERO,
            ..BreakerConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "penalty growth must be at least 1")]
    fn zero_penalty_growth_panics() {
        let _ = CircuitBreaker::new(BreakerConfig {
            penalty_growth: 0,
            ..BreakerConfig::default()
        });
    }

    #[test]
    fn failures_counter_counts_every_report() {
        let mut b = breaker(1, 100);
        b.record_failure(SimTime::from_us(10));
        // late in-flight failures against an open breaker still count
        b.record_failure(SimTime::from_us(20));
        assert!(b.allow(SimTime::from_us(200)));
        b.record_failure(SimTime::from_us(210));
        assert_eq!(b.failures(), 3);
        assert_eq!(b.trips(), 1);
        assert_eq!(b.reopens(), 1);
    }

    #[test]
    fn default_growth_keeps_legacy_cooldown() {
        // growth 1: re-opens never stretch the cool-down, byte-for-byte
        // the pre-escalation behaviour the golden traces pin
        let mut b = breaker(1, 100);
        b.record_failure(SimTime::from_us(0));
        for k in 1..5u64 {
            let probe_at = SimTime::from_us(k * 100);
            assert!(b.allow(probe_at), "probe {k}");
            b.record_failure(probe_at);
        }
        assert_eq!(
            b.config().cooldown_at(b.penalty_level()),
            SimTime::from_us(100)
        );
    }

    #[test]
    fn probe_refault_escalates_the_penalty() {
        // a half-open probe that faults *again* during its probe
        // window must push the next probe further out
        let mut b = escalating(1, 100, 2, 8);
        b.record_failure(SimTime::from_us(0));
        // level 0: probe admitted at 100 µs, faults immediately
        assert!(b.allow(SimTime::from_us(100)));
        b.record_failure(SimTime::from_us(100));
        assert_eq!(b.penalty_level(), 1);
        // level 1: the cool-down is now 200 µs from the re-open
        assert!(!b.allow(SimTime::from_us(250)));
        assert!(b.allow(SimTime::from_us(300)));
        b.record_failure(SimTime::from_us(300));
        assert_eq!(b.penalty_level(), 2);
        // level 2: 400 µs
        assert!(!b.allow(SimTime::from_us(650)));
        assert!(b.allow(SimTime::from_us(700)));
        // a healthy probe resets the ladder
        b.record_success();
        assert_eq!(b.penalty_level(), 0);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn flapping_faster_than_the_penalty_period_backs_off() {
        // a card that fails every probe: with growth 2 the admitted
        // probes must space out geometrically instead of tracking the
        // flap frequency
        let mut b = escalating(1, 10, 2, 4);
        b.record_failure(SimTime::ZERO);
        let mut admitted = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..2_000u64 {
            now += SimTime::from_us(1); // poll far faster than any penalty
            if b.allow(now) {
                admitted.push(now);
                b.record_failure(now); // the flap strikes again
            }
        }
        // gaps between consecutive admitted probes: 10, 20, 40, 80,
        // then capped at 160 µs
        let gaps: Vec<u64> = admitted
            .windows(2)
            .map(|w| (w[1] - w[0]).as_ps() / 1_000_000)
            .collect();
        assert!(gaps.len() >= 5, "{gaps:?}");
        assert_eq!(&gaps[..4], &[20, 40, 80, 160], "{gaps:?}");
        assert!(gaps[4..].iter().all(|&g| g == 160), "{gaps:?}");
        assert_eq!(b.penalty_level(), 4, "cap holds");
        // the ledger still balances: every admitted probe re-opened,
        // every failure was counted
        assert_eq!(b.reopens() as usize, admitted.len());
        assert_eq!(b.failures() as usize, admitted.len() + 1);
        assert_eq!(b.probes() as usize, admitted.len());
    }

    #[test]
    fn escalating_timeline_is_still_monotonic_and_replayable() {
        let run = || {
            let mut b = escalating(2, 50, 3, 3);
            let mut now = SimTime::ZERO;
            for i in 0..60u64 {
                now += SimTime::from_us(25);
                if b.allow(now) {
                    if i % 4 == 0 {
                        b.record_success();
                    } else {
                        b.record_failure(now);
                    }
                }
            }
            (b.trips(), b.reopens(), b.failures(), b.timeline().to_vec())
        };
        let (trips, reopens, failures, timeline) = run();
        assert_eq!(run(), (trips, reopens, failures, timeline.clone()));
        let times: Vec<SimTime> = timeline.iter().map(|&(t, _)| t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }
}

//! The fleet: a cluster of engine-backed cards behind a
//! health-checked deterministic router.
//!
//! A [`Cluster`] owns `cards` co-processor engines, each a full PR-3
//! [`Engine`] with its own shards, fault plan and frame store. Per-card
//! ROM contents differ: placement replicates hot algorithms across
//! several cards and leaves cold ones resident on exactly one, so a
//! card only installs (at bring-up) the algorithms routed to it. The
//! [`router`](crate::router) walks the request stream against per-card
//! virtual clocks and health breakers, failing over around dead or
//! quarantined cards and hedging jobs stranded mid-service; the
//! surviving assignment is then executed through the real card
//! engines, whose outputs are byte-identical to a serial oracle no
//! matter which replica served each job.
//!
//! Every run balances one conservation law, checked by the chaos
//! tests:
//!
//! ```text
//! submitted == completed + shed + deadline_missed + faulted + lost_unrecoverable
//! ```
//!
//! and reconciles its redirection ledger against the per-card breaker
//! timelines: `failovers + hedges == breaker_rejections + card_failures`
//! — every redirection decision is caused by exactly one breaker
//! rejection or one observed card failure, and vice versa.

use std::collections::BTreeMap;
use std::sync::Arc;

use aaod_algos::AlgorithmBank;
use aaod_sim::stats::TimeAccumulator;
use aaod_sim::trace::{EventKind, TraceConfig, TraceLevel, TraceReport, Tracer, CLUSTER_SHARD};
use aaod_sim::{CardTimeline, ClusterFaultPlan, FaultPlan, SimTime};
use aaod_workload::Workload;

use crate::breaker::{BreakerConfig, BreakerState};
use crate::coproc::CoProcessor;
use crate::dispatch;
use crate::engine::{Engine, EngineConfig};
use crate::error::CoreError;
use crate::fault::{FaultConfig, JobError};
use crate::router::{self, Route, RouteParams};

/// Salt mixed with the card index into each card's engine-level fault
/// plan seed, so per-card SEU streams are independent.
const CARD_FAULT_SALT: u64 = 0xCA2D_FA17_5EED_0B0E;

/// Fleet tuning parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Cards in the fleet (2–64).
    pub cards: usize,
    /// Replicas a hot algorithm is resident on (cold algorithms
    /// always have exactly one).
    pub replication: usize,
    /// Shards inside each card's engine.
    pub card_workers: usize,
    /// Longest same-algorithm batch inside a card.
    pub batch_max: usize,
    /// Modelled gap between consecutive job arrivals.
    pub interarrival: SimTime,
    /// Per-job latency budget from arrival; `None` disables deadline
    /// accounting.
    pub deadline: Option<SimTime>,
    /// Redirections (failovers + hedges) allowed per job.
    pub max_failovers: u32,
    /// Base failover backoff; redirection `k` waits `backoff * 2^(k-1)`
    /// of modelled time.
    pub backoff: SimTime,
    /// Health-check breaker applied to every card by the router.
    pub breaker: BreakerConfig,
    /// Seeded card-level fault schedule (crashes, hangs, flapping
    /// links, per-card SEU pressure). `None` runs a healthy fleet.
    pub plan: Option<ClusterFaultPlan>,
    /// Engine-level fault template: each card gets an independent
    /// per-card plan derived from this seed, with its rates scaled by
    /// the card's SEU-pressure multiplier from `plan`.
    pub card_faults: Option<FaultConfig>,
    /// Check every output against the golden software model.
    pub verify: bool,
    /// Keep output bytes (disable for pure timing sweeps).
    pub collect_outputs: bool,
    /// Observability: card health edges on each card's shard,
    /// failover/hedge decisions on [`CLUSTER_SHARD`].
    pub trace: TraceConfig,
    /// Online predictive replication (see [`crate::predict`]). When
    /// set, placement pins every algorithm to a *single* card and the
    /// router grows/shrinks replica sets online: an algorithm is
    /// replicated once its popularity EWMA crosses the upper
    /// hysteresis threshold and de-replicated below the lower one,
    /// with a refractory period against flip-flapping under
    /// `flash_crowd` bursts. `None` (the default) keeps the offline
    /// placement with [`ClusterConfig::replication`] static copies.
    pub predict: Option<crate::predict::PredictConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            cards: 16,
            replication: 3,
            card_workers: 2,
            batch_max: 16,
            interarrival: SimTime::from_us(2),
            deadline: None,
            max_failovers: 3,
            backoff: SimTime::from_us(5),
            breaker: BreakerConfig::default(),
            plan: None,
            card_faults: None,
            verify: false,
            collect_outputs: true,
            trace: TraceConfig::off(),
            predict: None,
        }
    }
}

impl ClusterConfig {
    /// Checks the knobs for consistency.
    ///
    /// # Panics
    ///
    /// Panics when a knob is out of range.
    pub fn validate(&self) {
        assert!(
            (2..=64).contains(&self.cards),
            "cluster needs 2..=64 cards, got {}",
            self.cards
        );
        assert!(
            (1..=self.cards).contains(&self.replication),
            "replication must be in 1..=cards, got {}",
            self.replication
        );
        assert!(self.card_workers >= 1, "each card needs at least one shard");
        assert!(self.batch_max >= 1, "batch_max must be at least 1");
        self.breaker.validate();
    }
}

/// The fleet-run ledger. Conservation:
/// `submitted == completed + shed + deadline_missed + faulted + lost_unrecoverable`,
/// reconciled against breaker timelines via
/// `failovers + hedges == breaker_rejections + card_failures`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Jobs submitted to the router.
    pub submitted: u64,
    /// Jobs with exactly one surviving, in-time, correct result.
    pub completed: u64,
    /// Jobs dropped pre-dispatch (backoff pushed past the deadline).
    pub shed: u64,
    /// Jobs whose surviving result landed past the deadline.
    pub deadline_missed: u64,
    /// Jobs that failed inside a card engine (exhausted SEU recovery).
    pub faulted: u64,
    /// Jobs lost to a dead card with no replica, or unroutable.
    pub lost_unrecoverable: u64,
    /// Pre-dispatch redirections around down or quarantined cards.
    pub failovers: u64,
    /// Mid-service redirections off dying cards.
    pub hedges: u64,
    /// Jobs where dedup discarded a completed duplicate run.
    pub hedge_duplicates: u64,
    /// Dispatches rejected by open card breakers.
    pub breaker_rejections: u64,
    /// Card failures observed by the router (down at dispatch, or
    /// died mid-service).
    pub card_failures: u64,
    /// Card down edges across the fleet within the fault horizon.
    pub card_downs: u64,
    /// Card recovery edges across the fleet within the fault horizon.
    pub card_ups: u64,
    /// Modelled time burnt on aborted partial runs and losing
    /// duplicates.
    pub wasted_time: SimTime,
    /// Online replication flips applied (hysteresis upper crossings;
    /// zero without [`ClusterConfig::predict`]).
    pub replicates: u64,
    /// Online de-replication flips applied (lower crossings).
    pub dereplicates: u64,
}

impl ClusterStats {
    /// The conservation law: every submitted job is accounted to
    /// exactly one terminal bucket.
    pub fn accounted(&self) -> bool {
        self.submitted
            == self.completed
                + self.shed
                + self.deadline_missed
                + self.faulted
                + self.lost_unrecoverable
    }

    /// The redirection ledger reconciles against the breaker
    /// timelines: each failover or hedge was caused by exactly one
    /// breaker rejection or one observed card failure.
    pub fn reconciled(&self) -> bool {
        self.failovers + self.hedges == self.breaker_rejections + self.card_failures
    }

    /// Fraction of submitted jobs with a surviving in-time result.
    pub fn goodput(&self) -> f64 {
        if self.submitted == 0 {
            return 1.0;
        }
        self.completed as f64 / self.submitted as f64
    }

    /// Accumulates another run's ledger into this one.
    pub fn merge(&mut self, o: &ClusterStats) {
        self.submitted += o.submitted;
        self.completed += o.completed;
        self.shed += o.shed;
        self.deadline_missed += o.deadline_missed;
        self.faulted += o.faulted;
        self.lost_unrecoverable += o.lost_unrecoverable;
        self.failovers += o.failovers;
        self.hedges += o.hedges;
        self.hedge_duplicates += o.hedge_duplicates;
        self.breaker_rejections += o.breaker_rejections;
        self.card_failures += o.card_failures;
        self.card_downs += o.card_downs;
        self.card_ups += o.card_ups;
        self.wasted_time += o.wasted_time;
        self.replicates += o.replicates;
        self.dereplicates += o.dereplicates;
    }
}

/// One card's health history over a fleet run.
#[derive(Debug, Clone, Default)]
pub struct CardHealth {
    /// Jobs this card won and served to completion.
    pub served: usize,
    /// Breaker trips (closed → open).
    pub trips: u64,
    /// Failed half-open probes (half-open → open).
    pub reopens: u64,
    /// Dispatches the breaker rejected while open.
    pub rejections: u64,
    /// Failures the router reported against this card.
    pub failures: u64,
    /// Half-open probes admitted.
    pub probes: u64,
    /// The breaker's state-transition timeline, in decision order.
    pub breaker_timeline: Vec<(SimTime, BreakerState)>,
    /// Physical down edges within the fault horizon.
    pub down_edges: u64,
    /// Physical recovery edges within the fault horizon.
    pub up_edges: u64,
    /// The card engine's modelled makespan over its served jobs.
    pub busy: SimTime,
}

/// The outcome of serving one workload through the fleet.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Fleet size.
    pub cards: usize,
    /// Jobs submitted.
    pub requests: usize,
    /// Output bytes per request in submission order (empty slots for
    /// jobs without a surviving result), when `collect_outputs` is on.
    pub outputs: Option<Vec<Vec<u8>>>,
    /// Terminal errors for faulted, lost and unroutable jobs.
    pub failed: BTreeMap<usize, JobError>,
    /// Jobs dropped pre-dispatch, with their shed decision.
    pub shed: BTreeMap<usize, JobError>,
    /// Jobs whose surviving result overran its deadline.
    pub deadline_missed: BTreeMap<usize, JobError>,
    /// Winning card per job (`None` for jobs without one).
    pub assignment: Vec<Option<u32>>,
    /// Sorted algorithm residency per card, as placed at bring-up.
    pub residency: Vec<Vec<u16>>,
    /// Per-card health history.
    pub card_health: Vec<CardHealth>,
    /// The run ledger.
    pub stats: ClusterStats,
    /// Latest modelled completion across the fleet (router clock).
    pub makespan: SimTime,
    /// Arrival-to-completion sojourn of every completed job.
    pub sojourn: TimeAccumulator,
    /// Online replication flips in submission order (empty without
    /// [`ClusterConfig::predict`]).
    pub flips: Vec<crate::predict::FlipRecord>,
    /// The merged trace, when tracing is enabled.
    pub trace: Option<TraceReport>,
}

impl ClusterResult {
    /// Fraction of submitted jobs with a surviving in-time result.
    pub fn goodput(&self) -> f64 {
        self.stats.goodput()
    }
}

/// A fleet of engine-backed cards behind the deterministic router.
pub struct Cluster {
    config: ClusterConfig,
    factory: Arc<dyn Fn() -> CoProcessor + Send + Sync>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// A fleet whose cards are default co-processors.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is inconsistent
    /// (see [`ClusterConfig::validate`]).
    pub fn new(config: ClusterConfig) -> Self {
        Cluster::with_factory(config, CoProcessor::default)
    }

    /// A fleet whose cards are built by `factory`.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is inconsistent
    /// (see [`ClusterConfig::validate`]).
    pub fn with_factory(
        config: ClusterConfig,
        factory: impl Fn() -> CoProcessor + Send + Sync + 'static,
    ) -> Self {
        config.validate();
        Cluster {
            config,
            factory: Arc::new(factory),
        }
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Serves every request of `workload` through the fleet:
    /// placement, health-checked routing, then execution of the
    /// surviving assignment on the real card engines.
    ///
    /// # Errors
    ///
    /// Propagates the first card-engine error (install/invoke
    /// failures, or [`CoreError::OutputMismatch`] when verification
    /// is on). Router-level degradation never errors — it lands in
    /// the ledger as typed [`JobError`]s.
    pub fn serve(
        &self,
        workload: &Workload,
        bank: &AlgorithmBank,
    ) -> Result<ClusterResult, CoreError> {
        let cfg = &self.config;
        let n = workload.len();
        let cards = cfg.cards;
        let timelines: Vec<CardTimeline> = (0..cards)
            .map(|c| match &cfg.plan {
                Some(plan) => plan.timeline(c),
                None => CardTimeline::HEALTHY,
            })
            .collect();

        if n == 0 {
            return Ok(self.empty_result(&timelines));
        }

        // Placement: calibrate once on a scratch card, replicate hot
        // algorithms, pin cold ones.
        let costs = dispatch::calibrate(workload, bank, &*self.factory);
        // Online mode starts every algorithm on a single card — the
        // router's hysteresis gate earns any further copies from the
        // stream itself.
        let replication = if cfg.predict.is_some() {
            1
        } else {
            cfg.replication
        };
        let placement = router::place(workload, bank, &costs, cards, replication);

        // Routing: the deterministic health-checked walk.
        let params = RouteParams {
            interarrival: cfg.interarrival,
            deadline: cfg.deadline,
            max_failovers: cfg.max_failovers,
            backoff: cfg.backoff,
            breaker: cfg.breaker,
            predict: cfg.predict,
        };
        let outcome = router::route(workload, bank, &costs, &placement, &timelines, &params);

        // Execution: serve each card's winning jobs through its real
        // engine, in submission order per card.
        let mut per_card: Vec<Vec<usize>> = vec![Vec::new(); cards];
        for (i, route) in outcome.routes.iter().enumerate() {
            if let Route::Completed { card, .. } = route {
                per_card[*card as usize].push(i);
            }
        }
        let mut outputs = cfg.collect_outputs.then(|| vec![Vec::new(); n]);
        let mut failed: BTreeMap<usize, JobError> = BTreeMap::new();
        let mut faulted = 0u64;
        let mut card_busy = vec![SimTime::ZERO; cards];
        for (c, indices) in per_card.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let engine = self.card_engine(c);
            let sub = workload.subset(indices);
            let result = engine.serve(&sub)?;
            card_busy[c] = result.makespan;
            for (k, &idx) in indices.iter().enumerate() {
                if let Some(err) = result.failed.get(&k) {
                    faulted += 1;
                    failed.insert(idx, err.clone());
                } else if let (Some(out), Some(card_out)) =
                    (outputs.as_mut(), result.outputs.as_ref())
                {
                    out[idx] = card_out[k].clone();
                }
            }
        }

        // The ledger: route buckets, minus engine-level faults moved
        // out of completed.
        let mut stats = ClusterStats {
            submitted: n as u64,
            failovers: outcome.failovers,
            hedges: outcome.hedges,
            hedge_duplicates: outcome.hedge_duplicates,
            wasted_time: outcome.wasted_time,
            replicates: outcome
                .flips
                .iter()
                .filter(|f| f.kind == crate::predict::Flip::Replicate)
                .count() as u64,
            dereplicates: outcome
                .flips
                .iter()
                .filter(|f| f.kind == crate::predict::Flip::Dereplicate)
                .count() as u64,
            ..ClusterStats::default()
        };
        let mut shed = BTreeMap::new();
        let mut deadline_missed = BTreeMap::new();
        let mut assignment: Vec<Option<u32>> = vec![None; n];
        let mut sojourn = TimeAccumulator::new();
        for (i, route) in outcome.routes.iter().enumerate() {
            let algo_id = workload.requests()[i].algo_id;
            match *route {
                Route::Completed {
                    card,
                    arrival,
                    finish,
                } => {
                    assignment[i] = Some(card);
                    if failed.contains_key(&i) {
                        // Counted under faulted below.
                        continue;
                    }
                    stats.completed += 1;
                    sojourn.push(finish.saturating_sub(arrival));
                }
                Route::Shed {
                    deadline,
                    decided_at,
                } => {
                    stats.shed += 1;
                    shed.insert(
                        i,
                        JobError::Shed {
                            algo_id,
                            deadline,
                            decided_at,
                        },
                    );
                }
                Route::DeadlineMissed {
                    card,
                    deadline,
                    finish,
                } => {
                    assignment[i] = Some(card);
                    stats.deadline_missed += 1;
                    deadline_missed.insert(
                        i,
                        JobError::DeadlineExceeded {
                            algo_id,
                            deadline,
                            finished: finish,
                        },
                    );
                }
                Route::Lost { card, lost_at } => {
                    stats.lost_unrecoverable += 1;
                    failed.insert(
                        i,
                        JobError::CardLost {
                            algo_id,
                            card,
                            lost_at,
                        },
                    );
                }
                Route::Unroutable {
                    attempts,
                    decided_at,
                } => {
                    stats.lost_unrecoverable += 1;
                    failed.insert(
                        i,
                        JobError::NoReplica {
                            algo_id,
                            attempts,
                            decided_at,
                        },
                    );
                }
            }
        }
        stats.faulted = faulted;

        // Per-card health, and the breaker-timeline reconciliation.
        let horizon = cfg
            .plan
            .as_ref()
            .map(|p| p.horizon())
            .unwrap_or(SimTime::ZERO);
        let mut card_health = Vec::with_capacity(cards);
        for (c, breaker) in outcome.breakers.iter().enumerate() {
            let edges = timelines[c].transitions(horizon);
            let downs = edges.iter().filter(|(_, up)| !up).count() as u64;
            let ups = edges.iter().filter(|(_, up)| *up).count() as u64;
            stats.breaker_rejections += breaker.rejections();
            stats.card_failures += breaker.failures();
            stats.card_downs += downs;
            stats.card_ups += ups;
            card_health.push(CardHealth {
                served: per_card[c].len(),
                trips: breaker.trips(),
                reopens: breaker.reopens(),
                rejections: breaker.rejections(),
                failures: breaker.failures(),
                probes: breaker.probes(),
                breaker_timeline: breaker.timeline().to_vec(),
                down_edges: downs,
                up_edges: ups,
                busy: card_busy[c],
            });
        }
        debug_assert!(
            stats.accounted(),
            "cluster ledger out of balance: {stats:?}"
        );
        debug_assert!(stats.reconciled(), "redirections unreconciled: {stats:?}");

        let trace = self.assemble_trace(&timelines, horizon, &outcome.events);
        Ok(ClusterResult {
            cards,
            requests: n,
            outputs,
            failed,
            shed,
            deadline_missed,
            assignment,
            residency: placement.residency,
            card_health,
            stats,
            makespan: outcome.makespan,
            sojourn,
            flips: outcome.flips,
            trace,
        })
    }

    /// Builds card `c`'s engine: the shared factory, the fleet's
    /// shard/batch knobs, and a per-card engine-level fault plan with
    /// rates scaled by the card's SEU-pressure multiplier.
    fn card_engine(&self, c: usize) -> Engine {
        let cfg = &self.config;
        let faults = cfg.card_faults.map(|template| {
            let seu = cfg
                .plan
                .as_ref()
                .map(|p| p.seu_multiplier(c))
                .unwrap_or(1.0);
            let mut rates = template.plan.rates();
            rates.frame_bit_flip *= seu;
            rates.torn_config *= seu;
            rates.rom_payload *= seu;
            rates.pci_transient *= seu;
            let total = rates.total();
            if total > 1.0 {
                rates.frame_bit_flip /= total;
                rates.torn_config /= total;
                rates.rom_payload /= total;
                rates.pci_transient /= total;
            }
            let seed = template.plan.seed()
                ^ CARD_FAULT_SALT
                ^ (c as u64).wrapping_mul(0xA076_1D64_78BD_642F);
            FaultConfig {
                plan: FaultPlan::new(seed, rates).with_latency(template.plan.latency()),
                ..template
            }
        });
        let engine_cfg = EngineConfig {
            workers: cfg.card_workers,
            batch_max: cfg.batch_max,
            verify: cfg.verify,
            collect_outputs: cfg.collect_outputs,
            faults,
            ..EngineConfig::default()
        };
        let factory = Arc::clone(&self.factory);
        Engine::with_factory(engine_cfg, move || factory())
    }

    /// Merges the cluster-shard routing events with per-card health
    /// edges into one [`TraceReport`] (card edges on the card's own
    /// shard id, so every shard stream stays time-ordered).
    fn assemble_trace(
        &self,
        timelines: &[CardTimeline],
        horizon: SimTime,
        events: &[(SimTime, EventKind)],
    ) -> Option<TraceReport> {
        let cfg = self.config.trace;
        if cfg.level == TraceLevel::Off {
            return None;
        }
        let mut shards = Vec::new();
        for (c, timeline) in timelines.iter().enumerate() {
            let mut tracer = Tracer::new(cfg, c as u32);
            for (t, up) in timeline.transitions(horizon) {
                let card = c as u32;
                let kind = if up {
                    EventKind::CardUp { card }
                } else {
                    EventKind::CardDown { card }
                };
                tracer.record(t, kind);
            }
            shards.push(tracer.finish());
        }
        let mut tracer = Tracer::new(cfg, CLUSTER_SHARD);
        for &(ts, kind) in events {
            tracer.record(ts, kind);
        }
        shards.push(tracer.finish());
        Some(TraceReport::assemble(shards))
    }

    /// The all-zero result of serving an empty workload.
    fn empty_result(&self, timelines: &[CardTimeline]) -> ClusterResult {
        let cards = self.config.cards;
        let horizon = self
            .config
            .plan
            .as_ref()
            .map(|p| p.horizon())
            .unwrap_or(SimTime::ZERO);
        let mut stats = ClusterStats::default();
        let mut card_health = Vec::with_capacity(cards);
        for t in timelines {
            let edges = t.transitions(horizon);
            let downs = edges.iter().filter(|(_, up)| !up).count() as u64;
            let ups = edges.iter().filter(|(_, up)| *up).count() as u64;
            stats.card_downs += downs;
            stats.card_ups += ups;
            card_health.push(CardHealth {
                down_edges: downs,
                up_edges: ups,
                ..CardHealth::default()
            });
        }
        ClusterResult {
            cards,
            requests: 0,
            outputs: self.config.collect_outputs.then(Vec::new),
            failed: BTreeMap::new(),
            shed: BTreeMap::new(),
            deadline_missed: BTreeMap::new(),
            assignment: Vec::new(),
            residency: vec![Vec::new(); cards],
            card_health,
            stats,
            makespan: SimTime::ZERO,
            sojourn: TimeAccumulator::new(),
            flips: Vec::new(),
            trace: self.assemble_trace(timelines, horizon, &[]),
        }
    }
}

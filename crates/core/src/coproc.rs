//! The host-facing co-processor: PCI + microcontroller + fabric.

use crate::error::CoreError;
use aaod_algos::AlgorithmBank;
use aaod_bitstream::codec::CodecId;
use aaod_fabric::DeviceGeometry;
use aaod_mcu::{
    InvokeReport, LruPolicy, MiniOs, MiniOsConfig, OsStats, ReconfigMode, ReplacementPolicy,
};
use aaod_pci::{PciBus, PciConfig, PciError};
use aaod_sim::trace::{DetailEvent, DetailLog};
use aaod_sim::SimTime;

/// Host-visible timing of one invocation: the card-internal breakdown
/// plus the PCI transfers that bracket it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostReport {
    /// Host→card operand transfer time.
    pub pci_input_time: SimTime,
    /// Card→host result transfer time.
    pub pci_output_time: SimTime,
    /// The controller's own breakdown.
    pub os: InvokeReport,
}

impl HostReport {
    /// Total host-observed service time.
    pub fn total(&self) -> SimTime {
        self.pci_input_time + self.pci_output_time + self.os.total()
    }

    /// Whether the function was already resident.
    pub fn hit(&self) -> bool {
        self.os.hit
    }
}

/// Driver-level PCI retry accounting from one resilient invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PciRecovery {
    /// Transfers that aborted and were retried.
    pub retries: u32,
    /// Bus time burned by the aborted attempts (already folded into
    /// the report's transfer times).
    pub wasted: SimTime,
}

/// Builder for [`CoProcessor`].
///
/// # Examples
///
/// ```
/// use aaod_core::CoProcessor;
/// use aaod_fabric::DeviceGeometry;
///
/// let cp = CoProcessor::builder()
///     .geometry(DeviceGeometry::new(48, 16))
///     .window(128)
///     .build();
/// assert_eq!(cp.geometry().frames(), 48);
/// ```
pub struct CoProcessorBuilder {
    os: MiniOsConfig,
    pci: PciConfig,
    trace: bool,
}

impl CoProcessorBuilder {
    /// Starts from the default configuration (96×16 device, LZSS,
    /// 256-byte window, LRU, partial reconfiguration, 33 MHz PCI).
    pub fn new() -> Self {
        CoProcessorBuilder {
            os: MiniOsConfig::default(),
            pci: PciConfig::default(),
            trace: false,
        }
    }

    /// Sets the device geometry.
    pub fn geometry(mut self, geometry: DeviceGeometry) -> Self {
        self.os.geometry = geometry;
        self
    }

    /// Sets the decompression window (bytes).
    pub fn window(mut self, window: usize) -> Self {
        self.os.window = window;
        self
    }

    /// Sets the bitstream codec used for installs.
    pub fn codec(mut self, codec: CodecId) -> Self {
        self.os.codec = codec;
        self
    }

    /// Sets the replacement policy.
    pub fn policy(mut self, policy: Box<dyn ReplacementPolicy>) -> Self {
        self.os.policy = policy;
        self
    }

    /// Sets partial (paper) or full (baseline) reconfiguration.
    pub fn mode(mut self, mode: ReconfigMode) -> Self {
        self.os.mode = mode;
        self
    }

    /// Sets the algorithm bank.
    pub fn bank(mut self, bank: AlgorithmBank) -> Self {
        self.os.bank = bank;
        self
    }

    /// Sets the ROM capacity in bytes.
    pub fn rom_capacity(mut self, bytes: usize) -> Self {
        self.os.rom_capacity = bytes;
        self
    }

    /// Sets the local RAM size in bytes.
    pub fn ram_size(mut self, bytes: usize) -> Self {
        self.os.ram_size = bytes;
        self
    }

    /// Sets the PCI bus parameters.
    pub fn pci(mut self, pci: PciConfig) -> Self {
        self.pci = pci;
        self
    }

    /// Enables speculative (prefetch) configuration of the predicted
    /// next algorithm during idle time.
    pub fn prefetch(mut self, enabled: bool) -> Self {
        self.os.prefetch = enabled;
        self
    }

    /// Sets the decoded-bitstream cache budget in bytes (zero
    /// disables it; see [`aaod_mcu::DecodedCache`]).
    pub fn decoded_cache_bytes(mut self, bytes: usize) -> Self {
        self.os.decoded_cache_bytes = bytes;
        self
    }

    /// Sets the content-addressed frame store budget in bytes (zero
    /// disables it; only the [`CodecId::DeltaV2`] configuration path
    /// consults it — see [`aaod_bitstream::FrameStore`]).
    pub fn frame_store_bytes(mut self, bytes: usize) -> Self {
        self.os.frame_store_bytes = bytes;
        self
    }

    /// Enables the observability detail log from the start (see
    /// [`CoProcessor::set_trace`]).
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Builds the co-processor.
    pub fn build(self) -> CoProcessor {
        let mut cp = CoProcessor {
            os: MiniOs::new(self.os),
            bus: PciBus::new(self.pci),
            details: DetailLog::new(),
        };
        if self.trace {
            cp.set_trace(true);
        }
        cp
    }
}

impl Default for CoProcessorBuilder {
    fn default() -> Self {
        CoProcessorBuilder::new()
    }
}

/// The assembled card, as seen from the host.
#[derive(Debug)]
pub struct CoProcessor {
    os: MiniOs,
    bus: PciBus,
    /// Card-level detail buffer (PCI bursts interleaved in true
    /// temporal order with the controller's drained details).
    details: DetailLog,
}

impl CoProcessor {
    /// Starts building a co-processor.
    pub fn builder() -> CoProcessorBuilder {
        CoProcessorBuilder::new()
    }

    /// Encodes and downloads a bank algorithm's bitstream over PCI
    /// into the card's ROM. Returns the modelled time (PCI transfer +
    /// ROM programming).
    ///
    /// # Errors
    ///
    /// Propagates controller errors (unknown algorithm, full ROM,
    /// duplicates…).
    pub fn install(&mut self, algo_id: u16) -> Result<SimTime, CoreError> {
        let encoded = self.os.encode_bitstream(algo_id)?;
        let pci = self.traced_write(encoded.len() as u64);
        let rom = self.os.download(&encoded)?;
        Ok(pci + rom)
    }

    /// Performs a bus write, recording it as a burst detail when the
    /// trace is on. Tracing only snapshots counters — it never adds
    /// modelled time.
    fn traced_write(&mut self, bytes: u64) -> SimTime {
        if !self.details.enabled() {
            return self.bus.write(bytes);
        }
        let before = self.bus.stats();
        let t = self.bus.write(bytes);
        let d = self.bus.stats().delta(&before);
        self.details.push(DetailEvent::PciBurst {
            write: true,
            bytes: d.bytes_written,
            transactions: d.transactions,
        });
        t
    }

    /// Read counterpart of [`CoProcessor::traced_write`].
    fn traced_read(&mut self, bytes: u64) -> SimTime {
        if !self.details.enabled() {
            return self.bus.read(bytes);
        }
        let before = self.bus.stats();
        let t = self.bus.read(bytes);
        let d = self.bus.stats().delta(&before);
        self.details.push(DetailEvent::PciBurst {
            write: false,
            bytes: d.bytes_read,
            transactions: d.transactions,
        });
        t
    }

    /// Moves the controller's buffered details into the card-level log
    /// so the stream reads in true temporal order.
    fn absorb_os_details(&mut self) {
        if self.details.enabled() {
            self.os.drain_details_into(&mut self.details);
        }
    }

    /// Invokes an installed function on `input`, returning the result
    /// bytes and the host-level timing report.
    ///
    /// # Errors
    ///
    /// Propagates controller errors; see
    /// [`aaod_mcu::MiniOs::invoke`].
    pub fn invoke(
        &mut self,
        algo_id: u16,
        input: &[u8],
    ) -> Result<(Vec<u8>, HostReport), CoreError> {
        let pci_input_time = self.traced_write(input.len() as u64);
        let (output, os_report) = self.os.invoke(algo_id, input)?;
        self.absorb_os_details();
        let pci_output_time = self.traced_read(output.len() as u64);
        Ok((
            output,
            HostReport {
                pci_input_time,
                pci_output_time,
                os: os_report,
            },
        ))
    }

    /// Invokes an installed function like [`CoProcessor::invoke`],
    /// but rides the *fallible* PCI paths: an armed transient bus
    /// abort (see [`PciBus::arm_transient_faults`]) is retried by the
    /// driver until the transfer lands, with each aborted attempt's
    /// bus time folded into the corresponding transfer time. The
    /// returned [`PciRecovery`] reports how many retries happened.
    ///
    /// # Errors
    ///
    /// Propagates controller errors (PCI aborts never escape — the
    /// driver always retries them).
    pub fn invoke_resilient(
        &mut self,
        algo_id: u16,
        input: &[u8],
    ) -> Result<(Vec<u8>, HostReport, PciRecovery), CoreError> {
        let mut recovery = PciRecovery::default();
        let pci_input_time = self.write_with_retry(input.len() as u64, &mut recovery);
        let (output, os_report) = self.os.invoke(algo_id, input)?;
        self.absorb_os_details();
        let pci_output_time = self.read_with_retry(output.len() as u64, &mut recovery);
        Ok((
            output,
            HostReport {
                pci_input_time,
                pci_output_time,
                os: os_report,
            },
            recovery,
        ))
    }

    fn write_with_retry(&mut self, bytes: u64, recovery: &mut PciRecovery) -> SimTime {
        let before = self.details.enabled().then(|| self.bus.stats());
        let mut total = SimTime::ZERO;
        loop {
            match self.bus.try_write(bytes) {
                Ok(t) => {
                    if let Some(before) = before {
                        let d = self.bus.stats().delta(&before);
                        self.details.push(DetailEvent::PciBurst {
                            write: true,
                            bytes: d.bytes_written,
                            transactions: d.transactions,
                        });
                    }
                    return total + t;
                }
                Err(PciError::TransientAbort { wasted }) => {
                    recovery.retries += 1;
                    recovery.wasted += wasted;
                    total += wasted;
                }
            }
        }
    }

    fn read_with_retry(&mut self, bytes: u64, recovery: &mut PciRecovery) -> SimTime {
        let before = self.details.enabled().then(|| self.bus.stats());
        let mut total = SimTime::ZERO;
        loop {
            match self.bus.try_read(bytes) {
                Ok(t) => {
                    if let Some(before) = before {
                        let d = self.bus.stats().delta(&before);
                        self.details.push(DetailEvent::PciBurst {
                            write: false,
                            bytes: d.bytes_read,
                            transactions: d.transactions,
                        });
                    }
                    return total + t;
                }
                Err(PciError::TransientAbort { wasted }) => {
                    recovery.retries += 1;
                    recovery.wasted += wasted;
                    total += wasted;
                }
            }
        }
    }

    /// Invokes an installed function on several inputs in one batch:
    /// the controller pays the record lookup and any (re)configuration
    /// once for the whole batch (see
    /// [`aaod_mcu::MiniOs::invoke_batch`]), while each input and
    /// output still crosses the PCI bus individually.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn invoke_batch(
        &mut self,
        algo_id: u16,
        inputs: &[&[u8]],
    ) -> Result<Vec<(Vec<u8>, HostReport)>, CoreError> {
        let mut pci_input_times = Vec::with_capacity(inputs.len());
        for input in inputs {
            pci_input_times.push(self.traced_write(input.len() as u64));
        }
        let os_results = self.os.invoke_batch(algo_id, inputs)?;
        self.absorb_os_details();
        let mut results = Vec::with_capacity(os_results.len());
        for ((output, os_report), pci_input_time) in os_results.into_iter().zip(pci_input_times) {
            let pci_output_time = self.traced_read(output.len() as u64);
            results.push((
                output,
                HostReport {
                    pci_input_time,
                    pci_output_time,
                    os: os_report,
                },
            ));
        }
        Ok(results)
    }

    /// Issues one instruction to the microcontroller over PCI — the
    /// paper's §2.1 operating model. The command bytes cross the bus
    /// host→card and the response bytes card→host; the returned time
    /// is the full round trip including the controller's work.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use aaod_core::CoProcessor;
    /// use aaod_mcu::{Command, Response};
    ///
    /// let mut cp = CoProcessor::default();
    /// let (resp, _) = cp.send_command(Command::QueryResident)?;
    /// assert_eq!(resp, Response::Resident(vec![]));
    /// # Ok::<(), aaod_core::CoreError>(())
    /// ```
    pub fn send_command(
        &mut self,
        command: aaod_mcu::Command,
    ) -> Result<(aaod_mcu::Response, SimTime), CoreError> {
        let cmd_time = self.bus.write(command.wire_len() as u64);
        let (response, os_time) = self.os.dispatch(command)?;
        let resp_time = self.bus.read(response.wire_len() as u64);
        Ok((response, cmd_time + os_time + resp_time))
    }

    /// Installed-and-resident algorithm ids.
    pub fn resident(&self) -> Vec<u16> {
        self.os.resident()
    }

    /// Runs a readback-scrub pass over the resident functions,
    /// repairing any corrupted configuration from ROM. See
    /// [`aaod_mcu::MiniOs::scrub`].
    ///
    /// # Errors
    ///
    /// Propagates repair failures.
    pub fn scrub(&mut self) -> Result<aaod_mcu::ScrubReport, CoreError> {
        Ok(self.os.scrub()?)
    }

    /// Controller statistics.
    pub fn stats(&self) -> OsStats {
        self.os.stats()
    }

    /// Directed speculative configuration of `algo` in host
    /// think-time — the engine's online predictive policy calls this
    /// during a shard's idle window so the predicted next miss is
    /// already resident when its batch arrives. Returns `true` when
    /// the function is resident afterwards. See
    /// [`aaod_mcu::MiniOs::prefetch_hint`].
    pub fn prefetch_hint(&mut self, algo: u16) -> bool {
        self.os.prefetch_hint(algo)
    }

    /// Enables or disables the observability detail log on the card
    /// and its controller. When on, PCI bursts and the controller's
    /// cache/eviction/reconfiguration details are buffered (in true
    /// temporal order) for the trace assembler to drain with
    /// [`CoProcessor::take_details`]. Tracing never adds modelled
    /// time, so every timing result is identical with it on or off.
    pub fn set_trace(&mut self, on: bool) {
        self.details.set_enabled(on);
        self.os.set_trace(on);
    }

    /// Whether the detail log is recording.
    pub fn trace_enabled(&self) -> bool {
        self.details.enabled()
    }

    /// Drains the buffered detail events (any still sitting in the
    /// controller are absorbed first).
    pub fn take_details(&mut self) -> Vec<DetailEvent> {
        self.absorb_os_details();
        self.details.take()
    }

    /// Allocation-free variant of [`CoProcessor::take_details`]:
    /// clears `buf` and drains the buffered events into it, reusing
    /// its capacity across calls. Hot loops (the engine workers) call
    /// this once per batch so the detail drain stops churning a fresh
    /// `Vec` per batch.
    pub fn take_details_into(&mut self, buf: &mut Vec<DetailEvent>) {
        buf.clear();
        self.absorb_os_details();
        self.details.drain_into(buf);
    }

    /// PCI bus statistics.
    pub fn pci_stats(&self) -> aaod_pci::PciStats {
        self.bus.stats()
    }

    /// Device geometry.
    pub fn geometry(&self) -> DeviceGeometry {
        self.os.geometry()
    }

    /// The controller (inspection / fault injection in tests).
    pub fn os(&self) -> &MiniOs {
        &self.os
    }

    /// Mutable controller access (fault injection in tests).
    pub fn os_mut(&mut self) -> &mut MiniOs {
        &mut self.os
    }

    /// The PCI bus (inspection).
    pub fn bus(&self) -> &PciBus {
        &self.bus
    }

    /// Mutable PCI bus access (fault arming).
    pub fn bus_mut(&mut self) -> &mut PciBus {
        &mut self.bus
    }

    /// Builds the default agile co-processor with the given policy and
    /// everything else standard.
    pub fn with_policy(policy: Box<dyn ReplacementPolicy>) -> Self {
        CoProcessor::builder().policy(policy).build()
    }
}

impl Default for CoProcessor {
    fn default() -> Self {
        CoProcessor::builder().policy(Box::new(LruPolicy)).build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaod_algos::ids;

    #[test]
    fn install_and_invoke() {
        let mut cp = CoProcessor::default();
        let t = cp.install(ids::CRC32).unwrap();
        assert!(t > SimTime::ZERO);
        let (out, report) = cp.invoke(ids::CRC32, b"123456789").unwrap();
        assert_eq!(out, 0xCBF4_3926u32.to_le_bytes().to_vec());
        assert!(!report.hit());
        assert!(report.pci_input_time > SimTime::ZERO);
        assert!(report.pci_output_time > SimTime::ZERO);
        assert!(report.total() > report.os.total());
    }

    #[test]
    fn pci_traffic_is_counted() {
        let mut cp = CoProcessor::default();
        cp.install(ids::PARITY8).unwrap();
        cp.invoke(ids::PARITY8, &[0xFF; 100]).unwrap();
        let s = cp.pci_stats();
        assert!(s.bytes_written > 100); // bitstream + input
        assert!(s.bytes_read > 0); // result
    }

    #[test]
    fn builder_options_apply() {
        let cp = CoProcessor::builder()
            .geometry(DeviceGeometry::new(32, 8))
            .window(64)
            .codec(CodecId::Rle)
            .mode(ReconfigMode::Full)
            .build();
        assert_eq!(cp.geometry().frames(), 32);
    }

    #[test]
    fn command_interface_matches_direct_calls() {
        use aaod_mcu::{Command, Response};
        let mut direct = CoProcessor::default();
        direct.install(ids::CRC32).unwrap();
        let (expected, _) = direct.invoke(ids::CRC32, b"123456789").unwrap();

        let mut driven = CoProcessor::default();
        let bitstream = driven.os().encode_bitstream(ids::CRC32).unwrap();
        let (resp, t) = driven
            .send_command(Command::Download { bitstream })
            .unwrap();
        assert_eq!(resp, Response::Done);
        assert!(t > SimTime::ZERO);
        let (resp, _) = driven
            .send_command(Command::Invoke {
                algo_id: ids::CRC32,
                input: b"123456789".to_vec(),
            })
            .unwrap();
        assert_eq!(resp, Response::Output(expected));
        let (resp, _) = driven.send_command(Command::QueryResident).unwrap();
        assert_eq!(resp, Response::Resident(vec![ids::CRC32]));
        let (resp, _) = driven.send_command(Command::QueryStats).unwrap();
        assert!(matches!(resp, Response::Stats { requests: 1, .. }));
        let (resp, _) = driven
            .send_command(Command::Evict {
                algo_id: ids::CRC32,
            })
            .unwrap();
        assert_eq!(resp, Response::Done);
        let (resp, _) = driven.send_command(Command::Reset).unwrap();
        assert_eq!(resp, Response::Done);
        assert!(driven.resident().is_empty());
        // ROM survives the reset: the function is still installable
        let (resp, _) = driven
            .send_command(Command::Invoke {
                algo_id: ids::CRC32,
                input: b"123456789".to_vec(),
            })
            .unwrap();
        assert!(matches!(resp, Response::Output(_)));
    }

    #[test]
    fn batch_matches_serial_over_pci() {
        let inputs: Vec<&[u8]> = vec![b"one", b"two", b"three"];
        let mut serial = CoProcessor::default();
        serial.install(ids::SHA1).unwrap();
        let expected: Vec<Vec<u8>> = inputs
            .iter()
            .map(|&i| serial.invoke(ids::SHA1, i).unwrap().0)
            .collect();
        let mut batched = CoProcessor::default();
        batched.install(ids::SHA1).unwrap();
        let got = batched.invoke_batch(ids::SHA1, &inputs).unwrap();
        assert_eq!(got.len(), 3);
        for ((out, report), want) in got.iter().zip(&expected) {
            assert_eq!(out, want);
            assert!(report.pci_input_time > SimTime::ZERO);
            assert!(report.pci_output_time > SimTime::ZERO);
        }
        assert!(!got[0].1.hit() && got[1].1.hit());
        assert_eq!(
            batched.pci_stats().bytes_read,
            serial.pci_stats().bytes_read
        );
    }

    #[test]
    fn traced_invoke_details_cover_pci_and_controller() {
        use aaod_sim::DetailEvent as D;
        let mut cp = CoProcessor::builder().trace(true).build();
        assert!(cp.trace_enabled());
        cp.install(ids::SHA1).unwrap();
        let install_details = cp.take_details();
        assert!(matches!(
            install_details[..],
            [D::PciBurst { write: true, .. }]
        ));
        let inputs: Vec<&[u8]> = vec![b"one", b"two"];
        cp.invoke_batch(ids::SHA1, &inputs).unwrap();
        let details = cp.take_details();
        // Temporal order: both input writes, controller work, then
        // both output reads.
        assert!(matches!(details[0], D::PciBurst { write: true, .. }));
        assert!(matches!(details[1], D::PciBurst { write: true, .. }));
        assert!(matches!(
            details[2],
            D::Residency { algo, hit: false } if algo == ids::SHA1
        ));
        assert!(matches!(
            details[details.len() - 1],
            D::PciBurst { write: false, .. }
        ));
        assert!(details
            .iter()
            .any(|d| matches!(d, D::RomFetch { bytes, .. } if *bytes > 0)));
        // Tracing never perturbs timing: same run untraced.
        let mut plain = CoProcessor::default();
        plain.install(ids::SHA1).unwrap();
        let plain_results = plain.invoke_batch(ids::SHA1, &inputs).unwrap();
        let mut traced = CoProcessor::builder().trace(true).build();
        traced.install(ids::SHA1).unwrap();
        let traced_results = traced.invoke_batch(ids::SHA1, &inputs).unwrap();
        assert_eq!(plain_results, traced_results);
    }

    #[test]
    fn resilient_invoke_retries_armed_pci_faults() {
        let mut cp = CoProcessor::default();
        cp.install(ids::CRC32).unwrap();
        let (clean_out, clean_report) = cp.invoke(ids::CRC32, b"123456789").unwrap();
        cp.bus_mut().arm_transient_faults(1);
        let (out, report, rec) = cp.invoke_resilient(ids::CRC32, b"123456789").unwrap();
        assert_eq!(out, clean_out);
        assert_eq!(rec.retries, 1);
        assert!(rec.wasted > SimTime::ZERO);
        assert_eq!(
            report.pci_input_time,
            clean_report.pci_input_time + rec.wasted,
            "aborted attempt's bus time is charged to the transfer"
        );
        assert_eq!(cp.bus().armed_faults(), 0);
        assert_eq!(cp.pci_stats().faulted_transfers, 1);
        // with nothing armed the resilient path matches the plain one
        let (_, _, rec) = cp.invoke_resilient(ids::CRC32, b"123456789").unwrap();
        assert_eq!(rec, PciRecovery::default());
    }

    #[test]
    fn invoke_before_install_fails() {
        let mut cp = CoProcessor::default();
        assert!(matches!(cp.invoke(ids::SHA1, b"x"), Err(CoreError::Mcu(_))));
    }
}

//! Deterministic dynamic dispatch: least-loaded dealing with residency
//! affinity and epoch-based work stealing.
//!
//! The static [`ShardPolicy`](crate::ShardPolicy) partitions fix every
//! request's shard before serving starts, so the makespan is bounded by
//! the unluckiest shard even while others sit idle. The planner here
//! closes that gap *without* giving up determinism: instead of letting
//! workers race for jobs at wall-clock time (which would make batch
//! boundaries, residency patterns and the modelled makespan a function
//! of thread scheduling), the producer simulates the pool's load with
//! one **virtual modelled clock per shard** and deals the work up
//! front:
//!
//! * **run dealing** — consecutive same-algorithm requests are dealt
//!   as one unit (capped at the engine's `batch_max`), so the miss
//!   batching the workers rely on survives the dispatch: a run stays
//!   contiguous in its shard's queue and coalesces into one
//!   `invoke_batch` call;
//! * **least-loaded deal** — each run goes to the shard whose
//!   projected clock is lowest, where a shard that has never hosted
//!   the algorithm is handicapped by *twice* its measured
//!   reconfiguration cost: once for the real install time the shard
//!   would pay, and once more as an affinity bonus, because cloning a
//!   bitstream burns pool-wide work (frames, decode, configuration
//!   bus) that a per-shard clock cannot see. A hot algorithm therefore
//!   stays put until its home shard is a full reconfiguration ahead —
//!   then it spills, and the clone pays for itself;
//! * **work stealing** — at fixed submission-index epochs (and once
//!   after the final deal), the poorest shard steals a *bundle* of
//!   whole runs from the tail of the richest shard's dealt queue: the
//!   shortest tail suffix whose moved work amortizes the installs it
//!   triggers on the thief, provided the move strictly narrows the
//!   clock gap. Migrations therefore always pay for their own
//!   reconfigurations — a stream too cheap to amortize an install is
//!   never scattered.
//!
//! Every decision is a pure function of the workload, the worker count
//! and these rules — never of wall-clock time — so a `Dynamic` run is
//! byte-identical across repetitions and thread interleavings, exactly
//! like the static policies.
//!
//! The cost model is *calibrated*, not guessed: before planning, each
//! distinct algorithm is installed and invoked twice on a scratch card
//! with its first-seen input (the same bring-up trick the deadline
//! layer uses). The second, resident invocation gives the steady-state
//! service time; the first minus the second gives the reconfiguration
//! cost. Both are modelled picoseconds, so the virtual clocks live in
//! the same unit as the simulation they predict. Other payload sizes
//! are scaled along the kernel's documented fabric-cycle curve. The
//! calibration depends only on the workload, so the plan stays pure.

use crate::coproc::CoProcessor;
use aaod_algos::AlgorithmBank;
use aaod_workload::Workload;
use std::collections::{BTreeMap, BTreeSet};

/// Deal a steal epoch every this many submissions.
const STEAL_EPOCH: usize = 32;
/// Most runs one periodic epoch may move (the final drain epoch is
/// bounded by the run count instead).
const EPOCH_MOVE_CAP: usize = 4;
/// Fixed per-request overhead in the fallback shape (lookup +
/// dispatch), in shape units.
const OVERHEAD: u64 = 96;

/// Counters describing what the dynamic dispatch planner did. All
/// zero for the static policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DispatchStats {
    /// Jobs dealt by the least-loaded rule.
    pub dealt: u64,
    /// Deals that landed on a shard where the algorithm was already
    /// resident (the affinity preference held).
    pub affinity_hits: u64,
    /// Jobs moved from the richest to the poorest shard by stealing.
    pub steals: u64,
    /// Steal epochs that moved at least one run.
    pub steal_epochs: u64,
}

/// One job moved by a steal epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StealRecord {
    /// Submission index of the stolen job.
    pub job: usize,
    /// The job's algorithm.
    pub algo_id: u16,
    /// Shard the job was dealt to (or last stolen to) before.
    pub from: u32,
    /// Shard that stole it.
    pub to: u32,
    /// The submission index whose deal triggered the epoch (`n` for
    /// the final drain epoch) — the producer emits the trace event
    /// when it reaches this index, keeping per-shard timestamps
    /// monotone.
    pub at_index: usize,
}

/// How the planner dealt one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Decision {
    /// The shard the least-loaded rule chose (before any steal).
    pub shard: u32,
    /// Whether the deal was an affinity hit.
    pub affinity: bool,
}

/// The full dispatch plan for one workload: the final per-request
/// shard assignment plus the deal/steal ledger that produced it.
#[derive(Debug, Clone, Default)]
pub(crate) struct DispatchPlan {
    /// Final shard of every request (steals already applied).
    pub assignment: Vec<usize>,
    /// Per-request deal decisions (empty for static policies).
    pub decisions: Vec<Decision>,
    /// Steal moves in trigger order (empty for static policies).
    pub steals: Vec<StealRecord>,
    /// Planner counters.
    pub stats: DispatchStats,
}

impl DispatchPlan {
    /// Wraps a static policy's fixed assignment: no deals, no steals.
    pub fn from_static(assignment: Vec<usize>) -> Self {
        DispatchPlan {
            assignment,
            ..DispatchPlan::default()
        }
    }
}

/// The scaling shape along which one algorithm's calibrated cost is
/// stretched to other payload sizes: documented fabric cycles plus a
/// transfer term and a fixed overhead. Only ratios of this function
/// are ever used.
fn shape(bank: &AlgorithmBank, algo_id: u16, input_len: usize) -> u64 {
    let exec = match bank.kernel(algo_id) {
        Some(k) => k.fabric_cycles(input_len),
        None => input_len as u64 + 8,
    };
    (exec + input_len as u64 / 2 + OVERHEAD).max(1)
}

/// One algorithm's calibrated costs, in modelled picoseconds. Shared
/// with the cluster router, which runs the same calibrated model at
/// the second level of the hierarchy (cards instead of shards).
#[derive(Debug, Clone, Copy)]
pub(crate) struct AlgoCost {
    /// Steady-state (resident) service time at the calibration length.
    pub(crate) warm_ps: u64,
    /// First-touch cost: reconfiguration + decode, i.e. cold minus
    /// warm invocation.
    pub(crate) miss_ps: u64,
    /// `shape()` at the calibration length, the scaling denominator.
    shape_base: u64,
}

/// Calibrates every distinct algorithm of `workload` on a scratch
/// card built by `factory` (bring-up, not serving time — the card is
/// dropped). Building the scratch card with the *engine's* factory
/// means the measured miss costs reflect the shards' actual codec and
/// frame-store settings: when the DeltaV2 store shrinks
/// reconfiguration, the planner's affinity handicap shrinks with it
/// and spill decisions improve automatically. An algorithm the card
/// rejects falls back to a pure shape estimate so planning never
/// fails.
pub(crate) fn calibrate(
    workload: &Workload,
    bank: &AlgorithmBank,
    factory: &(dyn Fn() -> CoProcessor + Send + Sync),
) -> BTreeMap<u16, AlgoCost> {
    let requests = workload.requests();
    let mut first_input: BTreeMap<u16, Vec<u8>> = BTreeMap::new();
    for (i, req) in requests.iter().enumerate() {
        first_input
            .entry(req.algo_id)
            .or_insert_with(|| workload.input(i));
    }
    let mut scratch = factory();
    let mut costs = BTreeMap::new();
    for (&algo, input) in &first_input {
        let shape_base = shape(bank, algo, input.len());
        let measured = scratch.install(algo).ok().and_then(|_| {
            let (_, cold) = scratch.invoke(algo, input).ok()?;
            let (_, warm) = scratch.invoke(algo, input).ok()?;
            Some((cold.total().as_ps(), warm.total().as_ps()))
        });
        let cost = match measured {
            Some((cold_ps, warm_ps)) => AlgoCost {
                warm_ps: warm_ps.max(1),
                miss_ps: cold_ps.saturating_sub(warm_ps),
                shape_base,
            },
            // Shape units read as ~nanoseconds; the ranking still
            // works and the miss bias stays conservative.
            None => AlgoCost {
                warm_ps: shape_base * 1_000,
                miss_ps: shape_base * 16_000,
                shape_base,
            },
        };
        costs.insert(algo, cost);
    }
    costs
}

/// Estimated modelled service time of one request in picoseconds: the
/// calibrated warm cost scaled along the kernel's shape curve.
pub(crate) fn estimate(
    cost: &AlgoCost,
    bank: &AlgorithmBank,
    algo_id: u16,
    input_len: usize,
) -> u64 {
    let s = shape(bank, algo_id, input_len);
    (cost.warm_ps as u128 * s as u128 / cost.shape_base as u128) as u64
}

/// A maximal batchable unit: consecutive same-algorithm requests,
/// capped at the engine's `batch_max`.
#[derive(Debug, Clone, Copy)]
struct Run {
    /// Submission index of the first member.
    start: usize,
    /// Number of members.
    len: usize,
    /// The run's algorithm.
    algo_id: u16,
    /// Summed member service estimates, picoseconds.
    cost: u64,
}

/// The mutable planner state a steal epoch rebalances.
struct PoolState {
    /// Virtual modelled clock of each shard, picoseconds.
    clocks: Vec<u64>,
    /// Algorithms ever dealt to each shard.
    resident: Vec<BTreeSet<u16>>,
    /// Runs dealt to each shard, deal order (the stealable tail).
    dealt: Vec<Vec<usize>>,
    /// Cost charged to the owning shard's clock for each run.
    charged: Vec<u64>,
}

/// Most runs one stolen bundle may contain.
const BUNDLE_CAP: usize = 32;

/// Runs one steal epoch at `at_index`: up to `max_moves` times, the
/// poorest shard (by virtual clock) steals a *bundle* of runs from
/// the tail of the richest shard's dealt queue. A bundle is the
/// shortest tail suffix whose summed service cost **amortizes** the
/// reconfigurations it would trigger on the thief (each distinct
/// algorithm the thief has never hosted costs one install) — so a
/// migration always pays for its own installs — and the move must
/// leave the thief strictly below the victim's old clock, so the
/// pool maximum never grows and the epoch terminates. Ties break on
/// the lowest shard index: the epoch is a pure function of the
/// clocks.
fn steal_epoch(
    at_index: usize,
    max_moves: usize,
    state: &mut PoolState,
    runs: &[Run],
    misses: &BTreeMap<u16, u64>,
    plan: &mut DispatchPlan,
) {
    let workers = state.clocks.len();
    let mut moved = false;
    for _ in 0..max_moves {
        let rich = (0..workers)
            .max_by_key(|&s| (state.clocks[s], std::cmp::Reverse(s)))
            .expect("workers >= 1");
        let poor = (0..workers)
            .min_by_key(|&s| (state.clocks[s], s))
            .expect("workers >= 1");
        if rich == poor {
            break;
        }
        // Grow the bundle from the victim's tail until the moved work
        // amortizes the thief's new installs; `give` grows with every
        // run, so the first amortized prefix is also the cheapest.
        let tail = &state.dealt[rich];
        let mut bundle_cost = 0u64;
        let mut bundle_miss = 0u64;
        let mut new_algos: BTreeSet<u16> = BTreeSet::new();
        let mut take = None;
        for (k, &run_idx) in tail
            .iter()
            .rev()
            .take(BUNDLE_CAP.min(tail.len()))
            .enumerate()
        {
            let run = &runs[run_idx];
            bundle_cost += run.cost;
            if !state.resident[poor].contains(&run.algo_id) && new_algos.insert(run.algo_id) {
                bundle_miss += misses.get(&run.algo_id).copied().unwrap_or(0);
            }
            if state.clocks[poor] + bundle_cost + bundle_miss >= state.clocks[rich] {
                break; // overshoot — a larger bundle only gives more
            }
            if bundle_cost >= bundle_miss {
                take = Some(k + 1);
                break;
            }
        }
        let Some(take) = take else {
            break; // no amortizable bundle fits under the gap
        };
        let cut = state.dealt[rich].len() - take;
        let bundle: Vec<usize> = state.dealt[rich].split_off(cut);
        let mut give = 0u64;
        let mut charged_miss: BTreeSet<u16> = BTreeSet::new();
        for &run_idx in &bundle {
            let run = &runs[run_idx];
            state.clocks[rich] -= state.charged[run_idx];
            // the first moved run of each newly installed algorithm
            // carries that algorithm's install in its charge
            let miss = if new_algos.contains(&run.algo_id) && charged_miss.insert(run.algo_id) {
                misses.get(&run.algo_id).copied().unwrap_or(0)
            } else {
                0
            };
            state.charged[run_idx] = run.cost + miss;
            give += run.cost + miss;
            state.resident[poor].insert(run.algo_id);
            state.dealt[poor].push(run_idx);
            let slots = &mut plan.assignment[run.start..run.start + run.len];
            for (offset, slot) in slots.iter_mut().enumerate() {
                let from = *slot as u32;
                *slot = poor;
                plan.steals.push(StealRecord {
                    job: run.start + offset,
                    algo_id: run.algo_id,
                    from,
                    to: poor as u32,
                    at_index,
                });
                plan.stats.steals += 1;
            }
        }
        state.clocks[poor] += give;
        moved = true;
    }
    if moved {
        plan.stats.steal_epochs += 1;
    }
}

/// Computes the dynamic dispatch plan for `workload` over `workers`
/// shards with a default scratch card. Pure: same (workload, workers,
/// batch_max) → same plan, bit for bit.
pub(crate) fn plan(workload: &Workload, workers: usize, batch_max: usize) -> DispatchPlan {
    plan_with(workload, workers, batch_max, &CoProcessor::default)
}

/// Computes the dynamic dispatch plan for `workload` over `workers`
/// shards, dealing runs of up to `batch_max` same-algorithm requests
/// and calibrating costs on a scratch card built by `factory` (the
/// engine passes its shard factory, so plans track the shards' codec
/// and frame-store configuration). Pure for any pure factory: same
/// (workload, workers, batch_max, factory-config) → same plan, bit
/// for bit.
pub(crate) fn plan_with(
    workload: &Workload,
    workers: usize,
    batch_max: usize,
    factory: &(dyn Fn() -> CoProcessor + Send + Sync),
) -> DispatchPlan {
    let requests = workload.requests();
    let n = requests.len();
    let bank = AlgorithmBank::standard();
    let calibrated = calibrate(workload, &bank, factory);
    let misses: BTreeMap<u16, u64> = calibrated
        .iter()
        .map(|(&algo, c)| (algo, c.miss_ps))
        .collect();

    // Per-request service estimates, memoized per (algo, len).
    let mut memo: BTreeMap<(u16, usize), u64> = BTreeMap::new();
    let costs: Vec<u64> = requests
        .iter()
        .map(|r| {
            *memo
                .entry((r.algo_id, r.input_len))
                .or_insert_with(|| estimate(&calibrated[&r.algo_id], &bank, r.algo_id, r.input_len))
        })
        .collect();

    // Group into batchable runs.
    let batch_max = batch_max.max(1);
    let mut runs: Vec<Run> = Vec::new();
    for (i, req) in requests.iter().enumerate() {
        match runs.last_mut() {
            Some(run) if run.algo_id == req.algo_id && run.len < batch_max => {
                run.len += 1;
                run.cost += costs[i];
            }
            _ => runs.push(Run {
                start: i,
                len: 1,
                algo_id: req.algo_id,
                cost: costs[i],
            }),
        }
    }

    let mut state = PoolState {
        clocks: vec![0; workers],
        resident: vec![BTreeSet::new(); workers],
        dealt: vec![Vec::new(); workers],
        charged: vec![0; runs.len()],
    };
    let mut out = DispatchPlan {
        assignment: vec![0usize; n],
        decisions: Vec::with_capacity(n),
        steals: Vec::new(),
        stats: DispatchStats::default(),
    };
    let mut next_epoch = STEAL_EPOCH;
    // Inside an epoch window the deal runs at *arrival* speed: it
    // knows the calibrated clocks only as of the last epoch boundary
    // and tracks what it dealt since then by a cheap byte proxy (all
    // a dispatcher can tally without weighing each kernel). The steal
    // epoch then re-reads the cycle-aware clocks and repairs what the
    // byte proxy got wrong — a compute-dense algorithm hiding behind
    // a small byte share piles up inside a window and is spread by
    // the very next epoch. That modelled information gap is what
    // gives stealing real work to do.
    let mut snapshot = state.clocks.clone();
    let mut window_proxy = vec![0u64; workers];
    // proxy→picosecond conversion: the pool-average service rate
    let total_bytes: u64 = requests.iter().map(|r| r.input_len as u64 + 64).sum();
    let total_cost: u64 = costs.iter().sum();
    let rate = |bytes: u64| -> u64 {
        (bytes as u128 * total_cost as u128 / total_bytes.max(1) as u128) as u64
    };

    for (run_idx, run) in runs.iter().enumerate() {
        if run.start >= next_epoch {
            steal_epoch(
                run.start,
                EPOCH_MOVE_CAP,
                &mut state,
                &runs,
                &misses,
                &mut out,
            );
            next_epoch = (run.start / STEAL_EPOCH + 1) * STEAL_EPOCH;
            snapshot.copy_from_slice(&state.clocks);
            window_proxy.fill(0);
        }
        let miss = misses.get(&run.algo_id).copied().unwrap_or(0);
        let run_bytes: u64 = requests[run.start..run.start + run.len]
            .iter()
            .map(|r| r.input_len as u64 + 64)
            .sum();
        let mut best = 0usize;
        let mut best_key = u64::MAX;
        for s in 0..workers {
            // Cold shards are handicapped twice the reconfiguration:
            // once for the install the shard would really pay, once
            // as the affinity bonus (cloning burns pool-wide work).
            let penalty = if state.resident[s].contains(&run.algo_id) {
                0
            } else {
                miss.saturating_mul(2)
            };
            let key = snapshot[s]
                .saturating_add(window_proxy[s])
                .saturating_add(penalty);
            // strict `<`: ties break on the lowest shard index
            if key < best_key {
                best_key = key;
                best = s;
            }
        }
        let affinity = state.resident[best].contains(&run.algo_id);
        let add = run.cost + if affinity { 0 } else { miss };
        window_proxy[best] += rate(run_bytes) + if affinity { 0 } else { miss };
        state.clocks[best] += add;
        state.charged[run_idx] = add;
        state.resident[best].insert(run.algo_id);
        state.dealt[best].push(run_idx);
        for slot in &mut out.assignment[run.start..run.start + run.len] {
            *slot = best;
            out.decisions.push(Decision {
                shard: best as u32,
                affinity,
            });
            out.stats.dealt += 1;
            if affinity {
                out.stats.affinity_hits += 1;
            }
        }
    }
    // final drain epoch: rebalance the tails until no move helps
    steal_epoch(n, runs.len(), &mut state, &runs, &misses, &mut out);
    out
}

/// Computes a bid-based (auction) dispatch plan — the ablation arm
/// against [`plan_with`]. Each batchable run is auctioned to the
/// shard with the lowest bid:
///
/// ```text
/// bid(s) = clock(s) + (0 if resident else miss_ps) + price(s)
/// ```
///
/// and the winner pays the *marginal* price — the second-lowest bid
/// minus its own — added to its running price (Bertsekas' auction
/// algorithm, one bidding pass). The price term is what distinguishes
/// the auction from plain least-loaded dealing: a shard that keeps
/// winning accumulates price and eventually loses close calls, so
/// load spreads without any work stealing or epoch machinery.
/// Deterministic: bids are integer picoseconds, ties break on the
/// lowest shard index, and the whole plan is a pure function of
/// (workload, workers, batch_max, factory-config).
pub(crate) fn plan_auction(
    workload: &Workload,
    workers: usize,
    batch_max: usize,
    factory: &(dyn Fn() -> CoProcessor + Send + Sync),
) -> DispatchPlan {
    let requests = workload.requests();
    let n = requests.len();
    let bank = AlgorithmBank::standard();
    let calibrated = calibrate(workload, &bank, factory);

    let mut memo: BTreeMap<(u16, usize), u64> = BTreeMap::new();
    let costs: Vec<u64> = requests
        .iter()
        .map(|r| {
            *memo
                .entry((r.algo_id, r.input_len))
                .or_insert_with(|| estimate(&calibrated[&r.algo_id], &bank, r.algo_id, r.input_len))
        })
        .collect();

    // Group into batchable runs (same segmentation as `plan_with`, so
    // the ablation compares policies, not batch shapes).
    let batch_max = batch_max.max(1);
    let mut runs: Vec<Run> = Vec::new();
    for (i, req) in requests.iter().enumerate() {
        match runs.last_mut() {
            Some(run) if run.algo_id == req.algo_id && run.len < batch_max => {
                run.len += 1;
                run.cost += costs[i];
            }
            _ => runs.push(Run {
                start: i,
                len: 1,
                algo_id: req.algo_id,
                cost: costs[i],
            }),
        }
    }

    let mut clocks = vec![0u64; workers];
    let mut prices = vec![0u64; workers];
    let mut resident: Vec<BTreeSet<u16>> = vec![BTreeSet::new(); workers];
    let mut out = DispatchPlan {
        assignment: vec![0usize; n],
        decisions: Vec::with_capacity(n),
        steals: Vec::new(),
        stats: DispatchStats::default(),
    };

    for run in &runs {
        let miss = calibrated.get(&run.algo_id).map(|c| c.miss_ps).unwrap_or(0);
        let mut best = 0usize;
        let mut best_bid = u64::MAX;
        let mut second_bid = u64::MAX;
        for (s, (&clock, &price)) in clocks.iter().zip(&prices).enumerate() {
            let penalty = if resident[s].contains(&run.algo_id) {
                0
            } else {
                miss
            };
            let bid = clock.saturating_add(penalty).saturating_add(price);
            // strict `<`: ties break on the lowest shard index
            if bid < best_bid {
                second_bid = best_bid;
                best_bid = bid;
                best = s;
            } else if bid < second_bid {
                second_bid = bid;
            }
        }
        let affinity = resident[best].contains(&run.algo_id);
        clocks[best] += run.cost + if affinity { 0 } else { miss };
        if second_bid != u64::MAX {
            // marginal price: what the winner's victory cost the
            // losing shard it displaced
            prices[best] += second_bid - best_bid;
        }
        resident[best].insert(run.algo_id);
        for slot in &mut out.assignment[run.start..run.start + run.len] {
            *slot = best;
            out.decisions.push(Decision {
                shard: best as u32,
                affinity,
            });
            out.stats.dealt += 1;
            if affinity {
                out.stats.affinity_hits += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaod_algos::ids;

    const BATCH: usize = 16;

    fn zipf_mix(n: usize, seed: u64) -> Workload {
        let algos = [ids::SHA1, ids::CRC32, ids::CRC8, ids::XTEA];
        Workload::zipf(&algos, n, 1.2, 256, seed)
    }

    #[test]
    fn plan_is_deterministic() {
        let w = zipf_mix(200, 7);
        let a = plan(&w, 4, BATCH);
        let b = plan(&w, 4, BATCH);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.steals, b.steals);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn plan_covers_every_job_exactly_once() {
        let w = zipf_mix(150, 3);
        let p = plan(&w, 3, BATCH);
        assert_eq!(p.assignment.len(), 150);
        assert_eq!(p.decisions.len(), 150);
        assert!(p.assignment.iter().all(|&s| s < 3));
        assert_eq!(p.stats.dealt, 150);
        assert_eq!(p.stats.steals, p.steals.len() as u64);
    }

    #[test]
    fn steals_chain_deal_to_final_assignment() {
        let w = zipf_mix(300, 11);
        let p = plan(&w, 4, BATCH);
        // replay: start from the deal target, apply steals in order,
        // land on the final assignment
        let mut shard: Vec<u32> = p.decisions.iter().map(|d| d.shard).collect();
        for s in &p.steals {
            assert_eq!(shard[s.job], s.from, "steal chains from the previous owner");
            assert_ne!(s.from, s.to);
            shard[s.job] = s.to;
        }
        for (i, &s) in shard.iter().enumerate() {
            assert_eq!(s as usize, p.assignment[i]);
        }
        // steal trigger indices are non-decreasing (producer replays
        // them with monotone timestamps)
        for pair in p.steals.windows(2) {
            assert!(pair[0].at_index <= pair[1].at_index);
        }
    }

    #[test]
    fn single_worker_degenerates_to_serial() {
        let w = zipf_mix(64, 5);
        let p = plan(&w, 1, BATCH);
        assert!(p.assignment.iter().all(|&s| s == 0));
        assert_eq!(p.stats.steals, 0);
    }

    #[test]
    fn runs_stay_whole_on_one_shard() {
        // every batchable run (consecutive same-algo, capped at
        // batch_max) must land contiguously on a single shard, or the
        // workers' miss batching silently degrades
        let w = Workload::bursty(
            &[ids::SHA1, ids::CRC32, ids::CRC8, ids::XTEA],
            160,
            8,
            64,
            3,
        );
        let p = plan(&w, 4, BATCH);
        let algos = w.algo_trace();
        let mut run_start = 0;
        for i in 1..=algos.len() {
            let boundary =
                i == algos.len() || algos[i] != algos[run_start] || i - run_start == BATCH;
            if boundary {
                let shard = p.assignment[run_start];
                assert!(
                    p.assignment[run_start..i].iter().all(|&s| s == shard),
                    "run [{run_start}, {i}) split across shards"
                );
                run_start = i;
            }
        }
    }

    #[test]
    fn auction_plan_is_deterministic_and_covers() {
        let w = zipf_mix(200, 7);
        let a = plan_auction(&w, 4, BATCH, &CoProcessor::default);
        let b = plan_auction(&w, 4, BATCH, &CoProcessor::default);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.assignment.len(), 200);
        assert_eq!(a.stats.dealt, 200);
        assert!(a.assignment.iter().all(|&s| s < 4));
        assert!(a.steals.is_empty(), "the auction never steals");
    }

    #[test]
    fn auction_spreads_across_shards_under_skew() {
        // a heavy Zipf stream must not all land on shard 0: the price
        // mechanism has to push work outward
        let w = zipf_mix(400, 13);
        let p = plan_auction(&w, 4, BATCH, &CoProcessor::default);
        let mut used: Vec<usize> = p.assignment.clone();
        used.sort_unstable();
        used.dedup();
        assert!(used.len() >= 2, "auction left all work on one shard");
    }

    #[test]
    fn affinity_keeps_runs_together_under_light_load() {
        // one algorithm, a stream far cheaper than a reconfiguration:
        // the affinity bonus must not scatter it across cold shards
        let w = Workload::uniform(&[ids::CRC32], 40, 64, 9);
        let p = plan(&w, 4, BATCH);
        assert!(
            p.assignment.iter().all(|&s| s == p.assignment[0]),
            "cheap uniform stream scattered across cold shards"
        );
        // every deal after the first run rides the affinity bonus
        assert_eq!(p.stats.affinity_hits as usize, 40 - BATCH, "{:?}", p.stats);
    }
}

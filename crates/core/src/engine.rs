//! Concurrent serving engine: a sharded pool of co-processors.
//!
//! The paper models a single card serving one host. A serving
//! deployment (e.g. a crypto gateway) runs many such cards and fans
//! requests out across them. [`Engine`] reproduces that: it partitions
//! a [`Workload`] across `N` independent [`CoProcessor`] shards, each
//! driven by its own OS thread behind a bounded job queue, and
//! reassembles the results in submission order — outputs are
//! byte-identical to running the workload serially on one card.
//!
//! Two serving optimisations ride on the pool:
//!
//! * **miss batching** — a worker drains the run of consecutive queued
//!   requests for the same algorithm and serves them with one
//!   [`CoProcessor::invoke_batch`] call, paying the record lookup and
//!   any (re)configuration once per run instead of once per request;
//! * **sharding policies** ([`ShardPolicy`]) — requests can be routed
//!   by `algo_id % N` (maximum locality), round-robin (maximum
//!   spread), or by a balanced partition that splits hot algorithms
//!   across shards when one algorithm alone would exceed a shard's
//!   fair share of the load.
//!
//! Wall-clock parallelism is an artefact of the host machine; the
//! engine's figure of merit is *modelled* time. Each shard accumulates
//! the simulated busy time of the requests it served; the engine's
//! makespan is the maximum over shards, and
//! [`EngineResult::speedup`] compares that against the serial
//! service-time sum.
//!
//! # Overload layer
//!
//! With [`EngineConfig::overload`] set, the engine additionally
//! defends itself against *time-domain* failure, all in modelled
//! time:
//!
//! * every request arrives at `index × interarrival` and carries a
//!   deadline per [`DeadlinePolicy`](crate::DeadlinePolicy);
//!   admission control sheds jobs whose deadline has already passed,
//!   and late completions are dropped as deadline-missed;
//! * the latency faults of [`aaod_sim::FaultPlan`] (configuration
//!   stalls, slow PCI, stuck cards) are injected per the plan, and a
//!   watchdog detects a stuck card via modelled heartbeats, resets
//!   it, and re-runs the in-flight job;
//! * each shard sits behind a [`CircuitBreaker`]: consecutive
//!   failures trip it open, bounced jobs are redistributed to healthy
//!   shards after the pool drains, and a half-open probe re-admits
//!   traffic after a cool-down.
//!
//! Every terminal state is counted in
//! [`OverloadStats`](crate::OverloadStats), whose
//! [`accounted`](crate::OverloadStats::accounted) identity guarantees
//! no job is silently lost.

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::coproc::{CoProcessor, HostReport};
use crate::dispatch::{self, DispatchPlan, DispatchStats};
use crate::error::CoreError;
use crate::fault::{FaultConfig, FaultStats, JobError};
use crate::overload::{DeadlinePolicy, OverloadConfig, OverloadStats, TenantStats};
use aaod_mcu::OsStats;
use aaod_sim::stats::TimeAccumulator;
use aaod_sim::trace::{
    BreakerPhase, EventKind, FaultKind, JobOutcome, RepairKind, Stage, TraceConfig, TraceLevel,
    TraceReport, TraceShard, Tracer, ENGINE_SHARD, PRODUCER_SHARD,
};
use aaod_sim::{FaultPlan, FaultRates, FaultSite, LatencySite, SimTime};
use aaod_workload::Workload;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Condvar, Mutex};

/// How requests are partitioned across the shard pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// `algo_id % workers`: every request for an algorithm lands on
    /// the same shard, maximising residency locality. Throughput is
    /// limited by the hottest shard.
    #[default]
    AlgoModulo,
    /// `request index % workers`: perfect load spread, worst
    /// locality — every shard ends up serving every algorithm.
    RoundRobin,
    /// Greedy weighted partition: algorithms are assigned whole to the
    /// least-loaded shard, except that an algorithm whose total weight
    /// exceeds a shard's fair share is *split* (replicated) across
    /// just enough shards to fit. Balances skewed (Zipf) workloads
    /// while keeping cold algorithms on a single shard.
    Balanced,
    /// Deterministic work-stealing dispatch (see [`crate::dispatch`]):
    /// each job is dealt to the shard with the lowest *modelled*
    /// virtual clock at deal time, with an affinity bonus for shards
    /// where the algorithm is already resident, and the poorest shard
    /// steals the richest shard's queue tail at fixed
    /// submission-index epochs. Every decision is a pure function of
    /// the workload, so results stay byte-identical across runs and
    /// thread interleavings. Unlike the static policies, the deal
    /// weighs requests by estimated *fabric cycles*, not bytes — a
    /// compute-dense algorithm that would saturate one static shard
    /// gets spread.
    Dynamic,
    /// Bid-based (auction) assignment, the ablation arm against
    /// [`ShardPolicy::Dynamic`]: each same-algorithm run is sold to
    /// the shard with the lowest bid — modelled clock, plus a
    /// cold-start handicap where the algorithm is not yet resident,
    /// plus the shard's running price. The winner pays the marginal
    /// price (second-lowest bid minus its own), Bertsekas-style, so
    /// persistently popular shards price themselves out and load
    /// spreads without work stealing. Deterministic: pure function of
    /// the workload, ties to the lower shard index.
    Auction,
}

impl ShardPolicy {
    /// A short name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ShardPolicy::AlgoModulo => "algo-mod",
            ShardPolicy::RoundRobin => "round-robin",
            ShardPolicy::Balanced => "balanced",
            ShardPolicy::Dynamic => "dynamic",
            ShardPolicy::Auction => "auction",
        }
    }

    /// Computes the full dispatch plan: a per-request shard
    /// assignment plus, for [`ShardPolicy::Dynamic`], the deal/steal
    /// ledger that produced it. The dynamic planner calibrates its
    /// cost model on a scratch card built by `factory`, so plans
    /// track the engine's shard configuration (codec, frame store…).
    fn plan(
        self,
        workload: &Workload,
        workers: usize,
        batch_max: usize,
        factory: &(dyn Fn() -> CoProcessor + Send + Sync),
    ) -> DispatchPlan {
        match self {
            ShardPolicy::Dynamic => dispatch::plan_with(workload, workers, batch_max, factory),
            ShardPolicy::Auction => dispatch::plan_auction(workload, workers, batch_max, factory),
            _ => DispatchPlan::from_static(self.assign(workload, workers)),
        }
    }

    /// Computes the shard for every request of `workload`,
    /// deterministically. [`ShardPolicy::Dynamic`] plans with the
    /// default batch cap; [`Engine::serve`] goes through
    /// [`ShardPolicy::plan`] with the configured one instead.
    fn assign(self, workload: &Workload, workers: usize) -> Vec<usize> {
        let requests = workload.requests();
        match self {
            ShardPolicy::Dynamic => {
                dispatch::plan(workload, workers, EngineConfig::default().batch_max).assignment
            }
            ShardPolicy::Auction => {
                dispatch::plan_auction(
                    workload,
                    workers,
                    EngineConfig::default().batch_max,
                    &|| CoProcessor::builder().build(),
                )
                .assignment
            }
            ShardPolicy::AlgoModulo => requests
                .iter()
                .map(|r| r.algo_id as usize % workers)
                .collect(),
            ShardPolicy::RoundRobin => (0..requests.len()).map(|i| i % workers).collect(),
            ShardPolicy::Balanced => {
                // Per-algorithm service weight: payload plus a fixed
                // per-request overhead so zero-length inputs still
                // carry cost.
                let mut weight: BTreeMap<u16, u64> = BTreeMap::new();
                for r in requests {
                    *weight.entry(r.algo_id).or_insert(0) += r.input_len as u64 + 64;
                }
                let total: u64 = weight.values().sum();
                let target = (total / workers as u64).max(1);
                let mut by_weight: Vec<(u16, u64)> = weight.into_iter().collect();
                by_weight.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let mut loads = vec![0u64; workers];
                let mut algo_shards: BTreeMap<u16, Vec<usize>> = BTreeMap::new();
                for (algo, w) in by_weight {
                    let splits = (w.div_ceil(target) as usize).clamp(1, workers);
                    let mut order: Vec<usize> = (0..workers).collect();
                    order.sort_by_key(|&s| (loads[s], s));
                    let chosen: Vec<usize> = order[..splits].to_vec();
                    for &s in &chosen {
                        loads[s] += w / splits as u64;
                    }
                    algo_shards.insert(algo, chosen);
                }
                let mut counters: BTreeMap<u16, usize> = BTreeMap::new();
                requests
                    .iter()
                    .map(|r| {
                        let shards = &algo_shards[&r.algo_id];
                        let c = counters.entry(r.algo_id).or_insert(0);
                        let shard = shards[*c % shards.len()];
                        *c += 1;
                        shard
                    })
                    .collect()
            }
        }
    }
}

/// Engine tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Shards (worker threads, each with its own co-processor).
    pub workers: usize,
    /// Bound of each shard's job queue (requests).
    pub queue_depth: usize,
    /// Longest same-algorithm run one `invoke_batch` call may absorb.
    pub batch_max: usize,
    /// Check every output against the golden software model.
    pub verify: bool,
    /// Keep the output bytes (disable for pure timing sweeps).
    pub collect_outputs: bool,
    /// Request partitioning policy.
    pub shard: ShardPolicy,
    /// Deterministic fault injection + recovery policy. `None` (the
    /// default) serves fault-free with exactly the legacy behaviour:
    /// the first shard error aborts the run.
    pub faults: Option<FaultConfig>,
    /// Deadline, admission-control, watchdog and breaker layer.
    /// `None` (the default) keeps the legacy closed-loop behaviour:
    /// no arrivals, no deadlines, no latency-fault injection.
    pub overload: Option<OverloadConfig>,
    /// Observability layer. [`TraceLevel::Off`] (the default) records
    /// nothing and leaves the hot path untouched; tracing only
    /// observes modelled durations, so enabling it never changes any
    /// simulation result.
    pub trace: TraceConfig,
    /// Online predictive prefetch (see [`crate::predict`]). When set,
    /// each shard feeds its own deterministic batch sequence into a
    /// [`crate::predict::PredictModel`] and speculatively
    /// pre-configures the predicted next algorithm after every batch
    /// ([`CoProcessor::prefetch_hint`]). `None` (the default) keeps
    /// the purely reactive behaviour. Decisions depend only on the
    /// shard's batch sequence — itself a pure function of the
    /// workload — so outputs stay byte-identical.
    pub predict: Option<crate::predict::PredictConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            queue_depth: 64,
            batch_max: 16,
            verify: false,
            collect_outputs: true,
            shard: ShardPolicy::AlgoModulo,
            faults: None,
            overload: None,
            trace: TraceConfig::off(),
            predict: None,
        }
    }
}

/// The outcome of serving one workload through the pool.
#[derive(Debug, Clone)]
pub struct EngineResult {
    /// Shards that served the workload.
    pub workers: usize,
    /// Requests serviced.
    pub requests: usize,
    /// Input bytes processed.
    pub input_bytes: u64,
    /// Outputs in submission order (when collection was enabled).
    pub outputs: Option<Vec<Vec<u8>>>,
    /// Per-request residency-hit classification, submission order.
    pub per_request_hit: Vec<bool>,
    /// Per-request modelled service time distribution.
    pub latency: TimeAccumulator,
    /// Sum of every request's modelled service time (the serial cost
    /// of the same work on these shards).
    pub total_service_time: SimTime,
    /// Modelled busy time of each shard.
    pub shard_busy: Vec<SimTime>,
    /// Modelled completion time: the busiest shard's clock.
    pub makespan: SimTime,
    /// Aggregated controller statistics across all shards.
    pub stats: OsStats,
    /// `invoke_batch` calls issued.
    pub batches: u64,
    /// Requests that rode along in a batch after its first request.
    pub coalesced: u64,
    /// Dynamic-dispatch planner counters: deals, affinity hits and
    /// steals (all zero for the static policies).
    pub dispatch: DispatchStats,
    /// Jobs that degraded to a typed error after their fault
    /// exhausted the retry budget, by submission index. Their output
    /// slots are empty. Always empty for fault-free runs.
    pub failed: BTreeMap<usize, JobError>,
    /// Fault-injection ledger, merged across shards (all zero when
    /// [`EngineConfig::faults`] is `None`).
    pub faults: FaultStats,
    /// Modelled detection-to-healthy latency of each recovery.
    pub recovery_latency: TimeAccumulator,
    /// Jobs shed at admission ([`JobError::Shed`]), by submission
    /// index. Always empty without [`EngineConfig::overload`].
    pub shed: BTreeMap<usize, JobError>,
    /// Jobs served past their deadline
    /// ([`JobError::DeadlineExceeded`]), by submission index. Their
    /// outputs were dropped.
    pub deadline_missed: BTreeMap<usize, JobError>,
    /// Jobs dropped at submission by their tenant's hard quota
    /// ([`JobError::QuotaExceeded`]), by submission index. They were
    /// never enqueued. Always empty without [`EngineConfig::overload`]
    /// or without tenant quotas in the workload.
    pub quota_exceeded: BTreeMap<usize, JobError>,
    /// Per-tenant outcome totals, in tenant-spec order. Populated
    /// only for overload runs over a workload carrying tenant specs.
    pub tenants: Vec<TenantStats>,
    /// Overload-layer counters, merged across shards (all zero
    /// without [`EngineConfig::overload`]).
    pub overload: OverloadStats,
    /// The resolved per-job deadline budget (`None` without
    /// [`EngineConfig::overload`]).
    pub deadline_budget: Option<SimTime>,
    /// Each shard's circuit-breaker health timeline: `(modelled time,
    /// new state)` transitions, starting closed at time zero. Empty
    /// without [`EngineConfig::overload`].
    pub shard_health: Vec<Vec<(SimTime, BreakerState)>>,
    /// Arrival-to-completion (queueing + service) modelled time of
    /// every completed job. Only populated in overload mode, where
    /// jobs have arrival times.
    pub sojourn: TimeAccumulator,
    /// The assembled trace (`None` when [`EngineConfig::trace`] is
    /// [`TraceLevel::Off`]). Events are in canonical `(shard, seq)`
    /// order: byte-identical across runs for the same workload, seed
    /// and config.
    pub trace: Option<TraceReport>,
}

impl EngineResult {
    /// Modelled speedup over serial service: total service time
    /// divided by the makespan.
    pub fn speedup(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.total_service_time.as_ns() / self.makespan.as_ns()
        }
    }

    /// Modelled throughput in input megabytes per simulated second of
    /// makespan.
    pub fn throughput_mb_s(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.input_bytes as f64 / 1e6 / self.makespan.as_secs()
        }
    }

    /// Residency hit rate across all shards.
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }

    /// Fraction of submitted jobs that completed within deadline —
    /// the goodput ratio against offered load (zero without
    /// [`EngineConfig::overload`] submissions).
    pub fn goodput(&self) -> f64 {
        self.overload.goodput()
    }
}

/// One queued request.
struct Job {
    index: usize,
    algo_id: u16,
    input: Vec<u8>,
    /// Modelled arrival time (`index × interarrival`, scaled by the
    /// workload's arrival tick when it carries a traffic model; zero
    /// without the overload layer).
    arrival: SimTime,
    /// Absolute modelled deadline (`None` without the overload
    /// layer).
    deadline: Option<SimTime>,
    /// The submitting tenant's index in the workload's spec list
    /// (`None` for untagged workloads).
    tenant: Option<u16>,
}

/// The read-only half of the weighted-fair admission policy, shared
/// by every shard: tenant weights and the configured slack. The
/// mutable per-shard counters live in [`OverloadState`].
#[derive(Debug, Clone)]
struct FairnessShare {
    /// Admission weight per tenant, in spec order.
    weights: Vec<u64>,
    /// Sum of all weights (at least 1).
    total: u64,
    /// Percent a tenant may overshoot its share before shedding.
    slack_pct: u64,
    /// Unconditional admissions before the share test engages.
    base_allowance: u64,
}

/// A shard's weighted-fair admission counters.
struct FairnessState {
    share: FairnessShare,
    /// Jobs admitted per tenant on this shard.
    admitted: Vec<u64>,
    /// Jobs admitted on this shard across all tenants.
    admitted_total: u64,
}

/// Modelled arrival time of request `i`: the workload's arrival tick
/// (in milli-interarrivals) scales the configured interarrival when
/// the workload carries a traffic model; otherwise arrivals are
/// uniform at `i × interarrival`.
fn arrival_time(oc: &OverloadConfig, workload: &Workload, i: usize) -> SimTime {
    match workload.arrival_tick(i) {
        Some(tick) => {
            SimTime::from_ps((oc.interarrival.as_ps() as u128 * tick as u128 / 1000) as u64)
        }
        None => oc.interarrival * i as u64,
    }
}

/// A bounded FIFO of pre-segmented batches: producers block while the
/// queued job count is at capacity, consumers block while empty,
/// `close` wakes everyone for shutdown.
///
/// Batches are segmented by the *producer* from its full view of the
/// shard's stream, never by the consumer's racy view of the queue —
/// batch boundaries (and therefore the per-batch shared costs and the
/// modelled makespan) are a pure function of the workload, not of
/// thread timing.
struct BoundedQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct QueueState {
    batches: VecDeque<Vec<Job>>,
    /// Total jobs across `batches` (the capacity unit).
    jobs: usize,
    closed: bool,
}

impl BoundedQueue {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                batches: VecDeque::new(),
                jobs: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    fn push(&self, batch: Vec<Job>) {
        debug_assert!(!batch.is_empty(), "empty batch pushed");
        let mut st = self.state.lock().expect("queue lock poisoned");
        // an empty queue always admits a batch, so a batch larger
        // than the whole capacity cannot deadlock
        while st.jobs >= self.capacity && !st.batches.is_empty() {
            st = self.not_full.wait(st).expect("queue lock poisoned");
        }
        st.jobs += batch.len();
        st.batches.push_back(batch);
        drop(st);
        self.not_empty.notify_one();
    }

    fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Pops the next batch; `None` once the queue is closed and
    /// drained.
    fn pop_batch(&self) -> Option<Vec<Job>> {
        let mut st = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(batch) = st.batches.pop_front() {
                st.jobs -= batch.len();
                drop(st);
                self.not_full.notify_all();
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue lock poisoned");
        }
    }
}

struct JobResult {
    index: usize,
    output: Vec<u8>,
    hit: bool,
    time: SimTime,
    /// Set when the job degraded instead of producing an output.
    error: Option<JobError>,
    /// Arrival-to-completion time (completed overload-mode jobs).
    sojourn: Option<SimTime>,
}

struct WorkerOutcome {
    results: Vec<JobResult>,
    busy: SimTime,
    stats: OsStats,
    batches: u64,
    coalesced: u64,
    faults: FaultStats,
    recovery_latency: TimeAccumulator,
    /// Overload-layer counters for this shard.
    overload: OverloadStats,
    /// Jobs bounced by this shard's open breaker, in pop order; the
    /// engine redistributes them to healthy shards after the pool
    /// drains.
    rejected: Vec<Job>,
    /// The shard's modelled clock at drain: service plus idle gaps
    /// waiting for arrivals (overload mode only; `ZERO` otherwise).
    finish: SimTime,
    /// Breaker health timeline (overload mode only).
    breaker_timeline: Vec<(SimTime, BreakerState)>,
    /// Whether the breaker ended the run open (shard unhealthy).
    breaker_open: bool,
    /// The shard's card, returned so redistribution can serve bounced
    /// jobs on it (overload mode only).
    cp: Option<CoProcessor>,
    /// The shard's trace stream (absent at [`TraceLevel::Off`]).
    trace: Option<TraceShard>,
}

impl WorkerOutcome {
    fn empty() -> Self {
        WorkerOutcome {
            results: Vec::new(),
            busy: SimTime::ZERO,
            stats: OsStats::default(),
            batches: 0,
            coalesced: 0,
            faults: FaultStats::default(),
            recovery_latency: TimeAccumulator::new(),
            overload: OverloadStats::default(),
            rejected: Vec::new(),
            finish: SimTime::ZERO,
            breaker_timeline: Vec::new(),
            breaker_open: false,
            cp: None,
            trace: None,
        }
    }
}

/// Maps a corruption-fault site to its trace kind.
fn fault_kind(site: FaultSite) -> FaultKind {
    match site {
        FaultSite::FrameBitFlip => FaultKind::FrameFlip,
        FaultSite::TornConfig => FaultKind::TornConfig,
        FaultSite::RomPayload => FaultKind::RomRot,
        FaultSite::PciTransient => FaultKind::PciTransient,
    }
}

/// Maps a latency-fault site to its trace kind.
fn latency_kind(site: LatencySite) -> FaultKind {
    match site {
        LatencySite::StallConfig => FaultKind::Stall,
        LatencySite::SlowPci => FaultKind::SlowPci,
        LatencySite::StuckCard => FaultKind::StuckCard,
    }
}

/// Maps a breaker state to its trace phase.
fn breaker_phase(state: BreakerState) -> BreakerPhase {
    match state {
        BreakerState::Closed => BreakerPhase::Closed,
        BreakerState::Open => BreakerPhase::Open,
        BreakerState::HalfOpen => BreakerPhase::HalfOpen,
    }
}

/// Emits the stage-span tree of one fault-free job: `JobOpen`, the
/// eight sequential stages (zero-duration stages are skipped) and
/// returns the job's end time. The stage durations come straight from
/// the report, so their sum equals the job's service time.
pub(crate) fn trace_clean_stages(
    tracer: &mut Tracer,
    start: SimTime,
    index: usize,
    algo_id: u16,
    report: &HostReport,
) -> SimTime {
    let job = index as u64;
    tracer.record(start, EventKind::JobOpen { job, algo: algo_id });
    let mut cursor = start;
    for (stage, dur) in [
        (Stage::PciIn, report.pci_input_time),
        (Stage::Lookup, report.os.lookup_time),
        (Stage::RomFetch, report.os.rom_time),
        (Stage::Reconfig, report.os.reconfig_time),
        (Stage::DataIn, report.os.input_time),
        (Stage::Execute, report.os.exec_time),
        (Stage::Collect, report.os.output_time),
        (Stage::PciOut, report.pci_output_time),
    ] {
        tracer.span(cursor, dur, job, stage, algo_id);
        cursor += dur;
    }
    cursor
}

/// [`trace_clean_stages`] plus the closing `JobClose`, for paths that
/// classify the job as completed on the spot.
pub(crate) fn trace_clean_job(
    tracer: &mut Tracer,
    start: SimTime,
    index: usize,
    algo_id: u16,
    report: &HostReport,
) -> SimTime {
    let end = trace_clean_stages(tracer, start, index, algo_id, report);
    tracer.record(
        end,
        EventKind::JobClose {
            job: index as u64,
            algo: algo_id,
            outcome: JobOutcome::Completed,
            hit: report.hit(),
        },
    );
    end
}

/// The sharded co-processor pool.
pub struct Engine {
    config: EngineConfig,
    factory: Box<dyn Fn() -> CoProcessor + Send + Sync>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// An engine whose shards are default co-processors.
    pub fn new(config: EngineConfig) -> Self {
        Engine::with_factory(config, CoProcessor::default)
    }

    /// An engine whose shards are built by `factory` — use this to
    /// give every shard a custom geometry, policy, codec or
    /// decoded-cache budget.
    pub fn with_factory(
        config: EngineConfig,
        factory: impl Fn() -> CoProcessor + Send + Sync + 'static,
    ) -> Self {
        Engine {
            config,
            factory: Box::new(factory),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Serves every request of `workload` through the pool and
    /// reassembles the results in submission order.
    ///
    /// Each shard installs only the algorithms routed to it (install
    /// time is bring-up, not serving time), services its queue until
    /// the producer closes it, and reports its modelled busy time.
    ///
    /// # Errors
    ///
    /// Propagates the first shard error: install/invoke failures, or
    /// [`CoreError::OutputMismatch`] when verification is on.
    pub fn serve(&self, workload: &Workload) -> Result<EngineResult, CoreError> {
        let workers = self.config.workers.max(1);
        let requests = workload.requests();
        let n = requests.len();
        if n == 0 {
            return Ok(EngineResult {
                workers,
                requests: 0,
                input_bytes: 0,
                outputs: self.config.collect_outputs.then(Vec::new),
                per_request_hit: Vec::new(),
                latency: TimeAccumulator::new(),
                total_service_time: SimTime::ZERO,
                shard_busy: vec![SimTime::ZERO; workers],
                makespan: SimTime::ZERO,
                stats: OsStats::default(),
                batches: 0,
                coalesced: 0,
                dispatch: DispatchStats::default(),
                failed: BTreeMap::new(),
                faults: FaultStats::default(),
                recovery_latency: TimeAccumulator::new(),
                shed: BTreeMap::new(),
                deadline_missed: BTreeMap::new(),
                quota_exceeded: BTreeMap::new(),
                tenants: Vec::new(),
                overload: OverloadStats::default(),
                deadline_budget: None,
                shard_health: Vec::new(),
                sojourn: TimeAccumulator::new(),
                trace: (self.config.trace.level != TraceLevel::Off).then(TraceReport::default),
            });
        }
        let plan = self.config.shard.plan(
            workload,
            workers,
            self.config.batch_max.max(1),
            &self.factory,
        );
        let assignment = &plan.assignment;
        let mut shard_algos: Vec<BTreeSet<u16>> = vec![BTreeSet::new(); workers];
        for (req, &shard) in requests.iter().zip(assignment) {
            shard_algos[shard].insert(req.algo_id);
        }
        let queue_depth = self.config.queue_depth.max(1);
        let batch_max = self.config.batch_max.max(1);
        let verify = self.config.verify;
        let collect = self.config.collect_outputs;
        let overload = self.config.overload;
        if let Some(oc) = &overload {
            oc.validate();
        }
        // The latency faults of the plan only fire through the
        // overload layer; a run with overload but no fault plan gets a
        // zero-rate plan so the machinery still has a schedule to
        // consult (it decides "no fault" for every index).
        let faults = match (self.config.faults, overload) {
            (None, Some(_)) => Some(FaultConfig::new(FaultPlan::new(0, FaultRates::ZERO))),
            (f, _) => f,
        };
        let deadline_budget = match overload {
            None => None,
            Some(oc) => Some(self.resolve_deadline_budget(workload, oc)?),
        };
        // Weighted-fair admission engages only when both halves are
        // present: a fairness config on the overload layer and tenant
        // specs on the workload.
        let fairness_share = match (overload.and_then(|oc| oc.fairness), workload.tenant_specs()) {
            (Some(fc), Some(specs)) if !specs.is_empty() => {
                let weights: Vec<u64> = specs.iter().map(|s| s.weight as u64).collect();
                let total = weights.iter().sum::<u64>().max(1);
                Some(FairnessShare {
                    weights,
                    total,
                    slack_pct: fc.slack_pct as u64,
                    base_allowance: fc.base_allowance,
                })
            }
            _ => None,
        };
        let fairness = fairness_share.as_ref();
        let factory = &self.factory;
        let trace_cfg = self.config.trace;
        let predict = self.config.predict;
        let mut producer_tracer = Tracer::new(trace_cfg, PRODUCER_SHARD);
        let queues: Vec<BoundedQueue> = (0..workers)
            .map(|_| BoundedQueue::new(queue_depth))
            .collect();
        // Per-tenant hard quotas are enforced at submission: a request
        // past its tenant's quota is dropped by the producer without
        // ever being enqueued. `(index, tenant, quota)` of each drop.
        let mut quota_drops: Vec<(usize, u16, u64)> = Vec::new();

        let outcomes: Vec<Result<WorkerOutcome, CoreError>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (shard, queue) in queues.iter().enumerate() {
                let algos = &shard_algos[shard];
                handles.push(scope.spawn(move || {
                    worker_loop(
                        factory,
                        queue,
                        algos,
                        verify,
                        collect,
                        faults,
                        overload,
                        fairness,
                        shard as u32,
                        trace_cfg,
                        predict,
                    )
                }));
            }
            // This thread is the producer: walk the stream in
            // submission order, segmenting each shard's consecutive
            // same-algorithm run into a batch (capped at batch_max)
            // and pushing whole batches, blocking whenever a shard's
            // queue is full. Segmenting here — from the full stream,
            // not the consumer's racy view of its queue — keeps batch
            // boundaries, and with them the modelled makespan, a pure
            // function of the workload.
            let mut pending: Vec<Vec<Job>> = (0..workers).map(|_| Vec::new()).collect();
            // Dynamic dispatch replays the planner's deal/steal ledger
            // into the trace as it walks the stream, stamped at each
            // trigger's arrival time so per-shard timestamps stay
            // monotone.
            let emit_plan = producer_tracer.enabled() && !plan.decisions.is_empty();
            let mut steal_cursor = 0usize;
            let mut tenant_submitted: Vec<u64> = workload
                .tenant_specs()
                .map_or_else(Vec::new, |specs| vec![0; specs.len()]);
            for (i, req) in requests.iter().enumerate() {
                let tenant = workload.tenant_of(i);
                if overload.is_some() {
                    if let (Some(t), Some(specs)) = (tenant, workload.tenant_specs()) {
                        if let Some(quota) = specs.get(t as usize).and_then(|s| s.quota) {
                            let count = &mut tenant_submitted[t as usize];
                            *count += 1;
                            if *count > quota {
                                quota_drops.push((i, t, quota));
                                continue;
                            }
                        }
                    }
                }
                let shard = assignment[i];
                let run = &mut pending[shard];
                if !run.is_empty() && (run[0].algo_id != req.algo_id || run.len() >= batch_max) {
                    queues[shard].push(std::mem::take(run));
                }
                let arrival = overload.map_or(SimTime::ZERO, |oc| arrival_time(&oc, workload, i));
                if emit_plan {
                    while steal_cursor < plan.steals.len()
                        && plan.steals[steal_cursor].at_index <= i
                    {
                        let s = &plan.steals[steal_cursor];
                        producer_tracer.record(
                            arrival,
                            EventKind::Steal {
                                job: s.job as u64,
                                algo: s.algo_id,
                                from: s.from,
                                to: s.to,
                            },
                        );
                        steal_cursor += 1;
                    }
                    let d = plan.decisions[i];
                    producer_tracer.record(
                        arrival,
                        EventKind::Dispatch {
                            job: i as u64,
                            algo: req.algo_id,
                            to: d.shard,
                            affinity: d.affinity,
                        },
                    );
                }
                producer_tracer.record(
                    arrival,
                    EventKind::Enqueue {
                        job: i as u64,
                        algo: req.algo_id,
                        to: shard as u32,
                    },
                );
                run.push(Job {
                    index: i,
                    algo_id: req.algo_id,
                    input: workload.input(i),
                    arrival,
                    deadline: deadline_budget.map(|b| arrival + b),
                    tenant,
                });
            }
            if emit_plan {
                // the final drain epoch's steals trigger past the last
                // submission index
                let end = overload.map_or(SimTime::ZERO, |oc| {
                    arrival_time(&oc, workload, n - 1) + oc.interarrival
                });
                while steal_cursor < plan.steals.len() {
                    let s = &plan.steals[steal_cursor];
                    producer_tracer.record(
                        end,
                        EventKind::Steal {
                            job: s.job as u64,
                            algo: s.algo_id,
                            from: s.from,
                            to: s.to,
                        },
                    );
                    steal_cursor += 1;
                }
            }
            for (shard, run) in pending.into_iter().enumerate() {
                if !run.is_empty() {
                    queues[shard].push(run);
                }
                queues[shard].close();
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("engine worker panicked"))
                .collect()
        });

        let mut outputs = collect.then(|| vec![Vec::new(); n]);
        let mut per_request_hit = vec![false; n];
        let mut times = vec![SimTime::ZERO; n];
        let mut shard_busy = Vec::with_capacity(workers);
        let mut stats = OsStats::default();
        let mut batches = 0u64;
        let mut coalesced = 0u64;
        let mut failed: BTreeMap<usize, JobError> = BTreeMap::new();
        let mut shed: BTreeMap<usize, JobError> = BTreeMap::new();
        let mut deadline_missed: BTreeMap<usize, JobError> = BTreeMap::new();
        let mut quota_exceeded: BTreeMap<usize, JobError> = BTreeMap::new();
        let mut fault_stats = FaultStats::default();
        let mut overload_stats = OverloadStats::default();
        let mut recovery_latency = TimeAccumulator::new();
        let mut sojourn = TimeAccumulator::new();
        let mut shard_health = Vec::new();
        let mut shard_finish = Vec::with_capacity(workers);
        let mut shard_cp: Vec<Option<CoProcessor>> = Vec::with_capacity(workers);
        let mut shard_open = Vec::with_capacity(workers);
        let mut rejected: Vec<Job> = Vec::new();
        let mut trace_shards: Vec<TraceShard> = Vec::new();
        for outcome in outcomes {
            let outcome = outcome?;
            shard_busy.push(outcome.busy);
            if let Some(shard_trace) = outcome.trace {
                trace_shards.push(shard_trace);
            }
            stats.merge(&outcome.stats);
            batches += outcome.batches;
            coalesced += outcome.coalesced;
            fault_stats.merge(&outcome.faults);
            overload_stats.merge(&outcome.overload);
            recovery_latency.merge(&outcome.recovery_latency);
            shard_finish.push(outcome.finish);
            shard_cp.push(outcome.cp);
            shard_open.push(outcome.breaker_open);
            if overload.is_some() {
                shard_health.push(outcome.breaker_timeline);
            }
            rejected.extend(outcome.rejected);
            for r in outcome.results {
                per_request_hit[r.index] = r.hit;
                times[r.index] = r.time;
                if let Some(t) = r.sojourn {
                    sojourn.push(t);
                }
                match r.error {
                    Some(e @ JobError::Shed { .. }) => {
                        shed.insert(r.index, e);
                    }
                    Some(e @ JobError::DeadlineExceeded { .. }) => {
                        deadline_missed.insert(r.index, e);
                    }
                    Some(e) => {
                        failed.insert(r.index, e);
                    }
                    None => {
                        if let Some(outs) = outputs.as_mut() {
                            outs[r.index] = r.output;
                        }
                    }
                }
            }
        }
        // Quota drops happened at the producer, before any shard saw
        // the job: account them here so conservation covers them.
        for &(index, tenant, quota) in &quota_drops {
            overload_stats.submitted += 1;
            overload_stats.quota_exceeded += 1;
            quota_exceeded.insert(
                index,
                JobError::QuotaExceeded {
                    algo_id: requests[index].algo_id,
                    tenant,
                    quota,
                },
            );
        }
        let mut makespan =
            shard_busy
                .iter()
                .copied()
                .fold(SimTime::ZERO, |a, b| if b > a { b } else { a });
        let mut engine_tracer = Tracer::new(trace_cfg, ENGINE_SHARD);
        // shared drain buffer for the per-job redistribution and
        // rescue loops below — reused instead of a fresh Vec per job
        let mut details_buf: Vec<aaod_sim::DetailEvent> = Vec::new();
        if overload.is_some() {
            // Redistribution: jobs an open breaker bounced are
            // re-served in submission order on the healthy shard that
            // frees up first. A job whose deadline passed while it
            // waited — or with no healthy shard left — is shed.
            rejected.sort_by_key(|j| j.index);
            let golden = verify.then(aaod_algos::AlgorithmBank::standard);
            for job in rejected {
                let target = (0..workers)
                    .filter(|&s| !shard_open[s] && shard_cp[s].is_some())
                    .min_by_key(|&s| (shard_finish[s], s));
                let Some(s) = target else {
                    overload_stats.shed += 1;
                    engine_tracer.record(
                        makespan,
                        EventKind::Shed {
                            job: job.index as u64,
                            algo: job.algo_id,
                        },
                    );
                    shed.insert(
                        job.index,
                        JobError::Shed {
                            algo_id: job.algo_id,
                            deadline: job.deadline.unwrap_or(SimTime::ZERO),
                            decided_at: makespan,
                        },
                    );
                    continue;
                };
                let now = shard_finish[s].max(job.arrival);
                let deadline = job.deadline.unwrap_or(SimTime::ZERO);
                if deadline <= now {
                    overload_stats.shed += 1;
                    engine_tracer.record(
                        now,
                        EventKind::Shed {
                            job: job.index as u64,
                            algo: job.algo_id,
                        },
                    );
                    shed.insert(
                        job.index,
                        JobError::Shed {
                            algo_id: job.algo_id,
                            deadline,
                            decided_at: now,
                        },
                    );
                    continue;
                }
                let cp = shard_cp[s].as_mut().expect("candidate shard has a card");
                if !shard_algos[s].contains(&job.algo_id) {
                    // the healthy shard never hosted this function:
                    // bring-up install, same convention as pool start
                    cp.install(job.algo_id)?;
                    shard_algos[s].insert(job.algo_id);
                }
                match cp.invoke(job.algo_id, &job.input) {
                    Ok((output, report)) => {
                        let t = report.total();
                        let finish = now + t;
                        shard_finish[s] = finish;
                        times[job.index] = t;
                        per_request_hit[job.index] = report.hit();
                        overload_stats.redistributed += 1;
                        if engine_tracer.enabled() {
                            cp.take_details_into(&mut details_buf);
                            engine_tracer.details(now, &details_buf);
                            engine_tracer.record(
                                now,
                                EventKind::Redistributed {
                                    job: job.index as u64,
                                    algo: job.algo_id,
                                    to: s as u32,
                                },
                            );
                        }
                        if finish > deadline {
                            overload_stats.deadline_missed += 1;
                            deadline_missed.insert(
                                job.index,
                                JobError::DeadlineExceeded {
                                    algo_id: job.algo_id,
                                    deadline,
                                    finished: finish,
                                },
                            );
                        } else {
                            verify_output(
                                golden.as_ref(),
                                job.algo_id,
                                job.index,
                                &job.input,
                                &output,
                            )?;
                            overload_stats.completed += 1;
                            sojourn.push(finish - job.arrival);
                            if let Some(outs) = outputs.as_mut() {
                                outs[job.index] = output;
                            }
                        }
                    }
                    Err(CoreError::Mcu(detail)) => {
                        overload_stats.faulted += 1;
                        fault_stats.failed_jobs += 1;
                        failed.insert(
                            job.index,
                            JobError::Faulted {
                                algo_id: job.algo_id,
                                attempts: 0,
                                detail: detail.to_string(),
                            },
                        );
                    }
                    Err(other) => return Err(other),
                }
            }
            // After redistribution every card is done: merge their
            // controller stats (deferred to here so redistributed
            // work is counted exactly once) and extend the makespan
            // to the slowest shard's clock, idle gaps included.
            for cp in shard_cp.into_iter().flatten() {
                stats.merge(&cp.stats());
            }
            makespan = shard_finish.iter().copied().fold(makespan, |a, b| a.max(b));
        }
        if let Some(fc) = faults {
            if fc.requeue && !failed.is_empty() {
                // Rescue pass: re-serve degraded jobs on a fresh spare
                // card once the pool has drained; the spare runs after
                // the pool, so its busy time extends the makespan
                // serially. In overload mode the rescue clock starts
                // at the makespan, and a job whose deadline already
                // passed is not rescued — re-serving it could not
                // produce a useful output.
                let mut spare = (self.factory)();
                if engine_tracer.enabled() {
                    spare.set_trace(true);
                }
                let rescue_algos: BTreeSet<u16> = failed.values().map(|e| e.algo_id()).collect();
                for &algo in &rescue_algos {
                    spare.install(algo)?;
                }
                if engine_tracer.enabled() {
                    // spare bring-up is stamped at the rescue start
                    spare.take_details_into(&mut details_buf);
                    engine_tracer.details(makespan, &details_buf);
                }
                let golden = verify.then(aaod_algos::AlgorithmBank::standard);
                let mut rescue_busy = SimTime::ZERO;
                let indices: Vec<usize> = failed.keys().copied().collect();
                for index in indices {
                    if let Some(budget) = deadline_budget {
                        let oc = overload.expect("budget implies overload");
                        let deadline = arrival_time(&oc, workload, index) + budget;
                        if deadline <= makespan + rescue_busy {
                            continue; // stays failed: no budget left
                        }
                    }
                    let input = workload.input(index);
                    let algo_id = requests[index].algo_id;
                    let Ok((output, report)) = spare.invoke(algo_id, &input) else {
                        continue; // stays degraded
                    };
                    verify_output(golden.as_ref(), algo_id, index, &input, &output)?;
                    if engine_tracer.enabled() {
                        let cursor = makespan + rescue_busy;
                        spare.take_details_into(&mut details_buf);
                        engine_tracer.details(cursor, &details_buf);
                        engine_tracer.record(
                            cursor,
                            EventKind::Requeued {
                                job: index as u64,
                                algo: algo_id,
                            },
                        );
                    }
                    failed.remove(&index);
                    fault_stats.requeues += 1;
                    if overload.is_some() {
                        overload_stats.faulted -= 1;
                        overload_stats.completed += 1;
                    }
                    per_request_hit[index] = report.hit();
                    let t = report.total();
                    times[index] += t;
                    rescue_busy += t;
                    if let Some(outs) = outputs.as_mut() {
                        outs[index] = output;
                    }
                }
                stats.merge(&spare.stats());
                makespan += rescue_busy;
            }
        }
        let mut latency = TimeAccumulator::new();
        let mut total_service_time = SimTime::ZERO;
        for (i, &t) in times.iter().enumerate() {
            if shed.contains_key(&i) || quota_exceeded.contains_key(&i) {
                continue; // shed and quota-dropped jobs were never served
            }
            latency.push(t);
            total_service_time += t;
        }
        debug_assert!(
            overload.is_none() || overload_stats.accounted(),
            "job conservation violated: {overload_stats:?}"
        );
        // Per-tenant outcome totals: classify every submission by its
        // terminal map. Only meaningful for overload runs over a
        // tenant-tagged workload.
        let mut tenants: Vec<TenantStats> = Vec::new();
        if overload.is_some() {
            if let Some(specs) = workload.tenant_specs() {
                tenants = specs
                    .iter()
                    .enumerate()
                    .map(|(t, s)| TenantStats {
                        tenant: t as u16,
                        name: s.name.clone(),
                        weight: s.weight,
                        ..TenantStats::default()
                    })
                    .collect();
                for i in 0..n {
                    let Some(t) = workload.tenant_of(i) else {
                        continue;
                    };
                    let Some(ts) = tenants.get_mut(t as usize) else {
                        continue;
                    };
                    ts.submitted += 1;
                    if quota_exceeded.contains_key(&i) {
                        ts.quota_exceeded += 1;
                    } else if shed.contains_key(&i) {
                        ts.shed += 1;
                    } else if deadline_missed.contains_key(&i) {
                        ts.deadline_missed += 1;
                    } else if failed.contains_key(&i) {
                        ts.faulted += 1;
                    } else {
                        ts.completed += 1;
                    }
                }
                debug_assert!(
                    tenants.iter().all(TenantStats::accounted),
                    "tenant conservation violated: {tenants:?}"
                );
            }
        }
        let input_bytes = requests.iter().map(|r| r.input_len as u64).sum();
        let trace = if trace_cfg.level == TraceLevel::Off {
            None
        } else {
            trace_shards.push(engine_tracer.finish());
            trace_shards.push(producer_tracer.finish());
            Some(TraceReport::assemble(trace_shards))
        };
        Ok(EngineResult {
            workers,
            requests: n,
            input_bytes,
            outputs,
            per_request_hit,
            latency,
            total_service_time,
            shard_busy,
            makespan,
            stats,
            batches,
            coalesced,
            dispatch: plan.stats,
            failed,
            faults: fault_stats,
            recovery_latency,
            shed,
            deadline_missed,
            quota_exceeded,
            tenants,
            overload: overload_stats,
            deadline_budget,
            shard_health,
            sojourn,
            trace,
        })
    }

    /// Resolves the per-job deadline budget. An absolute policy is
    /// returned as-is; a percentile policy calibrates on a scratch
    /// card: each distinct algorithm is installed and invoked twice
    /// with its first-seen input (the second, resident invocation
    /// estimates the steady-state service time), then the budget is
    /// `multiplier ×` the requested percentile of the per-request
    /// estimates. The scratch card is bring-up, not serving time —
    /// it contributes to no statistic.
    fn resolve_deadline_budget(
        &self,
        workload: &Workload,
        oc: OverloadConfig,
    ) -> Result<SimTime, CoreError> {
        match oc.deadline {
            DeadlinePolicy::Absolute(budget) => Ok(budget),
            DeadlinePolicy::Percentile { pct, multiplier } => {
                let requests = workload.requests();
                let mut first_input: BTreeMap<u16, Vec<u8>> = BTreeMap::new();
                for (i, req) in requests.iter().enumerate() {
                    first_input
                        .entry(req.algo_id)
                        .or_insert_with(|| workload.input(i));
                }
                let mut scratch = (self.factory)();
                let mut est: BTreeMap<u16, SimTime> = BTreeMap::new();
                for (&algo, input) in &first_input {
                    scratch.install(algo)?;
                    scratch.invoke(algo, input)?;
                    let (_, report) = scratch.invoke(algo, input)?;
                    est.insert(algo, report.total());
                }
                let mut samples: Vec<SimTime> = requests.iter().map(|r| est[&r.algo_id]).collect();
                samples.sort();
                // nearest-rank percentile over the sorted estimates
                let rank = ((pct / 100.0) * (samples.len() - 1) as f64).round() as usize;
                let base = samples[rank.min(samples.len() - 1)];
                let ps = (base.as_ps() as f64 * multiplier).round() as u64;
                Ok(SimTime::from_ps(ps.max(1)))
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    factory: &(dyn Fn() -> CoProcessor + Send + Sync),
    queue: &BoundedQueue,
    algos: &BTreeSet<u16>,
    verify: bool,
    collect: bool,
    faults: Option<FaultConfig>,
    overload: Option<OverloadConfig>,
    fairness: Option<&FairnessShare>,
    shard: u32,
    trace: TraceConfig,
    predict: Option<crate::predict::PredictConfig>,
) -> Result<WorkerOutcome, CoreError> {
    let mut cp = factory();
    let mut predictor = predict.map(|p| crate::predict::PredictModel::new(p.ewma_shift));
    let mut tracer = Tracer::new(trace, shard);
    if tracer.enabled() {
        cp.set_trace(true);
    }
    for &algo in algos {
        cp.install(algo)?;
    }
    // one details buffer for the whole loop: the per-batch drain
    // reuses its capacity instead of churning a fresh Vec per batch
    let mut details_buf: Vec<aaod_sim::DetailEvent> = Vec::new();
    if tracer.enabled() {
        // bring-up details (install-time ROM fetches, decompression,
        // port writes) are stamped at time zero: install is not
        // serving time
        cp.take_details_into(&mut details_buf);
        tracer.details(SimTime::ZERO, &details_buf);
    }
    let golden = verify.then(aaod_algos::AlgorithmBank::standard);
    let mut outcome = WorkerOutcome::empty();
    let mut chaos = faults.map(|fc| FaultWorker::new(fc, overload, fairness));
    while let Some(batch) = queue.pop_batch() {
        let algo_id = batch[0].algo_id;
        outcome.batches += 1;
        outcome.coalesced += batch.len() as u64 - 1;
        if tracer.enabled() {
            let ts = chaos
                .as_ref()
                .and_then(|c| c.overload.as_ref())
                .map_or(outcome.busy, |ov| ov.clock);
            for job in &batch {
                tracer.record(
                    ts,
                    EventKind::Dequeue {
                        job: job.index as u64,
                        algo: algo_id,
                    },
                );
            }
        }
        match &mut chaos {
            None => {
                let batch_start = outcome.busy;
                let inputs: Vec<&[u8]> = batch.iter().map(|j| j.input.as_slice()).collect();
                let served = cp.invoke_batch(algo_id, &inputs)?;
                if tracer.enabled() {
                    cp.take_details_into(&mut details_buf);
                    tracer.details(batch_start, &details_buf);
                }
                let mut cursor = batch_start;
                for (job, (output, report)) in batch.iter().zip(served) {
                    verify_output(golden.as_ref(), algo_id, job.index, &job.input, &output)?;
                    let time = report.total();
                    outcome.busy += time;
                    if tracer.enabled() {
                        cursor = trace_clean_job(&mut tracer, cursor, job.index, algo_id, &report);
                    }
                    outcome.results.push(JobResult {
                        index: job.index,
                        output: if collect { output } else { Vec::new() },
                        hit: report.hit(),
                        time,
                        error: None,
                        sojourn: None,
                    });
                }
            }
            Some(chaos) => {
                chaos.serve_batch(
                    &mut cp,
                    batch,
                    golden.as_ref(),
                    collect,
                    &mut outcome,
                    &mut tracer,
                )?;
                if tracer.enabled() {
                    // the fault machinery interleaves serving and
                    // recovery, so per-stage attribution is not
                    // available: details are stamped at the shard's
                    // clock after the batch
                    let ts = chaos.overload.as_ref().map_or(outcome.busy, |ov| ov.clock);
                    cp.take_details_into(&mut details_buf);
                    tracer.details(ts, &details_buf);
                }
            }
        }
        // Online prefetch: feed the shard's (deterministic) batch
        // sequence into the model and pre-configure the predicted
        // next algorithm in the idle window after the batch. The
        // speculative configure charges `prefetch_time`, never the
        // request path, so modelled latency and outputs are
        // unchanged; only residency at the next miss differs.
        if let Some(model) = &mut predictor {
            model.observe(algo_id);
            if let Some(next) = model.predict() {
                if next != algo_id {
                    let before = cp.stats().prefetches;
                    cp.prefetch_hint(next);
                    if tracer.enabled() && cp.stats().prefetches > before {
                        let ts = chaos
                            .as_ref()
                            .and_then(|c| c.overload.as_ref())
                            .map_or(outcome.busy, |ov| ov.clock);
                        tracer.record(ts, EventKind::Prefetch { algo: next, shard });
                    }
                }
            }
        }
    }
    // A prefetch fired after the final batch leaves its details
    // (evictions, cache outcomes, port writes) buffered; drain them so
    // the trace's eviction count stays in lock-step with the ledger.
    if predictor.is_some() && tracer.enabled() {
        cp.take_details_into(&mut details_buf);
        tracer.details(outcome.busy, &details_buf);
    }
    if let Some(chaos) = &mut chaos {
        chaos.drain(&mut cp, &mut outcome, &mut tracer)?;
        if tracer.enabled() {
            let ts = chaos
                .overload
                .as_ref()
                .map_or(outcome.busy, |ov| ov.clock.max(outcome.busy));
            cp.take_details_into(&mut details_buf);
            tracer.details(ts, &details_buf);
        }
        outcome.faults = chaos.stats;
        outcome.recovery_latency = std::mem::take(&mut chaos.recovery_latency);
    }
    match chaos.and_then(|c| c.overload) {
        Some(ov) => {
            // Overload mode: the card travels back to the engine so
            // redistribution can re-serve bounced jobs on it, and its
            // controller stats are merged there (exactly once). Here
            // we only carry what watchdog resets zeroed away, plus
            // the breaker's final tallies.
            outcome.overload = ov.stats;
            outcome.overload.breaker_trips = ov.breaker.trips();
            outcome.overload.breaker_rejections = ov.breaker.rejections();
            outcome.overload.probes = ov.breaker.probes();
            outcome.finish = ov.clock;
            outcome.breaker_open = ov.breaker.is_open();
            outcome.breaker_timeline = ov.breaker.timeline().to_vec();
            outcome.stats = ov.lost_stats;
            outcome.cp = Some(cp);
        }
        None => outcome.stats = cp.stats(),
    }
    if trace.level != TraceLevel::Off {
        outcome.trace = Some(tracer.finish());
    }
    Ok(outcome)
}

fn verify_output(
    golden: Option<&aaod_algos::AlgorithmBank>,
    algo_id: u16,
    index: usize,
    input: &[u8],
    output: &[u8],
) -> Result<(), CoreError> {
    let Some(golden) = golden else {
        return Ok(());
    };
    let expected = golden
        .execute_software(algo_id, input)
        .map_err(CoreError::Algo)?;
    if output != expected.as_slice() {
        return Err(CoreError::OutputMismatch { algo_id, index });
    }
    Ok(())
}

/// The overload-layer half of a shard's chaos driver: its modelled
/// clock (service plus idle gaps waiting for arrivals), breaker,
/// counters, and the controller stats that watchdog resets zeroed.
struct OverloadState {
    cfg: OverloadConfig,
    /// The shard's modelled wall clock: each job starts at
    /// `max(clock, arrival)` and advances it by its service time.
    clock: SimTime,
    breaker: CircuitBreaker,
    stats: OverloadStats,
    /// Controller stats snapshotted just before each watchdog reset
    /// wiped them; merged back so no serving work goes uncounted.
    lost_stats: OsStats,
    /// Weighted-fair admission counters (`None` keeps pure
    /// drop-newest admission).
    fairness: Option<FairnessState>,
}

impl OverloadState {
    /// Whether weighted-fair admission would shed this job: the shard
    /// is congested (the job found a backlog) and its tenant's
    /// admitted count has run past its weighted share plus slack.
    /// Deterministic: depends only on the shard's stream so far.
    fn fair_shed_decision(&self, job: &Job) -> bool {
        let Some(f) = &self.fairness else {
            return false;
        };
        let Some(t) = job.tenant.map(usize::from) else {
            return false;
        };
        if t >= f.share.weights.len() || self.clock <= job.arrival {
            return false;
        }
        let allowed = f.share.base_allowance
            + (f.admitted_total + 1) * f.share.weights[t] * (100 + f.share.slack_pct)
                / (f.share.total * 100);
        f.admitted[t] + 1 > allowed
    }

    /// Notes a job admitted to service for the fair-share counters.
    fn note_admitted(&mut self, job: &Job) {
        let Some(f) = &mut self.fairness else {
            return;
        };
        let Some(t) = job.tenant.map(usize::from) else {
            return;
        };
        if t < f.admitted.len() {
            f.admitted[t] += 1;
            f.admitted_total += 1;
        }
    }
}

/// An admission decision for one popped job.
enum Admission {
    /// Serve it.
    Serve,
    /// Deadline already passed at the decision time: drop unserved.
    Shed { decided_at: SimTime },
    /// The shard's breaker is open: hand the job back to the engine
    /// for redistribution.
    Bounce,
}

/// Per-shard chaos driver: activates the faults the plan schedules,
/// detects corruption at the next use of the faulted function, and
/// runs the backoff→repair→retry recovery loop, all in modelled time.
/// With the overload layer on it additionally runs admission control,
/// the breaker, latency-fault injection and the watchdog.
struct FaultWorker {
    cfg: FaultConfig,
    /// Latent (activated, not yet detected) fault per function.
    outstanding: BTreeMap<u16, FaultSite>,
    /// Functions whose fault exhausted its retry budget; their
    /// corruption persists, so later jobs degrade without burning
    /// more retries.
    poisoned: BTreeSet<u16>,
    stats: FaultStats,
    recovery_latency: TimeAccumulator,
    /// Overload layer; `None` keeps the pure corruption behaviour.
    overload: Option<OverloadState>,
    /// Breaker timeline entries already emitted to the trace (the
    /// initial closed state is never an event).
    breaker_emitted: usize,
}

impl FaultWorker {
    fn new(
        cfg: FaultConfig,
        overload: Option<OverloadConfig>,
        fairness: Option<&FairnessShare>,
    ) -> Self {
        FaultWorker {
            cfg,
            outstanding: BTreeMap::new(),
            poisoned: BTreeSet::new(),
            stats: FaultStats::default(),
            recovery_latency: TimeAccumulator::new(),
            overload: overload.map(|oc| OverloadState {
                cfg: oc,
                clock: SimTime::ZERO,
                breaker: CircuitBreaker::new(oc.breaker),
                stats: OverloadStats::default(),
                lost_stats: OsStats::default(),
                fairness: fairness.map(|share| FairnessState {
                    admitted: vec![0; share.weights.len()],
                    admitted_total: 0,
                    share: share.clone(),
                }),
            }),
            breaker_emitted: 1,
        }
    }

    /// Emits any breaker transitions recorded since the last sync.
    /// Called right after every breaker interaction so the shard
    /// stream stays time-ordered; `floor` lifts back-dated
    /// transitions (a probe's success closes the breaker at the
    /// probe's *admission* time) up to the observation point — the
    /// faithful back-dated times stay in the `shard_health` timeline.
    fn sync_breaker(&mut self, tracer: &mut Tracer, floor: SimTime) {
        if !tracer.enabled() {
            return;
        }
        let Some(ov) = &self.overload else {
            return;
        };
        let timeline = ov.breaker.timeline();
        let mut pending = Vec::new();
        while self.breaker_emitted < timeline.len() {
            let (ts, to) = timeline[self.breaker_emitted];
            let (_, from) = timeline[self.breaker_emitted - 1];
            pending.push((ts.max(floor), from, to));
            self.breaker_emitted += 1;
        }
        for (ts, from, to) in pending {
            tracer.record(
                ts,
                EventKind::Breaker {
                    from: breaker_phase(from),
                    to: breaker_phase(to),
                },
            );
        }
    }

    /// No latent or persisting fault on this function.
    fn algo_clean(&self, algo_id: u16) -> bool {
        !self.poisoned.contains(&algo_id) && !self.outstanding.contains_key(&algo_id)
    }

    /// The latency fault (if any) the plan schedules for `index`.
    /// Latency faults only fire through the overload layer.
    fn latency_for(&self, index: usize) -> Option<LatencySite> {
        if self.overload.is_some() {
            self.cfg.plan.decide_latency(index as u64)
        } else {
            None
        }
    }

    /// Admission control for one popped job: counts the submission and
    /// decides serve / shed / bounce at the shard's current clock.
    fn admit(&mut self, job: &Job) -> Admission {
        let Some(ov) = &mut self.overload else {
            return Admission::Serve;
        };
        ov.stats.submitted += 1;
        let now = ov.clock.max(job.arrival);
        let deadline = job.deadline.expect("overload jobs carry deadlines");
        if deadline <= now {
            ov.stats.shed += 1;
            return Admission::Shed { decided_at: now };
        }
        if ov.fair_shed_decision(job) {
            ov.stats.shed += 1;
            ov.stats.fair_shed += 1;
            return Admission::Shed { decided_at: now };
        }
        if !ov.breaker.allow(now) {
            return Admission::Bounce;
        }
        ov.note_admitted(job);
        Admission::Serve
    }

    /// Marks the faults scheduled against an unserved (shed or
    /// bounced) job as inert: they never got a card to land on.
    fn mark_unserved_inert(&mut self, index: usize, ts: SimTime, tracer: &mut Tracer) {
        if let Some(site) = self.cfg.plan.decide(index as u64) {
            self.stats.inert += 1;
            tracer.record(
                ts,
                EventKind::FaultInert {
                    kind: fault_kind(site),
                },
            );
        }
        if let Some(site) = self.cfg.plan.decide_latency(index as u64) {
            if let Some(ov) = &mut self.overload {
                ov.stats.latency_inert += 1;
                tracer.record(
                    ts,
                    EventKind::FaultInert {
                        kind: latency_kind(site),
                    },
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn serve_batch(
        &mut self,
        cp: &mut CoProcessor,
        batch: Vec<Job>,
        golden: Option<&aaod_algos::AlgorithmBank>,
        collect: bool,
        outcome: &mut WorkerOutcome,
        tracer: &mut Tracer,
    ) -> Result<(), CoreError> {
        let algo_id = batch[0].algo_id;
        let mut jobs = batch.into_iter().peekable();
        while let Some(job) = jobs.next() {
            let admission = self.admit(&job);
            self.sync_breaker(tracer, SimTime::ZERO);
            match admission {
                Admission::Serve => {}
                Admission::Shed { decided_at } => {
                    tracer.record(
                        decided_at,
                        EventKind::Shed {
                            job: job.index as u64,
                            algo: algo_id,
                        },
                    );
                    self.mark_unserved_inert(job.index, decided_at, tracer);
                    outcome.results.push(JobResult {
                        index: job.index,
                        output: Vec::new(),
                        hit: false,
                        time: SimTime::ZERO,
                        error: Some(JobError::Shed {
                            algo_id,
                            deadline: job.deadline.unwrap_or(SimTime::ZERO),
                            decided_at,
                        }),
                        sojourn: None,
                    });
                    continue;
                }
                Admission::Bounce => {
                    let now = self
                        .overload
                        .as_ref()
                        .map_or(SimTime::ZERO, |ov| ov.clock.max(job.arrival));
                    tracer.record(
                        now,
                        EventKind::Bounced {
                            job: job.index as u64,
                            algo: algo_id,
                        },
                    );
                    self.mark_unserved_inert(job.index, now, tracer);
                    outcome.rejected.push(job);
                    continue;
                }
            }
            let scheduled = self.cfg.plan.decide(job.index as u64);
            let latency = self.latency_for(job.index);
            if scheduled.is_none() && latency.is_none() && self.algo_clean(algo_id) {
                // Maximal fault-free run: serve it batched, exactly
                // like a fault-free worker would. In overload mode the
                // whole run is admitted at the current clock, so only
                // jobs that would pass admission now may ride along;
                // their own deadlines are still checked at completion.
                let mut run = vec![job];
                while let Some(next) = jobs.peek() {
                    let clean = self.cfg.plan.decide(next.index as u64).is_none()
                        && self.latency_for(next.index).is_none();
                    let admissible = match &self.overload {
                        None => true,
                        Some(ov) => {
                            next.deadline.expect("overload jobs carry deadlines")
                                > ov.clock.max(next.arrival)
                                && !ov.fair_shed_decision(next)
                        }
                    };
                    if !(clean && admissible) {
                        break;
                    }
                    let next = jobs.next().expect("peeked");
                    if let Some(ov) = &mut self.overload {
                        ov.stats.submitted += 1;
                        ov.note_admitted(&next);
                    }
                    run.push(next);
                }
                let inputs: Vec<&[u8]> = run.iter().map(|j| j.input.as_slice()).collect();
                let served = cp.invoke_batch(algo_id, &inputs)?;
                for (job, (output, report)) in run.iter().zip(served) {
                    let time = report.total();
                    let busy_start = outcome.busy;
                    outcome.busy += time;
                    if self.overload.is_some() {
                        if tracer.enabled() {
                            let start = self
                                .overload
                                .as_ref()
                                .expect("overload mode")
                                .clock
                                .max(job.arrival);
                            trace_clean_stages(tracer, start, job.index, algo_id, &report);
                        }
                        self.finish_served(
                            job,
                            output,
                            report.hit(),
                            time,
                            golden,
                            collect,
                            outcome,
                            tracer,
                        )?;
                    } else {
                        verify_output(golden, algo_id, job.index, &job.input, &output)?;
                        if tracer.enabled() {
                            trace_clean_job(tracer, busy_start, job.index, algo_id, &report);
                        }
                        outcome.results.push(JobResult {
                            index: job.index,
                            output: if collect { output } else { Vec::new() },
                            hit: report.hit(),
                            time,
                            error: None,
                            sojourn: None,
                        });
                    }
                }
            } else {
                self.serve_one(
                    cp, &job, scheduled, latency, golden, collect, outcome, tracer,
                )?;
            }
        }
        Ok(())
    }

    /// Classifies a successfully served overload-mode job against its
    /// deadline, advancing the shard clock and driving the breaker.
    #[allow(clippy::too_many_arguments)]
    fn finish_served(
        &mut self,
        job: &Job,
        output: Vec<u8>,
        hit: bool,
        time: SimTime,
        golden: Option<&aaod_algos::AlgorithmBank>,
        collect: bool,
        outcome: &mut WorkerOutcome,
        tracer: &mut Tracer,
    ) -> Result<(), CoreError> {
        let ov = self.overload.as_mut().expect("overload mode");
        let start = ov.clock.max(job.arrival);
        let finish = start + time;
        ov.clock = finish;
        let deadline = job.deadline.expect("overload jobs carry deadlines");
        if finish > deadline {
            ov.stats.deadline_missed += 1;
            ov.breaker.record_failure(finish);
            tracer.record(
                finish,
                EventKind::JobClose {
                    job: job.index as u64,
                    algo: job.algo_id,
                    outcome: JobOutcome::DeadlineMissed,
                    hit,
                },
            );
            outcome.results.push(JobResult {
                index: job.index,
                output: Vec::new(),
                hit,
                time,
                error: Some(JobError::DeadlineExceeded {
                    algo_id: job.algo_id,
                    deadline,
                    finished: finish,
                }),
                sojourn: None,
            });
        } else {
            ov.stats.completed += 1;
            ov.breaker.record_success();
            tracer.record(
                finish,
                EventKind::JobClose {
                    job: job.index as u64,
                    algo: job.algo_id,
                    outcome: JobOutcome::Completed,
                    hit,
                },
            );
            verify_output(golden, job.algo_id, job.index, &job.input, &output)?;
            outcome.results.push(JobResult {
                index: job.index,
                output: if collect { output } else { Vec::new() },
                hit,
                time,
                error: None,
                sojourn: Some(finish - job.arrival),
            });
        }
        self.sync_breaker(tracer, finish);
        Ok(())
    }

    /// Serves one job with the fault machinery engaged: arms a
    /// scheduled PCI abort and any scheduled latency fault, runs the
    /// detect→backoff→repair→retry loop (preceded by a watchdog reset
    /// for a stuck card), and lands any scheduled post-job corruption.
    #[allow(clippy::too_many_arguments)]
    fn serve_one(
        &mut self,
        cp: &mut CoProcessor,
        job: &Job,
        scheduled: Option<FaultSite>,
        latency: Option<LatencySite>,
        golden: Option<&aaod_algos::AlgorithmBank>,
        collect: bool,
        outcome: &mut WorkerOutcome,
        tracer: &mut Tracer,
    ) -> Result<(), CoreError> {
        let algo_id = job.algo_id;
        let mut job_time = SimTime::ZERO;
        // The job's modelled start: the shard clock (overload) or its
        // cumulative busy time (closed loop). Recovery spans are laid
        // from a cursor advancing from here.
        let t0 = self
            .overload
            .as_ref()
            .map_or(outcome.busy, |ov| ov.clock.max(job.arrival));
        tracer.record(
            t0,
            EventKind::JobOpen {
                job: job.index as u64,
                algo: algo_id,
            },
        );
        let mut cursor = t0;
        if latency == Some(LatencySite::StuckCard) {
            // The card hangs mid-stream: it burns the full watchdog
            // timeout before the missed heartbeats fire a reset, then
            // the job is served from a cold card (the reset erased
            // every frame and the decoded cache; the ROM survives).
            // Snapshot the controller stats first — the reset zeroes
            // them, and that work must stay counted.
            let t_reset = {
                let ov = self.overload.as_mut().expect("latency implies overload");
                ov.lost_stats.merge(&cp.stats());
                let timeout = ov.cfg.watchdog.timeout();
                let t_reset = cp.os_mut().reset();
                ov.stats.stuck_injected += 1;
                ov.stats.watchdog_resets += 1;
                ov.stats.wasted_time += timeout + t_reset;
                job_time += timeout + t_reset;
                timeout + t_reset
            };
            tracer.record(
                cursor,
                EventKind::FaultInjected {
                    kind: FaultKind::StuckCard,
                },
            );
            tracer.record(
                cursor,
                EventKind::WatchdogReset {
                    job: job.index as u64,
                },
            );
            tracer.span(cursor, t_reset, job.index as u64, Stage::Reset, algo_id);
            cursor += t_reset;
            self.recovery_latency.push(t_reset);
            // The wiped fabric dissolved any latent frame faults; the
            // scheduled ROM faults survive (ROM is off-fabric).
            let frame_faults: Vec<u16> = self
                .outstanding
                .iter()
                .filter(|(_, s)| matches!(s, FaultSite::FrameBitFlip | FaultSite::TornConfig))
                .map(|(&id, _)| id)
                .collect();
            for id in frame_faults {
                self.outstanding.remove(&id);
                self.stats.evict_cleared += 1;
                tracer.record(
                    cursor,
                    EventKind::FaultRepair {
                        kind: RepairKind::EvictClear,
                    },
                );
            }
        }
        let stall0 = cp.stats().config_stall_time;
        match latency {
            Some(LatencySite::StallConfig) => {
                cp.os_mut()
                    .arm_config_stall(self.cfg.plan.latency().stall_cycles);
            }
            Some(LatencySite::SlowPci) => {
                // Input write + output read: both transfers crawl.
                cp.bus_mut()
                    .arm_slow_transfers(2, self.cfg.plan.latency().slow_factor);
            }
            Some(LatencySite::StuckCard) | None => {}
        }
        if scheduled == Some(FaultSite::PciTransient) {
            // One-shot transient: the job's first transfer aborts and
            // the driver retries it. Activation is observed through
            // the bus stats below.
            cp.bus_mut().arm_transient_faults(1);
        }
        let pci0 = cp.pci_stats();
        let mut attempts = 0u32;
        let mut recovery_elapsed = SimTime::ZERO;
        let verdict = loop {
            match cp.invoke_resilient(algo_id, &job.input) {
                Ok((output, report, _)) => {
                    job_time += report.total();
                    if attempts > 0 {
                        self.recovery_latency.push(recovery_elapsed);
                    }
                    // a repaired (formerly poisoned) function serves
                    // again
                    self.poisoned.remove(&algo_id);
                    break Ok((output, report.hit()));
                }
                Err(CoreError::Mcu(detail)) => {
                    let Some(site) = self.outstanding.get(&algo_id).copied() else {
                        // Corruption persisting from an exhausted
                        // fault: degrade without burning retries.
                        break Err(JobError::Faulted {
                            algo_id,
                            attempts,
                            detail: detail.to_string(),
                        });
                    };
                    if attempts == 0 {
                        self.stats.detected += 1;
                    }
                    if attempts >= self.cfg.max_retries {
                        self.stats.faults_failed += 1;
                        self.outstanding.remove(&algo_id);
                        self.poisoned.insert(algo_id);
                        tracer.record(
                            cursor,
                            EventKind::FaultFailed {
                                job: job.index as u64,
                                algo: algo_id,
                            },
                        );
                        break Err(JobError::Faulted {
                            algo_id,
                            attempts,
                            detail: detail.to_string(),
                        });
                    }
                    attempts += 1;
                    self.stats.retries += 1;
                    tracer.record(
                        cursor,
                        EventKind::Retry {
                            job: job.index as u64,
                            attempt: attempts,
                        },
                    );
                    let backoff = self.cfg.backoff * (1u64 << (attempts - 1).min(20));
                    tracer.span(cursor, backoff, job.index as u64, Stage::Backoff, algo_id);
                    let repair = self.repair(cp, algo_id, site, cursor + backoff, tracer)?;
                    tracer.span(
                        cursor + backoff,
                        repair,
                        job.index as u64,
                        Stage::Repair,
                        algo_id,
                    );
                    job_time += backoff + repair;
                    recovery_elapsed += backoff + repair;
                    cursor += backoff + repair;
                }
                Err(other) => return Err(other),
            }
        };
        let pci1 = cp.pci_stats();
        let transient_fired = pci1.faulted_transfers > pci0.faulted_transfers;
        if transient_fired {
            let wasted =
                cp.bus().config().clock.period() * (pci1.wasted_cycles - pci0.wasted_cycles);
            self.stats.record_activated(FaultSite::PciTransient);
            self.stats.pci_retried += 1;
            self.recovery_latency.push(wasted);
            if verdict.is_err() {
                // a successful attempt folds the wasted bus time into
                // its report; a degraded job still burned it
                job_time += wasted;
            }
            tracer.record(
                t0 + job_time,
                EventKind::FaultInjected {
                    kind: FaultKind::PciTransient,
                },
            );
            tracer.record(
                t0 + job_time,
                EventKind::FaultRepair {
                    kind: RepairKind::PciRetry,
                },
            );
        }
        match latency {
            Some(LatencySite::StallConfig) => {
                let ov = self.overload.as_mut().expect("latency implies overload");
                if cp.os().armed_config_stall() > 0 {
                    // the job was a residency hit: the stall never got
                    // a reconfiguration to hang
                    cp.os_mut().disarm_config_stall();
                    ov.stats.latency_inert += 1;
                    tracer.record(
                        t0 + job_time,
                        EventKind::FaultInert {
                            kind: FaultKind::Stall,
                        },
                    );
                } else {
                    ov.stats.stalls_injected += 1;
                    ov.stats.wasted_time += cp.stats().config_stall_time.saturating_sub(stall0);
                    tracer.record(
                        t0 + job_time,
                        EventKind::FaultInjected {
                            kind: FaultKind::Stall,
                        },
                    );
                }
            }
            Some(LatencySite::SlowPci) => {
                cp.bus_mut().disarm_slow();
                let ov = self.overload.as_mut().expect("latency implies overload");
                if pci1.slowed_transfers > pci0.slowed_transfers {
                    ov.stats.slow_transfers_injected += 1;
                    if !transient_fired {
                        // the slow transfers' extra cycles are the
                        // whole wasted delta; with a transient on the
                        // same job the delta is already attributed to
                        // the retry above
                        ov.stats.wasted_time += cp.bus().config().clock.period()
                            * (pci1.wasted_cycles - pci0.wasted_cycles);
                    }
                    tracer.record(
                        t0 + job_time,
                        EventKind::FaultInjected {
                            kind: FaultKind::SlowPci,
                        },
                    );
                } else {
                    // no fallible transfer ran (e.g. an empty input on
                    // a zero-transfer path): nothing to slow down
                    ov.stats.latency_inert += 1;
                    tracer.record(
                        t0 + job_time,
                        EventKind::FaultInert {
                            kind: FaultKind::SlowPci,
                        },
                    );
                }
            }
            Some(LatencySite::StuckCard) | None => {}
        }
        if let Some(
            site @ (FaultSite::FrameBitFlip | FaultSite::TornConfig | FaultSite::RomPayload),
        ) = scheduled
        {
            // Post-job injection: corrupt only a healthy, singly
            // faulted function so every activated fault has one
            // unambiguous resolution.
            let landed = verdict.is_ok() && self.algo_clean(algo_id) && {
                let mut rng = self.cfg.plan.rng_for(job.index as u64);
                match site {
                    FaultSite::FrameBitFlip => cp.os_mut().inject_seu(algo_id, &mut rng),
                    FaultSite::TornConfig => cp.os_mut().inject_torn(algo_id),
                    FaultSite::RomPayload => cp.os_mut().inject_rom_rot(algo_id, &mut rng).is_ok(),
                    FaultSite::PciTransient => unreachable!("matched above"),
                }
            };
            if landed {
                self.stats.record_activated(site);
                self.outstanding.insert(algo_id, site);
                tracer.record(
                    t0 + job_time,
                    EventKind::FaultInjected {
                        kind: fault_kind(site),
                    },
                );
            } else {
                self.stats.inert += 1;
                tracer.record(
                    t0 + job_time,
                    EventKind::FaultInert {
                        kind: fault_kind(site),
                    },
                );
            }
        }
        outcome.busy += job_time;
        match verdict {
            Ok((output, hit)) => {
                if self.overload.is_some() {
                    self.finish_served(
                        job, output, hit, job_time, golden, collect, outcome, tracer,
                    )?;
                } else {
                    verify_output(golden, algo_id, job.index, &job.input, &output)?;
                    tracer.record(
                        t0 + job_time,
                        EventKind::JobClose {
                            job: job.index as u64,
                            algo: algo_id,
                            outcome: JobOutcome::Completed,
                            hit,
                        },
                    );
                    outcome.results.push(JobResult {
                        index: job.index,
                        output: if collect { output } else { Vec::new() },
                        hit,
                        time: job_time,
                        error: None,
                        sojourn: None,
                    });
                }
            }
            Err(e) => {
                self.stats.failed_jobs += 1;
                if let Some(ov) = &mut self.overload {
                    let start = ov.clock.max(job.arrival);
                    let finish = start + job_time;
                    ov.clock = finish;
                    ov.stats.faulted += 1;
                    ov.breaker.record_failure(finish);
                }
                tracer.record(
                    t0 + job_time,
                    EventKind::JobClose {
                        job: job.index as u64,
                        algo: algo_id,
                        outcome: JobOutcome::Faulted,
                        hit: false,
                    },
                );
                self.sync_breaker(tracer, t0 + job_time);
                outcome.results.push(JobResult {
                    index: job.index,
                    output: Vec::new(),
                    hit: false,
                    time: job_time,
                    error: Some(e),
                    sojourn: None,
                });
            }
        }
        Ok(())
    }

    /// Repairs `site` on `algo_id`, resolving every outstanding fault
    /// the repair happens to fix, and returns the modelled repair
    /// time. Repair events are stamped at `at` (the repair's start).
    fn repair(
        &mut self,
        cp: &mut CoProcessor,
        algo_id: u16,
        site: FaultSite,
        at: SimTime,
        tracer: &mut Tracer,
    ) -> Result<SimTime, CoreError> {
        match site {
            FaultSite::FrameBitFlip | FaultSite::TornConfig => {
                let report = cp.scrub()?;
                // one readback pass repairs *every* corrupt resident
                // function, so resolve any other latent frame faults
                // it happened to fix along the way
                for id in &report.repaired {
                    if matches!(
                        self.outstanding.get(id),
                        Some(FaultSite::FrameBitFlip | FaultSite::TornConfig)
                    ) {
                        self.outstanding.remove(id);
                        self.stats.scrubbed += 1;
                        tracer.record(
                            at,
                            EventKind::FaultRepair {
                                kind: RepairKind::Scrub,
                            },
                        );
                    }
                }
                // if the target dodged the scrub, an eviction already
                // erased the corrupt frames
                if self.outstanding.remove(&algo_id).is_some() {
                    self.stats.evict_cleared += 1;
                    tracer.record(
                        at,
                        EventKind::FaultRepair {
                            kind: RepairKind::EvictClear,
                        },
                    );
                }
                Ok(report.time)
            }
            FaultSite::RomPayload => {
                let t = cp.os_mut().redownload(algo_id)?;
                self.outstanding.remove(&algo_id);
                self.stats.redownloads += 1;
                tracer.record(
                    at,
                    EventKind::FaultRepair {
                        kind: RepairKind::Redownload,
                    },
                );
                Ok(t)
            }
            // PCI aborts recover at the driver, never via repair.
            FaultSite::PciTransient => unreachable!("transients are never outstanding"),
        }
    }

    /// Post-run sweep: repair latent faults the workload never
    /// touched again, so no corruption outlives the run.
    fn drain(
        &mut self,
        cp: &mut CoProcessor,
        outcome: &mut WorkerOutcome,
        tracer: &mut Tracer,
    ) -> Result<(), CoreError> {
        // In overload mode the shard stream is stamped on the shard
        // clock (>= busy); the sweep stamps at whichever is later so
        // the stream stays time-ordered.
        let sweep_ts = |busy: SimTime, ov: &Option<OverloadState>| {
            ov.as_ref().map_or(busy, |o| o.clock.max(busy))
        };
        let frame_faults: Vec<u16> = self
            .outstanding
            .iter()
            .filter(|(_, s)| matches!(s, FaultSite::FrameBitFlip | FaultSite::TornConfig))
            .map(|(&id, _)| id)
            .collect();
        if !frame_faults.is_empty() {
            let report = cp.scrub()?;
            outcome.busy += report.time;
            for id in frame_faults {
                self.outstanding.remove(&id);
                let kind = if report.repaired.contains(&id) {
                    self.stats.scrubbed += 1;
                    RepairKind::Scrub
                } else {
                    // a policy eviction erased the corrupt frames
                    // before the sweep got here
                    self.stats.evict_cleared += 1;
                    RepairKind::EvictClear
                };
                tracer.record(
                    sweep_ts(outcome.busy, &self.overload),
                    EventKind::FaultRepair { kind },
                );
            }
        }
        let rom_faults: Vec<u16> = self
            .outstanding
            .iter()
            .filter(|(_, s)| matches!(s, FaultSite::RomPayload))
            .map(|(&id, _)| id)
            .collect();
        if !rom_faults.is_empty() {
            let (_corrupt, patrol_time) = cp.os_mut().rom_patrol();
            outcome.busy += patrol_time;
            for id in rom_faults {
                self.outstanding.remove(&id);
                let t = cp.os_mut().redownload(id)?;
                outcome.busy += t;
                self.stats.redownloads += 1;
                tracer.record(
                    sweep_ts(outcome.busy, &self.overload),
                    EventKind::FaultRepair {
                        kind: RepairKind::Redownload,
                    },
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaod_algos::ids;

    /// SHA1(12) + CRC32(2) + CRC8(<=2) + XTEA(6) frames all fit the
    /// default 96-frame device: no evictions, so hit/miss
    /// classification is position-independent.
    const FIT_SET: [u16; 4] = [ids::SHA1, ids::CRC32, ids::CRC8, ids::XTEA];

    fn serial_outputs(workload: &Workload) -> (Vec<Vec<u8>>, Vec<bool>) {
        let mut cp = CoProcessor::default();
        for &algo in &workload.distinct_algos() {
            cp.install(algo).unwrap();
        }
        let mut outs = Vec::new();
        let mut hits = Vec::new();
        for (i, req) in workload.requests().iter().enumerate() {
            let (out, report) = cp.invoke(req.algo_id, &workload.input(i)).unwrap();
            outs.push(out);
            hits.push(report.hit());
        }
        (outs, hits)
    }

    #[test]
    fn outputs_identical_to_serial_across_policies_and_widths() {
        let w = Workload::zipf(&FIT_SET, 60, 1.1, 48, 11);
        let (expected, _) = serial_outputs(&w);
        for shard in [
            ShardPolicy::AlgoModulo,
            ShardPolicy::RoundRobin,
            ShardPolicy::Balanced,
        ] {
            for workers in [1, 2, 4] {
                let engine = Engine::new(EngineConfig {
                    workers,
                    verify: true,
                    shard,
                    ..EngineConfig::default()
                });
                let r = engine.serve(&w).unwrap();
                assert_eq!(
                    r.outputs.as_ref().unwrap(),
                    &expected,
                    "{} x{workers} diverged",
                    shard.name()
                );
                assert_eq!(r.requests, 60);
                assert_eq!(r.stats.requests, 60);
            }
        }
    }

    #[test]
    fn hit_classification_matches_serial_when_everything_fits() {
        let w = Workload::zipf(&FIT_SET, 80, 1.1, 32, 3);
        let (_, expected_hits) = serial_outputs(&w);
        let engine = Engine::new(EngineConfig {
            workers: 4,
            shard: ShardPolicy::AlgoModulo,
            ..EngineConfig::default()
        });
        let r = engine.serve(&w).unwrap();
        assert_eq!(r.per_request_hit, expected_hits);
    }

    #[test]
    fn makespan_bounded_by_total_and_speedup_sane() {
        let w = Workload::zipf(&FIT_SET, 120, 1.1, 64, 5);
        let engine = Engine::new(EngineConfig {
            workers: 4,
            shard: ShardPolicy::Balanced,
            ..EngineConfig::default()
        });
        let r = engine.serve(&w).unwrap();
        assert!(r.makespan <= r.total_service_time);
        assert!(r.speedup() >= 1.0);
        assert_eq!(r.shard_busy.len(), 4);
        let busiest = r
            .shard_busy
            .iter()
            .copied()
            .fold(SimTime::ZERO, |a, b| if b > a { b } else { a });
        assert_eq!(busiest, r.makespan);
    }

    #[test]
    fn bursty_workload_batches_requests() {
        let w = Workload::bursty(&FIT_SET, 64, 8, 32, 7);
        let engine = Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let r = engine.serve(&w).unwrap();
        assert!(
            r.batches < 64,
            "64 requests in bursts of 8 must coalesce, got {} batches",
            r.batches
        );
        assert!(r.coalesced > 0);
        assert_eq!(r.batches + r.coalesced, 64);
    }

    #[test]
    fn empty_workload_is_empty_result() {
        let w = Workload::from_trace(std::iter::empty::<u16>(), 8);
        let r = Engine::new(EngineConfig::default()).serve(&w).unwrap();
        assert_eq!(r.requests, 0);
        assert!(r.makespan.is_zero());
        assert_eq!(r.speedup(), 0.0);
        assert_eq!(r.outputs.unwrap().len(), 0);
    }

    #[test]
    fn collect_outputs_off_keeps_classification() {
        let w = Workload::uniform(&FIT_SET, 40, 16, 2);
        let engine = Engine::new(EngineConfig {
            collect_outputs: false,
            ..EngineConfig::default()
        });
        let r = engine.serve(&w).unwrap();
        assert!(r.outputs.is_none());
        assert_eq!(r.per_request_hit.len(), 40);
        assert_eq!(r.stats.hits + r.stats.misses, 40);
    }

    #[test]
    fn balanced_splits_a_dominant_algorithm() {
        // One algorithm carries ~90% of the load: balanced sharding
        // must spread it over several shards.
        let mut trace = vec![ids::SHA1; 90];
        trace.extend_from_slice(&[ids::CRC32; 10]);
        let w = Workload::from_trace(trace, 64);
        let assignment = ShardPolicy::Balanced.assign(&w, 4);
        let sha1_shards: BTreeSet<usize> = assignment[..90].iter().copied().collect();
        assert!(
            sha1_shards.len() >= 3,
            "hot algorithm stayed on {sha1_shards:?}"
        );
    }

    #[test]
    fn zero_rate_fault_plan_matches_legacy_exactly() {
        use aaod_sim::{FaultPlan, FaultRates};
        let w = Workload::zipf(&FIT_SET, 40, 1.1, 32, 21);
        let base = Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        })
        .serve(&w)
        .unwrap();
        let faulty = Engine::new(EngineConfig {
            workers: 2,
            faults: Some(FaultConfig::new(FaultPlan::new(1, FaultRates::ZERO))),
            ..EngineConfig::default()
        })
        .serve(&w)
        .unwrap();
        assert_eq!(faulty.outputs, base.outputs);
        assert_eq!(faulty.makespan, base.makespan);
        assert_eq!(faulty.batches, base.batches);
        assert_eq!(faulty.faults, FaultStats::default());
        assert!(faulty.failed.is_empty());
        assert_eq!(faulty.recovery_latency.count(), 0);
    }

    #[test]
    fn chaos_run_accounts_every_fault() {
        use aaod_sim::{FaultPlan, FaultRates};
        let w = Workload::zipf(&FIT_SET, 120, 1.1, 48, 13);
        let plan = FaultPlan::new(0xC0FFEE, FaultRates::uniform(0.04));
        let r = Engine::new(EngineConfig {
            workers: 2,
            verify: true,
            faults: Some(FaultConfig::new(plan)),
            ..EngineConfig::default()
        })
        .serve(&w)
        .unwrap();
        assert!(r.faults.injected > 0, "16% total rate over 120 jobs");
        assert!(r.faults.accounted(), "unaccounted faults: {:?}", r.faults);
        assert!(
            r.failed.is_empty(),
            "with retries enabled every job recovers: {:?}",
            r.failed
        );
    }

    #[test]
    fn custom_factory_configures_shards() {
        let w = Workload::uniform(&[ids::CRC32, ids::CRC8], 20, 16, 9);
        let engine = Engine::with_factory(
            EngineConfig {
                workers: 2,
                verify: true,
                ..EngineConfig::default()
            },
            || CoProcessor::builder().decoded_cache_bytes(0).build(),
        );
        let r = engine.serve(&w).unwrap();
        assert_eq!(r.stats.decoded_misses, 0, "cache disabled in factory");
        assert_eq!(r.requests, 20);
    }

    /// Tracing observes modelled time; it never advances it. A fully
    /// traced run must therefore reproduce the untraced run exactly.
    #[test]
    fn full_trace_does_not_perturb_the_simulation() {
        let w = Workload::zipf(&FIT_SET, 60, 1.1, 48, 11);
        let base = Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        })
        .serve(&w)
        .unwrap();
        assert!(base.trace.is_none(), "tracing is off by default");
        let traced = Engine::new(EngineConfig {
            workers: 2,
            trace: TraceConfig::full(),
            ..EngineConfig::default()
        })
        .serve(&w)
        .unwrap();
        assert_eq!(traced.outputs, base.outputs);
        assert_eq!(traced.makespan, base.makespan);
        assert_eq!(traced.total_service_time, base.total_service_time);
        assert_eq!(traced.batches, base.batches);
        assert_eq!(traced.stats, base.stats);
        assert!(traced.trace.is_some());
    }

    /// On a clean in-fit run the trace-derived counters must agree
    /// exactly with the controller ledger, job conservation must hold
    /// through the queue, and the per-stage histograms must sum to the
    /// total modelled service time.
    #[test]
    fn clean_trace_counters_reconcile_with_os_stats() {
        let n = 80u64;
        let w = Workload::zipf(&FIT_SET, n as usize, 1.1, 48, 3);
        let r = Engine::new(EngineConfig {
            workers: 2,
            verify: true,
            trace: TraceConfig::full(),
            ..EngineConfig::default()
        })
        .serve(&w)
        .unwrap();
        let t = r.trace.as_ref().unwrap();
        let c = &t.metrics.counters;
        assert_eq!(t.dropped, 0, "default capacity must hold a small run");
        // Job conservation through the queue: one Enqueue and one
        // Dequeue per request, one open/close pair per served job.
        assert_eq!(c.enqueued, n);
        assert_eq!(c.dequeued, n);
        assert_eq!(c.jobs_opened, n);
        assert_eq!(c.jobs_completed, n);
        assert_eq!(c.jobs_faulted + c.jobs_deadline_missed + c.shed, 0);
        let hits = r.per_request_hit.iter().filter(|&&h| h).count() as u64;
        assert_eq!(c.jobs_hit, hits);
        // Component details vs the merged OsStats: residency checks
        // happen once per batch (non-first batch members are hits by
        // construction), the decoded-bitstream cache and eviction
        // ledgers match one-to-one.
        assert_eq!(c.residency_misses, r.stats.misses);
        assert_eq!(c.residency_hits + r.coalesced, r.stats.hits);
        assert_eq!(c.residency_hits + c.residency_misses, r.batches);
        assert_eq!(c.decoded_hits, r.stats.decoded_hits);
        assert_eq!(c.decoded_misses, r.stats.decoded_misses);
        assert_eq!(c.evictions, r.stats.evictions);
        assert_eq!(c.evictions, 0, "FIT_SET must not evict");
        // The eight clean stages partition each job's service time.
        let staged: SimTime = t
            .metrics
            .stage_time
            .values()
            .map(|h| h.total())
            .fold(SimTime::ZERO, |a, b| a + b);
        assert_eq!(staged, r.total_service_time);
        // Fault machinery must stay silent on a clean run.
        assert_eq!(c.faults_injected + c.faults_inert + c.retries, 0);
        assert_eq!(c.repairs() + c.faults_failed + c.watchdog_resets, 0);
        assert_eq!(c.breaker_transitions, 0);
    }

    /// Same (workload, config) must serialize to byte-identical JSONL
    /// across runs; [`TraceLevel::Counters`] keeps the metrics but
    /// records no events.
    #[test]
    fn trace_export_is_deterministic_and_counters_mode_is_eventless() {
        let w = Workload::zipf(&FIT_SET, 40, 1.1, 32, 21);
        let run = |cfg: TraceConfig| {
            Engine::new(EngineConfig {
                workers: 2,
                trace: cfg,
                ..EngineConfig::default()
            })
            .serve(&w)
            .unwrap()
        };
        let a = run(TraceConfig::full());
        let b = run(TraceConfig::full());
        let ja = a.trace.as_ref().unwrap().to_jsonl();
        let jb = b.trace.as_ref().unwrap().to_jsonl();
        assert!(!ja.is_empty());
        assert_eq!(ja, jb, "same inputs must produce identical traces");
        let counters_only = run(TraceConfig::counters());
        let t = counters_only.trace.as_ref().unwrap();
        assert!(t.events.is_empty(), "counters mode records no events");
        assert_eq!(
            t.metrics.counters,
            a.trace.as_ref().unwrap().metrics.counters,
            "counter ledger must be level-independent"
        );
        // Chrome export is deterministic too and wraps every event.
        assert_eq!(
            a.trace.as_ref().unwrap().to_chrome_trace(),
            b.trace.as_ref().unwrap().to_chrome_trace()
        );
    }

    /// Under corruption chaos every `FaultStats` bump has exactly one
    /// trace event: injected, inert, each repair kind, retries and
    /// rescue requeues all reconcile.
    #[test]
    fn chaos_trace_counters_reconcile_with_fault_stats() {
        use aaod_sim::{FaultPlan, FaultRates};
        let w = Workload::zipf(&FIT_SET, 120, 1.1, 48, 13);
        let plan = FaultPlan::new(0xC0FFEE, FaultRates::uniform(0.04));
        let r = Engine::new(EngineConfig {
            workers: 2,
            verify: true,
            faults: Some(FaultConfig::new(plan)),
            trace: TraceConfig::full(),
            ..EngineConfig::default()
        })
        .serve(&w)
        .unwrap();
        assert!(r.faults.injected > 0);
        let c = &r.trace.as_ref().unwrap().metrics.counters;
        assert_eq!(c.faults_injected, r.faults.injected);
        assert_eq!(c.faults_inert, r.faults.inert);
        assert_eq!(c.retries, r.faults.retries);
        assert_eq!(c.requeued, r.faults.requeues);
        assert_eq!(c.faults_failed, r.faults.faults_failed);
        assert_eq!(c.repairs_scrub, r.faults.scrubbed);
        assert_eq!(c.repairs_redownload, r.faults.redownloads);
        assert_eq!(c.repairs_pci_retry, r.faults.pci_retried);
        assert_eq!(c.repairs_evict_clear, r.faults.evict_cleared);
        assert_eq!(c.repairs(), r.faults.recovered());
        assert_eq!(c.jobs_completed + c.jobs_faulted, r.requests as u64);
        assert_eq!(c.jobs_faulted, r.failed.len() as u64);
    }

    /// Under overload the shed/watchdog/redistribution/breaker events
    /// must mirror `OverloadStats` exactly.
    #[test]
    fn overload_trace_counters_reconcile_with_overload_stats() {
        use crate::breaker::BreakerConfig;
        use crate::overload::WatchdogConfig;
        use aaod_sim::{FaultPlan, FaultRates, LatencyRates};
        let w = Workload::zipf(&FIT_SET, 200, 1.1, 48, 31);
        let plan = FaultPlan::new(0x0D10AD, FaultRates::uniform(0.03))
            .with_latency(LatencyRates::uniform(0.04));
        let oc = OverloadConfig {
            interarrival: SimTime::from_us(50),
            deadline: DeadlinePolicy::Percentile {
                pct: 95.0,
                multiplier: 200.0,
            },
            watchdog: WatchdogConfig::default(),
            breaker: BreakerConfig::default(),
            fairness: None,
        };
        let r = Engine::new(EngineConfig {
            workers: 3,
            verify: true,
            overload: Some(oc),
            faults: Some(FaultConfig::new(plan)),
            trace: TraceConfig::full(),
            ..EngineConfig::default()
        })
        .serve(&w)
        .unwrap();
        assert!(r.overload.accounted());
        let c = &r.trace.as_ref().unwrap().metrics.counters;
        assert_eq!(c.enqueued, 200);
        assert_eq!(c.dequeued, 200);
        assert_eq!(c.shed, r.overload.shed);
        assert_eq!(c.watchdog_resets, r.overload.watchdog_resets);
        assert_eq!(c.redistributed, r.overload.redistributed);
        assert_eq!(c.breaker_trips, r.overload.breaker_trips);
        assert_eq!(c.bounced, r.overload.breaker_rejections);
        assert_eq!(c.jobs_deadline_missed, r.overload.deadline_missed);
        assert_eq!(c.requeued, r.faults.requeues);
        // Latency-fault activations surface as FaultInjected events
        // alongside the corruption ones.
        assert_eq!(
            c.faults_injected,
            r.faults.injected
                + r.overload.stalls_injected
                + r.overload.slow_transfers_injected
                + r.overload.stuck_injected
        );
        assert_eq!(c.faults_inert, r.faults.inert + r.overload.latency_inert);
    }

    fn two_tenant_specs(quota: Option<u64>) -> Vec<aaod_workload::TenantSpec> {
        vec![
            aaod_workload::TenantSpec {
                name: "gateway".into(),
                algos: vec![ids::SHA1],
                weight: 4,
                offered: 1,
                input_len: 65536,
                quota: None,
            },
            // same kernel and size as the gateway so the comparison
            // isolates admission policy from reconfiguration thrash
            aaod_workload::TenantSpec {
                name: "flood".into(),
                algos: vec![ids::SHA1],
                weight: 1,
                offered: 8,
                input_len: 65536,
                quota,
            },
        ]
    }

    /// Weighted-fair admission protects the light tenant: shedding the
    /// flooding tenant's excess keeps shard clocks low, so more
    /// gateway jobs complete than under drop-newest, and the fairness
    /// counters balance.
    #[test]
    fn weighted_fair_shed_protects_light_tenants() {
        use crate::overload::FairnessConfig;
        let w = Workload::multi_tenant(&two_tenant_specs(None), 300, 77);
        let serve_at = |ia: SimTime, budget: SimTime, fairness: Option<FairnessConfig>| {
            Engine::new(EngineConfig {
                workers: 2,
                shard: ShardPolicy::RoundRobin,
                overload: Some(OverloadConfig {
                    interarrival: ia,
                    deadline: DeadlinePolicy::Absolute(budget),
                    fairness,
                    ..OverloadConfig::default()
                }),
                ..EngineConfig::default()
            })
            .serve(&w)
            .unwrap()
        };
        // calibrate: the pool's drain time at instantaneous arrivals
        // sets capacity; offer 2x that and a budget that tolerates a
        // modest backlog, so admission (not raw deadlines) decides
        let drain = serve_at(SimTime::from_ns(1), SimTime::from_secs(100), None).makespan;
        let n = w.len() as u64;
        let ia = SimTime::from_ps((drain.as_ps() / (2 * n)).max(1));
        let budget = SimTime::from_ps((drain.as_ps() / 4).max(1));
        let serve = |fairness: Option<FairnessConfig>| serve_at(ia, budget, fairness);
        let unfair = serve(None);
        assert_eq!(unfair.overload.fair_shed, 0);
        assert!(unfair.overload.accounted());
        let fair = serve(Some(FairnessConfig::default()));
        assert!(fair.overload.accounted());
        assert!(fair.overload.fair_shed > 0, "flood must trip the policy");
        assert!(fair.overload.fair_shed <= fair.overload.shed);
        // per-tenant ledgers exist, conserve, and show the shift
        assert_eq!(fair.tenants.len(), 2);
        assert!(fair.tenants.iter().all(|t| t.accounted()));
        let gw_fair = &fair.tenants[0];
        let gw_unfair = &unfair.tenants[0];
        assert_eq!(gw_fair.name, "gateway");
        assert!(
            gw_fair.completed > gw_unfair.completed,
            "fairness must lift the light tenant: {} vs {}",
            gw_fair.completed,
            gw_unfair.completed
        );
        let flood = &fair.tenants[1];
        assert!(flood.shed > 0, "the flood pays for the lift");
    }

    /// A tenant quota drops excess submissions at the producer:
    /// exactly `submitted − quota` jobs land in `quota_exceeded`,
    /// are never enqueued, and conservation still balances.
    #[test]
    fn tenant_quota_drops_excess_submissions() {
        let quota = 10u64;
        let w = Workload::multi_tenant(&two_tenant_specs(Some(quota)), 200, 9);
        let flood_offered = (0..w.len()).filter(|&i| w.tenant_of(i) == Some(1)).count() as u64;
        assert!(flood_offered > quota, "flood must exceed its quota");
        let r = Engine::new(EngineConfig {
            workers: 2,
            overload: Some(OverloadConfig {
                interarrival: SimTime::from_us(100),
                deadline: DeadlinePolicy::Absolute(SimTime::from_secs(100)),
                ..OverloadConfig::default()
            }),
            trace: TraceConfig::full(),
            ..EngineConfig::default()
        })
        .serve(&w)
        .unwrap();
        assert!(r.overload.accounted());
        assert_eq!(r.overload.quota_exceeded, flood_offered - quota);
        assert_eq!(r.quota_exceeded.len() as u64, flood_offered - quota);
        assert!(r
            .quota_exceeded
            .values()
            .all(|e| matches!(e, JobError::QuotaExceeded { tenant: 1, .. })));
        let flood = &r.tenants[1];
        assert_eq!(flood.quota_exceeded, flood_offered - quota);
        assert!(flood.accounted());
        // quota drops were never enqueued: the trace saw only the rest
        let c = &r.trace.as_ref().unwrap().metrics.counters;
        assert_eq!(c.enqueued, w.len() as u64 - (flood_offered - quota));
        assert_eq!(c.enqueued, c.dequeued);
    }

    /// Tick-carrying workloads reshape arrivals: a flash crowd
    /// compresses the middle third of the stream, so a pool that keeps
    /// up with uniform arrivals sheds or misses during the spike.
    #[test]
    fn flash_crowd_ticks_shape_arrivals() {
        let algos = [ids::SHA1, ids::CRC32, ids::CRC8, ids::XTEA];
        let w = Workload::flash_crowd(&algos, ids::SHA1, 240, 50, 48, 3);
        assert!(w.arrival_tick(0).is_some());
        // calibrate a uniform-capacity interarrival: serial time / n
        let (_, hits) = serial_outputs(&w);
        assert_eq!(hits.len(), 240);
        let serve = |ia: SimTime| {
            Engine::new(EngineConfig {
                workers: 2,
                overload: Some(OverloadConfig {
                    interarrival: ia,
                    deadline: DeadlinePolicy::Percentile {
                        pct: 95.0,
                        multiplier: 3.0,
                    },
                    ..OverloadConfig::default()
                }),
                ..EngineConfig::default()
            })
            .serve(&w)
            .unwrap()
        };
        // generous spacing: even the 50x spike stays within deadline
        let calm = serve(SimTime::from_ms(10));
        assert!(calm.overload.accounted());
        // tight spacing: the spike's arrivals land 50x faster than the
        // mean gap and overwhelm the pool mid-run
        let tight = serve(SimTime::from_us(10));
        assert!(tight.overload.accounted());
        assert!(
            tight.overload.shed + tight.overload.deadline_missed
                > calm.overload.shed + calm.overload.deadline_missed,
            "the spike must hurt at tight spacing: {:?} vs {:?}",
            tight.overload,
            calm.overload
        );
    }

    /// Per-shard event streams must carry monotone non-decreasing
    /// modelled timestamps, balanced open/close pairs, and stage spans
    /// nested inside their job's open/close window — in clean, chaos
    /// and overload modes alike.
    #[test]
    fn trace_streams_are_well_formed_in_every_mode() {
        use crate::breaker::BreakerConfig;
        use crate::overload::WatchdogConfig;
        use aaod_sim::trace::EventKind;
        use aaod_sim::{FaultPlan, FaultRates, LatencyRates};
        let w = Workload::zipf(&FIT_SET, 150, 1.1, 48, 7);
        let clean = EngineConfig {
            workers: 2,
            trace: TraceConfig::full(),
            ..EngineConfig::default()
        };
        let chaos = EngineConfig {
            faults: Some(FaultConfig::new(FaultPlan::new(
                7,
                FaultRates::uniform(0.05),
            ))),
            ..clean
        };
        let overload = EngineConfig {
            workers: 3,
            overload: Some(OverloadConfig {
                interarrival: SimTime::from_us(50),
                deadline: DeadlinePolicy::Percentile {
                    pct: 95.0,
                    multiplier: 200.0,
                },
                watchdog: WatchdogConfig::default(),
                breaker: BreakerConfig::default(),
                fairness: None,
            }),
            faults: Some(FaultConfig::new(
                FaultPlan::new(9, FaultRates::uniform(0.03))
                    .with_latency(LatencyRates::uniform(0.05)),
            )),
            ..clean
        };
        for (label, cfg) in [("clean", clean), ("chaos", chaos), ("overload", overload)] {
            let r = Engine::new(cfg).serve(&w).unwrap();
            let t = r.trace.as_ref().unwrap();
            let mut last: BTreeMap<u32, SimTime> = BTreeMap::new();
            let mut open_jobs: BTreeMap<(u32, u64), SimTime> = BTreeMap::new();
            let mut open_stages = 0i64;
            for e in &t.events {
                let prev = last.entry(e.shard).or_insert(SimTime::ZERO);
                assert!(
                    e.ts >= *prev,
                    "{label}: shard {} time went backwards at seq {}",
                    e.shard,
                    e.seq
                );
                *prev = e.ts;
                match e.kind {
                    EventKind::JobOpen { job, .. } => {
                        assert!(
                            open_jobs.insert((e.shard, job), e.ts).is_none(),
                            "{label}: job {job} opened twice on shard {}",
                            e.shard
                        );
                    }
                    EventKind::JobClose { job, .. } => {
                        let opened = open_jobs
                            .remove(&(e.shard, job))
                            .unwrap_or_else(|| panic!("{label}: job {job} closed unopened"));
                        assert!(opened <= e.ts, "{label}: job {job} closed before open");
                    }
                    EventKind::StageOpen { job, .. } => {
                        assert!(
                            open_jobs.contains_key(&(e.shard, job)),
                            "{label}: stage outside job {job} window"
                        );
                        open_stages += 1;
                    }
                    EventKind::StageClose { .. } => open_stages -= 1,
                    _ => {}
                }
            }
            assert!(open_jobs.is_empty(), "{label}: unclosed jobs {open_jobs:?}");
            assert_eq!(open_stages, 0, "{label}: unbalanced stage spans");
        }
    }
}

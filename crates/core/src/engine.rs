//! Concurrent serving engine: a sharded pool of co-processors.
//!
//! The paper models a single card serving one host. A serving
//! deployment (e.g. a crypto gateway) runs many such cards and fans
//! requests out across them. [`Engine`] reproduces that: it partitions
//! a [`Workload`] across `N` independent [`CoProcessor`] shards, each
//! driven by its own OS thread behind a bounded job queue, and
//! reassembles the results in submission order — outputs are
//! byte-identical to running the workload serially on one card.
//!
//! Two serving optimisations ride on the pool:
//!
//! * **miss batching** — a worker drains the run of consecutive queued
//!   requests for the same algorithm and serves them with one
//!   [`CoProcessor::invoke_batch`] call, paying the record lookup and
//!   any (re)configuration once per run instead of once per request;
//! * **sharding policies** ([`ShardPolicy`]) — requests can be routed
//!   by `algo_id % N` (maximum locality), round-robin (maximum
//!   spread), or by a balanced partition that splits hot algorithms
//!   across shards when one algorithm alone would exceed a shard's
//!   fair share of the load.
//!
//! Wall-clock parallelism is an artefact of the host machine; the
//! engine's figure of merit is *modelled* time. Each shard accumulates
//! the simulated busy time of the requests it served; the engine's
//! makespan is the maximum over shards, and
//! [`EngineResult::speedup`] compares that against the serial
//! service-time sum.

use crate::coproc::CoProcessor;
use crate::error::CoreError;
use aaod_mcu::OsStats;
use aaod_sim::stats::TimeAccumulator;
use aaod_sim::SimTime;
use aaod_workload::Workload;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Condvar, Mutex};

/// How requests are partitioned across the shard pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// `algo_id % workers`: every request for an algorithm lands on
    /// the same shard, maximising residency locality. Throughput is
    /// limited by the hottest shard.
    #[default]
    AlgoModulo,
    /// `request index % workers`: perfect load spread, worst
    /// locality — every shard ends up serving every algorithm.
    RoundRobin,
    /// Greedy weighted partition: algorithms are assigned whole to the
    /// least-loaded shard, except that an algorithm whose total weight
    /// exceeds a shard's fair share is *split* (replicated) across
    /// just enough shards to fit. Balances skewed (Zipf) workloads
    /// while keeping cold algorithms on a single shard.
    Balanced,
}

impl ShardPolicy {
    /// A short name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ShardPolicy::AlgoModulo => "algo-mod",
            ShardPolicy::RoundRobin => "round-robin",
            ShardPolicy::Balanced => "balanced",
        }
    }

    /// Computes the shard for every request of `workload`,
    /// deterministically.
    fn assign(self, workload: &Workload, workers: usize) -> Vec<usize> {
        let requests = workload.requests();
        match self {
            ShardPolicy::AlgoModulo => requests
                .iter()
                .map(|r| r.algo_id as usize % workers)
                .collect(),
            ShardPolicy::RoundRobin => (0..requests.len()).map(|i| i % workers).collect(),
            ShardPolicy::Balanced => {
                // Per-algorithm service weight: payload plus a fixed
                // per-request overhead so zero-length inputs still
                // carry cost.
                let mut weight: BTreeMap<u16, u64> = BTreeMap::new();
                for r in requests {
                    *weight.entry(r.algo_id).or_insert(0) += r.input_len as u64 + 64;
                }
                let total: u64 = weight.values().sum();
                let target = (total / workers as u64).max(1);
                let mut by_weight: Vec<(u16, u64)> = weight.into_iter().collect();
                by_weight.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let mut loads = vec![0u64; workers];
                let mut algo_shards: BTreeMap<u16, Vec<usize>> = BTreeMap::new();
                for (algo, w) in by_weight {
                    let splits = (w.div_ceil(target) as usize).clamp(1, workers);
                    let mut order: Vec<usize> = (0..workers).collect();
                    order.sort_by_key(|&s| (loads[s], s));
                    let chosen: Vec<usize> = order[..splits].to_vec();
                    for &s in &chosen {
                        loads[s] += w / splits as u64;
                    }
                    algo_shards.insert(algo, chosen);
                }
                let mut counters: BTreeMap<u16, usize> = BTreeMap::new();
                requests
                    .iter()
                    .map(|r| {
                        let shards = &algo_shards[&r.algo_id];
                        let c = counters.entry(r.algo_id).or_insert(0);
                        let shard = shards[*c % shards.len()];
                        *c += 1;
                        shard
                    })
                    .collect()
            }
        }
    }
}

/// Engine tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Shards (worker threads, each with its own co-processor).
    pub workers: usize,
    /// Bound of each shard's job queue (requests).
    pub queue_depth: usize,
    /// Longest same-algorithm run one `invoke_batch` call may absorb.
    pub batch_max: usize,
    /// Check every output against the golden software model.
    pub verify: bool,
    /// Keep the output bytes (disable for pure timing sweeps).
    pub collect_outputs: bool,
    /// Request partitioning policy.
    pub shard: ShardPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            queue_depth: 64,
            batch_max: 16,
            verify: false,
            collect_outputs: true,
            shard: ShardPolicy::AlgoModulo,
        }
    }
}

/// The outcome of serving one workload through the pool.
#[derive(Debug, Clone)]
pub struct EngineResult {
    /// Shards that served the workload.
    pub workers: usize,
    /// Requests serviced.
    pub requests: usize,
    /// Input bytes processed.
    pub input_bytes: u64,
    /// Outputs in submission order (when collection was enabled).
    pub outputs: Option<Vec<Vec<u8>>>,
    /// Per-request residency-hit classification, submission order.
    pub per_request_hit: Vec<bool>,
    /// Per-request modelled service time distribution.
    pub latency: TimeAccumulator,
    /// Sum of every request's modelled service time (the serial cost
    /// of the same work on these shards).
    pub total_service_time: SimTime,
    /// Modelled busy time of each shard.
    pub shard_busy: Vec<SimTime>,
    /// Modelled completion time: the busiest shard's clock.
    pub makespan: SimTime,
    /// Aggregated controller statistics across all shards.
    pub stats: OsStats,
    /// `invoke_batch` calls issued.
    pub batches: u64,
    /// Requests that rode along in a batch after its first request.
    pub coalesced: u64,
}

impl EngineResult {
    /// Modelled speedup over serial service: total service time
    /// divided by the makespan.
    pub fn speedup(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.total_service_time.as_ns() / self.makespan.as_ns()
        }
    }

    /// Modelled throughput in input megabytes per simulated second of
    /// makespan.
    pub fn throughput_mb_s(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.input_bytes as f64 / 1e6 / self.makespan.as_secs()
        }
    }

    /// Residency hit rate across all shards.
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }
}

/// One queued request.
struct Job {
    index: usize,
    algo_id: u16,
    input: Vec<u8>,
}

/// A bounded FIFO of jobs: producers block while full, consumers
/// block while empty, `close` wakes everyone for shutdown.
struct BoundedQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl BoundedQueue {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    fn push(&self, job: Job) {
        let mut st = self.state.lock().expect("queue lock poisoned");
        while st.jobs.len() >= self.capacity {
            st = self.not_full.wait(st).expect("queue lock poisoned");
        }
        st.jobs.push_back(job);
        drop(st);
        self.not_empty.notify_one();
    }

    fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Pops the run of consecutive same-algorithm jobs at the head of
    /// the queue (at most `max`); `None` once the queue is closed and
    /// drained.
    fn pop_batch(&self, max: usize) -> Option<Vec<Job>> {
        let mut st = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(first) = st.jobs.pop_front() {
                let algo_id = first.algo_id;
                let mut batch = vec![first];
                while batch.len() < max && st.jobs.front().is_some_and(|j| j.algo_id == algo_id) {
                    batch.push(st.jobs.pop_front().expect("front checked above"));
                }
                drop(st);
                self.not_full.notify_all();
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue lock poisoned");
        }
    }
}

struct JobResult {
    index: usize,
    output: Vec<u8>,
    hit: bool,
    time: SimTime,
}

struct WorkerOutcome {
    results: Vec<JobResult>,
    busy: SimTime,
    stats: OsStats,
    batches: u64,
    coalesced: u64,
}

/// The sharded co-processor pool.
pub struct Engine {
    config: EngineConfig,
    factory: Box<dyn Fn() -> CoProcessor + Send + Sync>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// An engine whose shards are default co-processors.
    pub fn new(config: EngineConfig) -> Self {
        Engine::with_factory(config, CoProcessor::default)
    }

    /// An engine whose shards are built by `factory` — use this to
    /// give every shard a custom geometry, policy, codec or
    /// decoded-cache budget.
    pub fn with_factory(
        config: EngineConfig,
        factory: impl Fn() -> CoProcessor + Send + Sync + 'static,
    ) -> Self {
        Engine {
            config,
            factory: Box::new(factory),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Serves every request of `workload` through the pool and
    /// reassembles the results in submission order.
    ///
    /// Each shard installs only the algorithms routed to it (install
    /// time is bring-up, not serving time), services its queue until
    /// the producer closes it, and reports its modelled busy time.
    ///
    /// # Errors
    ///
    /// Propagates the first shard error: install/invoke failures, or
    /// [`CoreError::OutputMismatch`] when verification is on.
    pub fn serve(&self, workload: &Workload) -> Result<EngineResult, CoreError> {
        let workers = self.config.workers.max(1);
        let requests = workload.requests();
        let n = requests.len();
        if n == 0 {
            return Ok(EngineResult {
                workers,
                requests: 0,
                input_bytes: 0,
                outputs: self.config.collect_outputs.then(Vec::new),
                per_request_hit: Vec::new(),
                latency: TimeAccumulator::new(),
                total_service_time: SimTime::ZERO,
                shard_busy: vec![SimTime::ZERO; workers],
                makespan: SimTime::ZERO,
                stats: OsStats::default(),
                batches: 0,
                coalesced: 0,
            });
        }
        let assignment = self.config.shard.assign(workload, workers);
        let mut shard_algos: Vec<BTreeSet<u16>> = vec![BTreeSet::new(); workers];
        for (req, &shard) in requests.iter().zip(&assignment) {
            shard_algos[shard].insert(req.algo_id);
        }
        let queue_depth = self.config.queue_depth.max(1);
        let batch_max = self.config.batch_max.max(1);
        let verify = self.config.verify;
        let collect = self.config.collect_outputs;
        let factory = &self.factory;
        let queues: Vec<BoundedQueue> = (0..workers)
            .map(|_| BoundedQueue::new(queue_depth))
            .collect();

        let outcomes: Vec<Result<WorkerOutcome, CoreError>> =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for (shard, queue) in queues.iter().enumerate() {
                    let algos = &shard_algos[shard];
                    handles.push(scope.spawn(move || {
                        worker_loop(factory, queue, algos, batch_max, verify, collect)
                    }));
                }
                // This thread is the producer: push in submission order,
                // blocking whenever a shard's queue is full.
                for (i, req) in requests.iter().enumerate() {
                    queues[assignment[i]].push(Job {
                        index: i,
                        algo_id: req.algo_id,
                        input: workload.input(i),
                    });
                }
                for queue in &queues {
                    queue.close();
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("engine worker panicked"))
                    .collect()
            });

        let mut outputs = collect.then(|| vec![Vec::new(); n]);
        let mut per_request_hit = vec![false; n];
        let mut times = vec![SimTime::ZERO; n];
        let mut shard_busy = Vec::with_capacity(workers);
        let mut stats = OsStats::default();
        let mut batches = 0u64;
        let mut coalesced = 0u64;
        for outcome in outcomes {
            let outcome = outcome?;
            shard_busy.push(outcome.busy);
            stats.merge(&outcome.stats);
            batches += outcome.batches;
            coalesced += outcome.coalesced;
            for r in outcome.results {
                per_request_hit[r.index] = r.hit;
                times[r.index] = r.time;
                if let Some(outs) = outputs.as_mut() {
                    outs[r.index] = r.output;
                }
            }
        }
        let mut latency = TimeAccumulator::new();
        let mut total_service_time = SimTime::ZERO;
        for &t in &times {
            latency.push(t);
            total_service_time += t;
        }
        let makespan = shard_busy
            .iter()
            .copied()
            .fold(SimTime::ZERO, |a, b| if b > a { b } else { a });
        let input_bytes = requests.iter().map(|r| r.input_len as u64).sum();
        Ok(EngineResult {
            workers,
            requests: n,
            input_bytes,
            outputs,
            per_request_hit,
            latency,
            total_service_time,
            shard_busy,
            makespan,
            stats,
            batches,
            coalesced,
        })
    }
}

fn worker_loop(
    factory: &(dyn Fn() -> CoProcessor + Send + Sync),
    queue: &BoundedQueue,
    algos: &BTreeSet<u16>,
    batch_max: usize,
    verify: bool,
    collect: bool,
) -> Result<WorkerOutcome, CoreError> {
    let mut cp = factory();
    for &algo in algos {
        cp.install(algo)?;
    }
    let golden = verify.then(aaod_algos::AlgorithmBank::standard);
    let mut outcome = WorkerOutcome {
        results: Vec::new(),
        busy: SimTime::ZERO,
        stats: OsStats::default(),
        batches: 0,
        coalesced: 0,
    };
    while let Some(batch) = queue.pop_batch(batch_max) {
        let algo_id = batch[0].algo_id;
        outcome.batches += 1;
        outcome.coalesced += batch.len() as u64 - 1;
        let inputs: Vec<&[u8]> = batch.iter().map(|j| j.input.as_slice()).collect();
        let served = cp.invoke_batch(algo_id, &inputs)?;
        for (job, (output, report)) in batch.iter().zip(served) {
            if let Some(golden) = &golden {
                let expected = golden
                    .execute_software(algo_id, &job.input)
                    .map_err(CoreError::Algo)?;
                if output != expected {
                    return Err(CoreError::OutputMismatch {
                        algo_id,
                        index: job.index,
                    });
                }
            }
            let time = report.total();
            outcome.busy += time;
            outcome.results.push(JobResult {
                index: job.index,
                output: if collect { output } else { Vec::new() },
                hit: report.hit(),
                time,
            });
        }
    }
    outcome.stats = cp.stats();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaod_algos::ids;

    /// SHA1(12) + CRC32(2) + CRC8(<=2) + XTEA(6) frames all fit the
    /// default 96-frame device: no evictions, so hit/miss
    /// classification is position-independent.
    const FIT_SET: [u16; 4] = [ids::SHA1, ids::CRC32, ids::CRC8, ids::XTEA];

    fn serial_outputs(workload: &Workload) -> (Vec<Vec<u8>>, Vec<bool>) {
        let mut cp = CoProcessor::default();
        for &algo in &workload.distinct_algos() {
            cp.install(algo).unwrap();
        }
        let mut outs = Vec::new();
        let mut hits = Vec::new();
        for (i, req) in workload.requests().iter().enumerate() {
            let (out, report) = cp.invoke(req.algo_id, &workload.input(i)).unwrap();
            outs.push(out);
            hits.push(report.hit());
        }
        (outs, hits)
    }

    #[test]
    fn outputs_identical_to_serial_across_policies_and_widths() {
        let w = Workload::zipf(&FIT_SET, 60, 1.1, 48, 11);
        let (expected, _) = serial_outputs(&w);
        for shard in [
            ShardPolicy::AlgoModulo,
            ShardPolicy::RoundRobin,
            ShardPolicy::Balanced,
        ] {
            for workers in [1, 2, 4] {
                let engine = Engine::new(EngineConfig {
                    workers,
                    verify: true,
                    shard,
                    ..EngineConfig::default()
                });
                let r = engine.serve(&w).unwrap();
                assert_eq!(
                    r.outputs.as_ref().unwrap(),
                    &expected,
                    "{} x{workers} diverged",
                    shard.name()
                );
                assert_eq!(r.requests, 60);
                assert_eq!(r.stats.requests, 60);
            }
        }
    }

    #[test]
    fn hit_classification_matches_serial_when_everything_fits() {
        let w = Workload::zipf(&FIT_SET, 80, 1.1, 32, 3);
        let (_, expected_hits) = serial_outputs(&w);
        let engine = Engine::new(EngineConfig {
            workers: 4,
            shard: ShardPolicy::AlgoModulo,
            ..EngineConfig::default()
        });
        let r = engine.serve(&w).unwrap();
        assert_eq!(r.per_request_hit, expected_hits);
    }

    #[test]
    fn makespan_bounded_by_total_and_speedup_sane() {
        let w = Workload::zipf(&FIT_SET, 120, 1.1, 64, 5);
        let engine = Engine::new(EngineConfig {
            workers: 4,
            shard: ShardPolicy::Balanced,
            ..EngineConfig::default()
        });
        let r = engine.serve(&w).unwrap();
        assert!(r.makespan <= r.total_service_time);
        assert!(r.speedup() >= 1.0);
        assert_eq!(r.shard_busy.len(), 4);
        let busiest = r
            .shard_busy
            .iter()
            .copied()
            .fold(SimTime::ZERO, |a, b| if b > a { b } else { a });
        assert_eq!(busiest, r.makespan);
    }

    #[test]
    fn bursty_workload_batches_requests() {
        let w = Workload::bursty(&FIT_SET, 64, 8, 32, 7);
        let engine = Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let r = engine.serve(&w).unwrap();
        assert!(
            r.batches < 64,
            "64 requests in bursts of 8 must coalesce, got {} batches",
            r.batches
        );
        assert!(r.coalesced > 0);
        assert_eq!(r.batches + r.coalesced, 64);
    }

    #[test]
    fn empty_workload_is_empty_result() {
        let w = Workload::from_trace(std::iter::empty::<u16>(), 8);
        let r = Engine::new(EngineConfig::default()).serve(&w).unwrap();
        assert_eq!(r.requests, 0);
        assert!(r.makespan.is_zero());
        assert_eq!(r.speedup(), 0.0);
        assert_eq!(r.outputs.unwrap().len(), 0);
    }

    #[test]
    fn collect_outputs_off_keeps_classification() {
        let w = Workload::uniform(&FIT_SET, 40, 16, 2);
        let engine = Engine::new(EngineConfig {
            collect_outputs: false,
            ..EngineConfig::default()
        });
        let r = engine.serve(&w).unwrap();
        assert!(r.outputs.is_none());
        assert_eq!(r.per_request_hit.len(), 40);
        assert_eq!(r.stats.hits + r.stats.misses, 40);
    }

    #[test]
    fn balanced_splits_a_dominant_algorithm() {
        // One algorithm carries ~90% of the load: balanced sharding
        // must spread it over several shards.
        let mut trace = vec![ids::SHA1; 90];
        trace.extend_from_slice(&[ids::CRC32; 10]);
        let w = Workload::from_trace(trace, 64);
        let assignment = ShardPolicy::Balanced.assign(&w, 4);
        let sha1_shards: BTreeSet<usize> = assignment[..90].iter().copied().collect();
        assert!(
            sha1_shards.len() >= 3,
            "hot algorithm stayed on {sha1_shards:?}"
        );
    }

    #[test]
    fn custom_factory_configures_shards() {
        let w = Workload::uniform(&[ids::CRC32, ids::CRC8], 20, 16, 9);
        let engine = Engine::with_factory(
            EngineConfig {
                workers: 2,
                verify: true,
                ..EngineConfig::default()
            },
            || CoProcessor::builder().decoded_cache_bytes(0).build(),
        );
        let r = engine.serve(&w).unwrap();
        assert_eq!(r.stats.decoded_misses, 0, "cache disabled in factory");
        assert_eq!(r.requests, 20);
    }
}

//! Core error type.

use aaod_algos::AlgoError;
use aaod_mcu::McuError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the host-side API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A failure inside the card (controller, fabric, memories…).
    Mcu(McuError),
    /// A software-baseline kernel failure.
    Algo(AlgoError),
    /// A hardware result disagreed with the golden software model —
    /// the co-processor computed the wrong answer.
    OutputMismatch {
        /// Algorithm whose result diverged.
        algo_id: u16,
        /// Index of the request in the workload.
        index: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Mcu(e) => write!(f, "co-processor: {e}"),
            CoreError::Algo(e) => write!(f, "software baseline: {e}"),
            CoreError::OutputMismatch { algo_id, index } => write!(
                f,
                "hardware output for algorithm {algo_id} diverged from software at request {index}"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Mcu(e) => Some(e),
            CoreError::Algo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<McuError> for CoreError {
    fn from(e: McuError) -> Self {
        CoreError::Mcu(e)
    }
}

impl From<AlgoError> for CoreError {
    fn from(e: AlgoError) -> Self {
        CoreError::Algo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(AlgoError::UnknownAlgorithm(9));
        assert!(e.to_string().contains("software baseline"));
        assert!(e.source().is_some());
        let e = CoreError::OutputMismatch {
            algo_id: 1,
            index: 4,
        };
        assert!(e.to_string().contains("request 4"));
    }

    #[test]
    fn send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CoreError>();
    }
}

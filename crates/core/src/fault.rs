//! Fault-injection policy and accounting for the serving engine.
//!
//! The deterministic *schedule* of faults lives in
//! [`aaod_sim::FaultPlan`]; this module holds the engine-side half:
//! the recovery policy knobs ([`FaultConfig`]), the per-run ledger
//! ([`FaultStats`]) and the typed per-job failure ([`JobError`]) a
//! request degrades to once its retry budget is exhausted.
//!
//! The ledger is built around one conservation law, checked by the
//! chaos tests: every fault that actually landed is eventually either
//! recovered or charged to a failed fault —
//! `injected == recovered() + faults_failed`. Scheduled faults that
//! could not land (the target was not resident, or the same function
//! already carried an undetected fault) are counted as `inert` and sit
//! outside the identity.

use aaod_sim::{FaultPlan, FaultSite, SimTime};

/// Recovery policy for a fault-injected serving run.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// The deterministic fault schedule.
    pub plan: FaultPlan,
    /// Invoke retries allowed per detected fault before the job
    /// degrades to a [`JobError`]. Zero disables recovery entirely.
    pub max_retries: u32,
    /// Base retry backoff; attempt `k` waits `backoff * 2^(k-1)` of
    /// modelled time before repairing and retrying.
    pub backoff: SimTime,
    /// Re-serve failed jobs on a fresh spare card after the pool
    /// drains, instead of leaving their [`JobError`] in place.
    pub requeue: bool,
}

impl FaultConfig {
    /// A config with the default recovery policy: three retries,
    /// 2 µs base backoff, no requeue.
    pub fn new(plan: FaultPlan) -> Self {
        FaultConfig {
            plan,
            max_retries: 3,
            backoff: SimTime::from_us(2),
            requeue: false,
        }
    }
}

/// Why a request produced no output.
///
/// [`Faulted`](JobError::Faulted) is the corruption path of PR 2: the
/// job's fault exhausted the retry budget (or corruption from an
/// earlier exhausted fault persisted). The other two variants belong
/// to the overload layer: [`Shed`](JobError::Shed) jobs were turned
/// away at admission because their deadline had already passed, and
/// [`DeadlineExceeded`](JobError::DeadlineExceeded) jobs were served
/// but finished too late for their output to be useful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job's fault exhausted the retry budget.
    Faulted {
        /// The algorithm the request targeted.
        algo_id: u16,
        /// Recovery attempts spent on this job before giving up.
        attempts: u32,
        /// The underlying controller failure, rendered.
        detail: String,
    },
    /// Admission control dropped the job without serving it: its
    /// deadline had already passed when service could have started.
    Shed {
        /// The algorithm the request targeted.
        algo_id: u16,
        /// The absolute modelled-time deadline the job carried.
        deadline: SimTime,
        /// The modelled time at which the shed decision was made.
        decided_at: SimTime,
    },
    /// The job was served but completed after its deadline; the
    /// output was dropped.
    DeadlineExceeded {
        /// The algorithm the request targeted.
        algo_id: u16,
        /// The absolute modelled-time deadline the job carried.
        deadline: SimTime,
        /// The modelled completion time that overran it.
        finished: SimTime,
    },
    /// The job was in flight on a cluster card that died, and no
    /// other replica of its algorithm was reachable to hedge onto.
    CardLost {
        /// The algorithm the request targeted.
        algo_id: u16,
        /// The card the job was stranded on.
        card: u32,
        /// The modelled time the card went dark.
        lost_at: SimTime,
    },
    /// The job was dropped at submission because its tenant's hard
    /// quota was already exhausted; it was never enqueued.
    QuotaExceeded {
        /// The algorithm the request targeted.
        algo_id: u16,
        /// The tenant whose quota the job exceeded.
        tenant: u16,
        /// The tenant's hard quota.
        quota: u64,
    },
    /// Every cluster replica of the job's algorithm was down or
    /// quarantined; the router exhausted its failover budget without
    /// finding a card to serve it.
    NoReplica {
        /// The algorithm the request targeted.
        algo_id: u16,
        /// Replicas the router tried before giving up.
        attempts: u32,
        /// The modelled time the router gave up.
        decided_at: SimTime,
    },
}

impl JobError {
    /// The algorithm the failed request targeted.
    pub fn algo_id(&self) -> u16 {
        match *self {
            JobError::Faulted { algo_id, .. }
            | JobError::Shed { algo_id, .. }
            | JobError::DeadlineExceeded { algo_id, .. }
            | JobError::CardLost { algo_id, .. }
            | JobError::QuotaExceeded { algo_id, .. }
            | JobError::NoReplica { algo_id, .. } => algo_id,
        }
    }

    /// Recovery or routing attempts spent on the job (zero for shed,
    /// deadline-missed and card-lost jobs, which never entered a
    /// retry loop).
    pub fn attempts(&self) -> u32 {
        match *self {
            JobError::Faulted { attempts, .. } | JobError::NoReplica { attempts, .. } => attempts,
            JobError::Shed { .. }
            | JobError::DeadlineExceeded { .. }
            | JobError::CardLost { .. }
            | JobError::QuotaExceeded { .. } => 0,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Faulted {
                algo_id,
                attempts,
                detail,
            } => write!(
                f,
                "algorithm {algo_id} failed after {attempts} recovery attempts: {detail}"
            ),
            JobError::Shed {
                algo_id,
                deadline,
                decided_at,
            } => write!(
                f,
                "algorithm {algo_id} shed at admission: deadline {deadline} already passed at {decided_at}"
            ),
            JobError::DeadlineExceeded {
                algo_id,
                deadline,
                finished,
            } => write!(
                f,
                "algorithm {algo_id} finished at {finished}, past its deadline {deadline}"
            ),
            JobError::CardLost {
                algo_id,
                card,
                lost_at,
            } => write!(
                f,
                "algorithm {algo_id} stranded on card {card}, lost at {lost_at} with no replica to hedge onto"
            ),
            JobError::QuotaExceeded {
                algo_id,
                tenant,
                quota,
            } => write!(
                f,
                "algorithm {algo_id} dropped at submission: tenant {tenant} exhausted its quota of {quota}"
            ),
            JobError::NoReplica {
                algo_id,
                attempts,
                decided_at,
            } => write!(
                f,
                "algorithm {algo_id} unroutable at {decided_at}: all {attempts} replicas down or quarantined"
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// Fault ledger for one engine run, merged across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults that landed (activated) on a card.
    pub injected: u64,
    /// Scheduled faults that could not land: target not resident, or
    /// the function already carried an undetected fault.
    pub inert: u64,
    /// Activated frame-SEU bit flips.
    pub frame_flips: u64,
    /// Activated torn (half-applied) configurations.
    pub torn_configs: u64,
    /// Activated ROM payload corruptions.
    pub rom_rots: u64,
    /// Activated transient PCI aborts.
    pub pci_transients: u64,
    /// Faults detected while serving (caused at least one failed
    /// invoke). Faults swept up by the drain pass never show here.
    pub detected: u64,
    /// Faults repaired by a readback scrub.
    pub scrubbed: u64,
    /// Faults repaired by re-downloading a rotten ROM image.
    pub redownloads: u64,
    /// PCI aborts recovered by the driver's immediate retry.
    pub pci_retried: u64,
    /// Frame faults dissolved by a policy eviction before detection
    /// (the corrupt frames were cleared and reconfigured from ROM).
    pub evict_cleared: u64,
    /// Invoke retries spent in recovery loops.
    pub retries: u64,
    /// Failed jobs rescued on the spare card.
    pub requeues: u64,
    /// Jobs that returned a [`JobError`] from the pool (before any
    /// requeue rescue).
    pub failed_jobs: u64,
    /// Faults whose retry budget was exhausted.
    pub faults_failed: u64,
}

impl FaultStats {
    /// Faults resolved to a healthy card, by any mechanism.
    pub fn recovered(&self) -> u64 {
        self.scrubbed + self.redownloads + self.pci_retried + self.evict_cleared
    }

    /// The conservation law: every activated fault was either
    /// recovered or charged as failed.
    pub fn accounted(&self) -> bool {
        self.injected == self.recovered() + self.faults_failed
    }

    /// Accumulates another shard's ledger into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.inert += other.inert;
        self.frame_flips += other.frame_flips;
        self.torn_configs += other.torn_configs;
        self.rom_rots += other.rom_rots;
        self.pci_transients += other.pci_transients;
        self.detected += other.detected;
        self.scrubbed += other.scrubbed;
        self.redownloads += other.redownloads;
        self.pci_retried += other.pci_retried;
        self.evict_cleared += other.evict_cleared;
        self.retries += other.retries;
        self.requeues += other.requeues;
        self.failed_jobs += other.failed_jobs;
        self.faults_failed += other.faults_failed;
    }

    /// Bumps the activated counter for `site` (plus `injected`).
    pub(crate) fn record_activated(&mut self, site: FaultSite) {
        self.injected += 1;
        match site {
            FaultSite::FrameBitFlip => self.frame_flips += 1,
            FaultSite::TornConfig => self.torn_configs += 1,
            FaultSite::RomPayload => self.rom_rots += 1,
            FaultSite::PciTransient => self.pci_transients += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_preserves_identity() {
        let mut a = FaultStats {
            injected: 3,
            scrubbed: 2,
            faults_failed: 1,
            ..FaultStats::default()
        };
        assert!(a.accounted());
        let b = FaultStats {
            injected: 2,
            redownloads: 1,
            pci_retried: 1,
            ..FaultStats::default()
        };
        assert!(b.accounted());
        a.merge(&b);
        assert_eq!(a.injected, 5);
        assert_eq!(a.recovered(), 4);
        assert!(a.accounted());
    }

    #[test]
    fn record_activated_routes_sites() {
        let mut s = FaultStats::default();
        for site in FaultSite::ALL {
            s.record_activated(site);
        }
        assert_eq!(s.injected, 4);
        assert_eq!(
            (s.frame_flips, s.torn_configs, s.rom_rots, s.pci_transients),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn job_error_renders() {
        let e = JobError::Faulted {
            algo_id: 7,
            attempts: 2,
            detail: "CRC mismatch".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("algorithm 7"));
        assert!(msg.contains("2 recovery attempts"));
        assert_eq!(e.algo_id(), 7);
        assert_eq!(e.attempts(), 2);
    }

    #[test]
    fn overload_errors_render() {
        let shed = JobError::Shed {
            algo_id: 3,
            deadline: SimTime::from_us(10),
            decided_at: SimTime::from_us(12),
        };
        assert!(shed.to_string().contains("shed at admission"));
        assert_eq!(shed.attempts(), 0);
        let late = JobError::DeadlineExceeded {
            algo_id: 3,
            deadline: SimTime::from_us(10),
            finished: SimTime::from_us(15),
        };
        assert!(late.to_string().contains("past its deadline"));
        assert_eq!(late.algo_id(), 3);
    }

    #[test]
    fn cluster_errors_render() {
        let lost = JobError::CardLost {
            algo_id: 5,
            card: 11,
            lost_at: SimTime::from_us(3),
        };
        assert!(lost.to_string().contains("stranded on card 11"));
        assert_eq!(lost.algo_id(), 5);
        assert_eq!(lost.attempts(), 0);
        let unroutable = JobError::NoReplica {
            algo_id: 5,
            attempts: 3,
            decided_at: SimTime::from_us(9),
        };
        assert!(unroutable.to_string().contains("all 3 replicas"));
        assert_eq!(unroutable.attempts(), 3);
    }

    #[test]
    fn quota_error_renders() {
        let e = JobError::QuotaExceeded {
            algo_id: 14,
            tenant: 2,
            quota: 100,
        };
        assert!(e.to_string().contains("quota of 100"));
        assert_eq!(e.algo_id(), 14);
        assert_eq!(e.attempts(), 0);
    }
}

//! `aaod-core` — the FPGA-based Agile Algorithm-On-Demand co-processor.
//!
//! This crate assembles the full system of the DATE 2005 paper: the
//! PCI bus model, the microcontroller mini-OS (ROM, local RAM, free
//! frame list, frame replacement policy, configuration and data
//! modules) and the partially reconfigurable fabric, behind a host-side
//! API ([`CoProcessor`]). It also provides the comparison systems every
//! experiment needs:
//!
//! * [`baselines::SoftwareExecutor`] — the host CPU running the same
//!   kernels in software (no co-processor at all);
//! * [`baselines::FixedFunctionCoProcessor`] — a single-function
//!   accelerator that falls back to software for everything else (the
//!   classic application-specific co-processor of the paper's
//!   introduction);
//! * a full-reconfiguration [`CoProcessor`] (via
//!   [`ReconfigMode::Full`]) — an FPGA card *without* partial
//!   reconfigurability.
//!
//! The [`runner`] module drives any of these through a
//! [`aaod_workload::Workload`] and produces comparable summaries.
//!
//! # Examples
//!
//! ```
//! use aaod_core::CoProcessor;
//! use aaod_algos::ids;
//!
//! let mut cp = CoProcessor::builder().build();
//! cp.install(ids::SHA1)?;
//! let (digest, report) = cp.invoke(ids::SHA1, b"abc")?;
//! assert_eq!(digest.len(), 20);
//! assert!(report.total().as_ns() > 0.0);
//! # Ok::<(), aaod_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod breaker;
pub mod cluster;
pub mod coproc;
pub mod dispatch;
pub mod engine;
pub mod error;
pub mod fault;
pub mod overload;
pub mod predict;
pub(crate) mod router;
pub mod runner;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use cluster::{CardHealth, Cluster, ClusterConfig, ClusterResult, ClusterStats};
pub use coproc::{CoProcessor, CoProcessorBuilder, HostReport, PciRecovery};
pub use dispatch::DispatchStats;
pub use engine::{Engine, EngineConfig, EngineResult, ShardPolicy};
pub use error::CoreError;
pub use fault::{FaultConfig, FaultStats, JobError};
pub use overload::{
    DeadlinePolicy, FairnessConfig, OverloadConfig, OverloadStats, TenantStats, WatchdogConfig,
};
pub use predict::{Flip, FlipRecord, HysteresisGate, PredictConfig, PredictModel};
pub use runner::{run_workload, run_workload_traced, Executor, RunResult};

// Re-export the pieces users compose with.
pub use aaod_mcu::ReconfigMode;
pub use aaod_sim::trace::{MetricsRegistry, TraceConfig, TraceLevel, TraceReport};

//! Deadline, admission-control, watchdog and overload accounting
//! types for the serving engine.
//!
//! The engine's overload layer (enabled through
//! [`EngineConfig::overload`](crate::EngineConfig)) gives every job a
//! modelled-time deadline, sheds work that cannot meet it, detects
//! stalled cards with a watchdog, and quarantines failing shards with
//! a per-shard [`CircuitBreaker`](crate::CircuitBreaker). Everything
//! here is expressed in modelled [`SimTime`], so the same (workload,
//! fault plan, seed) always produces the same counters.
//!
//! [`OverloadStats::accounted`] is the job-conservation invariant:
//! every submitted job ends in exactly one of completed, shed,
//! deadline-missed, faulted or quota-exceeded.
//!
//! With [`OverloadConfig::fairness`] set and a multi-tenant workload,
//! admission additionally sheds deterministically by weighted fair
//! share: a tenant whose admitted count runs ahead of its weighted
//! share (plus the configured slack) is shed first, so a flooding
//! tenant cannot starve the others. Fair sheds are counted both in
//! `shed` (they are sheds) and in `fair_shed` (their cause).

use crate::breaker::BreakerConfig;
use aaod_sim::SimTime;

/// How each job's deadline is derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlinePolicy {
    /// Every job gets the same absolute budget from its arrival.
    Absolute(SimTime),
    /// The budget is `multiplier ×` the given percentile of the
    /// estimated per-request service time, calibrated once on a
    /// scratch card before serving starts (deterministic: the
    /// calibration depends only on the workload).
    Percentile {
        /// Percentile of estimated service times, in `[0, 100]`.
        pct: f64,
        /// Slack multiplier applied to the percentile.
        multiplier: f64,
    },
}

impl DeadlinePolicy {
    /// Checks the policy is usable.
    ///
    /// # Panics
    ///
    /// Panics on a zero absolute budget, a percentile outside
    /// `[0, 100]`, or a non-positive multiplier.
    pub fn validate(&self) {
        match *self {
            DeadlinePolicy::Absolute(budget) => {
                assert!(budget > SimTime::ZERO, "deadline budget must be non-zero");
            }
            DeadlinePolicy::Percentile { pct, multiplier } => {
                assert!(
                    (0.0..=100.0).contains(&pct),
                    "deadline percentile must be in [0, 100]"
                );
                assert!(multiplier > 0.0, "deadline multiplier must be positive");
            }
        }
    }
}

/// Watchdog tuning: how long a card may go without a heartbeat before
/// it is declared stuck and reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Modelled heartbeat interval.
    pub heartbeat: SimTime,
    /// Heartbeats that may be missed before the reset fires.
    pub missed_beats: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            heartbeat: SimTime::from_ms(1),
            missed_beats: 3,
        }
    }
}

impl WatchdogConfig {
    /// The modelled time a stuck card burns before the watchdog fires:
    /// `heartbeat × missed_beats`.
    pub fn timeout(&self) -> SimTime {
        self.heartbeat * self.missed_beats as u64
    }

    /// Checks the tuning is usable.
    ///
    /// # Panics
    ///
    /// Panics on a zero heartbeat or zero missed-beat allowance.
    pub fn validate(&self) {
        assert!(
            self.heartbeat > SimTime::ZERO,
            "watchdog heartbeat must be non-zero"
        );
        assert!(
            self.missed_beats >= 1,
            "watchdog must allow at least one missed beat"
        );
    }
}

/// Weighted-fair admission tuning.
///
/// Fairness only engages when the workload carries tenant metadata
/// ([`Workload::tenant_specs`](aaod_workload::Workload::tenant_specs));
/// on an untagged workload admission stays pure drop-newest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FairnessConfig {
    /// Percent a tenant's admitted count may overshoot its weighted
    /// fair share before admission sheds it. Larger = laxer policing.
    pub slack_pct: u32,
    /// Admissions every tenant gets unconditionally before the
    /// share test engages (avoids shedding the first arrivals of a
    /// low-weight tenant on a cold counter).
    pub base_allowance: u64,
}

impl Default for FairnessConfig {
    fn default() -> Self {
        FairnessConfig {
            slack_pct: 25,
            base_allowance: 2,
        }
    }
}

impl FairnessConfig {
    /// Checks the tuning is usable.
    ///
    /// # Panics
    ///
    /// Panics on a slack above 1000% (at that point the policy is
    /// inert and almost certainly a typo).
    pub fn validate(&self) {
        assert!(
            self.slack_pct <= 1000,
            "fairness slack above 1000% disables the policy"
        );
    }
}

/// Overload-layer configuration: offered load, deadlines, watchdog and
/// breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Modelled inter-arrival time: request `i` arrives at
    /// `i × interarrival` (scaled by the workload's arrival ticks
    /// when it carries a traffic model).
    pub interarrival: SimTime,
    /// Deadline derivation.
    pub deadline: DeadlinePolicy,
    /// Stuck-card detection.
    pub watchdog: WatchdogConfig,
    /// Per-shard circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Weighted-fair multi-tenant admission; `None` keeps the legacy
    /// drop-newest behaviour.
    pub fairness: Option<FairnessConfig>,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            interarrival: SimTime::from_us(100),
            deadline: DeadlinePolicy::Percentile {
                pct: 95.0,
                multiplier: 8.0,
            },
            watchdog: WatchdogConfig::default(),
            breaker: BreakerConfig::default(),
            fairness: None,
        }
    }
}

impl OverloadConfig {
    /// Checks every sub-config.
    ///
    /// # Panics
    ///
    /// Panics if any sub-config is invalid.
    pub fn validate(&self) {
        self.deadline.validate();
        self.watchdog.validate();
        self.breaker.validate();
        if let Some(f) = &self.fairness {
            f.validate();
        }
    }
}

/// Overload-layer counters, merged across shards into
/// [`EngineResult`](crate::EngineResult).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Jobs submitted to the engine.
    pub submitted: u64,
    /// Jobs that completed in time with a verified output.
    pub completed: u64,
    /// Jobs shed at admission (their deadline had already passed
    /// before service could start).
    pub shed: u64,
    /// Jobs served whose completion overran their deadline (output
    /// dropped).
    pub deadline_missed: u64,
    /// Jobs that failed with an unrecoverable fault.
    pub faulted: u64,
    /// Jobs dropped at submission because their tenant's hard quota
    /// was exhausted (never enqueued).
    pub quota_exceeded: u64,
    /// Sheds decided by the weighted-fair policy (the tenant ran
    /// ahead of its share), a sub-population of `shed`.
    pub fair_shed: u64,
    /// Configuration-port stalls injected and consumed.
    pub stalls_injected: u64,
    /// Slow PCI transfers injected and consumed.
    pub slow_transfers_injected: u64,
    /// Stuck-card events injected (each triggers a watchdog reset).
    pub stuck_injected: u64,
    /// Latency faults scheduled but never consumed (e.g. a stall
    /// scheduled onto a residency hit, or a fault on a shed job).
    pub latency_inert: u64,
    /// Watchdog resets performed (in-flight work re-run).
    pub watchdog_resets: u64,
    /// Closed→open breaker trips across all shards.
    pub breaker_trips: u64,
    /// Jobs bounced by an open breaker before redistribution.
    pub breaker_rejections: u64,
    /// Bounced jobs re-served on a healthy shard.
    pub redistributed: u64,
    /// Half-open probes admitted across all shards.
    pub probes: u64,
    /// Modelled time burned on stalls, slowdowns, stuck detection and
    /// re-runs.
    pub wasted_time: SimTime,
}

impl OverloadStats {
    /// Job conservation: every submitted job ends in exactly one
    /// terminal state.
    pub fn accounted(&self) -> bool {
        self.shed + self.deadline_missed + self.completed + self.faulted + self.quota_exceeded
            == self.submitted
            && self.fair_shed <= self.shed
    }

    /// Fraction of submitted jobs that completed in time — the
    /// goodput ratio against offered load.
    pub fn goodput(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.completed as f64 / self.submitted as f64
        }
    }

    /// Fraction of submitted jobs shed at admission.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }

    /// Accumulates another shard's counters into this one.
    pub fn merge(&mut self, other: &OverloadStats) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.shed += other.shed;
        self.deadline_missed += other.deadline_missed;
        self.faulted += other.faulted;
        self.quota_exceeded += other.quota_exceeded;
        self.fair_shed += other.fair_shed;
        self.stalls_injected += other.stalls_injected;
        self.slow_transfers_injected += other.slow_transfers_injected;
        self.stuck_injected += other.stuck_injected;
        self.latency_inert += other.latency_inert;
        self.watchdog_resets += other.watchdog_resets;
        self.breaker_trips += other.breaker_trips;
        self.breaker_rejections += other.breaker_rejections;
        self.redistributed += other.redistributed;
        self.probes += other.probes;
        self.wasted_time += other.wasted_time;
    }
}

/// Per-tenant outcome totals for a multi-tenant overload run,
/// computed by the engine after serving from the per-job outcome maps
/// and the workload's tenant tags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant's index in the workload's spec list.
    pub tenant: u16,
    /// The tenant's name as carried by its spec.
    pub name: String,
    /// Admission weight from the spec.
    pub weight: u32,
    /// Jobs the tenant submitted.
    pub submitted: u64,
    /// Jobs that completed in time.
    pub completed: u64,
    /// Jobs shed at admission (deadline-passed and fair sheds alike).
    pub shed: u64,
    /// Jobs served past their deadline.
    pub deadline_missed: u64,
    /// Jobs lost to unrecoverable faults.
    pub faulted: u64,
    /// Jobs dropped by the tenant's hard quota.
    pub quota_exceeded: u64,
}

impl TenantStats {
    /// Job conservation within the tenant.
    pub fn accounted(&self) -> bool {
        self.completed + self.shed + self.deadline_missed + self.faulted + self.quota_exceeded
            == self.submitted
    }

    /// The tenant's goodput ratio.
    pub fn goodput(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.completed as f64 / self.submitted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_defaults_validate() {
        let f = FairnessConfig::default();
        f.validate();
        assert_eq!(f.slack_pct, 25);
        assert_eq!(f.base_allowance, 2);
        let mut oc = OverloadConfig::default();
        assert!(oc.fairness.is_none());
        oc.fairness = Some(f);
        oc.validate();
    }

    #[test]
    #[should_panic(expected = "disables the policy")]
    fn absurd_slack_panics() {
        FairnessConfig {
            slack_pct: 1001,
            base_allowance: 0,
        }
        .validate();
    }

    #[test]
    fn accounted_covers_quota_and_fair_shed() {
        let s = OverloadStats {
            submitted: 12,
            completed: 6,
            shed: 3,
            fair_shed: 2,
            deadline_missed: 1,
            faulted: 1,
            quota_exceeded: 1,
            ..OverloadStats::default()
        };
        assert!(s.accounted());
        // fair sheds are a sub-population of sheds, never extra mass
        let leaky = OverloadStats { fair_shed: 4, ..s };
        assert!(!leaky.accounted());
    }

    #[test]
    fn tenant_stats_conserve() {
        let t = TenantStats {
            tenant: 1,
            name: "flood".into(),
            weight: 1,
            submitted: 10,
            completed: 4,
            shed: 3,
            deadline_missed: 1,
            faulted: 0,
            quota_exceeded: 2,
        };
        assert!(t.accounted());
        assert_eq!(t.goodput(), 0.4);
        assert_eq!(TenantStats::default().goodput(), 0.0);
    }

    #[test]
    fn watchdog_timeout_is_heartbeat_times_beats() {
        let w = WatchdogConfig {
            heartbeat: SimTime::from_us(250),
            missed_beats: 4,
        };
        assert_eq!(w.timeout(), SimTime::from_ms(1));
    }

    #[test]
    fn accounted_holds_for_balanced_counters() {
        let s = OverloadStats {
            submitted: 10,
            completed: 6,
            shed: 2,
            deadline_missed: 1,
            faulted: 1,
            ..OverloadStats::default()
        };
        assert!(s.accounted());
        assert_eq!(s.goodput(), 0.6);
        assert_eq!(s.shed_rate(), 0.2);
    }

    #[test]
    fn accounted_rejects_leaked_jobs() {
        let s = OverloadStats {
            submitted: 10,
            completed: 6,
            shed: 2,
            ..OverloadStats::default()
        };
        assert!(!s.accounted());
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = OverloadStats {
            submitted: 3,
            completed: 2,
            shed: 1,
            wasted_time: SimTime::from_us(5),
            ..OverloadStats::default()
        };
        let b = OverloadStats {
            submitted: 4,
            completed: 4,
            watchdog_resets: 2,
            wasted_time: SimTime::from_us(3),
            ..OverloadStats::default()
        };
        a.merge(&b);
        assert_eq!(a.submitted, 7);
        assert_eq!(a.completed, 6);
        assert_eq!(a.watchdog_resets, 2);
        assert_eq!(a.wasted_time, SimTime::from_us(8));
        assert!(a.accounted());
    }

    #[test]
    fn goodput_handles_empty() {
        assert_eq!(OverloadStats::default().goodput(), 0.0);
        assert!(OverloadStats::default().accounted());
    }

    #[test]
    #[should_panic(expected = "deadline budget must be non-zero")]
    fn zero_absolute_deadline_panics() {
        DeadlinePolicy::Absolute(SimTime::ZERO).validate();
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn out_of_range_percentile_panics() {
        DeadlinePolicy::Percentile {
            pct: 150.0,
            multiplier: 2.0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "heartbeat must be non-zero")]
    fn zero_heartbeat_panics() {
        WatchdogConfig {
            heartbeat: SimTime::ZERO,
            missed_beats: 1,
        }
        .validate();
    }
}

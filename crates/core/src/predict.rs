//! Online predictive scheduling model (extension; ROADMAP item 5).
//!
//! The offline planner ([`crate::dispatch`]) sees the whole workload
//! before dealing a single job. This module is the *online* variant:
//! a deterministic per-algorithm model fed one arrival at a time, a
//! pure function of the submitted id sequence — no wall-clock, no
//! thread timing, no queue-depth sampling. Two consumers share it:
//!
//! * **Engine shards** observe their own (deterministic) batch
//!   sequence and speculatively pre-configure the predicted next
//!   algorithm in the idle window after each batch
//!   ([`aaod_mcu::MiniOs::prefetch_hint`]), extending the E9
//!   single-card Markov prefetcher to the whole pool.
//! * **The cluster router** observes the global submission stream and
//!   replicates a hot algorithm to another card only after its
//!   popularity crosses an upper threshold, de-replicating only below
//!   a lower one (hysteresis), with a refractory period after each
//!   flip so a `flash_crowd` burst cannot make the placement
//!   oscillate. The pattern follows the ADPS activity-aware
//!   controller (hysteresis + refractory safeguards).
//!
//! Everything is integer arithmetic in fixed point ([`POP_SCALE`]),
//! and every tie breaks toward the smaller algorithm id, so the same
//! arrival stream always yields the same decisions on every platform.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};

/// Fixed-point scale of the popularity EWMA (`1.0` ≡ `POP_SCALE`).
pub const POP_SCALE: u64 = 1 << 16;

/// Tuning knobs for the online model. All decisions downstream of a
/// config are pure functions of (config, arrival sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictConfig {
    /// EWMA decay shift: each arrival decays every algorithm's
    /// popularity by `p >> ewma_shift` before crediting the arrived
    /// one with [`POP_SCALE`]. Steady state for an algorithm drawn
    /// with probability `f` is `f · POP_SCALE · 2^ewma_shift`, so the
    /// thresholds below are expressed in units of
    /// `POP_SCALE · 2^ewma_shift` ≈ "fraction of the stream".
    pub ewma_shift: u32,
    /// Replicate when popularity rises *above* this (fixed point).
    pub hot_up: u64,
    /// De-replicate when popularity falls *below* this (fixed point).
    /// Must be `< hot_up`; the gap is the hysteresis band.
    pub cold_down: u64,
    /// Minimum number of arrivals between two flips of the *same*
    /// algorithm (refractory period, in observations).
    pub refractory: u64,
}

impl Default for PredictConfig {
    /// Defaults tuned for the E19/E20 mixes: with `ewma_shift = 3`
    /// the steady-state popularity of a fraction-`f` algorithm is
    /// `8f · POP_SCALE`, so `hot_up = 4·POP_SCALE` trips when an
    /// algorithm sustains ≳ 50 % of the stream (the flash-crowd hot
    /// id reaches ≈ 7.2) and `cold_down = 2·POP_SCALE` releases it
    /// once it falls back under ≳ 25 %.
    fn default() -> Self {
        PredictConfig {
            ewma_shift: 3,
            hot_up: 4 * POP_SCALE,
            cold_down: 2 * POP_SCALE,
            refractory: 64,
        }
    }
}

/// Direction of a hysteresis flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flip {
    /// Popularity crossed [`PredictConfig::hot_up`]: add a replica.
    Replicate,
    /// Popularity fell below [`PredictConfig::cold_down`]: drop one.
    Dereplicate,
}

/// One replication decision, in submission order. `at` is the arrival
/// index (number of observations made when the flip fired), so a
/// recorded sequence pins the *logical* schedule independent of
/// modelled time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlipRecord {
    /// Arrival index at which the flip fired.
    pub at: u64,
    /// The algorithm whose replica count changed.
    pub algo: u16,
    /// Which way it flipped.
    pub kind: Flip,
}

/// First-order transition counts plus a decayed popularity EWMA over
/// the arrival stream. Deterministic: `BTreeMap` iteration order and
/// smaller-id tie-breaks only.
#[derive(Debug, Clone, Default)]
pub struct PredictModel {
    /// `transitions[a][b]` = times `b` immediately followed `a`.
    transitions: BTreeMap<u16, BTreeMap<u16, u64>>,
    /// Previously observed algorithm, if any.
    last: Option<u16>,
    /// Fixed-point popularity per algorithm (see [`POP_SCALE`]).
    popularity: BTreeMap<u16, u64>,
    /// Total arrivals observed.
    observed: u64,
    ewma_shift: u32,
}

impl PredictModel {
    /// An empty model with the given decay shift.
    pub fn new(ewma_shift: u32) -> Self {
        PredictModel {
            ewma_shift,
            ..PredictModel::default()
        }
    }

    /// Feeds one arrival: records the transition from the previous
    /// arrival, decays every algorithm's popularity and credits the
    /// arrived one.
    pub fn observe(&mut self, algo: u16) {
        if let Some(prev) = self.last {
            *self
                .transitions
                .entry(prev)
                .or_default()
                .entry(algo)
                .or_insert(0) += 1;
        }
        for p in self.popularity.values_mut() {
            *p -= *p >> self.ewma_shift;
        }
        *self.popularity.entry(algo).or_insert(0) += POP_SCALE;
        self.last = Some(algo);
        self.observed += 1;
    }

    /// The most likely successor of the last observed arrival
    /// (highest transition count, ties to the smaller id).
    pub fn predict(&self) -> Option<u16> {
        self.predict_after(self.last?)
    }

    /// The most likely successor of `algo`, if any transition from it
    /// has been observed.
    pub fn predict_after(&self, algo: u16) -> Option<u16> {
        self.transitions
            .get(&algo)?
            .iter()
            .max_by_key(|&(id, count)| (*count, Reverse(*id)))
            .map(|(&id, _)| id)
    }

    /// Current fixed-point popularity of `algo`.
    pub fn popularity(&self, algo: u16) -> u64 {
        self.popularity.get(&algo).copied().unwrap_or(0)
    }

    /// Every algorithm the model has seen, with its popularity,
    /// in ascending id order.
    pub fn popularities(&self) -> impl Iterator<Item = (u16, u64)> + '_ {
        self.popularity.iter().map(|(&a, &p)| (a, p))
    }

    /// Total arrivals observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }
}

/// Hysteresis + refractory gate over a [`PredictModel`]'s popularity:
/// tracks which algorithms are currently replicated and emits
/// [`FlipRecord`]s only when a threshold is crossed *and* the
/// algorithm is outside its refractory window.
#[derive(Debug, Clone)]
pub struct HysteresisGate {
    cfg: PredictConfig,
    /// Algorithms currently in the replicated (hot) state.
    replicated: BTreeSet<u16>,
    /// Arrival index of each algorithm's most recent flip.
    last_flip: BTreeMap<u16, u64>,
    /// Every flip emitted, in submission order.
    flips: Vec<FlipRecord>,
}

impl HysteresisGate {
    /// A gate with no algorithm replicated.
    pub fn new(cfg: PredictConfig) -> Self {
        HysteresisGate {
            cfg,
            replicated: BTreeSet::new(),
            last_flip: BTreeMap::new(),
            flips: Vec::new(),
        }
    }

    /// Evaluates every tracked algorithm against the thresholds at
    /// arrival index `at` and returns the flips that fire (ascending
    /// algorithm id). An algorithm whose last flip was fewer than
    /// [`PredictConfig::refractory`] arrivals ago is skipped even if
    /// its popularity has crossed a threshold.
    pub fn decide(&mut self, at: u64, model: &PredictModel) -> Vec<FlipRecord> {
        let mut fired = Vec::new();
        for (algo, pop) in model.popularities() {
            if let Some(&prev) = self.last_flip.get(&algo) {
                if at.saturating_sub(prev) < self.cfg.refractory {
                    continue;
                }
            }
            let hot = self.replicated.contains(&algo);
            let kind = if !hot && pop >= self.cfg.hot_up {
                Flip::Replicate
            } else if hot && pop <= self.cfg.cold_down {
                Flip::Dereplicate
            } else {
                continue;
            };
            match kind {
                Flip::Replicate => {
                    self.replicated.insert(algo);
                }
                Flip::Dereplicate => {
                    self.replicated.remove(&algo);
                }
            }
            self.last_flip.insert(algo, at);
            let rec = FlipRecord { at, algo, kind };
            self.flips.push(rec);
            fired.push(rec);
        }
        fired
    }

    /// Whether `algo` is currently in the replicated state.
    pub fn is_replicated(&self, algo: u16) -> bool {
        self.replicated.contains(&algo)
    }

    /// Every flip emitted so far, in submission order.
    pub fn flips(&self) -> &[FlipRecord] {
        &self.flips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_predict_most_frequent_successor() {
        let mut m = PredictModel::new(3);
        for algo in [1u16, 2, 1, 2, 1, 3, 1, 2] {
            m.observe(algo);
        }
        // After 1 we saw 2 three times and 3 once.
        assert_eq!(m.predict_after(1), Some(2));
        // Last arrival was 2; 2 was always followed by 1.
        assert_eq!(m.predict(), Some(1));
        assert_eq!(m.predict_after(4), None);
    }

    #[test]
    fn prediction_ties_break_to_smaller_id() {
        let mut m = PredictModel::new(3);
        for algo in [5u16, 9, 5, 3, 5] {
            m.observe(algo);
        }
        // 5 → 9 once and 5 → 3 once: the tie goes to 3.
        assert_eq!(m.predict_after(5), Some(3));
    }

    #[test]
    fn popularity_converges_to_scaled_fraction() {
        let mut m = PredictModel::new(3);
        // Algorithm 7 takes the whole stream: steady state is
        // POP_SCALE · 2^3 = 8·POP_SCALE.
        for _ in 0..500 {
            m.observe(7);
        }
        let p = m.popularity(7);
        assert!(
            p > 7 * POP_SCALE && p <= 8 * POP_SCALE,
            "popularity {p} not near 8·POP_SCALE"
        );
        assert_eq!(m.popularity(8), 0);
    }

    #[test]
    fn observe_is_deterministic() {
        let stream: Vec<u16> = (0..200).map(|i| (i * 7 % 5) as u16).collect();
        let mut a = PredictModel::new(3);
        let mut b = PredictModel::new(3);
        for &s in &stream {
            a.observe(s);
            b.observe(s);
        }
        assert_eq!(a.predict(), b.predict());
        for algo in 0..5 {
            assert_eq!(a.popularity(algo), b.popularity(algo));
        }
    }

    #[test]
    fn gate_hysteresis_and_refractory() {
        let cfg = PredictConfig {
            ewma_shift: 3,
            hot_up: 4 * POP_SCALE,
            cold_down: 2 * POP_SCALE,
            refractory: 50,
        };
        let mut m = PredictModel::new(cfg.ewma_shift);
        let mut gate = HysteresisGate::new(cfg);
        let mut at = 0u64;
        // Hot burst: algo 1 dominates. The gate should replicate once
        // and then hold through the refractory window.
        for _ in 0..200 {
            m.observe(1);
            at += 1;
            gate.decide(at, &m);
        }
        assert!(gate.is_replicated(1));
        // Cold tail: algo 1 disappears; popularity decays below
        // cold_down and the gate de-replicates exactly once.
        for _ in 0..200 {
            m.observe(2);
            at += 1;
            gate.decide(at, &m);
        }
        assert!(!gate.is_replicated(1));
        let ones: Vec<&FlipRecord> = gate.flips().iter().filter(|f| f.algo == 1).collect();
        assert_eq!(ones.len(), 2, "expected exactly one flip each way");
        assert_eq!(ones[0].kind, Flip::Replicate);
        assert_eq!(ones[1].kind, Flip::Dereplicate);
        // Refractory: consecutive flips of one algorithm are spaced.
        for w in gate.flips().windows(2) {
            if w[0].algo == w[1].algo {
                assert!(
                    w[1].at - w[0].at >= cfg.refractory,
                    "flip inside refractory window: {w:?}"
                );
            }
        }
    }

    #[test]
    fn gate_does_not_oscillate_at_threshold() {
        // Alternating stream that hovers near the thresholds: without
        // hysteresis this would flip every few arrivals.
        let cfg = PredictConfig::default();
        let mut m = PredictModel::new(cfg.ewma_shift);
        let mut gate = HysteresisGate::new(cfg);
        for i in 0..1000u64 {
            m.observe((i % 2) as u16);
            gate.decide(i + 1, &m);
        }
        // 50/50 split sits at 4·POP_SCALE steady state — at most one
        // flip per algorithm, never a flap.
        for algo in 0..2 {
            let n = gate.flips().iter().filter(|f| f.algo == algo).count();
            assert!(n <= 1, "algo {algo} flapped {n} times");
        }
    }
}

//! Fleet-level placement and health-checked routing for the
//! multi-card cluster.
//!
//! The router is the second level of the dispatch hierarchy: PR 5's
//! calibrated cost model balanced *shards inside one engine*; here the
//! same model (one calibration pass on a scratch card, estimates
//! scaled along each kernel's shape curve) balances *cards inside a
//! fleet*. Placement decides which cards hold which algorithms — hot
//! algorithms (modelled weight above a fleet-fair share) are
//! replicated, cold ones stay resident on a single card. Routing then
//! walks the request stream in submission order against per-card
//! virtual clocks, per-card [`CircuitBreaker`]s and the seeded
//! [`CardTimeline`]s, producing a deterministic [`Route`] per job:
//! failover with bounded retries and exponential modelled backoff when
//! a card is down or quarantined at dispatch, a hedged re-dispatch
//! when a card dies mid-service, and typed degradation when every
//! replica is unreachable.
//!
//! The routing walk processes jobs in submission order, so breaker
//! state mutations happen in *processing* order even where their
//! modelled timestamps interleave; the schedule is deterministic
//! either way. Cluster-shard trace timestamps are clamped monotone to
//! keep the per-shard ordering invariant of the trace layer.

use std::collections::{BTreeMap, BTreeSet};

use aaod_algos::AlgorithmBank;
use aaod_sim::trace::EventKind;
use aaod_sim::{CardTimeline, SimTime};
use aaod_workload::Workload;

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::dispatch::{estimate, AlgoCost};
use crate::predict::{Flip, FlipRecord, HysteresisGate, PredictConfig, PredictModel};

/// Exponent cap for the failover backoff doubling, so the modelled
/// wait never overflows picoseconds.
const BACKOFF_EXP_CAP: u32 = 16;

/// Which cards hold which algorithms after placement.
#[derive(Debug, Clone)]
pub(crate) struct Placement {
    /// Sorted algorithm residency per card.
    pub(crate) residency: Vec<Vec<u16>>,
    /// Replica cards per algorithm, sorted by card id.
    pub(crate) replicas: BTreeMap<u16, Vec<u32>>,
}

/// Residency planning: hot algorithms (estimated weight above the
/// fleet-fair share `total / cards`) get `replication` replicas, cold
/// algorithms one; replicas go to the least-loaded card (ties by
/// lowest id) that does not already hold the algorithm.
pub(crate) fn place(
    workload: &Workload,
    bank: &AlgorithmBank,
    costs: &BTreeMap<u16, AlgoCost>,
    cards: usize,
    replication: usize,
) -> Placement {
    let mut weight: BTreeMap<u16, u64> = BTreeMap::new();
    for req in workload.requests() {
        let w = costs
            .get(&req.algo_id)
            .map(|c| estimate(c, bank, req.algo_id, req.input_len))
            .unwrap_or(1);
        *weight.entry(req.algo_id).or_insert(0) += w.max(1);
    }
    let total: u64 = weight.values().sum();
    let fair = total / cards as u64;

    // Heaviest first so the greedy fill packs the big rocks before
    // the gravel; ties broken by id for determinism.
    let mut order: Vec<(u16, u64)> = weight.iter().map(|(&a, &w)| (a, w)).collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut load = vec![0u64; cards];
    let mut residency: Vec<BTreeSet<u16>> = vec![BTreeSet::new(); cards];
    let mut replicas: BTreeMap<u16, Vec<u32>> = BTreeMap::new();
    for (algo, w) in order {
        let copies = if w > fair { replication.min(cards) } else { 1 };
        let share = w / copies as u64;
        for _ in 0..copies {
            let card = (0..cards)
                .filter(|&c| !residency[c].contains(&algo))
                .min_by_key(|&c| (load[c], c))
                .expect("replication bounded by card count");
            residency[card].insert(algo);
            load[card] += share.max(1);
            replicas.entry(algo).or_default().push(card as u32);
        }
        replicas
            .get_mut(&algo)
            .expect("just inserted")
            .sort_unstable();
    }
    Placement {
        residency: residency
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect(),
        replicas,
    }
}

/// Routing-time tuning knobs, split off [`ClusterConfig`] so the walk
/// does not depend on execution-phase settings.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RouteParams {
    /// Modelled gap between consecutive job arrivals.
    pub(crate) interarrival: SimTime,
    /// Per-job latency budget from arrival; `None` disables deadline
    /// accounting entirely.
    pub(crate) deadline: Option<SimTime>,
    /// Redirections (failovers + hedges) allowed per job.
    pub(crate) max_failovers: u32,
    /// Base modelled backoff; redirection `k` waits `backoff * 2^(k-1)`.
    pub(crate) backoff: SimTime,
    /// Health-check breaker applied to every card.
    pub(crate) breaker: BreakerConfig,
    /// Online predictive replication (see [`crate::predict`]): when
    /// set, the walk feeds the submission stream into a popularity
    /// model and replicates/de-replicates algorithms through a
    /// hysteresis + refractory gate instead of trusting the offline
    /// placement's replica counts. `None` keeps the static placement.
    pub(crate) predict: Option<PredictConfig>,
}

/// Where one job ended up after the routing walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Route {
    /// Served to completion; exactly one surviving result.
    Completed {
        /// The winning card.
        card: u32,
        /// Modelled arrival time.
        arrival: SimTime,
        /// Modelled completion time on the winning card.
        finish: SimTime,
    },
    /// Dropped before dispatch: backoff pushed the earliest possible
    /// start past the deadline.
    Shed {
        /// The absolute deadline the job carried.
        deadline: SimTime,
        /// When the router gave up admitting it.
        decided_at: SimTime,
    },
    /// Served, but the surviving result landed past the deadline; the
    /// output is dropped and the card's clock stays charged.
    DeadlineMissed {
        /// The card that finished it late.
        card: u32,
        /// The absolute deadline the job carried.
        deadline: SimTime,
        /// The late completion time.
        finish: SimTime,
    },
    /// Stranded on a dead card with no replica to hedge onto.
    Lost {
        /// The card the job died with.
        card: u32,
        /// When that card went dark.
        lost_at: SimTime,
    },
    /// Every replica was down or quarantined at dispatch time.
    Unroutable {
        /// Redirections spent before giving up.
        attempts: u32,
        /// When the router gave up.
        decided_at: SimTime,
    },
}

/// Everything the routing walk decides, for the execution phase and
/// the ledger.
#[derive(Debug)]
pub(crate) struct RouteOutcome {
    /// Per-job route, submission order.
    pub(crate) routes: Vec<Route>,
    /// Per-card health breakers, final state and timelines.
    pub(crate) breakers: Vec<CircuitBreaker>,
    /// Pre-dispatch redirections (card down or quarantined).
    pub(crate) failovers: u64,
    /// Mid-service redirections (card died under the job).
    pub(crate) hedges: u64,
    /// Jobs where more than one run completed; dedup kept the winner.
    pub(crate) hedge_duplicates: u64,
    /// Modelled time burnt on aborted partial runs and losing
    /// duplicate runs.
    pub(crate) wasted_time: SimTime,
    /// Cluster-shard trace events (failover/hedge/replicate/evict),
    /// timestamps clamped monotone.
    pub(crate) events: Vec<(SimTime, EventKind)>,
    /// Latest modelled completion across all cards.
    pub(crate) makespan: SimTime,
    /// Online replication flips in submission order (empty unless
    /// [`RouteParams::predict`] is set).
    pub(crate) flips: Vec<FlipRecord>,
}

/// Walks the request stream in submission order and routes every job.
pub(crate) fn route(
    workload: &Workload,
    bank: &AlgorithmBank,
    costs: &BTreeMap<u16, AlgoCost>,
    placement: &Placement,
    timelines: &[CardTimeline],
    params: &RouteParams,
) -> RouteOutcome {
    let cards = timelines.len();
    let mut clocks = vec![SimTime::ZERO; cards];
    let mut breakers: Vec<CircuitBreaker> = (0..cards)
        .map(|_| CircuitBreaker::new(params.breaker))
        .collect();
    let mut routes = Vec::with_capacity(workload.len());
    let mut failovers = 0u64;
    let mut hedges = 0u64;
    let mut hedge_duplicates = 0u64;
    let mut wasted = SimTime::ZERO;
    let mut events: Vec<(SimTime, EventKind)> = Vec::new();
    let mut last_ts = SimTime::ZERO;
    let mut makespan = SimTime::ZERO;

    // Online predictive replication: the walk maintains a *live* copy
    // of the replica map and lets the hysteresis gate grow or shrink
    // it as the popularity model digests the stream. All decisions
    // are pure functions of the submission sequence, so routing stays
    // deterministic; execution correctness is unaffected because each
    // card later installs exactly the algorithms of the jobs routed
    // to it.
    let mut online = params.predict.map(|cfg| {
        (
            PredictModel::new(cfg.ewma_shift),
            HysteresisGate::new(cfg),
            placement.replicas.clone(),
        )
    });
    let mut flips: Vec<FlipRecord> = Vec::new();

    for (i, req) in workload.requests().iter().enumerate() {
        let arrival = params.interarrival * i as u64;
        if let Some((model, gate, live)) = &mut online {
            model.observe(req.algo_id);
            for flip in gate.decide((i + 1) as u64, model) {
                apply_flip(
                    flip,
                    live,
                    &clocks,
                    &mut events,
                    &mut last_ts,
                    arrival,
                    &mut flips,
                );
            }
        }
        let svc = SimTime::from_ps(
            costs
                .get(&req.algo_id)
                .map(|c| estimate(c, bank, req.algo_id, req.input_len))
                .unwrap_or(1)
                .max(1),
        );
        let replicas = online
            .as_ref()
            .map(|(_, _, live)| live)
            .unwrap_or(&placement.replicas)
            .get(&req.algo_id)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let deadline_abs = params.deadline.map(|d| arrival + d);

        let mut tried: BTreeSet<u32> = BTreeSet::new();
        let mut attempts = 0u32;
        // Earliest completion among stranded runs whose card recovers
        // (the delayed original of a hedge), and how many such
        // completions exist.
        let mut recovered: Option<(SimTime, u32)> = None;
        let mut recovered_runs = 0u64;
        // The most recent mid-service stranding, for the `CardLost`
        // degradation when nothing survives.
        let mut last_strand: Option<(SimTime, u32)> = None;
        let route;

        'job: loop {
            let candidate = replicas
                .iter()
                .copied()
                .filter(|c| !tried.contains(c))
                .min_by_key(|&c| (clocks[c as usize], c));
            // Modelled dispatch time: arrival plus the accumulated
            // exponential backoff of every redirection so far.
            let mut now = arrival;
            let mut wait = params.backoff.as_ps();
            for _ in 0..attempts.min(BACKOFF_EXP_CAP) {
                now += SimTime::from_ps(wait);
                wait = wait.saturating_mul(2);
            }
            let next_of = |tried: &BTreeSet<u32>, clocks: &[SimTime], skip: u32| {
                replicas
                    .iter()
                    .copied()
                    .filter(|&c| c != skip && !tried.contains(&c))
                    .min_by_key(|&c| (clocks[c as usize], c))
                    .unwrap_or(skip)
            };
            let Some(card) = candidate else {
                // No untried replica left: degrade to whatever a
                // recovered original can still deliver.
                route = finish_or_lose(
                    recovered,
                    recovered_runs,
                    &mut hedge_duplicates,
                    &mut wasted,
                    svc,
                    arrival,
                    deadline_abs,
                    &mut clocks,
                    attempts,
                    now,
                    last_strand,
                );
                break 'job;
            };
            if attempts > params.max_failovers {
                route = finish_or_lose(
                    recovered,
                    recovered_runs,
                    &mut hedge_duplicates,
                    &mut wasted,
                    svc,
                    arrival,
                    deadline_abs,
                    &mut clocks,
                    attempts,
                    now,
                    last_strand,
                );
                break 'job;
            }
            if let Some(d) = deadline_abs {
                if now >= d {
                    route = Route::Shed {
                        deadline: d,
                        decided_at: now,
                    };
                    break 'job;
                }
            }
            tried.insert(card);
            let c = card as usize;
            if !breakers[c].allow(now) {
                // Quarantined: the breaker counted the rejection.
                failovers += 1;
                attempts += 1;
                let to = next_of(&tried, &clocks, card);
                push_event(
                    &mut events,
                    &mut last_ts,
                    now,
                    EventKind::Failover {
                        job: i as u64,
                        algo: req.algo_id,
                        from: card,
                        to,
                    },
                );
                continue 'job;
            }
            if !timelines[c].is_up(now) {
                breakers[c].record_failure(now);
                failovers += 1;
                attempts += 1;
                let to = next_of(&tried, &clocks, card);
                push_event(
                    &mut events,
                    &mut last_ts,
                    now,
                    EventKind::Failover {
                        job: i as u64,
                        algo: req.algo_id,
                        from: card,
                        to,
                    },
                );
                continue 'job;
            }
            let start = now.max(clocks[c]);
            let finish = start + svc;
            if let Some(down) = timelines[c].next_down(start) {
                if down < finish {
                    // The card dies under the job: abort the partial
                    // run, hedge onto the next replica. If the card
                    // recovers, the original restarts after the
                    // outage and may still win the dedup race.
                    breakers[c].record_failure(down);
                    hedges += 1;
                    attempts += 1;
                    last_strand = Some((down, card));
                    wasted += down.saturating_sub(start);
                    if let Some(up) = timelines[c].next_up(down) {
                        let refinish = up + svc;
                        recovered_runs += 1;
                        if recovered.is_none_or(|(f, rc)| (refinish, card) < (f, rc)) {
                            recovered = Some((refinish, card));
                        }
                    }
                    let to = next_of(&tried, &clocks, card);
                    push_event(
                        &mut events,
                        &mut last_ts,
                        down,
                        EventKind::Hedge {
                            job: i as u64,
                            algo: req.algo_id,
                            from: card,
                            to,
                        },
                    );
                    continue 'job;
                }
            }
            // The run completes on this card. Dedup against any
            // recovered original: earliest finish wins, ties to the
            // lowest card id; every losing completed run is a
            // duplicate whose service time was wasted.
            breakers[c].record_success();
            let (win_finish, win_card) = match recovered {
                Some((rf, rc)) if (rf, rc) < (finish, card) => {
                    // The recovered original beats the hedge.
                    wasted += svc;
                    hedge_duplicates += 1;
                    clocks[c] = finish;
                    clocks[rc as usize] = clocks[rc as usize].max(rf);
                    (rf, rc)
                }
                Some((rf, rc)) => {
                    wasted += svc * recovered_runs;
                    hedge_duplicates += recovered_runs;
                    clocks[c] = finish;
                    clocks[rc as usize] = clocks[rc as usize].max(rf);
                    (finish, card)
                }
                None => {
                    clocks[c] = finish;
                    (finish, card)
                }
            };
            route = match deadline_abs {
                Some(d) if win_finish > d => Route::DeadlineMissed {
                    card: win_card,
                    deadline: d,
                    finish: win_finish,
                },
                _ => Route::Completed {
                    card: win_card,
                    arrival,
                    finish: win_finish,
                },
            };
            break 'job;
        }
        if let Route::Completed { finish, .. } | Route::DeadlineMissed { finish, .. } = route {
            makespan = makespan.max(finish);
        }
        routes.push(route);
    }
    for &c in &clocks {
        makespan = makespan.max(c);
    }
    RouteOutcome {
        routes,
        breakers,
        failovers,
        hedges,
        hedge_duplicates,
        wasted_time: wasted,
        events,
        makespan,
        flips,
    }
}

/// Applies one hysteresis flip to the live replica map.
///
/// * [`Flip::Replicate`] adds a copy on the least-loaded card (by
///   virtual clock, ties to the lowest id) not already holding the
///   algorithm — the same tie-break the placement's greedy fill uses.
/// * [`Flip::Dereplicate`] removes the copy on the most-loaded holder
///   (highest clock, ties to the highest id), but never the last one:
///   an algorithm always keeps at least one card.
///
/// Both directions emit a cluster-shard trace event stamped at the
/// triggering job's arrival (clamped monotone like every router
/// event).
fn apply_flip(
    flip: FlipRecord,
    live: &mut BTreeMap<u16, Vec<u32>>,
    clocks: &[SimTime],
    events: &mut Vec<(SimTime, EventKind)>,
    last_ts: &mut SimTime,
    arrival: SimTime,
    flips: &mut Vec<FlipRecord>,
) {
    match flip.kind {
        Flip::Replicate => {
            let holders = live.entry(flip.algo).or_default();
            let target = (0..clocks.len() as u32)
                .filter(|c| !holders.contains(c))
                .min_by_key(|&c| (clocks[c as usize], c));
            let Some(card) = target else {
                return; // every card already holds it
            };
            holders.push(card);
            holders.sort_unstable();
            push_event(
                events,
                last_ts,
                arrival,
                EventKind::Replicate {
                    algo: flip.algo,
                    card,
                },
            );
            flips.push(flip);
        }
        Flip::Dereplicate => {
            let Some(holders) = live.get_mut(&flip.algo) else {
                return;
            };
            if holders.len() < 2 {
                return; // never drop the last copy
            }
            let (k, &card) = holders
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| (clocks[c as usize], c))
                .expect("holders checked non-empty");
            holders.remove(k);
            push_event(
                events,
                last_ts,
                arrival,
                EventKind::Evict {
                    algo: flip.algo,
                    card,
                },
            );
            flips.push(flip);
        }
    }
}

/// Terminal fallback once no untried replica remains (or the
/// redirection budget is spent): a recovered original can still
/// complete the job; otherwise it degrades to `Lost` (it was stranded
/// mid-service) or `Unroutable` (it never started).
#[allow(clippy::too_many_arguments)]
fn finish_or_lose(
    recovered: Option<(SimTime, u32)>,
    recovered_runs: u64,
    hedge_duplicates: &mut u64,
    wasted: &mut SimTime,
    svc: SimTime,
    arrival: SimTime,
    deadline_abs: Option<SimTime>,
    clocks: &mut [SimTime],
    attempts: u32,
    now: SimTime,
    last_strand: Option<(SimTime, u32)>,
) -> Route {
    if let Some((finish, card)) = recovered {
        // The earliest recovered run survives; any further recovered
        // duplicates are deduplicated away.
        let extra = recovered_runs.saturating_sub(1);
        *hedge_duplicates += extra;
        *wasted += svc * extra;
        clocks[card as usize] = clocks[card as usize].max(finish);
        return match deadline_abs {
            Some(d) if finish > d => Route::DeadlineMissed {
                card,
                deadline: d,
                finish,
            },
            _ => Route::Completed {
                card,
                arrival,
                finish,
            },
        };
    }
    match last_strand {
        // The job died with a card mid-service and nothing survived.
        Some((lost_at, card)) => Route::Lost { card, lost_at },
        // It never started anywhere: every replica was down or
        // quarantined at dispatch time.
        None => Route::Unroutable {
            attempts,
            decided_at: now,
        },
    }
}

/// Appends a cluster-shard event with its timestamp clamped monotone
/// (the walk emits in processing order, not time order).
fn push_event(
    events: &mut Vec<(SimTime, EventKind)>,
    last_ts: &mut SimTime,
    ts: SimTime,
    kind: EventKind,
) {
    let ts = ts.max(*last_ts);
    *last_ts = ts;
    events.push((ts, kind));
}

//! Workload runner: drives any executor through a request stream and
//! produces comparable summaries (the rows of every experiment table).

use crate::baselines::{FixedFunctionCoProcessor, SoftwareExecutor};
use crate::coproc::CoProcessor;
use crate::engine::trace_clean_job;
use crate::error::CoreError;
use aaod_sim::stats::TimeAccumulator;
use aaod_sim::trace::{TraceConfig, TraceLevel, TraceReport, Tracer};
use aaod_sim::SimTime;
use aaod_workload::Workload;

/// Anything that can service `(algo, input) -> (output, time)`
/// requests: the agile co-processor, the full-reconfig variant, the
/// fixed-function card or the software host.
pub trait Executor {
    /// A short name for result tables.
    fn name(&self) -> String;

    /// Services one request.
    ///
    /// # Errors
    ///
    /// Propagates the underlying system's errors.
    fn run(&mut self, algo_id: u16, input: &[u8]) -> Result<(Vec<u8>, SimTime), CoreError>;

    /// `(hits, misses, evictions)` if the executor has a residency
    /// cache; `None` for stateless executors.
    fn cache_stats(&self) -> Option<(u64, u64, u64)> {
        None
    }

    /// `(decoded_hits, decoded_misses, decoded_bytes_saved)` if the
    /// executor keeps a decoded-bitstream cache; `None` otherwise.
    fn decoded_stats(&self) -> Option<(u64, u64, u64)> {
        None
    }

    /// `(scrubs, scrub_repairs, redownloads)` if the executor can
    /// recover from configuration or ROM corruption; `None` otherwise.
    fn recovery_stats(&self) -> Option<(u64, u64, u64)> {
        None
    }
}

impl Executor for CoProcessor {
    fn name(&self) -> String {
        format!("agile({})", self.os().policy_name())
    }

    fn run(&mut self, algo_id: u16, input: &[u8]) -> Result<(Vec<u8>, SimTime), CoreError> {
        let (out, report) = self.invoke(algo_id, input)?;
        Ok((out, report.total()))
    }

    fn cache_stats(&self) -> Option<(u64, u64, u64)> {
        let s = self.stats();
        Some((s.hits, s.misses, s.evictions))
    }

    fn decoded_stats(&self) -> Option<(u64, u64, u64)> {
        let s = self.stats();
        Some((s.decoded_hits, s.decoded_misses, s.decoded_bytes_saved))
    }

    fn recovery_stats(&self) -> Option<(u64, u64, u64)> {
        let s = self.stats();
        Some((s.scrubs, s.scrub_repairs, s.redownloads))
    }
}

impl Executor for SoftwareExecutor {
    fn name(&self) -> String {
        "software".into()
    }

    fn run(&mut self, algo_id: u16, input: &[u8]) -> Result<(Vec<u8>, SimTime), CoreError> {
        self.invoke(algo_id, input)
    }
}

impl Executor for FixedFunctionCoProcessor {
    fn name(&self) -> String {
        format!("fixed({})", self.fixed_algo())
    }

    fn run(&mut self, algo_id: u16, input: &[u8]) -> Result<(Vec<u8>, SimTime), CoreError> {
        self.invoke(algo_id, input)
    }
}

/// The outcome of one workload run on one executor.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Executor name.
    pub executor: String,
    /// Workload name.
    pub workload: String,
    /// Requests serviced.
    pub requests: usize,
    /// Input bytes processed.
    pub input_bytes: u64,
    /// Total modelled service time.
    pub total_time: SimTime,
    /// Per-request latency distribution (nanoseconds).
    pub latency: TimeAccumulator,
    /// Residency hits, if the executor caches functions.
    pub hits: Option<u64>,
    /// Residency misses, if applicable.
    pub misses: Option<u64>,
    /// Evictions, if applicable.
    pub evictions: Option<u64>,
    /// Decoded-bitstream cache hits, if the executor keeps one.
    pub decoded_hits: Option<u64>,
    /// Decoded-bitstream cache misses, if applicable.
    pub decoded_misses: Option<u64>,
    /// Decompressed bytes the decoded cache avoided producing.
    pub decoded_bytes_saved: Option<u64>,
    /// Readback-scrub passes run during the workload, if the executor
    /// supports corruption recovery.
    pub scrubs: Option<u64>,
    /// Functions repaired from ROM by scrubbing, if applicable.
    pub scrub_repairs: Option<u64>,
    /// Corrupt ROM images re-downloaded afresh, if applicable.
    pub redownloads: Option<u64>,
    /// The run's trace (only populated by [`run_workload_traced`] at a
    /// level above [`TraceLevel::Off`]).
    pub trace: Option<TraceReport>,
}

impl RunResult {
    /// Hit rate, if the executor caches functions.
    pub fn hit_rate(&self) -> Option<f64> {
        match (self.hits, self.misses) {
            (Some(h), Some(m)) if h + m > 0 => Some(h as f64 / (h + m) as f64),
            _ => None,
        }
    }

    /// Mean service time per request.
    pub fn mean_latency(&self) -> SimTime {
        if self.requests == 0 {
            SimTime::ZERO
        } else {
            self.total_time / self.requests as u64
        }
    }

    /// Fraction of misses whose decoded frames were already cached,
    /// if the executor keeps a decoded-bitstream cache and saw a miss.
    pub fn decoded_hit_rate(&self) -> Option<f64> {
        match (self.decoded_hits, self.decoded_misses) {
            (Some(h), Some(m)) if h + m > 0 => Some(h as f64 / (h + m) as f64),
            _ => None,
        }
    }

    /// Modelled throughput in input megabytes per simulated second.
    pub fn throughput_mb_s(&self) -> f64 {
        if self.total_time.is_zero() {
            0.0
        } else {
            self.input_bytes as f64 / 1e6 / self.total_time.as_secs()
        }
    }
}

/// Drives `executor` through every request of `workload`.
///
/// When `verify` is set, each hardware output is checked against the
/// golden software model (slow; used by tests and examples, skipped in
/// timing sweeps).
///
/// # Errors
///
/// Propagates executor errors and reports
/// [`CoreError::OutputMismatch`] on a verification failure.
pub fn run_workload(
    executor: &mut dyn Executor,
    workload: &Workload,
    verify: bool,
) -> Result<RunResult, CoreError> {
    let golden = aaod_algos::AlgorithmBank::standard();
    let cache_before = executor.cache_stats();
    let decoded_before = executor.decoded_stats();
    let recovery_before = executor.recovery_stats();
    let mut latency = TimeAccumulator::new();
    let mut input_bytes = 0u64;
    for (i, req) in workload.requests().iter().enumerate() {
        let input = workload.input(i);
        input_bytes += input.len() as u64;
        let (output, t) = executor.run(req.algo_id, &input)?;
        latency.push(t);
        if verify {
            let expected = golden
                .execute_software(req.algo_id, &input)
                .map_err(CoreError::Algo)?;
            if output != expected {
                return Err(CoreError::OutputMismatch {
                    algo_id: req.algo_id,
                    index: i,
                });
            }
        }
    }
    let cache_after = executor.cache_stats();
    let decoded_after = executor.decoded_stats();
    let recovery_after = executor.recovery_stats();
    fn deltas(
        before: &Option<(u64, u64, u64)>,
        after: &Option<(u64, u64, u64)>,
        f: fn(&(u64, u64, u64)) -> u64,
    ) -> Option<u64> {
        match (before, after) {
            (Some(b), Some(a)) => Some(f(a) - f(b)),
            (None, Some(a)) => Some(f(a)),
            _ => None,
        }
    }
    let delta = |f: fn(&(u64, u64, u64)) -> u64| deltas(&cache_before, &cache_after, f);
    let decoded = |f: fn(&(u64, u64, u64)) -> u64| deltas(&decoded_before, &decoded_after, f);
    let recovery = |f: fn(&(u64, u64, u64)) -> u64| deltas(&recovery_before, &recovery_after, f);
    Ok(RunResult {
        executor: executor.name(),
        workload: workload.name().to_string(),
        requests: workload.len(),
        input_bytes,
        total_time: latency.total(),
        hits: delta(|s| s.0),
        misses: delta(|s| s.1),
        evictions: delta(|s| s.2),
        decoded_hits: decoded(|s| s.0),
        decoded_misses: decoded(|s| s.1),
        decoded_bytes_saved: decoded(|s| s.2),
        scrubs: recovery(|s| s.0),
        scrub_repairs: recovery(|s| s.1),
        redownloads: recovery(|s| s.2),
        latency,
        trace: None,
    })
}

/// [`run_workload`] on a [`CoProcessor`] with the observability layer
/// on: every request gets a full stage-span tree laid on a serial
/// modelled clock, component details are attributed to the job that
/// produced them, and the assembled [`TraceReport`] rides on the
/// result. Tracing only observes durations — the timing fields are
/// identical to an untraced run.
///
/// # Errors
///
/// Propagates executor errors and reports
/// [`CoreError::OutputMismatch`] on a verification failure.
pub fn run_workload_traced(
    cp: &mut CoProcessor,
    workload: &Workload,
    verify: bool,
    trace: TraceConfig,
) -> Result<RunResult, CoreError> {
    let golden = aaod_algos::AlgorithmBank::standard();
    let mut tracer = Tracer::new(trace, 0);
    let mut details_buf: Vec<aaod_sim::DetailEvent> = Vec::new();
    if tracer.enabled() {
        cp.set_trace(true);
        // bring-up details left over from installs predate the run
        cp.take_details_into(&mut details_buf);
        tracer.details(SimTime::ZERO, &details_buf);
    }
    let cache_before = cp.cache_stats();
    let decoded_before = cp.decoded_stats();
    let recovery_before = cp.recovery_stats();
    let mut latency = TimeAccumulator::new();
    let mut input_bytes = 0u64;
    let mut cursor = SimTime::ZERO;
    for (i, req) in workload.requests().iter().enumerate() {
        let input = workload.input(i);
        input_bytes += input.len() as u64;
        let (output, report) = cp.invoke(req.algo_id, &input)?;
        if tracer.enabled() {
            cp.take_details_into(&mut details_buf);
            tracer.details(cursor, &details_buf);
            cursor = trace_clean_job(&mut tracer, cursor, i, req.algo_id, &report);
        }
        latency.push(report.total());
        if verify {
            let expected = golden
                .execute_software(req.algo_id, &input)
                .map_err(CoreError::Algo)?;
            if output != expected {
                return Err(CoreError::OutputMismatch {
                    algo_id: req.algo_id,
                    index: i,
                });
            }
        }
    }
    let sub = |before: Option<(u64, u64, u64)>,
               after: Option<(u64, u64, u64)>,
               f: fn(&(u64, u64, u64)) -> u64| {
        match (before, after) {
            (Some(b), Some(a)) => Some(f(&a) - f(&b)),
            (None, Some(a)) => Some(f(&a)),
            _ => None,
        }
    };
    let cache_after = cp.cache_stats();
    let decoded_after = cp.decoded_stats();
    let recovery_after = cp.recovery_stats();
    let report =
        (trace.level != TraceLevel::Off).then(|| TraceReport::assemble(vec![tracer.finish()]));
    Ok(RunResult {
        executor: cp.name(),
        workload: workload.name().to_string(),
        requests: workload.len(),
        input_bytes,
        total_time: latency.total(),
        hits: sub(cache_before, cache_after, |s| s.0),
        misses: sub(cache_before, cache_after, |s| s.1),
        evictions: sub(cache_before, cache_after, |s| s.2),
        decoded_hits: sub(decoded_before, decoded_after, |s| s.0),
        decoded_misses: sub(decoded_before, decoded_after, |s| s.1),
        decoded_bytes_saved: sub(decoded_before, decoded_after, |s| s.2),
        scrubs: sub(recovery_before, recovery_after, |s| s.0),
        scrub_repairs: sub(recovery_before, recovery_after, |s| s.1),
        redownloads: sub(recovery_before, recovery_after, |s| s.2),
        latency,
        trace: report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaod_algos::ids;
    use aaod_workload::mixes;

    fn installed_coproc(algos: &[u16]) -> CoProcessor {
        let mut cp = CoProcessor::default();
        for &id in algos {
            cp.install(id).unwrap();
        }
        cp
    }

    #[test]
    fn run_verified_workload_on_coproc() {
        let algos = [ids::CRC32, ids::SHA1, ids::PARITY8];
        let mut cp = installed_coproc(&algos);
        let w = Workload::uniform(&algos, 30, 64, 7);
        let r = run_workload(&mut cp, &w, true).unwrap();
        assert_eq!(r.requests, 30);
        assert_eq!(r.hits.unwrap() + r.misses.unwrap(), 30);
        assert!(r.total_time > SimTime::ZERO);
        assert!(r.hit_rate().unwrap() > 0.5, "small set should mostly hit");
        assert_eq!(r.scrubs, Some(0), "no corruption, no scrubbing");
        assert_eq!(r.scrub_repairs, Some(0));
        assert_eq!(r.redownloads, Some(0));
    }

    #[test]
    fn run_on_software_has_no_cache_stats() {
        let mut sw = SoftwareExecutor::new();
        let w = Workload::round_robin(&mixes::crypto_mix(), 10, 64);
        let r = run_workload(&mut sw, &w, true).unwrap();
        assert!(r.hits.is_none());
        assert!(r.hit_rate().is_none());
        assert_eq!(r.requests, 10);
        assert!(r.throughput_mb_s() > 0.0);
        assert!(r.scrubs.is_none(), "software has nothing to scrub");
        assert!(r.redownloads.is_none());
    }

    #[test]
    fn mismatch_detected_when_frames_corrupted() {
        let mut cp = installed_coproc(&[ids::POPCNT8]);
        // make it resident, then corrupt a truth-table byte so decode
        // still succeeds structurally... the digest protects us, so
        // instead verify that the runner propagates the fabric error.
        cp.invoke(ids::POPCNT8, &[1]).unwrap();
        let frames = cp.os().table().get(ids::POPCNT8).unwrap().frames.clone();
        let mut bytes = cp.os().device().read_frame(frames[0]).unwrap().to_vec();
        bytes[60] ^= 0xFF;
        cp.os_mut()
            .device_mut()
            .write_frame(frames[0], &bytes)
            .unwrap();
        let w = Workload::from_trace([ids::POPCNT8], 16);
        let err = run_workload(&mut cp, &w, true).unwrap_err();
        assert!(matches!(err, CoreError::Mcu(_)), "{err}");
    }

    #[test]
    fn decoded_stats_surface_in_result() {
        // Hit-after-eviction behaviour is covered in aaod-mcu; this
        // only asserts the counters flow through the runner.
        let mut cp = installed_coproc(&[ids::CRC32]);
        let w = Workload::from_trace([ids::CRC32, ids::CRC32], 16);
        let r = run_workload(&mut cp, &w, true).unwrap();
        assert_eq!(r.decoded_hits, Some(0));
        assert_eq!(r.decoded_misses, Some(1));
        assert!(r.decoded_bytes_saved.is_some());
        assert_eq!(r.decoded_hit_rate(), Some(0.0));

        let mut sw = SoftwareExecutor::new();
        let r = run_workload(&mut sw, &w, true).unwrap();
        assert!(r.decoded_hits.is_none());
        assert!(r.decoded_hit_rate().is_none());
    }

    #[test]
    fn mean_latency_and_empty_run() {
        let mut sw = SoftwareExecutor::new();
        let w = Workload::from_trace(std::iter::empty::<u16>(), 8);
        let r = run_workload(&mut sw, &w, false).unwrap();
        assert_eq!(r.mean_latency(), SimTime::ZERO);
        assert_eq!(r.throughput_mb_s(), 0.0);
    }

    /// The traced runner's timing and cache fields must match the
    /// untraced runner exactly — tracing only observes durations.
    #[test]
    fn traced_run_matches_untraced_timing() {
        let algos = [ids::CRC32, ids::SHA1, ids::PARITY8];
        let w = Workload::uniform(&algos, 30, 64, 7);
        let base = run_workload(&mut installed_coproc(&algos), &w, true).unwrap();
        let traced =
            run_workload_traced(&mut installed_coproc(&algos), &w, true, TraceConfig::full())
                .unwrap();
        assert_eq!(traced.total_time, base.total_time);
        assert_eq!(traced.hits, base.hits);
        assert_eq!(traced.misses, base.misses);
        assert_eq!(traced.decoded_hits, base.decoded_hits);
        assert_eq!(traced.decoded_misses, base.decoded_misses);
        assert!(traced.trace.is_some());
        assert!(base.trace.is_none());
        let off = run_workload_traced(&mut installed_coproc(&algos), &w, true, TraceConfig::off())
            .unwrap();
        assert!(off.trace.is_none(), "Off level must not build a report");
        assert_eq!(off.total_time, base.total_time);
    }

    /// The serial trace is a single monotone stream whose stage spans
    /// partition the total modelled time and whose counters reconcile
    /// with the runner's own cache deltas.
    #[test]
    fn traced_run_spans_partition_total_time() {
        let algos = [ids::CRC32, ids::SHA1, ids::XTEA];
        let mut cp = installed_coproc(&algos);
        let w = Workload::zipf(&algos, 40, 1.1, 48, 5);
        let r = run_workload_traced(&mut cp, &w, true, TraceConfig::full()).unwrap();
        let t = r.trace.as_ref().unwrap();
        let c = &t.metrics.counters;
        assert_eq!(c.jobs_opened, 40);
        assert_eq!(c.jobs_completed, 40);
        assert_eq!(c.residency_hits, r.hits.unwrap());
        assert_eq!(c.residency_misses, r.misses.unwrap());
        assert_eq!(c.decoded_hits, r.decoded_hits.unwrap());
        // bring-up installs decode too, so only the delta must match
        assert!(c.decoded_misses >= r.decoded_misses.unwrap());
        let staged: SimTime = t
            .metrics
            .stage_time
            .values()
            .map(|h| h.total())
            .fold(SimTime::ZERO, |a, b| a + b);
        assert_eq!(staged, r.total_time);
        let mut last = SimTime::ZERO;
        for e in &t.events {
            assert_eq!(e.shard, 0, "serial runner uses one shard");
            assert!(e.ts >= last, "time went backwards at seq {}", e.seq);
            last = e.ts;
        }
        // Determinism: a fresh identical run exports identical bytes.
        let again =
            run_workload_traced(&mut installed_coproc(&algos), &w, true, TraceConfig::full())
                .unwrap();
        assert_eq!(
            again.trace.as_ref().unwrap().to_jsonl(),
            t.to_jsonl(),
            "same (workload, config) must trace identically"
        );
    }
}

//! A dependency-free, criterion-compatible benchmark harness.
//!
//! The experiment benches were written against the small slice of the
//! `criterion` API below (`Criterion::default().sample_size(..)`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros). Pulling the real crate
//! from crates.io is impossible in hermetic/offline build environments,
//! so this crate provides the same surface with a simple wall-clock
//! sampler: per benchmark it warms up, picks an iteration count that
//! fills one sample, takes `sample_size` samples, and prints
//! mean/min/max nanoseconds per iteration.
//!
//! When invoked with a `--test` argument (as `cargo test` does for
//! `harness = false` bench targets) each benchmark body runs exactly
//! once, keeping the test suite fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Runs one benchmark body repeatedly and records the elapsed time.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Times `iters` calls of `f` (or a single call in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let iters = if self.test_mode { 1 } else { self.iters.max(1) };
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// Sampling configuration, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget for one benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let header = id.as_ref().to_owned();
        self.run_one(&header, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, label: &str, mut f: F) {
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
                test_mode: true,
            };
            f(&mut b);
            println!("bench {label}: ok (test mode, 1 iteration)");
            return;
        }
        // Warm-up: also estimates the cost of one iteration.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            test_mode: false,
        };
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut warm_elapsed = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut b);
            warm_iters += b.iters;
            warm_elapsed += b.elapsed;
        }
        let per_iter = if warm_iters > 0 && !warm_elapsed.is_zero() {
            warm_elapsed.as_secs_f64() / warm_iters as f64
        } else {
            1e-6
        };
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((sample_budget / per_iter) as u64).max(1);
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters_per_sample;
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples_ns.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "bench {label}: mean {mean:.0} ns/iter (min {min:.0}, max {max:.0}, \
             {n} samples x {iters_per_sample} iters)",
            n = samples_ns.len(),
        );
    }

    /// Called by [`criterion_main!`] after all groups ran.
    pub fn final_summary(&self) {}
}

/// A named collection of benchmarks sharing one [`Criterion`] config.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.as_ref());
        self.criterion.run_one(&label, f);
        self
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(self) {}
}

/// Re-export of [`std::hint::black_box`], as the real crate provides.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closure_and_counts() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
            test_mode: false,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
        assert_eq!(b.iters, 5);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.test_mode = false;
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("f", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut calls = 0u64;
        c.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }
}

//! The configuration port: the timed write path into the device.
//!
//! Modelled on the Virtex-II SelectMAP interface: `width` bytes are
//! accepted per configuration-clock cycle, with a fixed per-frame
//! overhead for the frame-address setup and a larger one-off overhead
//! for a full-device reconfiguration (house-cleaning, CRC reset).
//! All mutation of the device by higher layers goes through this port
//! so configuration time is always accounted.

use crate::device::Device;
use crate::error::FabricError;
use crate::geometry::{DeviceGeometry, FrameAddress};
use aaod_sim::{Clock, SimTime};

/// A timed configuration interface to a [`Device`].
///
/// # Examples
///
/// ```
/// use aaod_fabric::{ConfigPort, Device, DeviceGeometry, FrameAddress};
///
/// let geom = DeviceGeometry::new(8, 2);
/// let mut dev = Device::new(geom);
/// let port = ConfigPort::selectmap8();
/// let frame = vec![1u8; geom.frame_bytes()];
/// let t = port.write_frame(&mut dev, FrameAddress(0), &frame).unwrap();
/// assert!(t.as_ns() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigPort {
    clock: Clock,
    width_bytes: u64,
    frame_overhead_cycles: u64,
    full_overhead_cycles: u64,
}

impl ConfigPort {
    /// A SelectMAP-style 8-bit port at the 50 MHz configuration clock.
    pub fn selectmap8() -> Self {
        ConfigPort {
            clock: aaod_sim::clock::domains::mcu(),
            width_bytes: 1,
            frame_overhead_cycles: 6,
            full_overhead_cycles: 1200,
        }
    }

    /// Creates a port with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `width_bytes` is zero.
    pub fn new(
        clock: Clock,
        width_bytes: u64,
        frame_overhead_cycles: u64,
        full_overhead_cycles: u64,
    ) -> Self {
        assert!(width_bytes > 0, "port width must be non-zero");
        ConfigPort {
            clock,
            width_bytes,
            frame_overhead_cycles,
            full_overhead_cycles,
        }
    }

    /// The port's clock domain.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Cycles to shift in one frame of `geom`.
    pub fn frame_cycles(&self, geom: DeviceGeometry) -> u64 {
        (geom.frame_bytes() as u64).div_ceil(self.width_bytes) + self.frame_overhead_cycles
    }

    /// Time to write `n` frames of `geom` (partial reconfiguration).
    pub fn frames_time(&self, geom: DeviceGeometry, n: usize) -> SimTime {
        self.clock.cycles(self.frame_cycles(geom) * n as u64)
    }

    /// Time for a full-device reconfiguration of `geom`.
    pub fn full_time(&self, geom: DeviceGeometry) -> SimTime {
        self.clock
            .cycles(self.frame_cycles(geom) * geom.frames() as u64 + self.full_overhead_cycles)
    }

    /// Writes one frame through the port, returning the time taken.
    ///
    /// # Errors
    ///
    /// Propagates [`Device::write_frame`] errors.
    pub fn write_frame(
        &self,
        device: &mut Device,
        addr: FrameAddress,
        bytes: &[u8],
    ) -> Result<SimTime, FabricError> {
        device.write_frame(addr, bytes)?;
        Ok(self.clock.cycles(self.frame_cycles(device.geometry())))
    }

    /// Erases one frame, at the same cost as writing it.
    ///
    /// # Errors
    ///
    /// Propagates [`Device::clear_frame`] errors.
    pub fn clear_frame(
        &self,
        device: &mut Device,
        addr: FrameAddress,
    ) -> Result<SimTime, FabricError> {
        device.clear_frame(addr)?;
        Ok(self.clock.cycles(self.frame_cycles(device.geometry())))
    }

    /// Performs a full reconfiguration, returning the (much larger)
    /// time taken.
    ///
    /// # Errors
    ///
    /// Propagates [`Device::full_configure`] errors.
    pub fn full_configure(
        &self,
        device: &mut Device,
        frames: &[Vec<u8>],
    ) -> Result<SimTime, FabricError> {
        device.full_configure(frames)?;
        Ok(self.full_time(device.geometry()))
    }
}

impl Default for ConfigPort {
    fn default() -> Self {
        ConfigPort::selectmap8()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_time_scales_with_size() {
        let port = ConfigPort::selectmap8();
        let small = DeviceGeometry::new(4, 1);
        let large = DeviceGeometry::new(4, 8);
        assert!(port.frames_time(large, 1) > port.frames_time(small, 1));
        assert_eq!(
            port.frames_time(small, 4).as_ps(),
            port.frames_time(small, 1).as_ps() * 4
        );
    }

    #[test]
    fn full_config_costs_more_than_all_frames() {
        let port = ConfigPort::selectmap8();
        let geom = DeviceGeometry::new(16, 4);
        assert!(port.full_time(geom) > port.frames_time(geom, geom.frames()));
    }

    #[test]
    fn wide_port_is_faster() {
        let clock = aaod_sim::clock::domains::mcu();
        let narrow = ConfigPort::new(clock, 1, 6, 0);
        let wide = ConfigPort::new(clock, 4, 6, 0);
        let geom = DeviceGeometry::new(4, 8);
        assert!(wide.frames_time(geom, 1) < narrow.frames_time(geom, 1));
    }

    #[test]
    fn write_frame_mutates_and_times() {
        let geom = DeviceGeometry::new(4, 1);
        let mut dev = Device::new(geom);
        let port = ConfigPort::selectmap8();
        let t = port
            .write_frame(&mut dev, FrameAddress(2), &vec![9; geom.frame_bytes()])
            .unwrap();
        assert_eq!(t, port.frames_time(geom, 1));
        assert_eq!(dev.read_frame(FrameAddress(2)).unwrap()[0], 9);
    }

    #[test]
    fn errors_propagate_without_timing() {
        let geom = DeviceGeometry::new(4, 1);
        let mut dev = Device::new(geom);
        let port = ConfigPort::selectmap8();
        assert!(port.write_frame(&mut dev, FrameAddress(9), &[]).is_err());
    }

    #[test]
    #[should_panic(expected = "width must be non-zero")]
    fn zero_width_panics() {
        let _ = ConfigPort::new(aaod_sim::clock::domains::mcu(), 0, 0, 0);
    }
}

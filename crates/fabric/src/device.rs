//! The configurable device: a configuration plane of frames.
//!
//! [`Device`] stores the raw configuration bytes of every frame and
//! counts configuration traffic. It deliberately knows nothing about
//! which algorithm owns which frame — that bookkeeping (free-frame
//! list, replacement table) belongs to the microcontroller's mini-OS,
//! as in the paper.

use crate::error::FabricError;
use crate::geometry::{DeviceGeometry, FrameAddress};
use crate::image::FunctionImage;

/// A partially reconfigurable device's configuration plane.
///
/// # Examples
///
/// ```
/// use aaod_fabric::{Device, DeviceGeometry, FrameAddress};
///
/// let geom = DeviceGeometry::new(8, 2);
/// let mut dev = Device::new(geom);
/// let frame = vec![0xAB; geom.frame_bytes()];
/// dev.write_frame(FrameAddress(5), &frame).unwrap();
/// assert_eq!(dev.read_frame(FrameAddress(5)).unwrap(), &frame[..]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    geometry: DeviceGeometry,
    frames: Vec<Vec<u8>>,
    frame_writes: u64,
    full_configs: u64,
}

impl Device {
    /// Creates a blank (all-zero) device.
    pub fn new(geometry: DeviceGeometry) -> Self {
        let fb = geometry.frame_bytes();
        Device {
            geometry,
            frames: vec![vec![0u8; fb]; geometry.frames()],
            frame_writes: 0,
            full_configs: 0,
        }
    }

    /// The device's geometry.
    pub fn geometry(&self) -> DeviceGeometry {
        self.geometry
    }

    /// Writes one frame (partial reconfiguration). Only the addressed
    /// frame changes; all others are untouched (paper §2.4).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::FrameOutOfRange`] or
    /// [`FabricError::FrameSizeMismatch`].
    pub fn write_frame(&mut self, addr: FrameAddress, bytes: &[u8]) -> Result<(), FabricError> {
        self.geometry.check(addr)?;
        if bytes.len() != self.geometry.frame_bytes() {
            return Err(FabricError::FrameSizeMismatch {
                got: bytes.len(),
                expected: self.geometry.frame_bytes(),
            });
        }
        self.frames[addr.index()].copy_from_slice(bytes);
        self.frame_writes += 1;
        Ok(())
    }

    /// Reads one frame's configuration bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::FrameOutOfRange`].
    pub fn read_frame(&self, addr: FrameAddress) -> Result<&[u8], FabricError> {
        self.geometry.check(addr)?;
        Ok(&self.frames[addr.index()])
    }

    /// Zeroes one frame (the mini-OS erases evicted functions).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::FrameOutOfRange`].
    pub fn clear_frame(&mut self, addr: FrameAddress) -> Result<(), FabricError> {
        self.geometry.check(addr)?;
        self.frames[addr.index()].fill(0);
        self.frame_writes += 1;
        Ok(())
    }

    /// Full (non-partial) reconfiguration: every frame is erased before
    /// the new frames are written starting at frame 0. This is the
    /// baseline behaviour of a device *without* partial
    /// reconfigurability.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::CapacityExceeded`] if more frames are
    /// supplied than the device has, or
    /// [`FabricError::FrameSizeMismatch`] for wrong-sized frames.
    pub fn full_configure(&mut self, frames: &[Vec<u8>]) -> Result<(), FabricError> {
        if frames.len() > self.geometry.frames() {
            return Err(FabricError::CapacityExceeded {
                what: "frames",
                needed: frames.len(),
                available: self.geometry.frames(),
            });
        }
        for frame in frames {
            if frame.len() != self.geometry.frame_bytes() {
                return Err(FabricError::FrameSizeMismatch {
                    got: frame.len(),
                    expected: self.geometry.frame_bytes(),
                });
            }
        }
        for f in &mut self.frames {
            f.fill(0);
        }
        for (i, frame) in frames.iter().enumerate() {
            self.frames[i].copy_from_slice(frame);
        }
        self.full_configs += 1;
        Ok(())
    }

    /// Copies the frames at `addrs` (in order) — the readback path used
    /// to decode a configured function.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::FrameOutOfRange`].
    pub fn read_region(&self, addrs: &[FrameAddress]) -> Result<Vec<Vec<u8>>, FabricError> {
        addrs
            .iter()
            .map(|&a| self.read_frame(a).map(<[u8]>::to_vec))
            .collect()
    }

    /// Decodes the function image configured at `addrs`.
    ///
    /// This is the bit-faithful execution entry point: whatever bytes
    /// are in the frames — including corrupted or half-written ones —
    /// determine the result.
    ///
    /// # Errors
    ///
    /// Propagates address errors and all
    /// [`FunctionImage`] decode errors (bad magic, digest mismatch…).
    pub fn decode_function(&self, addrs: &[FrameAddress]) -> Result<FunctionImage, FabricError> {
        let mut flat = Vec::new();
        self.decode_function_with(addrs, &mut flat)
    }

    /// As [`Device::decode_function`], but concatenates the frame bytes
    /// into the caller-supplied `flat` buffer instead of allocating a
    /// `Vec` per frame — the execution hot path hands the same buffer
    /// back on every decode so readback stays off the allocator.
    ///
    /// # Errors
    ///
    /// As [`Device::decode_function`].
    pub fn decode_function_with(
        &self,
        addrs: &[FrameAddress],
        flat: &mut Vec<u8>,
    ) -> Result<FunctionImage, FabricError> {
        flat.clear();
        flat.reserve(addrs.len() * self.geometry.frame_bytes());
        for &addr in addrs {
            flat.extend_from_slice(self.read_frame(addr)?);
        }
        FunctionImage::from_bytes(flat)
    }

    /// Flips one configuration bit in place — the single-event-upset
    /// injection point used by the fault campaigns. Unlike
    /// [`Device::write_frame`] this does not count as configuration
    /// traffic: an SEU is radiation, not a port transaction.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::FrameOutOfRange`] for a bad address.
    ///
    /// # Panics
    ///
    /// Panics if `byte` is outside the frame or `bit` is not 0–7.
    pub fn flip_bit(
        &mut self,
        addr: FrameAddress,
        byte: usize,
        bit: u8,
    ) -> Result<(), FabricError> {
        self.geometry.check(addr)?;
        assert!(byte < self.geometry.frame_bytes(), "byte offset {byte}");
        assert!(bit < 8, "bit index {bit}");
        self.frames[addr.index()][byte] ^= 1 << bit;
        Ok(())
    }

    /// Number of single-frame writes performed so far.
    pub fn frame_writes(&self) -> u64 {
        self.frame_writes
    }

    /// Number of full reconfigurations performed so far.
    pub fn full_configs(&self) -> u64 {
        self.full_configs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::NetlistMode;
    use crate::netlist::NetlistBuilder;

    fn geom() -> DeviceGeometry {
        DeviceGeometry::new(8, 2)
    }

    #[test]
    fn starts_blank() {
        let dev = Device::new(geom());
        for i in 0..8 {
            assert!(dev
                .read_frame(FrameAddress(i))
                .unwrap()
                .iter()
                .all(|&b| b == 0));
        }
        assert_eq!(dev.frame_writes(), 0);
    }

    #[test]
    fn write_only_touches_addressed_frame() {
        let g = geom();
        let mut dev = Device::new(g);
        let marked = vec![0x5A; g.frame_bytes()];
        dev.write_frame(FrameAddress(3), &marked).unwrap();
        for i in 0..8u16 {
            let frame = dev.read_frame(FrameAddress(i)).unwrap();
            if i == 3 {
                assert_eq!(frame, &marked[..]);
            } else {
                assert!(frame.iter().all(|&b| b == 0), "frame {i} perturbed");
            }
        }
    }

    #[test]
    fn wrong_size_rejected() {
        let mut dev = Device::new(geom());
        assert!(matches!(
            dev.write_frame(FrameAddress(0), &[1, 2, 3]),
            Err(FabricError::FrameSizeMismatch { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let g = geom();
        let mut dev = Device::new(g);
        let frame = vec![0; g.frame_bytes()];
        assert!(matches!(
            dev.write_frame(FrameAddress(8), &frame),
            Err(FabricError::FrameOutOfRange { .. })
        ));
        assert!(dev.read_frame(FrameAddress(100)).is_err());
    }

    #[test]
    fn clear_frame_zeroes() {
        let g = geom();
        let mut dev = Device::new(g);
        dev.write_frame(FrameAddress(1), &vec![0xFF; g.frame_bytes()])
            .unwrap();
        dev.clear_frame(FrameAddress(1)).unwrap();
        assert!(dev
            .read_frame(FrameAddress(1))
            .unwrap()
            .iter()
            .all(|&b| b == 0));
    }

    #[test]
    fn full_configure_erases_everything_first() {
        let g = geom();
        let mut dev = Device::new(g);
        dev.write_frame(FrameAddress(7), &vec![0xEE; g.frame_bytes()])
            .unwrap();
        dev.full_configure(&[vec![0x11; g.frame_bytes()]]).unwrap();
        assert!(dev
            .read_frame(FrameAddress(7))
            .unwrap()
            .iter()
            .all(|&b| b == 0));
        assert_eq!(dev.read_frame(FrameAddress(0)).unwrap()[0], 0x11);
        assert_eq!(dev.full_configs(), 1);
    }

    #[test]
    fn full_configure_capacity_check() {
        let g = geom();
        let mut dev = Device::new(g);
        let frames = vec![vec![0u8; g.frame_bytes()]; 9];
        assert!(matches!(
            dev.full_configure(&frames),
            Err(FabricError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn configured_function_roundtrips_through_device() {
        let g = DeviceGeometry::new(16, 2);
        let mut dev = Device::new(g);
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(8);
        let one = b.one();
        let flipped = b.xor2(ins[7], one);
        b.output_vec(&ins[..7]);
        b.output(flipped);
        let img =
            FunctionImage::from_netlist(5, b.finish().unwrap(), NetlistMode::Combinational, 1, 1);
        let frames = img.encode(g);
        // place non-contiguously: frames 2, 9, 4, ...
        let addrs: Vec<FrameAddress> = [2u16, 9, 4, 11, 6, 13, 0, 15]
            .into_iter()
            .take(frames.len())
            .map(FrameAddress)
            .collect();
        assert!(addrs.len() >= frames.len(), "test geometry too small");
        for (addr, frame) in addrs.iter().zip(&frames) {
            dev.write_frame(*addr, frame).unwrap();
        }
        let decoded = dev.decode_function(&addrs[..frames.len()]).unwrap();
        assert_eq!(decoded.algo_id(), 5);
        let out = decoded.run_netlist(&[0x00]).unwrap();
        assert_eq!(out, vec![0x80]); // bit 7 flipped
    }

    #[test]
    fn flip_bit_is_a_seu_not_a_write() {
        let g = geom();
        let mut dev = Device::new(g);
        dev.flip_bit(FrameAddress(2), 10, 3).unwrap();
        assert_eq!(dev.read_frame(FrameAddress(2)).unwrap()[10], 1 << 3);
        assert_eq!(dev.frame_writes(), 0, "SEU must not count as a write");
        dev.flip_bit(FrameAddress(2), 10, 3).unwrap();
        assert!(dev
            .read_frame(FrameAddress(2))
            .unwrap()
            .iter()
            .all(|&b| b == 0));
        assert!(dev.flip_bit(FrameAddress(99), 0, 0).is_err());
    }

    #[test]
    fn decode_of_blank_region_fails_cleanly() {
        let dev = Device::new(geom());
        let err = dev.decode_function(&[FrameAddress(0)]).unwrap_err();
        assert!(matches!(err, FabricError::ImageDecode(_)));
    }
}

//! FNV-1a integrity digest.
//!
//! Function images store a 64-bit digest over their body so the
//! executor can detect corrupted, torn or stale configuration frames
//! before dispatching a behavioural kernel. FNV-1a is sufficient for
//! fault detection (it is not a cryptographic MAC, and does not need to
//! be: the threat model is configuration-plane corruption, not an
//! adversary).

/// FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Computes the 64-bit FNV-1a digest of `data`.
///
/// # Examples
///
/// ```
/// use aaod_fabric::digest::fnv1a64;
///
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
/// assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
/// ```
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Incremental FNV-1a hasher for digesting data that arrives in chunks
/// (the configuration module streams windows).
///
/// # Examples
///
/// ```
/// use aaod_fabric::digest::{fnv1a64, Fnv1a};
///
/// let mut h = Fnv1a::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finish(), fnv1a64(b"hello world"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Fnv1a { state: OFFSET }
    }

    /// Absorbs a chunk of data.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Returns the digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        for split in [0usize, 1, 17, 128, 255, 256] {
            let mut h = Fnv1a::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), fnv1a64(&data));
        }
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0u8; 64];
        let base = fnv1a64(&data);
        for i in 0..64 {
            data[i] ^= 1;
            assert_ne!(fnv1a64(&data), base, "flip at {i} undetected");
            data[i] ^= 1;
        }
    }
}

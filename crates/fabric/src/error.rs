//! Fabric error type.

use crate::geometry::FrameAddress;
use std::error::Error;
use std::fmt;

/// Errors produced by the fabric model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FabricError {
    /// A frame address beyond the device's frame count.
    FrameOutOfRange {
        /// The offending address.
        addr: FrameAddress,
        /// Number of frames in the device.
        frames: usize,
    },
    /// A frame payload whose length differs from the geometry's frame size.
    FrameSizeMismatch {
        /// Bytes supplied.
        got: usize,
        /// Bytes required by the geometry.
        expected: usize,
    },
    /// A function image could not be decoded from configuration bytes.
    ImageDecode(String),
    /// A function image failed its integrity digest — the configured
    /// bits do not describe a coherent function (e.g. a frame was
    /// corrupted or only partially written).
    DigestMismatch {
        /// Digest stored in the image descriptor.
        stored: u64,
        /// Digest computed over the configured bytes.
        computed: u64,
    },
    /// A netlist failed structural validation.
    NetlistInvalid(String),
    /// A netlist or image too large for the requested resources.
    CapacityExceeded {
        /// Resource that overflowed (e.g. "LUT slots", "frames").
        what: &'static str,
        /// Amount required.
        needed: usize,
        /// Amount available.
        available: usize,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::FrameOutOfRange { addr, frames } => {
                write!(
                    f,
                    "frame address {addr} outside device with {frames} frames"
                )
            }
            FabricError::FrameSizeMismatch { got, expected } => {
                write!(
                    f,
                    "frame payload of {got} bytes, geometry requires {expected}"
                )
            }
            FabricError::ImageDecode(msg) => write!(f, "cannot decode function image: {msg}"),
            FabricError::DigestMismatch { stored, computed } => write!(
                f,
                "image digest mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            FabricError::NetlistInvalid(msg) => write!(f, "invalid netlist: {msg}"),
            FabricError::CapacityExceeded {
                what,
                needed,
                available,
            } => write!(f, "{what} exceeded: need {needed}, have {available}"),
        }
    }
}

impl Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = FabricError::FrameOutOfRange {
            addr: FrameAddress(9),
            frames: 4,
        };
        assert_eq!(
            e.to_string(),
            "frame address F9 outside device with 4 frames"
        );
        let e = FabricError::DigestMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("digest mismatch"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<FabricError>();
    }
}

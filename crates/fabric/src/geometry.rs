//! Device geometry: frames, CLBs and configuration sizes.
//!
//! A frame is the atomic unit of (partial) reconfiguration. Following
//! the paper's footnote — "Frames are a prespecified number of Logic
//! Blocks and the relevant Switch Blocks" — a frame here covers a column
//! of `clbs_per_frame` CLBs. Each CLB contributes a fixed number of
//! configuration bytes ([`CLB_CONFIG_BYTES`]) covering its four 4-input
//! LUTs, flip-flop controls and the adjacent switch-block routing words.

use crate::error::FabricError;
use std::fmt;

/// Configuration bytes per CLB.
///
/// Budget: 4 LUT4 truth tables (2 B each) + 4x4 LUT input-mux routing
/// words (2 B each) + 4 output routing words (2 B each) + FF control
/// byte + 7 reserved bytes = 56 bytes.
pub const CLB_CONFIG_BYTES: usize = 56;

/// Address of a single configuration frame within the device.
///
/// Frame addresses are dense indices `0..geometry.frames()`, mirroring
/// the major/minor frame addressing of real devices flattened to one
/// dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FrameAddress(pub u16);

impl FrameAddress {
    /// The numeric index of this frame.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FrameAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

impl From<u16> for FrameAddress {
    fn from(v: u16) -> Self {
        FrameAddress(v)
    }
}

/// The static shape of a device: how many frames it has and how many
/// CLBs each frame covers.
///
/// # Examples
///
/// ```
/// use aaod_fabric::DeviceGeometry;
///
/// let geom = DeviceGeometry::new(96, 16);
/// assert_eq!(geom.frame_bytes(), 16 * aaod_fabric::CLB_CONFIG_BYTES);
/// assert_eq!(geom.device_bytes(), 96 * geom.frame_bytes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceGeometry {
    frames: u16,
    clbs_per_frame: u16,
}

impl DeviceGeometry {
    /// Creates a geometry with `frames` frames of `clbs_per_frame` CLBs.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(frames: u16, clbs_per_frame: u16) -> Self {
        assert!(frames > 0, "device must have at least one frame");
        assert!(clbs_per_frame > 0, "frame must cover at least one CLB");
        DeviceGeometry {
            frames,
            clbs_per_frame,
        }
    }

    /// A geometry sized like the paper's proof-of-concept device class
    /// (a mid-size Virtex-II): 96 frames of 16 CLBs.
    pub fn virtex_ii_like() -> Self {
        DeviceGeometry::new(96, 16)
    }

    /// Number of frames in the device.
    pub fn frames(&self) -> usize {
        self.frames as usize
    }

    /// CLBs covered by each frame.
    pub fn clbs_per_frame(&self) -> usize {
        self.clbs_per_frame as usize
    }

    /// Configuration bytes in one frame.
    pub fn frame_bytes(&self) -> usize {
        self.clbs_per_frame() * CLB_CONFIG_BYTES
    }

    /// Total configuration bytes in the device.
    pub fn device_bytes(&self) -> usize {
        self.frames() * self.frame_bytes()
    }

    /// Total CLB count.
    pub fn clbs(&self) -> usize {
        self.frames() * self.clbs_per_frame()
    }

    /// Number of frames needed to hold `bytes` of function image.
    pub fn frames_for_bytes(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.frame_bytes()).max(1)
    }

    /// Validates that `addr` is inside the device.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::FrameOutOfRange`] if the address is not a
    /// valid frame index.
    pub fn check(&self, addr: FrameAddress) -> Result<(), FabricError> {
        if addr.index() < self.frames() {
            Ok(())
        } else {
            Err(FabricError::FrameOutOfRange {
                addr,
                frames: self.frames(),
            })
        }
    }
}

impl Default for DeviceGeometry {
    fn default() -> Self {
        DeviceGeometry::virtex_ii_like()
    }
}

impl fmt::Display for DeviceGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} CLB fabric ({} B/frame)",
            self.frames,
            self.clbs_per_frame,
            self.frame_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_multiply_out() {
        let g = DeviceGeometry::new(10, 4);
        assert_eq!(g.frame_bytes(), 4 * CLB_CONFIG_BYTES);
        assert_eq!(g.device_bytes(), 10 * 4 * CLB_CONFIG_BYTES);
        assert_eq!(g.clbs(), 40);
    }

    #[test]
    fn frames_for_bytes_rounds_up() {
        let g = DeviceGeometry::new(10, 1); // 56 B frames
        assert_eq!(g.frames_for_bytes(0), 1);
        assert_eq!(g.frames_for_bytes(1), 1);
        assert_eq!(g.frames_for_bytes(56), 1);
        assert_eq!(g.frames_for_bytes(57), 2);
        assert_eq!(g.frames_for_bytes(112), 2);
    }

    #[test]
    fn check_bounds() {
        let g = DeviceGeometry::new(4, 1);
        assert!(g.check(FrameAddress(3)).is_ok());
        assert!(matches!(
            g.check(FrameAddress(4)),
            Err(FabricError::FrameOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        let _ = DeviceGeometry::new(0, 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(FrameAddress(7).to_string(), "F7");
        let g = DeviceGeometry::new(2, 3);
        assert!(g.to_string().contains("2x3"));
    }

    #[test]
    fn default_is_virtex_like() {
        let g = DeviceGeometry::default();
        assert_eq!(g.frames(), 96);
        assert_eq!(g.clbs_per_frame(), 16);
    }
}

//! Function images: what a configured region's bits *mean*.
//!
//! A [`FunctionImage`] is the serialised form of one co-processor
//! function as it lives in configuration frames. It starts with a fixed
//! descriptor (magic, kind, algorithm id, I/O widths, body length,
//! integrity digest) followed by a body:
//!
//! * **Netlist images** carry a fully serialised LUT netlist. After
//!   configuration the device re-decodes the netlist *from the frame
//!   bytes* and evaluates it — the bits are the behaviour.
//! * **Behavioural images** carry kernel parameters (e.g. an AES key
//!   schedule or FIR coefficients) plus structured filler standing in
//!   for the real LUT/routing data of a large core. The descriptor's
//!   digest covers the whole image, so any frame corruption is detected before
//!   the kernel is dispatched.
//!
//! Images are frame-relocatable: they carry no absolute frame
//! addresses, so the mini-OS may place them in any — possibly
//! non-contiguous — set of free frames, exactly as §2.5 of the paper
//! requires.

use crate::digest::fnv1a64;
use crate::error::FabricError;
use crate::geometry::DeviceGeometry;
use crate::netlist::{bits_to_bytes, bytes_to_bits, Lut, NetId, Netlist};

/// Image magic bytes.
const MAGIC: [u8; 4] = *b"AAOD";
/// Image format version.
const VERSION: u8 = 1;
/// Fixed descriptor length in bytes.
pub const DESCRIPTOR_BYTES: usize = 40;

/// How a netlist image consumes input data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetlistMode {
    /// Blockwise: each `n_inputs/8`-byte chunk of input produces one
    /// `ceil(n_outputs/8)`-byte chunk of output.
    Combinational,
    /// Byte-streaming with feedback: inputs are `8 + n_outputs` bits
    /// (data byte + state); each byte updates the state; the final
    /// state is the output (CRC-style kernels).
    Streaming,
}

impl NetlistMode {
    fn to_byte(self) -> u8 {
        match self {
            NetlistMode::Combinational => 0,
            NetlistMode::Streaming => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, FabricError> {
        match b {
            0 => Ok(NetlistMode::Combinational),
            1 => Ok(NetlistMode::Streaming),
            other => Err(FabricError::ImageDecode(format!(
                "unknown netlist mode {other}"
            ))),
        }
    }
}

/// The decoded payload of a function image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FunctionKind {
    /// A true LUT netlist, evaluable from the configured bits.
    Netlist {
        /// The decoded netlist.
        netlist: Netlist,
        /// Input framing mode.
        mode: NetlistMode,
    },
    /// A behavioural kernel identified by the algorithm id, with its
    /// instantiation parameters.
    Behavioral {
        /// Kernel parameters (key schedule, coefficients, …).
        params: Vec<u8>,
    },
}

/// A function image: descriptor + body, convertible to and from the
/// frame bytes of a configured region.
///
/// # Examples
///
/// ```
/// use aaod_fabric::{DeviceGeometry, FunctionImage, NetlistBuilder, NetlistMode};
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input();
/// let o = b.not(x);
/// b.output(o);
/// let image = FunctionImage::from_netlist(7, b.finish().unwrap(), NetlistMode::Combinational, 1, 1);
/// let geom = DeviceGeometry::new(8, 4);
/// let frames = image.encode(geom);
/// let back = FunctionImage::decode_frames(&frames, geom).unwrap();
/// assert_eq!(back.algo_id(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionImage {
    algo_id: u16,
    input_width: u16,
    output_width: u16,
    kind_byte: u8,
    body: Vec<u8>,
}

impl FunctionImage {
    /// Builds an image around a LUT netlist.
    ///
    /// `input_width` / `output_width` are the data-bus transfer widths
    /// in bytes recorded in the ROM function record (paper §2.2).
    pub fn from_netlist(
        algo_id: u16,
        netlist: Netlist,
        mode: NetlistMode,
        input_width: u16,
        output_width: u16,
    ) -> Self {
        let mut body = Vec::new();
        body.extend_from_slice(&(netlist.n_inputs() as u16).to_le_bytes());
        body.extend_from_slice(&(netlist.n_luts() as u16).to_le_bytes());
        body.extend_from_slice(&(netlist.n_outputs() as u16).to_le_bytes());
        body.push(mode.to_byte());
        body.push(0); // reserved
        for out in netlist.outputs() {
            body.extend_from_slice(&out.0.to_le_bytes());
        }
        for lut in netlist.luts() {
            body.extend_from_slice(&lut.truth.to_le_bytes());
            for inp in lut.inputs {
                body.extend_from_slice(&inp.0.to_le_bytes());
            }
        }
        FunctionImage {
            algo_id,
            input_width,
            output_width,
            kind_byte: 0,
            body,
        }
    }

    /// Builds a behavioural image: `params` instantiate the kernel,
    /// `filler` stands in for the core's LUT/routing configuration
    /// (its statistics drive compression results; its bytes are covered
    /// by the digest).
    pub fn from_behavioral(
        algo_id: u16,
        params: &[u8],
        filler: &[u8],
        input_width: u16,
        output_width: u16,
    ) -> Self {
        let mut body = Vec::with_capacity(2 + params.len() + filler.len());
        body.extend_from_slice(&(params.len() as u16).to_le_bytes());
        body.extend_from_slice(params);
        body.extend_from_slice(filler);
        FunctionImage {
            algo_id,
            input_width,
            output_width,
            kind_byte: 1,
            body,
        }
    }

    /// The algorithm identifier this image implements.
    pub fn algo_id(&self) -> u16 {
        self.algo_id
    }

    /// Data-input transfer width in bytes (paper §2.3: every transfer
    /// is a multiple of this).
    pub fn input_width(&self) -> u16 {
        self.input_width
    }

    /// Output transfer width in bytes.
    pub fn output_width(&self) -> u16 {
        self.output_width
    }

    /// Total serialised length (descriptor + body).
    pub fn total_bytes(&self) -> usize {
        DESCRIPTOR_BYTES + self.body.len()
    }

    /// Number of frames the image occupies under `geom`.
    pub fn frames_needed(&self, geom: DeviceGeometry) -> usize {
        geom.frames_for_bytes(self.total_bytes())
    }

    /// Serialises the image into a flat byte vector
    /// (descriptor + body, no frame padding).
    ///
    /// The digest at descriptor bytes 16..24 covers the *entire*
    /// image — descriptor fields and body — computed with the digest
    /// field itself zeroed, so corruption anywhere in the configured
    /// bytes is detectable.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_bytes());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.kind_byte);
        out.extend_from_slice(&self.algo_id.to_le_bytes());
        out.extend_from_slice(&self.input_width.to_le_bytes());
        out.extend_from_slice(&self.output_width.to_le_bytes());
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        out.extend_from_slice(&[0u8; 8]); // digest placeholder
                                          // 24..40 reserved
        out.extend_from_slice(&[0u8; DESCRIPTOR_BYTES - 24]);
        out.extend_from_slice(&self.body);
        let digest = fnv1a64(&out);
        out[16..24].copy_from_slice(&digest.to_le_bytes());
        out
    }

    /// Serialises into frame-sized chunks for `geom`, zero-padding the
    /// last frame. These are the bytes written through the
    /// configuration port.
    pub fn encode(&self, geom: DeviceGeometry) -> Vec<Vec<u8>> {
        let flat = self.to_bytes();
        let fb = geom.frame_bytes();
        let n = geom.frames_for_bytes(flat.len());
        let mut frames = Vec::with_capacity(n);
        for i in 0..n {
            let start = i * fb;
            let end = (start + fb).min(flat.len());
            let mut frame = vec![0u8; fb];
            if start < flat.len() {
                frame[..end - start].copy_from_slice(&flat[start..end]);
            }
            frames.push(frame);
        }
        frames
    }

    /// Decodes an image from a flat byte buffer (the concatenated
    /// frames of a configured region).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::ImageDecode`] for malformed bytes and
    /// [`FabricError::DigestMismatch`] when the body digest does not
    /// match the descriptor — i.e. the configuration is corrupt or
    /// torn.
    pub fn from_bytes(data: &[u8]) -> Result<Self, FabricError> {
        if data.len() < DESCRIPTOR_BYTES {
            return Err(FabricError::ImageDecode(format!(
                "{} bytes is shorter than the descriptor",
                data.len()
            )));
        }
        if data[0..4] != MAGIC {
            return Err(FabricError::ImageDecode("bad magic".into()));
        }
        if data[4] != VERSION {
            return Err(FabricError::ImageDecode(format!(
                "unsupported version {}",
                data[4]
            )));
        }
        let kind_byte = data[5];
        if kind_byte > 1 {
            return Err(FabricError::ImageDecode(format!(
                "unknown function kind {kind_byte}"
            )));
        }
        let algo_id = u16::from_le_bytes([data[6], data[7]]);
        let input_width = u16::from_le_bytes([data[8], data[9]]);
        let output_width = u16::from_le_bytes([data[10], data[11]]);
        let body_len = u32::from_le_bytes([data[12], data[13], data[14], data[15]]) as usize;
        let stored =
            u64::from_le_bytes(data[16..24].try_into().expect("slice length checked above"));
        let body_start = DESCRIPTOR_BYTES;
        if data.len() < body_start + body_len {
            return Err(FabricError::ImageDecode(format!(
                "body truncated: need {body_len} bytes, have {}",
                data.len() - body_start
            )));
        }
        let body = data[body_start..body_start + body_len].to_vec();
        // digest spans descriptor + body, with the digest field zeroed
        let mut hasher = crate::digest::Fnv1a::new();
        hasher.update(&data[..16]);
        hasher.update(&[0u8; 8]);
        hasher.update(&data[24..body_start + body_len]);
        let computed = hasher.finish();
        if computed != stored {
            return Err(FabricError::DigestMismatch { stored, computed });
        }
        Ok(FunctionImage {
            algo_id,
            input_width,
            output_width,
            kind_byte,
            body,
        })
    }

    /// Decodes an image from a set of frames in placement order.
    ///
    /// # Errors
    ///
    /// As [`FunctionImage::from_bytes`]; additionally returns
    /// [`FabricError::FrameSizeMismatch`] if any frame has the wrong
    /// length for `geom`.
    pub fn decode_frames(frames: &[Vec<u8>], geom: DeviceGeometry) -> Result<Self, FabricError> {
        let fb = geom.frame_bytes();
        let mut flat = Vec::with_capacity(frames.len() * fb);
        for frame in frames {
            if frame.len() != fb {
                return Err(FabricError::FrameSizeMismatch {
                    got: frame.len(),
                    expected: fb,
                });
            }
            flat.extend_from_slice(frame);
        }
        FunctionImage::from_bytes(&flat)
    }

    /// Decodes the payload into an executable [`FunctionKind`].
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::ImageDecode`] or
    /// [`FabricError::NetlistInvalid`] for malformed bodies.
    pub fn kind(&self) -> Result<FunctionKind, FabricError> {
        match self.kind_byte {
            0 => {
                let b = &self.body;
                if b.len() < 8 {
                    return Err(FabricError::ImageDecode("netlist header truncated".into()));
                }
                let n_inputs = u16::from_le_bytes([b[0], b[1]]);
                let n_luts = u16::from_le_bytes([b[2], b[3]]) as usize;
                let n_outputs = u16::from_le_bytes([b[4], b[5]]) as usize;
                let mode = NetlistMode::from_byte(b[6])?;
                let mut off = 8;
                let need = off + n_outputs * 2 + n_luts * 10;
                if b.len() < need {
                    return Err(FabricError::ImageDecode(format!(
                        "netlist body truncated: need {need} bytes, have {}",
                        b.len()
                    )));
                }
                let mut outputs = Vec::with_capacity(n_outputs);
                for _ in 0..n_outputs {
                    outputs.push(NetId(u16::from_le_bytes([b[off], b[off + 1]])));
                    off += 2;
                }
                let mut luts = Vec::with_capacity(n_luts);
                for _ in 0..n_luts {
                    let truth = u16::from_le_bytes([b[off], b[off + 1]]);
                    off += 2;
                    let mut inputs = [NetId::ZERO; 4];
                    for slot in &mut inputs {
                        *slot = NetId(u16::from_le_bytes([b[off], b[off + 1]]));
                        off += 2;
                    }
                    luts.push(Lut { inputs, truth });
                }
                let netlist = Netlist::from_parts(n_inputs, luts, outputs)?;
                Ok(FunctionKind::Netlist { netlist, mode })
            }
            1 => {
                let b = &self.body;
                if b.len() < 2 {
                    return Err(FabricError::ImageDecode("params header truncated".into()));
                }
                let plen = u16::from_le_bytes([b[0], b[1]]) as usize;
                if b.len() < 2 + plen {
                    return Err(FabricError::ImageDecode("params truncated".into()));
                }
                Ok(FunctionKind::Behavioral {
                    params: b[2..2 + plen].to_vec(),
                })
            }
            other => Err(FabricError::ImageDecode(format!(
                "unknown function kind {other}"
            ))),
        }
    }

    /// Executes a netlist image on `input`, returning the output bytes.
    ///
    /// For [`NetlistMode::Combinational`] the input is consumed in
    /// `n_inputs/8`-byte blocks (zero-padded at the tail); for
    /// [`NetlistMode::Streaming`] each byte updates an
    /// `n_outputs`-bit state initialised to zero, and the final state is
    /// returned.
    ///
    /// # Errors
    ///
    /// Propagates decoding errors from [`FunctionImage::kind`], and
    /// returns [`FabricError::ImageDecode`] if called on a behavioural
    /// image or the netlist's widths are inconsistent with its mode.
    pub fn run_netlist(&self, input: &[u8]) -> Result<Vec<u8>, FabricError> {
        let FunctionKind::Netlist { netlist, mode } = self.kind()? else {
            return Err(FabricError::ImageDecode(
                "run_netlist called on a behavioural image".into(),
            ));
        };
        run_decoded_netlist(&netlist, mode, input)
    }

    /// Executes a netlist image on a batch of independent inputs using
    /// the bit-sliced evaluator (64 lanes per netlist walk), returning
    /// one output vector per input.
    ///
    /// Byte-identical to mapping [`FunctionImage::run_netlist`] over
    /// `inputs`, but decodes the netlist from the frame bytes once for
    /// the whole batch and never materialises per-input `Vec<bool>`
    /// frames — bytes go straight into bit-slice lanes.
    ///
    /// # Errors
    ///
    /// As [`FunctionImage::run_netlist`].
    pub fn run_netlist_batch(&self, inputs: &[&[u8]]) -> Result<Vec<Vec<u8>>, FabricError> {
        let FunctionKind::Netlist { netlist, mode } = self.kind()? else {
            return Err(FabricError::ImageDecode(
                "run_netlist called on a behavioural image".into(),
            ));
        };
        let mut scratch = BatchScratch::default();
        run_decoded_netlist_batch(&netlist, mode, inputs, &mut scratch)
    }
}

/// Validates a decoded netlist's width contract for `mode` and returns
/// the per-transfer byte widths `(in_bytes, out_bytes)` (streaming
/// consumes one byte per step, so `in_bytes` is 1 there).
fn netlist_io_bytes(netlist: &Netlist, mode: NetlistMode) -> Result<(usize, usize), FabricError> {
    match mode {
        NetlistMode::Combinational => {
            if !netlist.n_inputs().is_multiple_of(8) || netlist.n_inputs() == 0 {
                return Err(FabricError::ImageDecode(format!(
                    "combinational netlist input width {} is not byte aligned",
                    netlist.n_inputs()
                )));
            }
            Ok((netlist.n_inputs() / 8, netlist.n_outputs().div_ceil(8)))
        }
        NetlistMode::Streaming => {
            let state_bits = netlist.n_outputs();
            if netlist.n_inputs() != 8 + state_bits {
                return Err(FabricError::ImageDecode(format!(
                    "streaming netlist must have 8+state inputs, has {} with {} outputs",
                    netlist.n_inputs(),
                    state_bits
                )));
            }
            Ok((1, state_bits.div_ceil(8)))
        }
    }
}

/// Scalar execution of an already-decoded netlist (the per-input
/// `Vec<bool>` walk). Callers holding a [`FunctionKind::Netlist`] can
/// use this to skip re-decoding the frame bytes per input; the batch
/// path ([`run_decoded_netlist_batch`]) is faster still.
pub fn run_decoded_netlist(
    netlist: &Netlist,
    mode: NetlistMode,
    input: &[u8],
) -> Result<Vec<u8>, FabricError> {
    let (in_bytes, _) = netlist_io_bytes(netlist, mode)?;
    match mode {
        NetlistMode::Combinational => {
            let out_bytes = netlist.n_outputs().div_ceil(8);
            let mut out = Vec::with_capacity(input.len().div_ceil(in_bytes) * out_bytes);
            for chunk in input.chunks(in_bytes) {
                let mut block = chunk.to_vec();
                block.resize(in_bytes, 0);
                let bits = bytes_to_bits(&block);
                out.extend_from_slice(&bits_to_bytes(&netlist.eval(&bits)));
            }
            Ok(out)
        }
        NetlistMode::Streaming => {
            let state_bits = netlist.n_outputs();
            let mut state = vec![false; state_bits];
            for &byte in input {
                let mut bits = bytes_to_bits(&[byte]);
                bits.extend_from_slice(&state);
                state = netlist.eval(&bits);
            }
            Ok(bits_to_bytes(&state))
        }
    }
}

/// Reusable word buffers for [`run_decoded_netlist_batch`]; keep one
/// per execution site so repeated batches stay off the allocator.
#[derive(Debug, Default, Clone)]
pub struct BatchScratch {
    in_words: Vec<u64>,
    out_words: Vec<u64>,
    nets: Vec<u64>,
}

/// Bit-sliced batch execution of an already-decoded netlist: 64
/// independent lanes per netlist walk, bytes transposed directly into
/// lane words (no intermediate `Vec<bool>`).
///
/// For [`NetlistMode::Combinational`] every `n_inputs/8`-byte block of
/// every input is an independent lane, so a single large input is also
/// sliced. For [`NetlistMode::Streaming`] each *input* is a lane
/// (feedback makes steps within one input sequential); lanes whose
/// input is exhausted are frozen by masking so short and long inputs
/// mix freely in one group.
///
/// # Errors
///
/// As [`FunctionImage::run_netlist`], with identical width validation.
pub fn run_decoded_netlist_batch(
    netlist: &Netlist,
    mode: NetlistMode,
    inputs: &[&[u8]],
    scratch: &mut BatchScratch,
) -> Result<Vec<Vec<u8>>, FabricError> {
    let (in_bytes, out_bytes) = netlist_io_bytes(netlist, mode)?;
    let n_in_bits = netlist.n_inputs();
    let n_out_bits = netlist.n_outputs();
    scratch.in_words.clear();
    scratch.in_words.resize(n_in_bits, 0);
    scratch.out_words.clear();
    scratch.out_words.resize(n_out_bits, 0);
    let in_words = &mut scratch.in_words;
    let out_words = &mut scratch.out_words;
    let nets = &mut scratch.nets;
    match mode {
        NetlistMode::Combinational => {
            let mut outs: Vec<Vec<u8>> = inputs
                .iter()
                .map(|inp| vec![0u8; inp.len().div_ceil(in_bytes) * out_bytes])
                .collect();
            // Every block of every input is one lane; walk them in
            // input-major order, 64 at a time.
            let mut lanes: Vec<(u32, u32)> = Vec::with_capacity(64);
            let flush = |lanes: &mut Vec<(u32, u32)>,
                         in_words: &mut Vec<u64>,
                         out_words: &mut Vec<u64>,
                         nets: &mut Vec<u64>,
                         outs: &mut Vec<Vec<u8>>| {
                if lanes.is_empty() {
                    return;
                }
                for (lane, &(ii, blk)) in lanes.iter().enumerate() {
                    let inp = inputs[ii as usize];
                    let start = blk as usize * in_bytes;
                    let end = (start + in_bytes).min(inp.len());
                    for (j, &byte) in inp[start..end].iter().enumerate() {
                        let mut bits = byte;
                        while bits != 0 {
                            let i = bits.trailing_zeros() as usize;
                            in_words[8 * j + i] |= 1u64 << lane;
                            bits &= bits - 1;
                        }
                    }
                }
                netlist.eval_words(in_words, out_words, nets);
                // Sparse scatter: walk only the set bits of each
                // output word instead of probing every lane. Unused
                // trailing lanes of a partial group are masked out —
                // a LUT may output 1 even for the all-zero input.
                let lane_mask = match lanes.len() {
                    64 => !0u64,
                    n => (1u64 << n) - 1,
                };
                for (k, w) in out_words.iter().enumerate() {
                    let mut set = *w & lane_mask;
                    while set != 0 {
                        let lane = set.trailing_zeros() as usize;
                        let (ii, blk) = lanes[lane];
                        outs[ii as usize][blk as usize * out_bytes + k / 8] |= 1 << (k % 8);
                        set &= set - 1;
                    }
                }
                lanes.clear();
                in_words.fill(0);
            };
            for (ii, inp) in inputs.iter().enumerate() {
                for blk in 0..inp.len().div_ceil(in_bytes) {
                    lanes.push((ii as u32, blk as u32));
                    if lanes.len() == 64 {
                        flush(&mut lanes, in_words, out_words, nets, &mut outs);
                    }
                }
            }
            flush(&mut lanes, in_words, out_words, nets, &mut outs);
            Ok(outs)
        }
        NetlistMode::Streaming => {
            let state_bits = n_out_bits;
            let mut outs: Vec<Vec<u8>> = Vec::with_capacity(inputs.len());
            let mut state_words = vec![0u64; state_bits];
            for group in inputs.chunks(64) {
                state_words.fill(0);
                let max_len = group.iter().map(|i| i.len()).max().unwrap_or(0);
                for t in 0..max_len {
                    in_words[..8].fill(0);
                    let mut active = 0u64;
                    for (lane, inp) in group.iter().enumerate() {
                        if let Some(&byte) = inp.get(t) {
                            active |= 1u64 << lane;
                            let mut bits = byte;
                            while bits != 0 {
                                let i = bits.trailing_zeros() as usize;
                                in_words[i] |= 1u64 << lane;
                                bits &= bits - 1;
                            }
                        }
                    }
                    in_words[8..].copy_from_slice(&state_words);
                    netlist.eval_words(in_words, out_words, nets);
                    // Lanes whose input already ended keep their final
                    // state; only active lanes advance.
                    for (s, w) in state_words.iter_mut().enumerate() {
                        *w = (out_words[s] & active) | (*w & !active);
                    }
                }
                for lane in 0..group.len() {
                    let mut bytes = vec![0u8; out_bytes];
                    for (k, w) in state_words.iter().enumerate() {
                        if (w >> lane) & 1 == 1 {
                            bytes[k / 8] |= 1 << (k % 8);
                        }
                    }
                    outs.push(bytes);
                }
            }
            Ok(outs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    fn tiny_netlist() -> Netlist {
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(8);
        let outs: Vec<_> = {
            let mut v = Vec::new();
            for &i in &ins {
                v.push(i);
            }
            v
        };
        // identity byte with one inverted bit to make it non-trivial
        let inv = b.not(outs[0]);
        b.output(inv);
        b.output_vec(&outs[1..]);
        b.finish().unwrap()
    }

    #[test]
    fn netlist_image_roundtrip() {
        let nl = tiny_netlist();
        let img = FunctionImage::from_netlist(42, nl.clone(), NetlistMode::Combinational, 1, 1);
        let geom = DeviceGeometry::new(16, 2);
        let frames = img.encode(geom);
        assert_eq!(frames.len(), img.frames_needed(geom));
        let back = FunctionImage::decode_frames(&frames, geom).unwrap();
        assert_eq!(back, img);
        match back.kind().unwrap() {
            FunctionKind::Netlist { netlist, mode } => {
                assert_eq!(netlist, nl);
                assert_eq!(mode, NetlistMode::Combinational);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn behavioral_image_roundtrip() {
        let img = FunctionImage::from_behavioral(9, &[1, 2, 3], &[0u8; 500], 16, 16);
        let geom = DeviceGeometry::new(16, 2);
        let back = FunctionImage::decode_frames(&img.encode(geom), geom).unwrap();
        assert_eq!(back.algo_id(), 9);
        assert_eq!(back.input_width(), 16);
        match back.kind().unwrap() {
            FunctionKind::Behavioral { params } => assert_eq!(params, vec![1, 2, 3]),
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn corruption_is_detected() {
        let img = FunctionImage::from_behavioral(9, &[7; 10], &[0xAB; 300], 8, 8);
        let geom = DeviceGeometry::new(16, 2);
        let mut frames = img.encode(geom);
        // flip one byte in the body region of the second frame
        let fb = geom.frame_bytes();
        assert!(frames.len() >= 2, "image should span multiple frames");
        frames[1][fb / 2] ^= 0x01;
        let err = FunctionImage::decode_frames(&frames, geom).unwrap_err();
        assert!(matches!(err, FabricError::DigestMismatch { .. }), "{err}");
    }

    #[test]
    fn truncated_descriptor_rejected() {
        let err = FunctionImage::from_bytes(&[0u8; 10]).unwrap_err();
        assert!(matches!(err, FabricError::ImageDecode(_)));
    }

    #[test]
    fn bad_magic_rejected() {
        let img = FunctionImage::from_behavioral(1, &[], &[], 1, 1);
        let mut bytes = img.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            FunctionImage::from_bytes(&bytes).unwrap_err(),
            FabricError::ImageDecode(_)
        ));
    }

    #[test]
    fn combinational_execution_from_decoded_bits() {
        let nl = tiny_netlist();
        let img = FunctionImage::from_netlist(1, nl, NetlistMode::Combinational, 1, 1);
        let geom = DeviceGeometry::new(16, 2);
        let back = FunctionImage::decode_frames(&img.encode(geom), geom).unwrap();
        // function inverts bit 0 of each byte
        let out = back.run_netlist(&[0x00, 0xFF, 0x10]).unwrap();
        assert_eq!(out, vec![0x01, 0xFE, 0x11]);
    }

    #[test]
    fn streaming_execution_xors_bytes() {
        // 8-bit running XOR: state' = byte ^ state
        let mut b = NetlistBuilder::new();
        let data = b.inputs(8);
        let state = b.inputs(8);
        let next = b.xor_vec(&data, &state);
        b.output_vec(&next);
        let img = FunctionImage::from_netlist(2, b.finish().unwrap(), NetlistMode::Streaming, 1, 1);
        let out = img.run_netlist(&[0xA5, 0x5A, 0xFF]).unwrap();
        assert_eq!(out, vec![0xA5 ^ 0x5A ^ 0xFF]);
    }

    #[test]
    fn run_netlist_on_behavioral_errors() {
        let img = FunctionImage::from_behavioral(1, &[], &[], 1, 1);
        assert!(img.run_netlist(&[1]).is_err());
        assert!(img.run_netlist_batch(&[&[1]]).is_err());
    }

    #[test]
    fn batch_combinational_matches_scalar() {
        let nl = tiny_netlist();
        let img = FunctionImage::from_netlist(1, nl, NetlistMode::Combinational, 1, 1);
        // Mixed lengths, including empty, and enough blocks to spill
        // past one 64-lane group.
        let long: Vec<u8> = (0..200u16).map(|v| (v * 7) as u8).collect();
        let inputs: Vec<&[u8]> = vec![&[0x00, 0xFF, 0x10], &[], &long, &[0xA5]];
        let batch = img.run_netlist_batch(&inputs).unwrap();
        assert_eq!(batch.len(), inputs.len());
        for (inp, got) in inputs.iter().zip(&batch) {
            assert_eq!(*got, img.run_netlist(inp).unwrap());
        }
    }

    #[test]
    fn batch_streaming_matches_scalar_mixed_lengths() {
        let mut b = NetlistBuilder::new();
        let data = b.inputs(8);
        let state = b.inputs(8);
        let next = b.xor_vec(&data, &state);
        b.output_vec(&next);
        let img = FunctionImage::from_netlist(2, b.finish().unwrap(), NetlistMode::Streaming, 1, 1);
        let long: Vec<u8> = (0..300u16).map(|v| (v * 13 + 1) as u8).collect();
        let inputs: Vec<&[u8]> = vec![&[0xA5, 0x5A, 0xFF], &[], &long, &[0x01], &[0x80, 0x80]];
        let batch = img.run_netlist_batch(&inputs).unwrap();
        for (inp, got) in inputs.iter().zip(&batch) {
            assert_eq!(*got, img.run_netlist(inp).unwrap());
        }
    }

    #[test]
    fn batch_streaming_many_lanes() {
        // 70 lanes exercises the second streaming lane group.
        let mut b = NetlistBuilder::new();
        let data = b.inputs(8);
        let state = b.inputs(8);
        let next = b.xor_vec(&data, &state);
        b.output_vec(&next);
        let img = FunctionImage::from_netlist(2, b.finish().unwrap(), NetlistMode::Streaming, 1, 1);
        let owned: Vec<Vec<u8>> = (0..70u8).map(|v| vec![v, v ^ 0x3C, 0x11]).collect();
        let inputs: Vec<&[u8]> = owned.iter().map(|v| v.as_slice()).collect();
        let batch = img.run_netlist_batch(&inputs).unwrap();
        for (inp, got) in inputs.iter().zip(&batch) {
            assert_eq!(*got, img.run_netlist(inp).unwrap());
        }
    }

    #[test]
    fn decoded_scalar_helper_matches_method() {
        let nl = tiny_netlist();
        let img = FunctionImage::from_netlist(1, nl.clone(), NetlistMode::Combinational, 1, 1);
        let out = run_decoded_netlist(&nl, NetlistMode::Combinational, &[0x42, 0x99]).unwrap();
        assert_eq!(out, img.run_netlist(&[0x42, 0x99]).unwrap());
    }

    #[test]
    fn frame_size_mismatch_detected() {
        let img = FunctionImage::from_behavioral(1, &[], &[0; 100], 1, 1);
        let geom = DeviceGeometry::new(16, 2);
        let mut frames = img.encode(geom);
        frames[0].pop();
        assert!(matches!(
            FunctionImage::decode_frames(&frames, geom).unwrap_err(),
            FabricError::FrameSizeMismatch { .. }
        ));
    }

    #[test]
    fn trailing_frame_padding_is_ignored() {
        // Padding after the body must not affect decode (frames are
        // zero-padded to frame size).
        let img = FunctionImage::from_behavioral(3, &[9], &[1, 2, 3], 4, 4);
        let geom = DeviceGeometry::new(4, 4);
        let mut frames = img.encode(geom);
        // corrupt a byte beyond descriptor+body in the last frame: harmless
        let total = img.total_bytes();
        let fb = geom.frame_bytes();
        let pad_offset = total % fb;
        if pad_offset != 0 {
            let last = frames.len() - 1;
            frames[last][pad_offset] = 0xEE;
            let back = FunctionImage::decode_frames(&frames, geom).unwrap();
            assert_eq!(back.algo_id(), 3);
        }
    }
}

//! A frame-addressable, partially reconfigurable FPGA fabric model.
//!
//! This crate models the third block of the co-processor of
//! *"FPGA based Agile Algorithm-On-Demand Co-Processor"* (DATE 2005): a
//! Virtex-II-class device whose configuration plane is divided into
//! **frames** — "a prespecified number of Logic Blocks and the relevant
//! Switch Blocks" (paper, footnote 1). Individual frames can be
//! rewritten through the configuration port while the rest of the device
//! keeps operating, which is what lets the mini-OS swap algorithms in
//! and out on demand.
//!
//! The model is *bit-faithful*: what a configured region does is decoded
//! from the frame bytes themselves (see [`image::FunctionImage`]), so a
//! corrupted or half-written frame really produces a broken function.
//! Small kernels are true LUT netlists ([`netlist::Netlist`]) that are
//! placed into CLB slots, serialised into frames and *evaluated from the
//! decoded bits*; large kernels (AES, SHA…) are behavioural images whose
//! frames carry the kernel identity, parameters and an integrity digest.
//!
//! # Examples
//!
//! ```
//! use aaod_fabric::{Device, DeviceGeometry, FrameAddress};
//!
//! let geom = DeviceGeometry::new(64, 16); // 64 frames x 16 CLBs
//! let dev = Device::new(geom);
//! assert_eq!(dev.geometry().frames(), 64);
//! assert!(dev.read_frame(FrameAddress(3)).unwrap().iter().all(|&b| b == 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config_port;
pub mod device;
pub mod digest;
pub mod error;
pub mod geometry;
pub mod image;
pub mod netlist;
pub mod opt;

pub use config_port::ConfigPort;
pub use device::Device;
pub use error::FabricError;
pub use geometry::{DeviceGeometry, FrameAddress, CLB_CONFIG_BYTES};
pub use image::{
    run_decoded_netlist, run_decoded_netlist_batch, BatchScratch, FunctionImage, FunctionKind,
    NetlistMode,
};
pub use netlist::{NetId, Netlist, NetlistBuilder};

//! LUT-level netlist intermediate representation and evaluator.
//!
//! Small co-processor functions are represented as genuine technology-
//! mapped netlists of 4-input LUTs. A [`NetlistBuilder`] provides gate
//! primitives (built on [`NetlistBuilder::lut4`]); the finished
//! [`Netlist`] is serialised into configuration frames by
//! [`crate::image::FunctionImage`] and — crucially — *re-decoded from
//! those frame bytes* before every execution, so the fabric really
//! computes from its configured bits.
//!
//! # Net numbering
//!
//! Nets are assigned densely:
//!
//! * net 0 — constant 0
//! * net 1 — constant 1
//! * nets `2 .. 2+n_inputs` — primary inputs
//! * net `2 + n_inputs + i` — output of LUT `i`
//!
//! Because a LUT may only read nets that already exist, LUT order is a
//! topological order and evaluation is a single forward pass.

use crate::error::FabricError;
use std::fmt;

/// Identifier of a net (wire) in a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NetId(pub u16);

impl NetId {
    /// The constant-0 net.
    pub const ZERO: NetId = NetId(0);
    /// The constant-1 net.
    pub const ONE: NetId = NetId(1);

    /// Numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A 4-input lookup table.
///
/// `truth` bit `i` gives the output for input pattern `i`, where the
/// pattern packs inputs as `a | b<<1 | c<<2 | d<<3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lut {
    /// The four input nets (unused inputs are tied to [`NetId::ZERO`]).
    pub inputs: [NetId; 4],
    /// 16-bit truth table.
    pub truth: u16,
}

/// A validated, evaluable LUT netlist.
///
/// Construct with [`NetlistBuilder`]; obtain from configured frames via
/// [`crate::image::FunctionImage`]. The structure is immutable after
/// construction so the evaluation order stays valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    n_inputs: u16,
    luts: Vec<Lut>,
    outputs: Vec<NetId>,
}

impl Netlist {
    /// Assembles and validates a netlist from raw parts (used by the
    /// frame decoder; library users should prefer [`NetlistBuilder`]).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::NetlistInvalid`] if any LUT reads a net
    /// at or beyond its own output net (which would break topological
    /// evaluation), or an output references a non-existent net.
    pub fn from_parts(
        n_inputs: u16,
        luts: Vec<Lut>,
        outputs: Vec<NetId>,
    ) -> Result<Self, FabricError> {
        let first_lut_net = 2 + n_inputs as usize;
        for (i, lut) in luts.iter().enumerate() {
            let own = first_lut_net + i;
            for inp in lut.inputs {
                if inp.index() >= own {
                    return Err(FabricError::NetlistInvalid(format!(
                        "LUT {i} reads net {inp} which is not defined before it"
                    )));
                }
            }
        }
        let n_nets = first_lut_net + luts.len();
        for out in &outputs {
            if out.index() >= n_nets {
                return Err(FabricError::NetlistInvalid(format!(
                    "output references undefined net {out}"
                )));
            }
        }
        if outputs.is_empty() {
            return Err(FabricError::NetlistInvalid("netlist has no outputs".into()));
        }
        Ok(Netlist {
            n_inputs,
            luts,
            outputs,
        })
    }

    /// Number of primary inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs as usize
    }

    /// Number of primary outputs.
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of LUTs (the area cost in logic cells).
    pub fn n_luts(&self) -> usize {
        self.luts.len()
    }

    /// The LUTs in topological order.
    pub fn luts(&self) -> &[Lut] {
        &self.luts
    }

    /// The output nets in order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Combinational logic depth: the longest LUT chain from any input
    /// to any output. Used by the timing model for the fabric clock.
    pub fn depth(&self) -> usize {
        let first_lut_net = 2 + self.n_inputs as usize;
        let mut level = vec![0usize; first_lut_net + self.luts.len()];
        for (i, lut) in self.luts.iter().enumerate() {
            let l = lut
                .inputs
                .iter()
                .map(|n| level[n.index()])
                .max()
                .unwrap_or(0);
            level[first_lut_net + i] = l + 1;
        }
        self.outputs
            .iter()
            .map(|n| level[n.index()])
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the netlist combinationally.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.n_inputs()` — the caller (the
    /// data-input module) is responsible for width framing.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.n_inputs(),
            "input width mismatch: netlist has {} inputs",
            self.n_inputs()
        );
        let first_lut_net = 2 + self.n_inputs as usize;
        let mut nets = vec![false; first_lut_net + self.luts.len()];
        nets[1] = true;
        nets[2..first_lut_net].copy_from_slice(inputs);
        for (i, lut) in self.luts.iter().enumerate() {
            let idx = (nets[lut.inputs[0].index()] as usize)
                | (nets[lut.inputs[1].index()] as usize) << 1
                | (nets[lut.inputs[2].index()] as usize) << 2
                | (nets[lut.inputs[3].index()] as usize) << 3;
            nets[first_lut_net + i] = (lut.truth >> idx) & 1 == 1;
        }
        self.outputs.iter().map(|n| nets[n.index()]).collect()
    }

    /// Evaluates up to 64 independent input vectors in one bit-parallel
    /// pass ("bit slicing"): word `i` of `input_words` carries bit `i`
    /// of every lane (lane `L` in bit position `L`), and the netlist is
    /// walked once with each net holding a `u64` of 64 lane values.
    /// Each LUT costs one Shannon mux-tree reduction of its 16-bit
    /// truth table instead of 64 separate table lookups.
    ///
    /// `scratch` is a reusable net buffer; it is resized as needed so a
    /// caller evaluating many batches allocates only once.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != self.n_inputs()` or
    /// `out_words.len() != self.n_outputs()`.
    pub fn eval_words(&self, input_words: &[u64], out_words: &mut [u64], scratch: &mut Vec<u64>) {
        assert_eq!(
            input_words.len(),
            self.n_inputs(),
            "input width mismatch: netlist has {} inputs",
            self.n_inputs()
        );
        assert_eq!(
            out_words.len(),
            self.n_outputs(),
            "output width mismatch: netlist has {} outputs",
            self.n_outputs()
        );
        let first_lut_net = 2 + self.n_inputs as usize;
        let total = first_lut_net + self.luts.len();
        // Every cell below is written before it is read (constants,
        // inputs, then LUTs in topological order), so the buffer is
        // resized without re-zeroing stale contents on reuse.
        if scratch.len() != total {
            scratch.clear();
            scratch.resize(total, 0);
        }
        scratch[0] = 0;
        scratch[1] = !0u64;
        scratch[2..first_lut_net].copy_from_slice(input_words);
        for (i, lut) in self.luts.iter().enumerate() {
            let a = scratch[lut.inputs[0].index()];
            let b = scratch[lut.inputs[1].index()];
            let c = scratch[lut.inputs[2].index()];
            let d = scratch[lut.inputs[3].index()];
            scratch[first_lut_net + i] = lut_word(lut.truth, a, b, c, d);
        }
        for (o, out) in self.outputs.iter().enumerate() {
            out_words[o] = scratch[out.index()];
        }
    }

    /// Evaluates a batch of input vectors bit-sliced, 64 lanes at a
    /// time, returning one output vector per input in order.
    /// Byte-for-byte identical to calling [`Netlist::eval`] on each
    /// input (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if any input's width differs from [`Netlist::n_inputs`].
    pub fn eval_batch(&self, inputs: &[&[bool]]) -> Vec<Vec<bool>> {
        let n_in = self.n_inputs();
        let n_out = self.n_outputs();
        let mut results = vec![Vec::new(); inputs.len()];
        let mut in_words = vec![0u64; n_in];
        let mut out_words = vec![0u64; n_out];
        let mut scratch = Vec::new();
        for (group_idx, group) in inputs.chunks(64).enumerate() {
            in_words.fill(0);
            for (lane, inp) in group.iter().enumerate() {
                assert_eq!(
                    inp.len(),
                    n_in,
                    "input width mismatch: netlist has {n_in} inputs"
                );
                for (i, &bit) in inp.iter().enumerate() {
                    if bit {
                        in_words[i] |= 1u64 << lane;
                    }
                }
            }
            self.eval_words(&in_words, &mut out_words, &mut scratch);
            for lane in 0..group.len() {
                let out = &mut results[group_idx * 64 + lane];
                out.reserve_exact(n_out);
                for w in out_words.iter() {
                    out.push((w >> lane) & 1 == 1);
                }
            }
        }
        results
    }
}

/// Evaluates one 4-input LUT over 64 lanes at once: a Shannon
/// mux-tree reduction of the 16-bit truth table using bitwise word
/// operations (7 muxes + 8 leaf selections instead of 64 scalar
/// table lookups).
#[inline]
fn lut_word(truth: u16, a: u64, b: u64, c: u64, d: u64) -> u64 {
    #[inline]
    fn t2(t: u16, a: u64) -> u64 {
        // 2-bit truth over `a`: bit 0 = value at a=0, bit 1 = at a=1.
        // Branchless: each truth bit broadcasts to a full lane mask so
        // the evaluator never mispredicts on data-dependent truths.
        let at0 = 0u64.wrapping_sub((t & 1) as u64);
        let at1 = 0u64.wrapping_sub(((t >> 1) & 1) as u64);
        (at1 & a) | (at0 & !a)
    }
    #[inline]
    fn t4(t: u16, a: u64, b: u64) -> u64 {
        let lo = t2(t, a);
        let hi = t2(t >> 2, a);
        (hi & b) | (lo & !b)
    }
    let f0 = t4(truth, a, b); // c=0, d=0
    let f1 = t4(truth >> 4, a, b); // c=1, d=0
    let f2 = t4(truth >> 8, a, b); // c=0, d=1
    let f3 = t4(truth >> 12, a, b); // c=1, d=1
    let g0 = (f1 & c) | (f0 & !c);
    let g1 = (f3 & c) | (f2 & !c);
    (g1 & d) | (g0 & !d)
}

/// Incremental netlist construction with gate-level helpers.
///
/// # Examples
///
/// A 1-bit full adder:
///
/// ```
/// use aaod_fabric::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let a = b.input();
/// let c = b.input();
/// let cin = b.input();
/// let (sum, cout) = b.full_adder(a, c, cin);
/// b.output(sum);
/// b.output(cout);
/// let nl = b.finish().unwrap();
/// assert_eq!(nl.eval(&[true, true, false]), vec![false, true]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetlistBuilder {
    n_inputs: u16,
    inputs_frozen: bool,
    luts: Vec<Lut>,
    outputs: Vec<NetId>,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        NetlistBuilder::default()
    }

    /// Declares the next primary input and returns its net.
    ///
    /// # Panics
    ///
    /// Panics if called after the first LUT has been placed (inputs
    /// must be declared first so net numbering stays dense) or if more
    /// than 4094 inputs are declared.
    pub fn input(&mut self) -> NetId {
        assert!(
            !self.inputs_frozen,
            "all inputs must be declared before any logic"
        );
        assert!(self.n_inputs < 4094, "too many inputs");
        let id = NetId(2 + self.n_inputs);
        self.n_inputs += 1;
        id
    }

    /// Declares `n` inputs at once.
    pub fn inputs(&mut self, n: usize) -> Vec<NetId> {
        (0..n).map(|_| self.input()).collect()
    }

    /// The constant-0 net.
    pub fn zero(&self) -> NetId {
        NetId::ZERO
    }

    /// The constant-1 net.
    pub fn one(&self) -> NetId {
        NetId::ONE
    }

    /// Places a 4-input LUT and returns its output net.
    ///
    /// # Panics
    ///
    /// Panics if any input net is not yet defined, or the design
    /// exceeds the 16-bit net space.
    pub fn lut4(&mut self, truth: u16, inputs: [NetId; 4]) -> NetId {
        self.inputs_frozen = true;
        let own = 2 + self.n_inputs as usize + self.luts.len();
        for inp in inputs {
            assert!(
                inp.index() < own,
                "LUT input {inp} is not defined before the LUT"
            );
        }
        assert!(own < u16::MAX as usize, "net space exhausted");
        self.luts.push(Lut { inputs, truth });
        NetId(own as u16)
    }

    /// NOT gate.
    pub fn not(&mut self, a: NetId) -> NetId {
        // Output 1 when input pattern has bit a = 0: patterns 0,2,4,..
        self.lut4(0x5555, [a, NetId::ZERO, NetId::ZERO, NetId::ZERO])
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.lut4(0x8888, [a, b, NetId::ZERO, NetId::ZERO])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.lut4(0xEEEE, [a, b, NetId::ZERO, NetId::ZERO])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.lut4(0x6666, [a, b, NetId::ZERO, NetId::ZERO])
    }

    /// 3-input XOR (single LUT).
    pub fn xor3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.lut4(0x9696, [a, b, c, NetId::ZERO])
    }

    /// 2:1 multiplexer: returns `a` when `sel` is 0, else `b`.
    pub fn mux2(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        // inputs [sel, a, b, -]; out = sel ? b : a
        // pattern bits: sel=bit0, a=bit1, b=bit2
        let mut truth = 0u16;
        for p in 0..16u16 {
            let sel_v = p & 1 != 0;
            let a_v = p & 2 != 0;
            let b_v = p & 4 != 0;
            if if sel_v { b_v } else { a_v } {
                truth |= 1 << p;
            }
        }
        self.lut4(truth, [sel, a, b, NetId::ZERO])
    }

    /// Majority of three (carry function).
    pub fn maj3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.lut4(0xE8E8, [a, b, c, NetId::ZERO])
    }

    /// Full adder: returns `(sum, carry_out)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let sum = self.xor3(a, b, cin);
        let carry = self.maj3(a, b, cin);
        (sum, carry)
    }

    /// Ripple-carry adder over little-endian bit vectors; returns the
    /// sum bits (same width) and the final carry.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn ripple_add(&mut self, a: &[NetId], b: &[NetId]) -> (Vec<NetId>, NetId) {
        assert_eq!(a.len(), b.len(), "adder operands must have equal width");
        let mut carry = NetId::ZERO;
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(x, y, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// XOR of two equal-width bit vectors.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn xor_vec(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "xor operands must have equal width");
        a.iter().zip(b).map(|(&x, &y)| self.xor2(x, y)).collect()
    }

    /// Reduces a set of nets with XOR (balanced tree of 3-input XORs).
    ///
    /// # Panics
    ///
    /// Panics if `nets` is empty.
    pub fn xor_reduce(&mut self, nets: &[NetId]) -> NetId {
        assert!(!nets.is_empty(), "cannot reduce an empty net set");
        let mut layer: Vec<NetId> = nets.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(3));
            for chunk in layer.chunks(3) {
                next.push(match *chunk {
                    [a] => a,
                    [a, b] => self.xor2(a, b),
                    [a, b, c] => self.xor3(a, b, c),
                    _ => unreachable!(),
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Marks a net as the next primary output.
    pub fn output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Marks each net of a vector as an output, in order.
    pub fn output_vec(&mut self, nets: &[NetId]) {
        self.outputs.extend_from_slice(nets);
    }

    /// Finalises and validates the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::NetlistInvalid`] if no outputs were
    /// declared (validation of net ordering is enforced during
    /// construction).
    pub fn finish(self) -> Result<Netlist, FabricError> {
        Netlist::from_parts(self.n_inputs, self.luts, self.outputs)
    }
}

/// Converts a byte slice to little-endian-bit booleans (bit 0 of byte 0
/// first), the wire framing the data-input module uses.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            bits.push((b >> i) & 1 == 1);
        }
    }
    bits
}

/// Packs booleans back into bytes (inverse of [`bytes_to_bits`]); a
/// trailing partial byte is zero-padded in its high bits.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    let mut bytes = vec![0u8; bits.len().div_ceil(8)];
    for (i, &bit) in bits.iter().enumerate() {
        if bit {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval1(nl: &Netlist, inputs: &[bool]) -> bool {
        nl.eval(inputs)[0]
    }

    #[test]
    fn basic_gates_truth_tables() {
        for (build, table) in [
            (
                Box::new(|b: &mut NetlistBuilder, x, y| b.and2(x, y))
                    as Box<dyn Fn(&mut NetlistBuilder, NetId, NetId) -> NetId>,
                [false, false, false, true],
            ),
            (
                Box::new(|b: &mut NetlistBuilder, x, y| b.or2(x, y)),
                [false, true, true, true],
            ),
            (
                Box::new(|b: &mut NetlistBuilder, x, y| b.xor2(x, y)),
                [false, true, true, false],
            ),
        ] {
            let mut b = NetlistBuilder::new();
            let x = b.input();
            let y = b.input();
            let o = build(&mut b, x, y);
            b.output(o);
            let nl = b.finish().unwrap();
            for (i, &want) in table.iter().enumerate() {
                let a = i & 1 == 1;
                let c = i & 2 == 2;
                assert_eq!(eval1(&nl, &[a, c]), want, "pattern {i}");
            }
        }
    }

    #[test]
    fn not_gate() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let o = b.not(x);
        b.output(o);
        let nl = b.finish().unwrap();
        assert!(eval1(&nl, &[false]));
        assert!(!eval1(&nl, &[true]));
    }

    #[test]
    fn mux2_selects() {
        let mut b = NetlistBuilder::new();
        let sel = b.input();
        let x = b.input();
        let y = b.input();
        let o = b.mux2(sel, x, y);
        b.output(o);
        let nl = b.finish().unwrap();
        assert!(eval1(&nl, &[false, true, false])); // sel=0 -> x
        assert!(!eval1(&nl, &[true, true, false])); // sel=1 -> y
    }

    #[test]
    fn full_adder_all_patterns() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let cin = b.input();
        let (s, c) = b.full_adder(x, y, cin);
        b.output(s);
        b.output(c);
        let nl = b.finish().unwrap();
        for p in 0..8 {
            let a = p & 1;
            let bb = (p >> 1) & 1;
            let ci = (p >> 2) & 1;
            let out = nl.eval(&[a == 1, bb == 1, ci == 1]);
            let total = a + bb + ci;
            assert_eq!(out[0], total & 1 == 1, "sum for {p}");
            assert_eq!(out[1], total >= 2, "carry for {p}");
        }
    }

    #[test]
    fn ripple_add_8bit_exhaustive_sample() {
        let mut b = NetlistBuilder::new();
        let a = b.inputs(8);
        let c = b.inputs(8);
        let (sum, carry) = b.ripple_add(&a, &c);
        b.output_vec(&sum);
        b.output(carry);
        let nl = b.finish().unwrap();
        for (x, y) in [(0u16, 0u16), (1, 1), (255, 1), (200, 100), (255, 255)] {
            let mut inp = bytes_to_bits(&[x as u8]);
            inp.extend(bytes_to_bits(&[y as u8]));
            let out = nl.eval(&inp);
            let got = bits_to_bytes(&out[..8])[0] as u16 + ((out[8] as u16) << 8);
            assert_eq!(got, x + y, "{x}+{y}");
        }
    }

    #[test]
    fn xor_reduce_parity() {
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(8);
        let p = b.xor_reduce(&ins);
        b.output(p);
        let nl = b.finish().unwrap();
        for byte in [0u8, 1, 3, 0xFF, 0xA5] {
            let bits = bytes_to_bits(&[byte]);
            assert_eq!(
                eval1(&nl, &bits),
                byte.count_ones() % 2 == 1,
                "byte {byte:#x}"
            );
        }
    }

    #[test]
    fn depth_counts_longest_chain() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let n1 = b.and2(x, y);
        let n2 = b.or2(n1, y);
        let n3 = b.xor2(n2, n1);
        b.output(n3);
        let nl = b.finish().unwrap();
        assert_eq!(nl.depth(), 3);
        assert_eq!(nl.n_luts(), 3);
    }

    #[test]
    fn from_parts_rejects_forward_reference() {
        // A LUT that reads its own output net.
        let lut = Lut {
            inputs: [NetId(2), NetId::ZERO, NetId::ZERO, NetId::ZERO],
            truth: 0xFFFF,
        };
        let err = Netlist::from_parts(0, vec![lut], vec![NetId(2)]).unwrap_err();
        assert!(matches!(err, FabricError::NetlistInvalid(_)));
    }

    #[test]
    fn from_parts_rejects_dangling_output() {
        let err = Netlist::from_parts(1, vec![], vec![NetId(99)]).unwrap_err();
        assert!(matches!(err, FabricError::NetlistInvalid(_)));
    }

    #[test]
    fn from_parts_rejects_empty_outputs() {
        let err = Netlist::from_parts(1, vec![], vec![]).unwrap_err();
        assert!(matches!(err, FabricError::NetlistInvalid(_)));
    }

    #[test]
    #[should_panic(expected = "before any logic")]
    fn input_after_logic_panics() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let _ = b.not(x);
        let _ = b.input();
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn eval_wrong_width_panics() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        b.output(x);
        let nl = b.finish().unwrap();
        let _ = nl.eval(&[]);
    }

    #[test]
    fn bits_bytes_roundtrip() {
        let data = [0x00u8, 0xFF, 0xA5, 0x3C, 0x01];
        assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data);
    }

    #[test]
    fn lut_word_matches_scalar_for_all_truths() {
        // Every truth table, every input pattern, via lane broadcast.
        for truth in [
            0u16, 0xFFFF, 0x5555, 0x8888, 0x6666, 0x9696, 0xE8E8, 0xCA35, 0x1234,
        ] {
            for p in 0..16u32 {
                let a = if p & 1 != 0 { !0u64 } else { 0 };
                let b = if p & 2 != 0 { !0u64 } else { 0 };
                let c = if p & 4 != 0 { !0u64 } else { 0 };
                let d = if p & 8 != 0 { !0u64 } else { 0 };
                let want = if (truth >> p) & 1 == 1 { !0u64 } else { 0 };
                assert_eq!(
                    lut_word(truth, a, b, c, d),
                    want,
                    "truth {truth:#06x} pattern {p}"
                );
            }
        }
    }

    #[test]
    fn eval_batch_matches_scalar_full_adder() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let cin = b.input();
        let (s, c) = b.full_adder(x, y, cin);
        b.output(s);
        b.output(c);
        let nl = b.finish().unwrap();
        let patterns: Vec<Vec<bool>> = (0..8u8)
            .map(|p| vec![p & 1 != 0, p & 2 != 0, p & 4 != 0])
            .collect();
        let refs: Vec<&[bool]> = patterns.iter().map(|p| p.as_slice()).collect();
        let batch = nl.eval_batch(&refs);
        for (inp, got) in patterns.iter().zip(&batch) {
            assert_eq!(*got, nl.eval(inp));
        }
    }

    #[test]
    fn eval_batch_spans_multiple_lane_groups() {
        // More than 64 lanes so the second word group is exercised.
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(8);
        let p = b.xor_reduce(&ins);
        b.output(p);
        let nl = b.finish().unwrap();
        let patterns: Vec<Vec<bool>> = (0..150u8).map(|v| bytes_to_bits(&[v])).collect();
        let refs: Vec<&[bool]> = patterns.iter().map(|p| p.as_slice()).collect();
        let batch = nl.eval_batch(&refs);
        assert_eq!(batch.len(), 150);
        for (inp, got) in patterns.iter().zip(&batch) {
            assert_eq!(*got, nl.eval(inp));
        }
    }

    #[test]
    fn eval_batch_matches_scalar_on_random_netlists() {
        // Deterministic randomized sweep (the tier-1 stand-in for the
        // feature-gated proptest suite): random topologies, widths and
        // lane counts, including counts that do not divide 64.
        for seed in 0..24u64 {
            let mut rng = aaod_sim::SplitMix64::new(0x5eed_0000 + seed);
            let n_inputs = 1 + rng.index(12);
            let mut b = NetlistBuilder::new();
            let inputs = b.inputs(n_inputs);
            let mut nets: Vec<NetId> = vec![b.zero(), b.one()];
            nets.extend(&inputs);
            for _ in 0..1 + rng.index(50) {
                let truth = rng.next_u64() as u16;
                let ins = [
                    nets[rng.index(nets.len())],
                    nets[rng.index(nets.len())],
                    nets[rng.index(nets.len())],
                    nets[rng.index(nets.len())],
                ];
                let out = b.lut4(truth, ins);
                nets.push(out);
            }
            for _ in 0..1 + rng.index(4) {
                let net = nets[rng.index(nets.len())];
                b.output(net);
            }
            let nl = b.finish().unwrap();
            let n_lanes = [1, 63, 64, 65, 130][rng.index(5)];
            let lanes: Vec<Vec<bool>> = (0..n_lanes)
                .map(|_| (0..n_inputs).map(|_| rng.chance(0.5)).collect())
                .collect();
            let refs: Vec<&[bool]> = lanes.iter().map(Vec::as_slice).collect();
            let batch = nl.eval_batch(&refs);
            assert_eq!(batch.len(), n_lanes);
            for (inp, got) in lanes.iter().zip(&batch) {
                assert_eq!(*got, nl.eval(inp), "seed {seed} diverged");
            }
        }
    }

    #[test]
    fn eval_batch_empty_is_empty() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        b.output(x);
        let nl = b.finish().unwrap();
        assert!(nl.eval_batch(&[]).is_empty());
    }

    #[test]
    fn constants_available() {
        let mut b = NetlistBuilder::new();
        let one = b.one();
        let zero = b.zero();
        let o = b.or2(one, zero);
        b.output(o);
        let nl = b.finish().unwrap();
        assert!(nl.eval(&[])[0]);
    }
}

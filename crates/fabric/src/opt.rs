//! Netlist optimisation: constant folding, dead-logic elimination and
//! common-subexpression merging.
//!
//! The gate-level builders in [`crate::netlist`] favour clarity over
//! area — a popcount built from ripple adders seeds half its adder
//! inputs with constant zero. Real synthesis cleans that up before
//! mapping, and frames are the co-processor's scarce resource, so this
//! pass does the same:
//!
//! 1. **Constant propagation** — inputs tied to the constant nets are
//!    folded into the truth table; LUTs whose truth collapses to a
//!    constant disappear entirely.
//! 2. **Support reduction / wire aliasing** — inputs the truth table
//!    does not depend on are detached; a LUT that merely forwards one
//!    input becomes a wire.
//! 3. **Structural CSE** — LUTs with identical truth tables and input
//!    nets are merged.
//! 4. **Dead-logic elimination** — LUTs that no output transitively
//!    reads are dropped.
//!
//! The pass is semantics-preserving; `tests/properties.rs` checks
//! optimised netlists against the originals on random inputs.

use crate::error::FabricError;
use crate::netlist::{NetId, Netlist, NetlistBuilder};
use std::collections::HashMap;

/// What the optimiser did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// LUT count before.
    pub luts_before: usize,
    /// LUT count after.
    pub luts_after: usize,
    /// LUTs whose output folded to a constant or an existing wire.
    pub folded: usize,
    /// LUTs merged into an identical earlier LUT.
    pub merged: usize,
    /// LUTs removed because nothing read them.
    pub dead: usize,
}

impl OptStats {
    /// Fractional area saving.
    pub fn saving(&self) -> f64 {
        if self.luts_before == 0 {
            0.0
        } else {
            1.0 - self.luts_after as f64 / self.luts_before as f64
        }
    }
}

/// Where an original net ended up after optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    /// A known constant.
    Const(bool),
    /// A net in the rebuilt netlist, possibly logically inverted —
    /// inversions are free because they fold into the consuming LUT's
    /// truth table.
    Net(NetId, bool),
}

/// Fixes input position `k` of a truth table to constant `v`.
fn fix_input(truth: u16, k: usize, v: bool) -> u16 {
    let mut out = 0u16;
    for p in 0..16usize {
        let mut q = p & !(1 << k);
        if v {
            q |= 1 << k;
        }
        if truth >> q & 1 == 1 {
            out |= 1 << p;
        }
    }
    out
}

/// Inverts input position `k` of a truth table.
fn invert_input(truth: u16, k: usize) -> u16 {
    let mut out = 0u16;
    for p in 0..16usize {
        if truth >> (p ^ (1 << k)) & 1 == 1 {
            out |= 1 << p;
        }
    }
    out
}

/// Whether the truth table depends on input position `k`.
fn depends_on(truth: u16, k: usize) -> bool {
    for p in 0..16usize {
        let flipped = p ^ (1 << k);
        if (truth >> p & 1) != (truth >> flipped & 1) {
            return true;
        }
    }
    false
}

/// Optimises `netlist`, returning the smaller equivalent and a report.
///
/// # Errors
///
/// Returns [`FabricError::NetlistInvalid`] only if reconstruction
/// fails, which would indicate an internal bug; the input is already
/// validated.
///
/// # Examples
///
/// ```
/// use aaod_fabric::{NetlistBuilder, opt::optimize};
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input();
/// let zero = b.zero();
/// let dead = b.and2(x, zero);  // always 0
/// let keep = b.or2(x, dead);   // == x
/// b.output(keep);
/// let (opt, stats) = optimize(&b.finish()?)?;
/// assert_eq!(opt.n_luts(), 0); // the output is just the input wire
/// assert!(stats.saving() > 0.0);
/// # Ok::<(), aaod_fabric::FabricError>(())
/// ```
pub fn optimize(netlist: &Netlist) -> Result<(Netlist, OptStats), FabricError> {
    // folding can orphan logic that the pre-pass reachability kept, so
    // iterate to a fixed point (bounded; each pass strictly shrinks)
    let mut current = netlist.clone();
    let mut total = OptStats {
        luts_before: netlist.n_luts(),
        ..OptStats::default()
    };
    loop {
        let (next, stats) = optimize_once(&current)?;
        total.folded += stats.folded;
        total.merged += stats.merged;
        total.dead += stats.dead;
        let shrunk = next.n_luts() < current.n_luts();
        current = next;
        if !shrunk {
            break;
        }
    }
    total.luts_after = current.n_luts();
    Ok((current, total))
}

/// One optimisation pass (see [`optimize`]).
fn optimize_once(netlist: &Netlist) -> Result<(Netlist, OptStats), FabricError> {
    let n_inputs = netlist.n_inputs();
    let first_lut_net = 2 + n_inputs;
    let mut stats = OptStats {
        luts_before: netlist.n_luts(),
        ..OptStats::default()
    };

    // Backward reachability: which original LUTs feed an output?
    let mut needed = vec![false; first_lut_net + netlist.n_luts()];
    for out in netlist.outputs() {
        needed[out.index()] = true;
    }
    for (i, lut) in netlist.luts().iter().enumerate().rev() {
        if needed[first_lut_net + i] {
            for inp in lut.inputs {
                needed[inp.index()] = true;
            }
        }
    }

    let mut builder = NetlistBuilder::new();
    let mut value: Vec<Value> = Vec::with_capacity(first_lut_net + netlist.n_luts());
    value.push(Value::Const(false));
    value.push(Value::Const(true));
    for _ in 0..n_inputs {
        let net = builder.input();
        value.push(Value::Net(net, false));
    }
    let mut cse: HashMap<(u16, [NetId; 4]), NetId> = HashMap::new();

    for (i, lut) in netlist.luts().iter().enumerate() {
        if !needed[first_lut_net + i] {
            stats.dead += 1;
            value.push(Value::Const(false)); // placeholder, never read
            continue;
        }
        // resolve inputs, folding constants into the truth table
        let mut truth = lut.truth;
        let mut inputs = [NetId::ZERO; 4];
        for (k, inp) in lut.inputs.iter().enumerate() {
            match value[inp.index()] {
                Value::Const(v) => {
                    truth = fix_input(truth, k, v);
                    inputs[k] = NetId::ZERO;
                }
                Value::Net(net, inv) => {
                    if inv {
                        truth = invert_input(truth, k);
                    }
                    inputs[k] = net;
                }
            }
        }
        // tie duplicate inputs together: if positions j and k carry
        // the same net, make k mirror j in the truth table so k
        // becomes a don't-care (this is what folds xor(x, x) to 0)
        for j in 0..4 {
            for k in j + 1..4 {
                if inputs[j] == inputs[k] && inputs[j] != NetId::ZERO {
                    let mut tied = 0u16;
                    for p in 0..16usize {
                        let bj = p >> j & 1;
                        let q = (p & !(1 << k)) | (bj << k);
                        if truth >> q & 1 == 1 {
                            tied |= 1 << p;
                        }
                    }
                    truth = tied;
                    inputs[k] = NetId::ZERO;
                }
            }
        }
        // detach inputs outside the support
        for (k, slot) in inputs.iter_mut().enumerate() {
            if !depends_on(truth, k) {
                truth = fix_input(truth, k, false);
                *slot = NetId::ZERO;
            }
        }
        let support: Vec<usize> = (0..4).filter(|&k| depends_on(truth, k)).collect();
        let out_value = if support.is_empty() {
            stats.folded += 1;
            Value::Const(truth & 1 == 1)
        } else if support.len() == 1 {
            let k = support[0];
            let identity = (0..16usize).all(|p| (truth >> p & 1 == 1) == (p >> k & 1 == 1));
            let negation = (0..16usize).all(|p| (truth >> p & 1 == 1) != (p >> k & 1 == 1));
            if identity {
                stats.folded += 1;
                Value::Net(inputs[k], false)
            } else if negation {
                // inverters are free: fold into the consumers
                stats.folded += 1;
                Value::Net(inputs[k], true)
            } else {
                emit(&mut builder, &mut cse, truth, inputs, &mut stats)
            }
        } else {
            emit(&mut builder, &mut cse, truth, inputs, &mut stats)
        };
        value.push(out_value);
    }

    for out in netlist.outputs() {
        let net = match value[out.index()] {
            Value::Const(false) => builder.zero(),
            Value::Const(true) => builder.one(),
            Value::Net(net, false) => net,
            Value::Net(net, true) => {
                // an inversion that reaches a primary output must be
                // materialised as a NOT lut (shared via cse)
                let not_truth = 0x5555u16;
                let inputs = [net, NetId::ZERO, NetId::ZERO, NetId::ZERO];
                match emit(&mut builder, &mut cse, not_truth, inputs, &mut stats) {
                    Value::Net(n, _) => n,
                    Value::Const(_) => unreachable!("emit never returns a constant"),
                }
            }
        };
        builder.output(net);
    }
    let optimized = builder.finish()?;
    stats.luts_after = optimized.n_luts();
    Ok((optimized, stats))
}

/// Emits a LUT, reusing an identical one when possible.
fn emit(
    builder: &mut NetlistBuilder,
    cse: &mut HashMap<(u16, [NetId; 4]), NetId>,
    truth: u16,
    inputs: [NetId; 4],
    stats: &mut OptStats,
) -> Value {
    if let Some(&net) = cse.get(&(truth, inputs)) {
        stats.merged += 1;
        return Value::Net(net, false);
    }
    let net = builder.lut4(truth, inputs);
    cse.insert((truth, inputs), net);
    Value::Net(net, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaod_sim::SplitMix64;

    fn equivalent(a: &Netlist, b: &Netlist, samples: usize, seed: u64) {
        assert_eq!(a.n_inputs(), b.n_inputs());
        assert_eq!(a.n_outputs(), b.n_outputs());
        let mut rng = SplitMix64::new(seed);
        for _ in 0..samples {
            let inputs: Vec<bool> = (0..a.n_inputs()).map(|_| rng.chance(0.5)).collect();
            assert_eq!(a.eval(&inputs), b.eval(&inputs), "inputs {inputs:?}");
        }
    }

    #[test]
    fn folds_constants() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let one = b.one();
        let t = b.and2(x, one); // == x
        let f = b.and2(t, b.zero()); // == 0
        let o = b.or2(x, f); // == x
        b.output(o);
        let nl = b.finish().unwrap();
        let (opt, stats) = optimize(&nl).unwrap();
        assert_eq!(opt.n_luts(), 0);
        assert!(stats.folded >= 2);
        equivalent(&nl, &opt, 4, 1);
    }

    #[test]
    fn removes_dead_logic() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let _unused = b.xor2(x, y);
        let o = b.and2(x, y);
        b.output(o);
        let nl = b.finish().unwrap();
        let (opt, stats) = optimize(&nl).unwrap();
        assert_eq!(opt.n_luts(), 1);
        assert_eq!(stats.dead, 1);
        equivalent(&nl, &opt, 8, 2);
    }

    #[test]
    fn merges_duplicates() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let a1 = b.and2(x, y);
        let a2 = b.and2(x, y); // identical
        let o = b.xor2(a1, a2); // == 0 after merge
        b.output(o);
        let nl = b.finish().unwrap();
        let (opt, stats) = optimize(&nl).unwrap();
        assert!(stats.merged >= 1);
        // after the merge, xor(a, a) ties to constant zero and the
        // shared AND is left unread by the single output
        assert_eq!(opt.n_luts(), 0);
        equivalent(&nl, &opt, 8, 3);
    }

    #[test]
    fn constant_output_maps_to_const_net() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let nx = b.not(x);
        let o = b.or2(x, nx); // tautology
        b.output(o);
        let nl = b.finish().unwrap();
        let (opt, _) = optimize(&nl).unwrap();
        assert_eq!(opt.n_luts(), 0);
        assert!(opt.eval(&[false])[0]);
        assert!(opt.eval(&[true])[0]);
    }

    #[test]
    fn xor_with_self_is_zero() {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let o = b.xor2(x, x);
        b.output(o);
        let (opt, _) = optimize(&b.finish().unwrap()).unwrap();
        assert_eq!(opt.n_luts(), 0);
        assert!(!opt.eval(&[true])[0]);
    }

    #[test]
    fn shrinks_popcount_substantially() {
        // popcount built from ripple adders wastes many constant-zero
        // adder stages; the optimiser must reclaim them.
        let mut b = NetlistBuilder::new();
        let bits = b.inputs(8);
        let zero = b.zero();
        let mut acc = vec![bits[0], zero, zero, zero];
        for &bit in &bits[1..] {
            let addend = vec![bit, zero, zero, zero];
            let (sum, _) = b.ripple_add(&acc, &addend);
            acc = sum;
        }
        b.output_vec(&acc);
        let nl = b.finish().unwrap();
        let (opt, stats) = optimize(&nl).unwrap();
        assert!(
            (opt.n_luts() as f64) <= nl.n_luts() as f64 * 0.75,
            "expected >=25% shrink: {} -> {}",
            nl.n_luts(),
            opt.n_luts()
        );
        assert!(stats.saving() >= 0.25);
        equivalent(&nl, &opt, 64, 4);
    }

    #[test]
    fn optimizing_twice_is_idempotent_in_size() {
        let mut b = NetlistBuilder::new();
        let ins = b.inputs(8);
        let p = b.xor_reduce(&ins);
        b.output(p);
        let nl = b.finish().unwrap();
        let (o1, _) = optimize(&nl).unwrap();
        let (o2, _) = optimize(&o1).unwrap();
        assert_eq!(o1.n_luts(), o2.n_luts());
        equivalent(&nl, &o2, 32, 5);
    }

    #[test]
    fn fix_input_and_depends_on() {
        // truth = AND of inputs 0 and 1
        let truth = 0x8888u16;
        assert!(depends_on(truth, 0));
        assert!(depends_on(truth, 1));
        assert!(!depends_on(truth, 2));
        assert_eq!(fix_input(truth, 0, true), 0xCCCC); // reduces to input 1
        assert_eq!(fix_input(truth, 0, false), 0x0000);
    }
}

//! The host-visible command ISA.
//!
//! "The system can be operated by issuing instructions to the
//! microcontroller through the PCI" (paper §2.1). This module defines
//! that instruction set and its wire encoding: the host driver
//! serialises a [`Command`], ships it across PCI, and the controller
//! [`crate::MiniOs::dispatch`]es it, returning a serialised
//! [`Response`].
//!
//! Wire format (little-endian): `opcode u8 · payload_len u32 ·
//! payload`. Responses: `status u8 (0 = ok) · payload_len u32 ·
//! payload`.

use crate::error::McuError;

/// Command opcodes.
const OP_DOWNLOAD: u8 = 1;
const OP_INVOKE: u8 = 2;
const OP_EVICT: u8 = 3;
const OP_QUERY_RESIDENT: u8 = 4;
const OP_QUERY_STATS: u8 = 5;
const OP_RESET: u8 = 6;

/// An instruction the host issues to the microcontroller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Store a compressed bitstream (with its record) in the ROM.
    Download {
        /// The encoded bitstream (header + payload).
        bitstream: Vec<u8>,
    },
    /// Execute a function on the given operand bytes.
    Invoke {
        /// Function to run.
        algo_id: u16,
        /// Operand bytes.
        input: Vec<u8>,
    },
    /// Remove a resident function from the fabric.
    Evict {
        /// Function to evict.
        algo_id: u16,
    },
    /// Ask which functions are currently configured.
    QueryResident,
    /// Ask for the controller's counters.
    QueryStats,
    /// Power-cycle the fabric: erase the device, clear the ledgers and
    /// counters. The ROM (flash) survives.
    Reset,
}

impl Command {
    /// Serialises the command to its wire form.
    pub fn encode(&self) -> Vec<u8> {
        let (op, payload): (u8, Vec<u8>) = match self {
            Command::Download { bitstream } => (OP_DOWNLOAD, bitstream.clone()),
            Command::Invoke { algo_id, input } => {
                let mut p = algo_id.to_le_bytes().to_vec();
                p.extend_from_slice(input);
                (OP_INVOKE, p)
            }
            Command::Evict { algo_id } => (OP_EVICT, algo_id.to_le_bytes().to_vec()),
            Command::QueryResident => (OP_QUERY_RESIDENT, Vec::new()),
            Command::QueryStats => (OP_QUERY_STATS, Vec::new()),
            Command::Reset => (OP_RESET, Vec::new()),
        };
        let mut out = Vec::with_capacity(5 + payload.len());
        out.push(op);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses a command from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::RecordMismatch`] (the controller's generic
    /// protocol-error channel) for truncated or unknown encodings.
    pub fn decode(bytes: &[u8]) -> Result<Self, McuError> {
        if bytes.len() < 5 {
            return Err(McuError::RecordMismatch(
                "command shorter than its header".into(),
            ));
        }
        let op = bytes[0];
        let len = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]) as usize;
        if bytes.len() < 5 + len {
            return Err(McuError::RecordMismatch(format!(
                "command payload truncated: declared {len}, have {}",
                bytes.len() - 5
            )));
        }
        let payload = &bytes[5..5 + len];
        match op {
            OP_DOWNLOAD => Ok(Command::Download {
                bitstream: payload.to_vec(),
            }),
            OP_INVOKE => {
                if payload.len() < 2 {
                    return Err(McuError::RecordMismatch(
                        "invoke payload missing algorithm id".into(),
                    ));
                }
                Ok(Command::Invoke {
                    algo_id: u16::from_le_bytes([payload[0], payload[1]]),
                    input: payload[2..].to_vec(),
                })
            }
            OP_EVICT => {
                if payload.len() != 2 {
                    return Err(McuError::RecordMismatch(
                        "evict payload must be an algorithm id".into(),
                    ));
                }
                Ok(Command::Evict {
                    algo_id: u16::from_le_bytes([payload[0], payload[1]]),
                })
            }
            OP_QUERY_RESIDENT => Ok(Command::QueryResident),
            OP_QUERY_STATS => Ok(Command::QueryStats),
            OP_RESET => Ok(Command::Reset),
            other => Err(McuError::RecordMismatch(format!(
                "unknown command opcode {other}"
            ))),
        }
    }

    /// Wire size of the encoded command (what crosses the PCI bus).
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }
}

/// The controller's reply to a [`Command`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Command completed with no data (download, evict, reset).
    Done,
    /// Invocation output bytes.
    Output(Vec<u8>),
    /// Resident algorithm ids.
    Resident(Vec<u16>),
    /// Controller counters: requests, hits, misses, evictions.
    Stats {
        /// Total requests serviced.
        requests: u64,
        /// Residency hits.
        hits: u64,
        /// Residency misses.
        misses: u64,
        /// Evictions performed.
        evictions: u64,
    },
}

impl Response {
    /// Serialises the response to its wire form.
    pub fn encode(&self) -> Vec<u8> {
        let payload: Vec<u8> = match self {
            Response::Done => Vec::new(),
            Response::Output(data) => {
                let mut p = vec![1u8];
                p.extend_from_slice(data);
                p
            }
            Response::Resident(ids) => {
                let mut p = vec![2u8];
                for id in ids {
                    p.extend_from_slice(&id.to_le_bytes());
                }
                p
            }
            Response::Stats {
                requests,
                hits,
                misses,
                evictions,
            } => {
                let mut p = vec![3u8];
                for v in [requests, hits, misses, evictions] {
                    p.extend_from_slice(&v.to_le_bytes());
                }
                p
            }
        };
        let mut out = Vec::with_capacity(5 + payload.len());
        out.push(0); // status ok
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses a response from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::RecordMismatch`] for malformed encodings.
    pub fn decode(bytes: &[u8]) -> Result<Self, McuError> {
        if bytes.len() < 5 || bytes[0] != 0 {
            return Err(McuError::RecordMismatch("malformed response".into()));
        }
        let len = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]) as usize;
        if bytes.len() < 5 + len {
            return Err(McuError::RecordMismatch("response truncated".into()));
        }
        let payload = &bytes[5..5 + len];
        if payload.is_empty() {
            return Ok(Response::Done);
        }
        match payload[0] {
            1 => Ok(Response::Output(payload[1..].to_vec())),
            2 => {
                if !(payload.len() - 1).is_multiple_of(2) {
                    return Err(McuError::RecordMismatch(
                        "resident list is not whole u16s".into(),
                    ));
                }
                Ok(Response::Resident(
                    payload[1..]
                        .chunks_exact(2)
                        .map(|c| u16::from_le_bytes([c[0], c[1]]))
                        .collect(),
                ))
            }
            3 => {
                if payload.len() != 1 + 32 {
                    return Err(McuError::RecordMismatch("stats payload wrong size".into()));
                }
                let mut vals = [0u64; 4];
                for (i, v) in vals.iter_mut().enumerate() {
                    *v = u64::from_le_bytes(
                        payload[1 + i * 8..9 + i * 8]
                            .try_into()
                            .expect("length checked"),
                    );
                }
                Ok(Response::Stats {
                    requests: vals[0],
                    hits: vals[1],
                    misses: vals[2],
                    evictions: vals[3],
                })
            }
            other => Err(McuError::RecordMismatch(format!(
                "unknown response tag {other}"
            ))),
        }
    }

    /// Wire size of the encoded response.
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(cmd: Command) {
        let bytes = cmd.encode();
        assert_eq!(Command::decode(&bytes).unwrap(), cmd);
    }

    #[test]
    fn command_roundtrips() {
        roundtrip(Command::Download {
            bitstream: vec![1, 2, 3, 4, 5],
        });
        roundtrip(Command::Invoke {
            algo_id: 7,
            input: b"payload".to_vec(),
        });
        roundtrip(Command::Invoke {
            algo_id: 7,
            input: Vec::new(),
        });
        roundtrip(Command::Evict { algo_id: 300 });
        roundtrip(Command::QueryResident);
        roundtrip(Command::QueryStats);
        roundtrip(Command::Reset);
    }

    #[test]
    fn response_roundtrips() {
        for resp in [
            Response::Done,
            Response::Output(vec![9; 40]),
            Response::Output(Vec::new()),
            Response::Resident(vec![1, 2, 3]),
            Response::Resident(Vec::new()),
            Response::Stats {
                requests: 10,
                hits: 7,
                misses: 3,
                evictions: 1,
            },
        ] {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn truncated_command_rejected() {
        assert!(Command::decode(&[1, 2]).is_err());
        let mut enc = Command::Invoke {
            algo_id: 1,
            input: vec![1, 2, 3],
        }
        .encode();
        enc.truncate(enc.len() - 1);
        assert!(Command::decode(&enc).is_err());
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(Command::decode(&[99, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn empty_resident_decodes_as_done() {
        // An empty Resident list encodes a 1-byte tag; a Done encodes
        // nothing — they stay distinguishable.
        let done = Response::Done.encode();
        let empty = Response::Resident(Vec::new()).encode();
        assert_ne!(done, empty);
        assert_eq!(
            Response::decode(&empty).unwrap(),
            Response::Resident(Vec::new())
        );
    }

    #[test]
    fn wire_len_matches_encoding() {
        let cmd = Command::Invoke {
            algo_id: 3,
            input: vec![0; 100],
        };
        assert_eq!(cmd.wire_len(), cmd.encode().len());
    }
}

//! The configuration module (paper §2.3).
//!
//! "The configuration module decompresses the compressed bit-stream
//! window by window and passes the configuration bit-stream to the
//! FPGA to configure it." [`ConfigModule`] does exactly that: it holds
//! a fixed decompression window buffer, pulls windows from the codec's
//! streaming decoder, assembles them into whole frames, and writes each
//! completed frame through the [`ConfigPort`] to its assigned (possibly
//! non-contiguous) frame address.
//!
//! The window size bounds on-card buffer memory; experiment E8 sweeps
//! it to expose the window/latency trade-off.

use crate::error::McuError;
use aaod_bitstream::canon::decanon_frame;
use aaod_bitstream::codec::deltav2::DeltaV2Reader;
use aaod_bitstream::codec::CodecId;
use aaod_bitstream::crc::crc32;
use aaod_bitstream::{BitstreamError, BitstreamHeader, FrameKey, FrameStore, HEADER_BYTES};
use aaod_fabric::{ConfigPort, Device, FrameAddress};
use aaod_sim::{Clock, SimTime};
use std::sync::Arc;

/// Fixed per-window management overhead (buffer pointer updates,
/// handshake with the port) in microcontroller cycles.
const WINDOW_OVERHEAD_CYCLES: u64 = 20;

/// Cycles per byte to serve a frame from the content-addressed store
/// (a RAM copy plus the CRC guard) — cheaper than any decompressor.
const STORE_HIT_CYCLES_PER_BYTE: u64 = 1;

/// Timing breakdown of one configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfigReport {
    /// Time spent decompressing (microcontroller domain).
    pub decompress_time: SimTime,
    /// Time spent shifting frames through the configuration port.
    pub port_time: SimTime,
    /// Number of decompression windows pulled.
    pub windows: u64,
    /// Frames written.
    pub frames_written: usize,
    /// Decompressed bytes produced.
    pub bytes: usize,
}

impl ConfigReport {
    /// Total configuration time.
    pub fn total(&self) -> SimTime {
        self.decompress_time + self.port_time
    }
}

/// The windowed decompress-and-configure engine.
///
/// The window and frame-assembly buffers live in the module (as the
/// paper's fixed on-card buffer does) and are reused across
/// configurations, so the reconfiguration hot path performs no
/// per-call buffer allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigModule {
    window: usize,
    clock: Clock,
    /// Reusable decompression window (exactly `window` bytes).
    window_buf: Vec<u8>,
    /// Reusable frame-assembly buffer (grows to one frame).
    frame_buf: Vec<u8>,
}

impl ConfigModule {
    /// Creates a module with a `window`-byte decompression buffer.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize, clock: Clock) -> Self {
        assert!(window > 0, "window must be non-zero");
        ConfigModule {
            window,
            clock,
            window_buf: vec![0u8; window],
            frame_buf: Vec::new(),
        }
    }

    /// The window buffer size in bytes.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Decompresses `encoded` (header + payload, as stored in ROM) and
    /// configures `device` at `addrs` through `port`.
    ///
    /// `addrs` must supply exactly the number of frames the header
    /// declares; frames are written in order as they complete, so a
    /// failure mid-stream leaves a *torn* configuration — which the
    /// image digest will catch at execution time, exactly the hazard
    /// the digest exists for.
    ///
    /// # Errors
    ///
    /// Returns header/CRC/codec errors from the bitstream layer,
    /// [`McuError::RecordMismatch`] if `addrs` disagrees with the
    /// header's frame count, and fabric errors from the port writes.
    pub fn configure(
        &mut self,
        encoded: &[u8],
        device: &mut Device,
        port: &ConfigPort,
        addrs: &[FrameAddress],
    ) -> Result<ConfigReport, McuError> {
        self.configure_inner(encoded, device, port, addrs, false)
            .map(|(report, _)| report)
    }

    /// As [`ConfigModule::configure`], but also returns the decoded
    /// frames so the caller can retain them (the decoded-bitstream
    /// cache does).
    ///
    /// # Errors
    ///
    /// As [`ConfigModule::configure`].
    pub fn configure_collect(
        &mut self,
        encoded: &[u8],
        device: &mut Device,
        port: &ConfigPort,
        addrs: &[FrameAddress],
    ) -> Result<(ConfigReport, Vec<Vec<u8>>), McuError> {
        self.configure_inner(encoded, device, port, addrs, true)
    }

    /// Configures `device` at `addrs` from already-decoded `frames`
    /// (a decoded-bitstream cache hit): no ROM fetch and no
    /// decompression happen, so the report carries configuration-port
    /// time only.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::RecordMismatch`] if the frame count or any
    /// frame's size disagrees with `addrs`/the device geometry, and
    /// fabric errors from the port writes.
    pub fn configure_decoded(
        &self,
        frames: &[Vec<u8>],
        device: &mut Device,
        port: &ConfigPort,
        addrs: &[FrameAddress],
    ) -> Result<ConfigReport, McuError> {
        if addrs.len() != frames.len() {
            return Err(McuError::RecordMismatch(format!(
                "{} frame addresses supplied for {} decoded frames",
                addrs.len(),
                frames.len()
            )));
        }
        let frame_bytes = device.geometry().frame_bytes();
        let mut report = ConfigReport::default();
        for (frame, &addr) in frames.iter().zip(addrs) {
            if frame.len() != frame_bytes {
                return Err(McuError::RecordMismatch(format!(
                    "decoded frame size {} != device frame size {frame_bytes}",
                    frame.len()
                )));
            }
            report.port_time += port.write_frame(device, addr, frame)?;
            report.frames_written += 1;
            report.bytes += frame.len();
        }
        Ok(report)
    }

    /// Configures from a DeltaV2 bitstream through the
    /// content-addressed frame `store` (the v2 partial-reconfig miss
    /// path): each frame record's store hint is probed first — an
    /// exact-content hit serves the resident bytes, a canonical-class
    /// hit rebuilds them via the recorded inverse permutation — and
    /// only missing frames are decoded. Every served frame is
    /// CRC-guarded against the record's hint, so a store hit is always
    /// byte-equal to a full decode; decoded frames are inserted for
    /// future bitstreams. Returns the decoded frames alongside the
    /// report, as [`ConfigModule::configure_collect`] does.
    ///
    /// Timing: store-served bytes cost [`STORE_HIT_CYCLES_PER_BYTE`],
    /// decoded bytes the codec's per-byte rate; each frame counts as
    /// one window.
    ///
    /// # Errors
    ///
    /// Returns header/CRC/codec errors from the bitstream layer,
    /// [`McuError::RecordMismatch`] if the bitstream is not DeltaV2 or
    /// disagrees with `addrs`/the device geometry, and fabric errors
    /// from the port writes.
    pub fn configure_v2(
        &mut self,
        encoded: &[u8],
        store: &mut FrameStore,
        device: &mut Device,
        port: &ConfigPort,
        addrs: &[FrameAddress],
    ) -> Result<(ConfigReport, Vec<Vec<u8>>), McuError> {
        let header = BitstreamHeader::parse(encoded)?;
        let payload = &encoded[HEADER_BYTES..];
        header.verify_payload(payload)?;
        if header.codec != CodecId::DeltaV2 {
            return Err(McuError::RecordMismatch(format!(
                "configure_v2 on a {} bitstream",
                header.codec
            )));
        }
        if addrs.len() != header.n_frames as usize {
            return Err(McuError::RecordMismatch(format!(
                "{} frame addresses supplied for a {}-frame bitstream",
                addrs.len(),
                header.n_frames
            )));
        }
        let frame_bytes = header.frame_bytes as usize;
        if frame_bytes != device.geometry().frame_bytes() {
            return Err(McuError::RecordMismatch(format!(
                "bitstream frame size {} != device frame size {}",
                frame_bytes,
                device.geometry().frame_bytes()
            )));
        }
        let decode_cost = header.make_codec().cycles_per_output_byte();
        let mut reader = DeltaV2Reader::new(frame_bytes, payload)?;
        if reader.total_len() != addrs.len() * frame_bytes {
            return Err(McuError::Bitstream(BitstreamError::CorruptPayload(
                format!(
                    "delta-v2 stream declares {} bytes for {} frames of {frame_bytes}",
                    reader.total_len(),
                    addrs.len()
                ),
            )));
        }
        let mut report = ConfigReport::default();
        let mut collected: Vec<Vec<u8>> = Vec::with_capacity(addrs.len());
        let mut decompress_cycles = 0u64;
        let mut next_frame = 0usize;
        while let Some(record) = reader.next_record()? {
            // probe the store before spending decompressor cycles; the
            // CRC guard turns any hash mismatch into a plain decode
            let mut served: Option<Arc<Vec<u8>>> = None;
            if let Some(hint) = record.hint.filter(|_| store.is_enabled()) {
                let key = FrameKey {
                    canon: hint.canon_hash,
                    raw: hint.raw_hash,
                };
                if store.contains(key) {
                    let frame = store.get_raw(key).expect("contains checked");
                    if frame.len() == record.expected_len && crc32(&frame) == hint.frame_crc {
                        served = Some(frame);
                    }
                } else if let Some(canonical) = store.get_canon(hint.canon_hash) {
                    let frame = decanon_frame(&canonical, hint.perm);
                    if frame.len() == record.expected_len && crc32(&frame) == hint.frame_crc {
                        served = Some(Arc::new(frame));
                    }
                }
            }
            let frame = match served {
                Some(frame) => {
                    decompress_cycles += STORE_HIT_CYCLES_PER_BYTE * frame.len() as u64;
                    reader.accept_frame(&record, Arc::clone(&frame))?;
                    frame
                }
                None => {
                    let frame = reader.decode_record(&record)?;
                    decompress_cycles += decode_cost * frame.len() as u64;
                    store.insert(&frame);
                    frame
                }
            };
            report.windows += 1;
            report.bytes += frame.len();
            report.port_time += port.write_frame(device, addrs[next_frame], &frame)?;
            collected.push(frame.as_ref().clone());
            next_frame += 1;
        }
        decompress_cycles += WINDOW_OVERHEAD_CYCLES * report.windows;
        report.decompress_time = self.clock.cycles(decompress_cycles);
        report.frames_written = next_frame;
        Ok((report, collected))
    }

    fn configure_inner(
        &mut self,
        encoded: &[u8],
        device: &mut Device,
        port: &ConfigPort,
        addrs: &[FrameAddress],
        collect: bool,
    ) -> Result<(ConfigReport, Vec<Vec<u8>>), McuError> {
        let header = BitstreamHeader::parse(encoded)?;
        let payload = &encoded[HEADER_BYTES..];
        header.verify_payload(payload)?;
        if addrs.len() != header.n_frames as usize {
            return Err(McuError::RecordMismatch(format!(
                "{} frame addresses supplied for a {}-frame bitstream",
                addrs.len(),
                header.n_frames
            )));
        }
        let frame_bytes = header.frame_bytes as usize;
        if frame_bytes != device.geometry().frame_bytes() {
            return Err(McuError::RecordMismatch(format!(
                "bitstream frame size {} != device frame size {}",
                frame_bytes,
                device.geometry().frame_bytes()
            )));
        }
        let codec = header.make_codec();
        let mut decoder = codec.decompressor(payload);
        let window_buf = &mut self.window_buf;
        let frame_buf = &mut self.frame_buf;
        frame_buf.clear();
        frame_buf.reserve(frame_bytes);
        let mut report = ConfigReport::default();
        let mut next_frame = 0usize;
        let mut collected: Vec<Vec<u8>> = Vec::new();

        loop {
            let n = decoder.read(window_buf)?;
            if n == 0 {
                break;
            }
            report.windows += 1;
            report.bytes += n;
            let mut off = 0;
            while off < n {
                let take = (frame_bytes - frame_buf.len()).min(n - off);
                frame_buf.extend_from_slice(&window_buf[off..off + take]);
                off += take;
                if frame_buf.len() == frame_bytes {
                    if next_frame >= addrs.len() {
                        return Err(McuError::Bitstream(BitstreamError::CorruptPayload(
                            "payload expands past the declared frame count".into(),
                        )));
                    }
                    report.port_time += port.write_frame(device, addrs[next_frame], frame_buf)?;
                    if collect {
                        collected.push(frame_buf.clone());
                    }
                    next_frame += 1;
                    frame_buf.clear();
                }
            }
        }
        if !frame_buf.is_empty() || next_frame != addrs.len() {
            return Err(McuError::Bitstream(BitstreamError::CorruptPayload(
                format!(
                    "payload ended after {next_frame} frames + {} bytes, expected {} frames",
                    frame_buf.len(),
                    addrs.len()
                ),
            )));
        }
        let decompress_cycles = codec.cycles_per_output_byte() * report.bytes as u64
            + WINDOW_OVERHEAD_CYCLES * report.windows;
        report.decompress_time = self.clock.cycles(decompress_cycles);
        report.frames_written = next_frame;
        Ok((report, collected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaod_bitstream::codec::{registry, CodecId};
    use aaod_bitstream::Bitstream;
    use aaod_fabric::{DeviceGeometry, FunctionImage};

    fn setup() -> (DeviceGeometry, Device, ConfigPort, Vec<u8>, usize) {
        let geom = DeviceGeometry::new(16, 2);
        let device = Device::new(geom);
        let port = ConfigPort::selectmap8();
        let image = FunctionImage::from_behavioral(3, &[9, 9], &[0x5A; 300], 8, 8);
        let n = image.frames_needed(geom);
        let bs = Bitstream::from_image(&image, geom);
        let encoded = bs.encode(registry::codec(CodecId::Rle, geom.frame_bytes()).as_ref());
        (geom, device, port, encoded, n)
    }

    #[test]
    fn configures_and_decodes_back() {
        let (_geom, mut device, port, encoded, n) = setup();
        let addrs: Vec<FrameAddress> = (0..n as u16).map(FrameAddress).collect();
        let mut module = ConfigModule::new(64, aaod_sim::clock::domains::mcu());
        let report = module
            .configure(&encoded, &mut device, &port, &addrs)
            .unwrap();
        assert_eq!(report.frames_written, n);
        assert!(report.decompress_time > SimTime::ZERO);
        assert!(report.port_time > SimTime::ZERO);
        let img = device.decode_function(&addrs).unwrap();
        assert_eq!(img.algo_id(), 3);
    }

    #[test]
    fn non_contiguous_placement_works() {
        let (_geom, mut device, port, encoded, n) = setup();
        // scatter across the device, reversed order of even frames
        let addrs: Vec<FrameAddress> = (0..16u16)
            .rev()
            .filter(|i| i % 2 == 0)
            .take(n)
            .map(FrameAddress)
            .collect();
        assert_eq!(addrs.len(), n, "test needs {n} even frames");
        let mut module = ConfigModule::new(32, aaod_sim::clock::domains::mcu());
        module
            .configure(&encoded, &mut device, &port, &addrs)
            .unwrap();
        let img = device.decode_function(&addrs).unwrap();
        assert_eq!(img.algo_id(), 3);
    }

    #[test]
    fn window_size_changes_window_count_not_result() {
        let (_geom, _d, port, encoded, n) = setup();
        let addrs: Vec<FrameAddress> = (0..n as u16).map(FrameAddress).collect();
        let mut counts = Vec::new();
        for window in [8usize, 64, 1024] {
            let mut device = Device::new(DeviceGeometry::new(16, 2));
            let mut module = ConfigModule::new(window, aaod_sim::clock::domains::mcu());
            let report = module
                .configure(&encoded, &mut device, &port, &addrs)
                .unwrap();
            counts.push(report.windows);
            assert_eq!(device.decode_function(&addrs).unwrap().algo_id(), 3);
        }
        assert!(counts[0] > counts[1], "smaller window => more windows");
        assert!(counts[1] >= counts[2]);
    }

    #[test]
    fn collect_returns_device_identical_frames() {
        let (_geom, mut device, port, encoded, n) = setup();
        let addrs: Vec<FrameAddress> = (0..n as u16).map(FrameAddress).collect();
        let mut module = ConfigModule::new(64, aaod_sim::clock::domains::mcu());
        let (report, frames) = module
            .configure_collect(&encoded, &mut device, &port, &addrs)
            .unwrap();
        assert_eq!(frames.len(), n);
        assert_eq!(report.frames_written, n);
        for (frame, &addr) in frames.iter().zip(&addrs) {
            assert_eq!(device.read_frame(addr).unwrap(), frame.as_slice());
        }
    }

    #[test]
    fn configure_decoded_skips_decompression_cost() {
        let (_geom, mut device, port, encoded, n) = setup();
        let addrs: Vec<FrameAddress> = (0..n as u16).map(FrameAddress).collect();
        let mut module = ConfigModule::new(64, aaod_sim::clock::domains::mcu());
        let (full, frames) = module
            .configure_collect(&encoded, &mut device, &port, &addrs)
            .unwrap();
        // replay the decoded frames onto a fresh device
        let mut fresh = Device::new(DeviceGeometry::new(16, 2));
        let report = module
            .configure_decoded(&frames, &mut fresh, &port, &addrs)
            .unwrap();
        assert_eq!(report.decompress_time, SimTime::ZERO);
        assert_eq!(report.port_time, full.port_time);
        assert_eq!(report.frames_written, n);
        assert_eq!(fresh.decode_function(&addrs).unwrap().algo_id(), 3);
    }

    #[test]
    fn configure_decoded_validates_shapes() {
        let (_geom, mut device, port, encoded, n) = setup();
        let addrs: Vec<FrameAddress> = (0..n as u16).map(FrameAddress).collect();
        let mut module = ConfigModule::new(64, aaod_sim::clock::domains::mcu());
        let (_, frames) = module
            .configure_collect(&encoded, &mut device, &port, &addrs)
            .unwrap();
        assert!(matches!(
            module.configure_decoded(&frames[1..], &mut device, &port, &addrs),
            Err(McuError::RecordMismatch(_))
        ));
        let mut short = frames.clone();
        short[0].pop();
        assert!(matches!(
            module.configure_decoded(&short, &mut device, &port, &addrs),
            Err(McuError::RecordMismatch(_))
        ));
    }

    #[test]
    fn wrong_address_count_rejected() {
        let (_geom, mut device, port, encoded, n) = setup();
        let addrs: Vec<FrameAddress> = (0..(n as u16 - 1)).map(FrameAddress).collect();
        let mut module = ConfigModule::new(64, aaod_sim::clock::domains::mcu());
        assert!(matches!(
            module.configure(&encoded, &mut device, &port, &addrs),
            Err(McuError::RecordMismatch(_))
        ));
    }

    #[test]
    fn wrong_geometry_rejected() {
        let (_geom, _device, port, encoded, n) = setup();
        let mut other = Device::new(DeviceGeometry::new(16, 4)); // different frame size
        let addrs: Vec<FrameAddress> = (0..n as u16).map(FrameAddress).collect();
        let mut module = ConfigModule::new(64, aaod_sim::clock::domains::mcu());
        assert!(matches!(
            module.configure(&encoded, &mut other, &port, &addrs),
            Err(McuError::RecordMismatch(_))
        ));
    }

    #[test]
    fn corrupt_payload_rejected_by_crc() {
        let (_geom, mut device, port, mut encoded, n) = setup();
        let last = encoded.len() - 1;
        encoded[last] ^= 1;
        let addrs: Vec<FrameAddress> = (0..n as u16).map(FrameAddress).collect();
        let mut module = ConfigModule::new(64, aaod_sim::clock::domains::mcu());
        assert!(matches!(
            module.configure(&encoded, &mut device, &port, &addrs),
            Err(McuError::Bitstream(BitstreamError::CrcMismatch { .. }))
        ));
    }

    #[test]
    #[should_panic(expected = "window must be non-zero")]
    fn zero_window_panics() {
        let _ = ConfigModule::new(0, aaod_sim::clock::domains::mcu());
    }
}

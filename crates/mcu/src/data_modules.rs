//! Data input and output collection modules (paper §2.3).
//!
//! "The data transfer to and from the FPGA takes place through the data
//! input/output modules. Each data transfer is a multiple of the width
//! of the interface bus as specified by the function record present in
//! the ROM." These modules stage data in the local RAM, pad it to a
//! whole number of bus words, and account the RAM and FPGA-bus time.

use crate::error::McuError;
use aaod_mem::{LocalRam, MemTiming};
use aaod_sim::{Clock, SimTime};

/// Bytes the MCU↔FPGA data bus moves per microcontroller cycle
/// (a 64-bit on-card bus).
const FPGA_BUS_BYTES_PER_CYCLE: u64 = 8;

/// Fixed DMA-descriptor setup cost per staged transfer.
const SETUP_CYCLES: u64 = 16;

/// Rounds `len` up to a multiple of the record's interface width.
/// A zero width (malformed record) is treated as 1.
pub fn pad_to_width(len: usize, width: u16) -> usize {
    let w = width.max(1) as usize;
    len.div_ceil(w) * w
}

/// Moves host-supplied operands RAM → FPGA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataInputModule {
    clock: Clock,
}

impl DataInputModule {
    /// Creates the module in the microcontroller clock domain.
    pub fn new(clock: Clock) -> Self {
        DataInputModule { clock }
    }

    /// Stages `input` into RAM at `offset`, pads to `width`, and
    /// returns the padded length plus the modelled staging time
    /// (RAM write + RAM read-back + FPGA-bus transfer).
    ///
    /// # Errors
    ///
    /// Returns [`McuError::RamTooSmall`] if the padded input does not
    /// fit the RAM region.
    pub fn stage(
        &self,
        ram: &mut LocalRam,
        timing: &MemTiming,
        offset: usize,
        input: &[u8],
        width: u16,
    ) -> Result<(usize, SimTime), McuError> {
        let padded = pad_to_width(input.len(), width);
        if offset + padded > ram.size() {
            return Err(McuError::RamTooSmall {
                needed: offset + padded,
                capacity: ram.size(),
            });
        }
        ram.write(offset, input).map_err(McuError::Mem)?;
        if padded > input.len() {
            // explicit zero pad so the FPGA sees whole words
            let pad = vec![0u8; padded - input.len()];
            ram.write(offset + input.len(), &pad)
                .map_err(McuError::Mem)?;
        }
        // DMA-style overlap: the RAM fill and the FPGA-bus drain
        // proceed concurrently, so the slower of the two dominates,
        // plus a fixed descriptor-setup cost.
        let ram_time = timing.ram_time(padded as u64);
        let bus_time = self
            .clock
            .cycles((padded as u64).div_ceil(FPGA_BUS_BYTES_PER_CYCLE));
        Ok((
            padded,
            ram_time.max(bus_time) + self.clock.cycles(SETUP_CYCLES),
        ))
    }
}

/// Collects results FPGA → RAM → (later) host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputCollectionModule {
    clock: Clock,
}

impl OutputCollectionModule {
    /// Creates the module in the microcontroller clock domain.
    pub fn new(clock: Clock) -> Self {
        OutputCollectionModule { clock }
    }

    /// Stores `output` into RAM at `offset` (padded to `width`) and
    /// returns the padded length plus the modelled collection time.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::RamTooSmall`] if the padded output does not
    /// fit the RAM region.
    pub fn collect(
        &self,
        ram: &mut LocalRam,
        timing: &MemTiming,
        offset: usize,
        output: &[u8],
        width: u16,
    ) -> Result<(usize, SimTime), McuError> {
        let padded = pad_to_width(output.len(), width);
        if offset + padded > ram.size() {
            return Err(McuError::RamTooSmall {
                needed: offset + padded,
                capacity: ram.size(),
            });
        }
        ram.write(offset, output).map_err(McuError::Mem)?;
        if padded > output.len() {
            let pad = vec![0u8; padded - output.len()];
            ram.write(offset + output.len(), &pad)
                .map_err(McuError::Mem)?;
        }
        let ram_time = timing.ram_time(padded as u64);
        let bus_time = self
            .clock
            .cycles((padded as u64).div_ceil(FPGA_BUS_BYTES_PER_CYCLE));
        Ok((
            padded,
            ram_time.max(bus_time) + self.clock.cycles(SETUP_CYCLES),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_rounds_up() {
        assert_eq!(pad_to_width(0, 8), 0);
        assert_eq!(pad_to_width(1, 8), 8);
        assert_eq!(pad_to_width(8, 8), 8);
        assert_eq!(pad_to_width(9, 8), 16);
        assert_eq!(pad_to_width(5, 0), 5); // degenerate width treated as 1
    }

    #[test]
    fn stage_pads_and_times() {
        let module = DataInputModule::new(aaod_sim::clock::domains::mcu());
        let mut ram = LocalRam::new(64);
        let timing = MemTiming::default();
        let (padded, t) = module.stage(&mut ram, &timing, 0, &[0xFF; 5], 8).unwrap();
        assert_eq!(padded, 8);
        assert!(t > SimTime::ZERO);
        // pad bytes are zero
        assert_eq!(ram.read(0, 8).unwrap(), &[255, 255, 255, 255, 255, 0, 0, 0]);
    }

    #[test]
    fn stage_rejects_overflow() {
        let module = DataInputModule::new(aaod_sim::clock::domains::mcu());
        let mut ram = LocalRam::new(16);
        let timing = MemTiming::default();
        assert!(matches!(
            module.stage(&mut ram, &timing, 8, &[0; 12], 4),
            Err(McuError::RamTooSmall {
                needed: 20,
                capacity: 16
            })
        ));
    }

    #[test]
    fn collect_mirrors_stage() {
        let module = OutputCollectionModule::new(aaod_sim::clock::domains::mcu());
        let mut ram = LocalRam::new(64);
        let timing = MemTiming::default();
        let (padded, t) = module
            .collect(&mut ram, &timing, 32, &[1, 2, 3], 4)
            .unwrap();
        assert_eq!(padded, 4);
        assert!(t > SimTime::ZERO);
        assert_eq!(ram.read(32, 4).unwrap(), &[1, 2, 3, 0]);
    }

    #[test]
    fn wider_transfers_cost_more_padding() {
        let module = DataInputModule::new(aaod_sim::clock::domains::mcu());
        let timing = MemTiming::default();
        let mut ram = LocalRam::new(4096);
        let (p_narrow, _) = module.stage(&mut ram, &timing, 0, &[0; 100], 4).unwrap();
        let (p_wide, _) = module
            .stage(&mut ram, &timing, 1024, &[0; 100], 64)
            .unwrap();
        assert_eq!(p_narrow, 100);
        assert_eq!(p_wide, 128);
    }
}

//! Decoded-bitstream cache (serving-engine extension).
//!
//! The paper's miss path decompresses the ROM bitstream window by
//! window on *every* swap-in, even when the same function was decoded
//! moments ago and merely evicted from the fabric. This module caches
//! the decompressed frame words in controller RAM: a re-miss after
//! eviction skips the LZSS/Huffman work and pays only the
//! configuration-port cost. The cache is a bounded LRU keyed by
//! `(algo_id, codec)` — the codec participates so a ROM image
//! re-downloaded under a different codec can never alias a stale entry.
//!
//! Recency is tracked with a generation counter: every touch stamps the
//! entry with a fresh generation and re-files it in a `BTreeSet`
//! ordered by stamp, so promotion and victim selection are O(log n)
//! instead of the O(n) list scan a naive LRU deque would pay on every
//! hit in the engine hot loop.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Cache key: the function and the codec its ROM bitstream used.
pub type DecodedKey = (u16, u8);

/// One cached decode: the frames (shared, so a hit hands out a
/// reference-counted pointer instead of cloning the decoded bytes),
/// their byte total, and the generation stamp of the last touch
/// (mirrored in the recency index).
#[derive(Debug, Clone)]
struct Entry {
    frames: Arc<Vec<Vec<u8>>>,
    bytes: usize,
    stamp: u64,
}

/// A bounded LRU of decompressed configuration frames.
#[derive(Debug, Clone, Default)]
pub struct DecodedCache {
    capacity_bytes: usize,
    entries: BTreeMap<DecodedKey, Entry>,
    /// Recency index ordered by generation stamp; the first element is
    /// the least recently used victim.
    recency: BTreeSet<(u64, DecodedKey)>,
    clock: u64,
    bytes: usize,
    lookups: u64,
    hits: u64,
}

impl DecodedCache {
    /// Creates a cache bounded to `capacity_bytes` of decoded frame
    /// data. A zero capacity disables the cache entirely.
    pub fn new(capacity_bytes: usize) -> Self {
        DecodedCache {
            capacity_bytes,
            ..DecodedCache::default()
        }
    }

    /// Whether the cache stores anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// The configured bound in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Decoded bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of cached functions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks `key` up, promoting it to most recently used. The frames
    /// come back as a shared [`Arc`] — an O(1) refcount bump, not a
    /// copy of the decoded bytes — so the caller can keep them past
    /// further cache mutation (eviction included).
    pub fn get(&mut self, key: &DecodedKey) -> Option<Arc<Vec<Vec<u8>>>> {
        self.lookups += 1;
        if !self.entries.contains_key(key) {
            return None;
        }
        self.hits += 1;
        self.touch(*key);
        self.entries.get(key).map(|e| Arc::clone(&e.frames))
    }

    /// Decoded bytes held under `key` (0 when absent); what a hit's
    /// borrowed return avoids cloning.
    pub fn entry_bytes(&self, key: &DecodedKey) -> usize {
        self.entries.get(key).map_or(0, |e| e.bytes)
    }

    /// Lookups performed via [`DecodedCache::get`].
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that found their entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed (`lookups - hits` by construction).
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Removes one entry, returning whether it was present. The
    /// recovery path purges a function's entry after its ROM image is
    /// found corrupt, so a stale decode can never resurrect it.
    pub fn remove(&mut self, key: &DecodedKey) -> bool {
        match self.entries.remove(key) {
            Some(old) => {
                self.bytes -= old.bytes;
                self.recency.remove(&(old.stamp, *key));
                true
            }
            None => false,
        }
    }

    /// Removes every entry for `algo_id`, whatever codec it was decoded
    /// under. Returns the number of entries dropped.
    pub fn remove_algo(&mut self, algo_id: u16) -> usize {
        let keys: Vec<DecodedKey> = self
            .entries
            .range((algo_id, u8::MIN)..=(algo_id, u8::MAX))
            .map(|(k, _)| *k)
            .collect();
        for key in &keys {
            self.remove(key);
        }
        keys.len()
    }

    /// Whether `key` is cached, without promoting it.
    pub fn contains(&self, key: &DecodedKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts decoded `frames` under `key`, evicting least recently
    /// used entries until the byte bound holds. An entry larger than
    /// the whole cache is not stored. Returns the number of entries
    /// evicted.
    pub fn insert(&mut self, key: DecodedKey, frames: Vec<Vec<u8>>) -> usize {
        if !self.is_enabled() {
            return 0;
        }
        let size: usize = frames.iter().map(Vec::len).sum();
        if size > self.capacity_bytes {
            return 0;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.bytes -= old.bytes;
            self.recency.remove(&(old.stamp, key));
        }
        let mut evicted = 0;
        while self.bytes + size > self.capacity_bytes {
            let (_, victim) = self.recency.pop_first().expect("bytes > 0 implies entries");
            let old = self
                .entries
                .remove(&victim)
                .expect("recency tracks entries");
            self.bytes -= old.bytes;
            evicted += 1;
        }
        self.clock += 1;
        self.bytes += size;
        self.recency.insert((self.clock, key));
        self.entries.insert(
            key,
            Entry {
                frames: Arc::new(frames),
                bytes: size,
                stamp: self.clock,
            },
        );
        evicted
    }

    /// Drops every entry but keeps the lookup/hit ledger running: the
    /// population is gone, the measurement history is not. Use
    /// [`DecodedCache::reset_stats`] as well when the surrounding
    /// ledger (e.g. a watchdog card reset) restarts from zero.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
        self.bytes = 0;
    }

    /// Zeroes the lookup/hit counters without touching the cached
    /// entries, so `hits + misses == lookups` holds over exactly the
    /// post-reset population.
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.hits = 0;
    }

    fn touch(&mut self, key: DecodedKey) {
        let entry = self.entries.get_mut(&key).expect("touch requires presence");
        self.recency.remove(&(entry.stamp, key));
        self.clock += 1;
        entry.stamp = self.clock;
        self.recency.insert((self.clock, key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: usize, bytes_each: usize, fill: u8) -> Vec<Vec<u8>> {
        (0..n).map(|_| vec![fill; bytes_each]).collect()
    }

    #[test]
    fn insert_and_get_roundtrip() {
        let mut c = DecodedCache::new(1024);
        assert!(c.is_enabled());
        c.insert((1, 0), frames(3, 16, 0xAA));
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 48);
        let got = c.get(&(1, 0)).expect("cached");
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|f| f == &vec![0xAA; 16]));
        assert!(c.get(&(1, 1)).is_none(), "codec participates in the key");
    }

    #[test]
    fn lru_eviction_under_byte_bound() {
        let mut c = DecodedCache::new(100);
        c.insert((1, 0), frames(1, 40, 1));
        c.insert((2, 0), frames(1, 40, 2));
        // touch 1 so 2 becomes the LRU victim
        assert!(c.get(&(1, 0)).is_some());
        let evicted = c.insert((3, 0), frames(1, 40, 3));
        assert_eq!(evicted, 1);
        assert!(c.contains(&(1, 0)));
        assert!(!c.contains(&(2, 0)));
        assert!(c.contains(&(3, 0)));
        assert!(c.bytes() <= 100);
    }

    #[test]
    fn oversized_entry_not_cached() {
        let mut c = DecodedCache::new(10);
        c.insert((1, 0), frames(1, 11, 0));
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let mut c = DecodedCache::new(100);
        c.insert((1, 0), frames(1, 30, 1));
        c.insert((1, 0), frames(1, 50, 2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 50);
        assert_eq!(c.get(&(1, 0)).unwrap()[0][0], 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = DecodedCache::new(0);
        assert!(!c.is_enabled());
        c.insert((1, 0), frames(1, 1, 0));
        assert!(c.is_empty());
        assert!(c.get(&(1, 0)).is_none());
    }

    #[test]
    fn clear_resets() {
        let mut c = DecodedCache::new(100);
        c.insert((1, 0), frames(2, 10, 0));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn clear_keeps_ledger_reset_stats_zeroes_it() {
        let mut c = DecodedCache::new(100);
        c.insert((1, 0), frames(1, 10, 0));
        assert!(c.get(&(1, 0)).is_some());
        assert!(c.get(&(2, 0)).is_none());
        c.clear();
        assert_eq!(c.lookups(), 2, "clear drops entries, not the ledger");
        assert_eq!(c.hits(), 1);
        c.reset_stats();
        assert_eq!(c.lookups(), 0);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        // post-reset lookups start a fresh, internally consistent ledger
        assert!(c.get(&(1, 0)).is_none());
        assert_eq!(c.lookups(), 1);
        assert_eq!(c.hits() + c.misses(), c.lookups());
    }

    #[test]
    fn counters_reconcile() {
        let mut c = DecodedCache::new(100);
        c.insert((1, 0), frames(1, 10, 0));
        assert!(c.get(&(1, 0)).is_some());
        assert!(c.get(&(2, 0)).is_none());
        assert!(c.get(&(1, 0)).is_some());
        assert_eq!(c.lookups(), 3);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits() + c.misses(), c.lookups());
    }

    #[test]
    fn remove_frees_bytes_and_order() {
        let mut c = DecodedCache::new(100);
        c.insert((1, 0), frames(1, 30, 1));
        c.insert((2, 0), frames(1, 30, 2));
        assert!(c.remove(&(1, 0)));
        assert!(!c.remove(&(1, 0)));
        assert_eq!(c.bytes(), 30);
        assert_eq!(c.len(), 1);
        // removed entry no longer participates in LRU eviction
        c.insert((3, 0), frames(1, 30, 3));
        c.insert((4, 0), frames(1, 30, 4));
        assert!(c.bytes() <= 100);
    }

    #[test]
    fn remove_algo_drops_every_codec() {
        let mut c = DecodedCache::new(100);
        c.insert((7, 0), frames(1, 10, 0));
        c.insert((7, 1), frames(1, 10, 1));
        c.insert((8, 0), frames(1, 10, 2));
        assert_eq!(c.remove_algo(7), 2);
        assert!(!c.contains(&(7, 0)));
        assert!(!c.contains(&(7, 1)));
        assert!(c.contains(&(8, 0)));
        assert_eq!(c.bytes(), 10);
    }

    #[test]
    fn recency_index_matches_entries_under_churn() {
        // deterministic interleaving of insert/get/remove keeps the
        // generation index and the entry map in lockstep
        let mut c = DecodedCache::new(200);
        for i in 0..64u16 {
            c.insert(
                (i % 11, (i % 3) as u8),
                frames(1, 10 + (i as usize % 7), i as u8),
            );
            if i % 2 == 0 {
                let _ = c.get(&((i % 5), 0));
            }
            if i % 7 == 0 {
                c.remove(&((i % 11), (i % 3) as u8));
            }
            assert_eq!(c.recency.len(), c.entries.len());
            let tracked: usize = c.entries.values().map(|e| e.bytes).sum();
            assert_eq!(tracked, c.bytes());
            assert!(c.bytes() <= c.capacity_bytes());
            for (key, entry) in &c.entries {
                assert!(c.recency.contains(&(entry.stamp, *key)));
            }
        }
    }
}

//! Microcontroller error type.

use aaod_algos::AlgoError;
use aaod_bitstream::BitstreamError;
use aaod_fabric::FabricError;
use aaod_mem::MemError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the mini-OS.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum McuError {
    /// A fabric-level failure (bad frame address, corrupt image…).
    Fabric(FabricError),
    /// A bitstream parse/decompress failure.
    Bitstream(BitstreamError),
    /// A ROM or RAM failure.
    Mem(MemError),
    /// An algorithm-bank failure.
    Algo(AlgoError),
    /// The function needs more frames than the whole device has, so no
    /// amount of eviction can make it resident.
    FunctionTooLarge {
        /// The function.
        algo_id: u16,
        /// Frames it needs.
        frames: usize,
        /// Frames in the device.
        device_frames: usize,
    },
    /// The ROM record and the stored bitstream header disagree — the
    /// ROM image is inconsistent.
    RecordMismatch(String),
    /// The staged data exceeds the local RAM.
    RamTooSmall {
        /// Bytes that had to be staged.
        needed: usize,
        /// RAM capacity.
        capacity: usize,
    },
}

impl fmt::Display for McuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McuError::Fabric(e) => write!(f, "fabric: {e}"),
            McuError::Bitstream(e) => write!(f, "bitstream: {e}"),
            McuError::Mem(e) => write!(f, "memory: {e}"),
            McuError::Algo(e) => write!(f, "algorithm: {e}"),
            McuError::FunctionTooLarge {
                algo_id,
                frames,
                device_frames,
            } => write!(
                f,
                "function {algo_id} needs {frames} frames but the device has only {device_frames}"
            ),
            McuError::RecordMismatch(msg) => write!(f, "rom record mismatch: {msg}"),
            McuError::RamTooSmall { needed, capacity } => {
                write!(
                    f,
                    "local ram too small: need {needed} bytes, have {capacity}"
                )
            }
        }
    }
}

impl Error for McuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            McuError::Fabric(e) => Some(e),
            McuError::Bitstream(e) => Some(e),
            McuError::Mem(e) => Some(e),
            McuError::Algo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FabricError> for McuError {
    fn from(e: FabricError) -> Self {
        McuError::Fabric(e)
    }
}

impl From<BitstreamError> for McuError {
    fn from(e: BitstreamError) -> Self {
        McuError::Bitstream(e)
    }
}

impl From<MemError> for McuError {
    fn from(e: MemError) -> Self {
        McuError::Mem(e)
    }
}

impl From<AlgoError> for McuError {
    fn from(e: AlgoError) -> Self {
        McuError::Algo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = McuError::from(MemError::RecordNotFound(4));
        assert!(e.to_string().contains("memory"));
        assert!(e.source().is_some());
        let e = McuError::FunctionTooLarge {
            algo_id: 1,
            frames: 200,
            device_frames: 96,
        };
        assert!(e.to_string().contains("200"));
        assert!(e.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<McuError>();
    }
}

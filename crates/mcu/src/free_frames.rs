//! The Free Frame List (paper §2.5).
//!
//! "The micro-controller's mini OS maintains … Frames in the FPGA which
//! are currently not used to realize any logic and are thus potentially
//! programmable without any intervention to the functions currently
//! being executed, called the Free Frame List."
//!
//! Allocation is first-fit over frame indices and may return a
//! *non-contiguous* set — the paper explicitly allows "a set of
//! contiguous frames or a set of non-contiguous frames".

use aaod_fabric::FrameAddress;

/// Tracks which frames of the device are free.
///
/// # Examples
///
/// ```
/// use aaod_mcu::FreeFrameList;
///
/// let mut list = FreeFrameList::new(8);
/// let a = list.allocate(3).expect("8 frames free");
/// assert_eq!(list.free_count(), 5);
/// list.release(&a);
/// assert_eq!(list.free_count(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeFrameList {
    free: Vec<bool>,
}

impl FreeFrameList {
    /// Creates a list with all `frames` frames free.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "device must have at least one frame");
        FreeFrameList {
            free: vec![true; frames],
        }
    }

    /// Number of frames tracked.
    pub fn total(&self) -> usize {
        self.free.len()
    }

    /// Number of currently free frames.
    pub fn free_count(&self) -> usize {
        self.free.iter().filter(|&&f| f).count()
    }

    /// Whether `addr` is free.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the device.
    pub fn is_free(&self, addr: FrameAddress) -> bool {
        self.free[addr.index()]
    }

    /// Allocates `n` frames first-fit (possibly non-contiguous) and
    /// marks them used. Returns `None` — allocating nothing — when
    /// fewer than `n` frames are free.
    pub fn allocate(&mut self, n: usize) -> Option<Vec<FrameAddress>> {
        if n == 0 {
            return Some(Vec::new());
        }
        if self.free_count() < n {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for (i, slot) in self.free.iter_mut().enumerate() {
            if *slot {
                *slot = false;
                out.push(FrameAddress(i as u16));
                if out.len() == n {
                    break;
                }
            }
        }
        Some(out)
    }

    /// Returns frames to the free list.
    ///
    /// # Panics
    ///
    /// Panics if a frame is already free (double release indicates a
    /// bookkeeping bug) or out of range.
    pub fn release(&mut self, frames: &[FrameAddress]) {
        for &addr in frames {
            assert!(!self.free[addr.index()], "double release of frame {addr}");
            self.free[addr.index()] = true;
        }
    }

    /// Marks specific frames as used (for restoring a known layout).
    ///
    /// # Panics
    ///
    /// Panics if a frame is already used or out of range.
    pub fn reserve(&mut self, frames: &[FrameAddress]) {
        for &addr in frames {
            assert!(self.free[addr.index()], "frame {addr} already reserved");
            self.free[addr.index()] = false;
        }
    }

    /// Frees every frame.
    pub fn reset(&mut self) {
        self.free.fill(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_first_fit() {
        let mut list = FreeFrameList::new(6);
        let a = list.allocate(2).unwrap();
        assert_eq!(a, vec![FrameAddress(0), FrameAddress(1)]);
        let b = list.allocate(2).unwrap();
        assert_eq!(b, vec![FrameAddress(2), FrameAddress(3)]);
    }

    #[test]
    fn allocation_can_be_non_contiguous() {
        let mut list = FreeFrameList::new(6);
        let a = list.allocate(2).unwrap(); // 0,1
        let _b = list.allocate(2).unwrap(); // 2,3
        list.release(&a); // 0,1 free again
        let c = list.allocate(3).unwrap(); // 0,1,4 — hole-spanning
        assert_eq!(c, vec![FrameAddress(0), FrameAddress(1), FrameAddress(4)]);
    }

    #[test]
    fn insufficient_allocation_changes_nothing() {
        let mut list = FreeFrameList::new(4);
        let _ = list.allocate(3).unwrap();
        let before = list.clone();
        assert!(list.allocate(2).is_none());
        assert_eq!(list, before);
    }

    #[test]
    fn zero_allocation_is_empty() {
        let mut list = FreeFrameList::new(2);
        assert_eq!(list.allocate(0).unwrap(), Vec::<FrameAddress>::new());
        assert_eq!(list.free_count(), 2);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut list = FreeFrameList::new(2);
        let a = list.allocate(1).unwrap();
        list.release(&a);
        list.release(&a);
    }

    #[test]
    fn reserve_and_reset() {
        let mut list = FreeFrameList::new(4);
        list.reserve(&[FrameAddress(1), FrameAddress(3)]);
        assert_eq!(list.free_count(), 2);
        assert!(!list.is_free(FrameAddress(3)));
        list.reset();
        assert_eq!(list.free_count(), 4);
    }

    #[test]
    #[should_panic(expected = "already reserved")]
    fn double_reserve_panics() {
        let mut list = FreeFrameList::new(2);
        list.reserve(&[FrameAddress(0)]);
        list.reserve(&[FrameAddress(0)]);
    }
}

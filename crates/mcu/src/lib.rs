//! The PCI microcontroller and its "mini OS".
//!
//! This crate is the paper's core contribution (§2.3 and §2.5): the
//! controller that makes an FPGA co-processor *algorithm-agile*. It
//! provides:
//!
//! * [`FreeFrameList`] — the mini-OS's ledger of frames "currently not
//!   used to realize any logic", allocated first-fit and possibly
//!   non-contiguously.
//! * [`ReplacementTable`] and [`ReplacementPolicy`] — the Frame
//!   Replacement Table ("list of frames occupied by each algorithm …
//!   along with a time stamp") and the policy that picks eviction
//!   victims. The paper specifies least-recently-used; FIFO, LFU,
//!   random and the Belady oracle are provided as experiment baselines.
//! * [`ConfigModule`] — fetches a compressed bitstream from ROM and
//!   "decompresses the compressed bit-stream window by window",
//!   driving the configuration port frame by frame.
//! * [`DataInputModule`] / [`OutputCollectionModule`] — stage operands
//!   in local RAM and move them across the FPGA data bus in multiples
//!   of the record's interface width.
//! * [`MiniOs`] — the complete controller: on an `invoke` it looks up
//!   the ROM record, swaps the function in if it is not resident
//!   (evicting per policy when the free-frame list is insufficient),
//!   executes it *from the configured frame bits*, and collects the
//!   output. Every step is accounted in simulated time.
//!
//! # Examples
//!
//! ```
//! use aaod_algos::{ids, AlgorithmBank};
//! use aaod_mcu::{MiniOs, MiniOsConfig};
//!
//! let mut os = MiniOs::new(MiniOsConfig::default());
//! let encoded = os.encode_bitstream(ids::CRC32)?;
//! os.download(&encoded)?;
//! let (out, report) = os.invoke(ids::CRC32, b"123456789")?;
//! assert_eq!(out, 0xCBF43926u32.to_le_bytes().to_vec());
//! assert!(!report.hit); // first use had to configure the FPGA
//! # Ok::<(), aaod_mcu::McuError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod command;
pub mod config_module;
pub mod data_modules;
pub mod decoded_cache;
pub mod error;
pub mod free_frames;
pub mod mini_os;
pub mod prefetch;
pub mod replacement;
pub mod stats;

pub use command::{Command, Response};
pub use config_module::{ConfigModule, ConfigReport};
pub use data_modules::{DataInputModule, OutputCollectionModule};
pub use decoded_cache::DecodedCache;
pub use error::McuError;
pub use free_frames::FreeFrameList;
pub use mini_os::{InvokeReport, MiniOs, MiniOsConfig, ReconfigMode, ScrubReport};
pub use replacement::{
    BeladyPolicy, FifoPolicy, LfuPolicy, LruPolicy, RandomPolicy, ReplacementPolicy,
    ReplacementTable, Residency,
};
pub use stats::OsStats;

//! The mini-OS: the paper's on-demand algorithm controller (§2.5).
//!
//! "When the host requests the execution of a particular algorithm …
//! the micro-controller is responsible for configuring the FPGA with
//! that relevant configuration bit-stream if the function is not
//! already present on the FPGA." [`MiniOs::invoke`] implements the
//! full request path:
//!
//! 1. look the function up in the ROM record table;
//! 2. if it is not resident, allocate frames from the Free Frame List —
//!    evicting per the replacement policy when the list is
//!    insufficient — and configure them window by window;
//! 3. stage the operands through the data-input module;
//! 4. execute **from the configured frame bits** (netlist evaluation or
//!    digest-checked behavioural dispatch);
//! 5. collect the result through the output-collection module.
//!
//! Every step contributes to a per-invocation [`InvokeReport`] and the
//! cumulative [`OsStats`].

use crate::config_module::{ConfigModule, ConfigReport};
use crate::data_modules::{DataInputModule, OutputCollectionModule};
use crate::decoded_cache::DecodedCache;
use crate::error::McuError;
use crate::free_frames::FreeFrameList;
use crate::replacement::{LruPolicy, ReplacementPolicy, ReplacementTable};
use crate::stats::OsStats;
use aaod_algos::{AlgoError, AlgorithmBank};
use aaod_bitstream::codec::{registry, CodecId};
use aaod_bitstream::{Bitstream, BitstreamHeader, FrameStore, HEADER_BYTES};
use aaod_fabric::{
    run_decoded_netlist, run_decoded_netlist_batch, BatchScratch, ConfigPort, Device,
    DeviceGeometry, FrameAddress, FunctionKind,
};
use aaod_mem::{FunctionRecord, LocalRam, MemError, MemTiming, RecordFields, Rom, RECORD_BYTES};
use aaod_sim::{Clock, SimTime, SplitMix64};

/// How the controller reconfigures the device on a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigMode {
    /// Partial reconfiguration: only the victim/new frames change —
    /// the paper's design.
    Partial,
    /// Full reconfiguration: the whole device is erased and rewritten
    /// on every miss (the baseline a non-partially-reconfigurable
    /// FPGA forces); at most one function is resident at a time.
    Full,
}

/// Construction parameters for [`MiniOs`].
pub struct MiniOsConfig {
    /// Device shape.
    pub geometry: DeviceGeometry,
    /// Configuration ROM capacity in bytes.
    pub rom_capacity: usize,
    /// Local RAM size in bytes.
    pub ram_size: usize,
    /// Decompression window in bytes (paper §2.3).
    pub window: usize,
    /// Codec used by [`MiniOs::encode_bitstream`].
    pub codec: CodecId,
    /// Frame replacement policy.
    pub policy: Box<dyn ReplacementPolicy>,
    /// The algorithm bank behavioural images dispatch into.
    pub bank: AlgorithmBank,
    /// Partial (paper) or full (baseline) reconfiguration.
    pub mode: ReconfigMode,
    /// Speculatively pre-configure the predicted next algorithm
    /// during idle time (extension; see [`crate::prefetch`]). May
    /// evict per the replacement policy, but never the just-invoked
    /// function.
    pub prefetch: bool,
    /// Controller RAM devoted to the decoded-bitstream cache
    /// (extension; see [`crate::decoded_cache`]). Zero disables it,
    /// making every miss decompress from ROM.
    pub decoded_cache_bytes: usize,
    /// Card RAM devoted to the content-addressed frame store probed
    /// by DeltaV2 bitstreams (extension; see
    /// [`aaod_bitstream::FrameStore`]). Zero disables it, making every
    /// DeltaV2 frame decode from its record body. Bitstreams in other
    /// codecs never touch the store, so their behaviour and timing are
    /// unaffected by this knob.
    pub frame_store_bytes: usize,
}

impl Default for MiniOsConfig {
    fn default() -> Self {
        MiniOsConfig {
            geometry: DeviceGeometry::default(),
            rom_capacity: 512 * 1024,
            ram_size: 64 * 1024,
            window: 256,
            codec: CodecId::Lzss,
            policy: Box::new(LruPolicy),
            bank: AlgorithmBank::standard(),
            mode: ReconfigMode::Partial,
            prefetch: false,
            decoded_cache_bytes: 64 * 1024,
            frame_store_bytes: 256 * 1024,
        }
    }
}

impl std::fmt::Debug for MiniOsConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiniOsConfig")
            .field("geometry", &self.geometry)
            .field("rom_capacity", &self.rom_capacity)
            .field("ram_size", &self.ram_size)
            .field("window", &self.window)
            .field("codec", &self.codec)
            .field("policy", &self.policy.name())
            .field("mode", &self.mode)
            .field("prefetch", &self.prefetch)
            .field("decoded_cache_bytes", &self.decoded_cache_bytes)
            .field("frame_store_bytes", &self.frame_store_bytes)
            .finish()
    }
}

/// Timing and outcome of one invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvokeReport {
    /// The function invoked.
    pub algo_id: u16,
    /// Whether the function was already resident.
    pub hit: bool,
    /// Whether a miss was served from the decoded-bitstream cache
    /// (skipping ROM fetch and decompression). Always false on a hit.
    pub decoded_cache_hit: bool,
    /// Algorithms evicted to make room (empty on a hit).
    pub evicted: Vec<u16>,
    /// Record-table lookup time.
    pub lookup_time: SimTime,
    /// ROM bitstream fetch time (zero on a hit).
    pub rom_time: SimTime,
    /// Decompression + configuration time (zero on a hit).
    pub reconfig_time: SimTime,
    /// Input staging time.
    pub input_time: SimTime,
    /// Fabric execution time.
    pub exec_time: SimTime,
    /// Output collection time.
    pub output_time: SimTime,
}

impl InvokeReport {
    /// Total service time of the invocation.
    pub fn total(&self) -> SimTime {
        self.lookup_time
            + self.rom_time
            + self.reconfig_time
            + self.input_time
            + self.exec_time
            + self.output_time
    }
}

/// What [`MiniOs::ensure_resident`] did to make a function resident.
struct ResidencyOutcome {
    hit: bool,
    decoded_cache_hit: bool,
    evicted: Vec<u16>,
    rom_time: SimTime,
    reconfig_time: SimTime,
}

/// The outcome of one scrub pass over the resident functions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Frames read back and checked.
    pub frames_checked: usize,
    /// Functions found corrupt and reconfigured from ROM.
    pub repaired: Vec<u16>,
    /// Total readback + repair time.
    pub time: SimTime,
}

/// The complete microcontroller: memories, modules, ledgers and policy.
pub struct MiniOs {
    device: Device,
    port: ConfigPort,
    rom: Rom,
    ram: LocalRam,
    mem_timing: MemTiming,
    config_module: ConfigModule,
    data_in: DataInputModule,
    data_out: OutputCollectionModule,
    free: FreeFrameList,
    table: ReplacementTable,
    decoded: DecodedCache,
    frame_store: FrameStore,
    policy: Box<dyn ReplacementPolicy>,
    bank: AlgorithmBank,
    codec: CodecId,
    mode: ReconfigMode,
    mcu_clock: Clock,
    fabric_clock: Clock,
    now: SimTime,
    stats: OsStats,
    details: aaod_sim::trace::DetailLog,
    armed_config_stall: u64,
    prefetch_enabled: bool,
    predictor: crate::prefetch::MarkovPredictor,
    prefetched: std::collections::BTreeSet<u16>,
    last_invoked: Option<u16>,
    /// Reusable word buffers for bit-sliced netlist batches.
    batch_scratch: BatchScratch,
    /// Reusable flat buffer for frame readback decode.
    frame_flat: Vec<u8>,
}

impl std::fmt::Debug for MiniOs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiniOs")
            .field("geometry", &self.device.geometry())
            .field("policy", &self.policy.name())
            .field("mode", &self.mode)
            .field("resident", &self.table.resident_ids())
            .field("now", &self.now)
            .finish()
    }
}

impl MiniOs {
    /// Builds the controller from its configuration.
    pub fn new(config: MiniOsConfig) -> Self {
        let mcu_clock = aaod_sim::clock::domains::mcu();
        let fabric_clock = aaod_sim::clock::domains::fabric();
        MiniOs {
            device: Device::new(config.geometry),
            port: ConfigPort::selectmap8(),
            rom: Rom::new(config.rom_capacity),
            ram: LocalRam::new(config.ram_size),
            mem_timing: MemTiming::default(),
            config_module: ConfigModule::new(config.window, mcu_clock),
            data_in: DataInputModule::new(mcu_clock),
            data_out: OutputCollectionModule::new(mcu_clock),
            free: FreeFrameList::new(config.geometry.frames()),
            table: ReplacementTable::new(),
            decoded: DecodedCache::new(config.decoded_cache_bytes),
            frame_store: FrameStore::new(config.frame_store_bytes),
            policy: config.policy,
            bank: config.bank,
            codec: config.codec,
            mode: config.mode,
            mcu_clock,
            fabric_clock,
            now: SimTime::ZERO,
            stats: OsStats::default(),
            details: aaod_sim::trace::DetailLog::new(),
            armed_config_stall: 0,
            prefetch_enabled: config.prefetch,
            predictor: crate::prefetch::MarkovPredictor::new(),
            prefetched: std::collections::BTreeSet::new(),
            last_invoked: None,
            batch_scratch: BatchScratch::default(),
            frame_flat: Vec::new(),
        }
    }

    /// Encodes the ROM bitstream for a bank algorithm with its default
    /// parameters and this controller's codec — the host-side tooling
    /// step that precedes [`MiniOs::download`].
    ///
    /// # Errors
    ///
    /// Returns [`McuError::Algo`] for unknown ids or parameter errors.
    pub fn encode_bitstream(&self, algo_id: u16) -> Result<Vec<u8>, McuError> {
        let geom = self.device.geometry();
        let image = self.bank.build_image(algo_id, geom)?;
        let bs = Bitstream::from_image(&image, geom);
        let codec = registry::codec(self.codec, geom.frame_bytes());
        Ok(bs.encode(codec.as_ref()))
    }

    /// Downloads an encoded bitstream into the ROM, deriving the
    /// function record from its header. Returns the modelled download
    /// time (ROM programming is ~4× slower than reading).
    ///
    /// # Errors
    ///
    /// Returns bitstream errors for a malformed stream and ROM errors
    /// for duplicates or a full ROM.
    pub fn download(&mut self, encoded: &[u8]) -> Result<SimTime, McuError> {
        let header = BitstreamHeader::parse(encoded)?;
        let fields = RecordFields {
            algo_id: header.algo_id,
            uncompressed_len: header.uncompressed_len,
            codec: header.codec.to_byte(),
            input_width: header.input_width,
            output_width: header.output_width,
            n_frames: header.n_frames,
        };
        self.rom.download(fields, encoded)?;
        let t = self.mem_timing.rom_read_time(encoded.len() as u64) * 4;
        self.now += t;
        Ok(t)
    }

    /// Convenience: encode + download a bank algorithm.
    ///
    /// # Errors
    ///
    /// As [`MiniOs::encode_bitstream`] and [`MiniOs::download`].
    pub fn install(&mut self, algo_id: u16) -> Result<SimTime, McuError> {
        let encoded = self.encode_bitstream(algo_id)?;
        self.download(&encoded)
    }

    /// Services one host request: ensures the function is resident and
    /// executes it on `input`.
    ///
    /// # Errors
    ///
    /// * [`McuError::Mem`] with [`MemError::RecordNotFound`] if the
    ///   function was never downloaded.
    /// * [`McuError::FunctionTooLarge`] if it cannot fit the device.
    /// * Fabric/bitstream errors if the configuration is corrupt.
    /// * [`McuError::Algo`] for kernel-level input errors.
    pub fn invoke(
        &mut self,
        algo_id: u16,
        input: &[u8],
    ) -> Result<(Vec<u8>, InvokeReport), McuError> {
        let mut results = self.invoke_batch(algo_id, &[input])?;
        Ok(results.pop().expect("one input yields one result"))
    }

    /// Services a batch of requests for the *same* function,
    /// coalescing the miss cost: the record lookup, residency check,
    /// (re)configuration and frame-bits image decode are paid once for
    /// the whole batch, then each input is staged, executed and
    /// collected individually. The first report carries the shared
    /// costs; the remaining requests are hits by construction.
    ///
    /// Outputs are byte-identical to invoking the inputs one by one —
    /// this is what lets the serving engine batch queued misses.
    ///
    /// # Errors
    ///
    /// As [`MiniOs::invoke`]. A per-input failure (e.g. a kernel input
    /// error) aborts the batch; earlier inputs' effects stand, exactly
    /// as if they had been invoked serially.
    pub fn invoke_batch(
        &mut self,
        algo_id: u16,
        inputs: &[&[u8]],
    ) -> Result<Vec<(Vec<u8>, InvokeReport)>, McuError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        for _ in inputs {
            self.policy.on_request(algo_id);
            self.predictor.observe(algo_id);
        }

        // 1. record lookup — once per batch
        let (record, lookup_time) = self.lookup_record(algo_id)?;

        // 2. residency — once per batch
        let outcome = self.ensure_resident(&record)?;

        // 3. decode the configured bits back into an image — once
        let frames = &self
            .table
            .get(algo_id)
            .expect("function resident at this point")
            .frames;
        let image = self
            .device
            .decode_function_with(frames, &mut self.frame_flat)?;
        if image.algo_id() != algo_id {
            return Err(McuError::RecordMismatch(format!(
                "frames decode to algorithm {}, record says {algo_id}",
                image.algo_id()
            )));
        }

        // 4. decode the payload once for the whole batch; netlist
        // functions evaluate every input bit-sliced in one pass (64
        // lanes per netlist walk) before the per-input staging loop.
        let kind = image.kind()?;
        let mut sliced_outputs = match &kind {
            FunctionKind::Netlist { netlist, mode } => Some(run_decoded_netlist_batch(
                netlist,
                *mode,
                inputs,
                &mut self.batch_scratch,
            )?),
            FunctionKind::Behavioral { .. } => None,
        };

        // 5. stage/execute/collect each input
        let mut results = Vec::with_capacity(inputs.len());
        for (i, &input) in inputs.iter().enumerate() {
            let precomputed = sliced_outputs
                .as_mut()
                .map(|outs| std::mem::take(&mut outs[i]));
            let (output, input_time, exec_time, output_time) =
                self.execute_one(algo_id, &record, &kind, input, precomputed)?;
            let first = i == 0;
            let report = InvokeReport {
                algo_id,
                hit: if first { outcome.hit } else { true },
                decoded_cache_hit: first && outcome.decoded_cache_hit,
                evicted: if first {
                    outcome.evicted.clone()
                } else {
                    Vec::new()
                },
                lookup_time: if first { lookup_time } else { SimTime::ZERO },
                rom_time: if first {
                    outcome.rom_time
                } else {
                    SimTime::ZERO
                },
                reconfig_time: if first {
                    outcome.reconfig_time
                } else {
                    SimTime::ZERO
                },
                input_time,
                exec_time,
                output_time,
            };
            self.now += report.total();
            self.table.touch(algo_id, self.now);
            self.stats.requests += 1;
            if !first {
                self.stats.hits += 1;
            }
            self.stats.lookup_time += report.lookup_time;
            self.stats.rom_time += report.rom_time;
            self.stats.reconfig_time += report.reconfig_time;
            self.stats.input_time += input_time;
            self.stats.exec_time += exec_time;
            self.stats.output_time += output_time;
            results.push((output, report));
        }
        self.last_invoked = Some(algo_id);
        if self.prefetch_enabled && self.mode == ReconfigMode::Partial {
            self.maybe_prefetch();
        }
        Ok(results)
    }

    /// Looks the function record up, charging the probe cost.
    fn lookup_record(&mut self, algo_id: u16) -> Result<(FunctionRecord, SimTime), McuError> {
        let probes_before = self.rom.record_probes();
        let record = self
            .rom
            .lookup(algo_id)
            .ok_or(McuError::Mem(MemError::RecordNotFound(algo_id)))?;
        let probes = self.rom.record_probes() - probes_before;
        let lookup_time = self.mem_timing.rom_read_time(probes * RECORD_BYTES as u64);
        Ok((record, lookup_time))
    }

    /// Makes the function resident, evicting per policy and
    /// configuring from the decoded-bitstream cache or ROM as needed.
    fn ensure_resident(&mut self, record: &FunctionRecord) -> Result<ResidencyOutcome, McuError> {
        let algo_id = record.algo_id;
        let hit = self.table.contains(algo_id);
        self.details
            .push(aaod_sim::DetailEvent::Residency { algo: algo_id, hit });
        let mut outcome = ResidencyOutcome {
            hit,
            decoded_cache_hit: false,
            evicted: Vec::new(),
            rom_time: SimTime::ZERO,
            reconfig_time: SimTime::ZERO,
        };
        if hit {
            self.stats.hits += 1;
            if self.prefetched.remove(&algo_id) {
                self.stats.prefetch_hits += 1;
            }
            return Ok(outcome);
        }
        let needed = record.n_frames as usize;
        if needed > self.device.geometry().frames() {
            return Err(McuError::FunctionTooLarge {
                algo_id,
                frames: needed,
                device_frames: self.device.geometry().frames(),
            });
        }
        match self.mode {
            ReconfigMode::Partial => {
                while self.free.free_count() < needed {
                    let victim = self
                        .policy
                        .victim(&self.table)
                        .expect("non-empty table when frames are insufficient");
                    let residency = self
                        .table
                        .remove(victim)
                        .expect("policy returned a resident algorithm");
                    self.free.release(&residency.frames);
                    self.prefetched.remove(&victim);
                    self.details.push(aaod_sim::DetailEvent::Eviction {
                        algo: victim,
                        frames: residency.frames.len() as u32,
                    });
                    outcome.evicted.push(victim);
                    self.stats.evictions += 1;
                }
                let frames = self
                    .free
                    .allocate(needed)
                    .expect("free count verified above");
                let (report, rom_time, decoded_hit) = match self.configure_resident(record, &frames)
                {
                    Ok(r) => r,
                    Err(e) => {
                        // a failed configuration must not leak the
                        // frames it was given
                        self.free.release(&frames);
                        return Err(e);
                    }
                };
                outcome.rom_time = rom_time;
                outcome.reconfig_time = report.total();
                outcome.decoded_cache_hit = decoded_hit;
                self.stats.frames_configured += report.frames_written as u64;
                self.table.insert(algo_id, frames, self.now);
            }
            ReconfigMode::Full => {
                // Everything resident is lost on a full reconfig.
                for id in self.table.resident_ids() {
                    let frames = self.table.remove(id).map_or(0, |r| r.frames.len());
                    self.details.push(aaod_sim::DetailEvent::Eviction {
                        algo: id,
                        frames: frames as u32,
                    });
                    outcome.evicted.push(id);
                    self.stats.evictions += 1;
                }
                self.free.reset();
                let frames = self
                    .free
                    .allocate(needed)
                    .expect("fresh free list fits any checked function");
                // decompress (windowed, same engine), then pay the
                // full-device configuration cost instead of the
                // per-frame cost.
                let (report, rom_time, decoded_hit) = match self.configure_resident(record, &frames)
                {
                    Ok(r) => r,
                    Err(e) => {
                        self.free.release(&frames);
                        return Err(e);
                    }
                };
                let full_penalty = self
                    .port
                    .full_time(self.device.geometry())
                    .saturating_sub(report.port_time);
                outcome.rom_time = rom_time;
                outcome.reconfig_time = report.total() + full_penalty;
                outcome.decoded_cache_hit = decoded_hit;
                self.stats.frames_configured += self.device.geometry().frames() as u64;
                self.table.insert(algo_id, frames, self.now);
            }
        }
        if self.armed_config_stall > 0 {
            // An armed stall hangs the configuration port for the
            // armed cycle count on top of the real reconfiguration.
            // It only fires when a configuration actually happens —
            // a residency hit returns above without consuming it.
            let stall = std::mem::take(&mut self.armed_config_stall);
            let t = self.mcu_clock.cycles(stall);
            outcome.reconfig_time += t;
            self.details
                .push(aaod_sim::DetailEvent::ConfigStall { time: t });
            self.stats.config_stalls += 1;
            self.stats.config_stall_time += t;
        }
        self.stats.misses += 1;
        Ok(outcome)
    }

    /// Configures `frames` with the function, preferring the
    /// decoded-bitstream cache over an ROM fetch + decompression.
    /// Returns the configuration report, the ROM read time (zero on a
    /// decoded-cache hit) and whether the cache served the frames.
    fn configure_resident(
        &mut self,
        record: &FunctionRecord,
        frames: &[FrameAddress],
    ) -> Result<(ConfigReport, SimTime, bool), McuError> {
        let key = (record.algo_id, record.codec);
        if self.decoded.is_enabled() {
            if let Some(cached) = self.decoded.get(&key) {
                let report = self.config_module.configure_decoded(
                    &cached,
                    &mut self.device,
                    &self.port,
                    frames,
                )?;
                self.stats.decoded_hits += 1;
                self.stats.decoded_bytes_saved += u64::from(record.uncompressed_len);
                // the Arc hit handed the frames out without copying them
                self.stats.decoded_clone_bytes_avoided +=
                    cached.iter().map(|f| f.len() as u64).sum::<u64>();
                self.details.push(aaod_sim::DetailEvent::DecodedCache {
                    algo: record.algo_id,
                    hit: true,
                });
                self.details.push(aaod_sim::DetailEvent::PortWrite {
                    algo: record.algo_id,
                    frames: report.frames_written as u32,
                });
                return Ok((report, SimTime::ZERO, true));
            }
        }
        // borrow the bitstream straight out of ROM — disjoint fields,
        // so no per-miss copy of the encoded bytes
        let encoded = self.rom.bitstream_bytes(record);
        let rom_time = self.mem_timing.rom_read_time(encoded.len() as u64);
        self.details.push(aaod_sim::DetailEvent::RomFetch {
            algo: record.algo_id,
            bytes: encoded.len() as u64,
        });
        let (report, produced) = if record.codec == CodecId::DeltaV2.to_byte()
            && self.frame_store.is_enabled()
        {
            // v2 path: probe the content-addressed store per frame
            // record, decode only what is missing
            let before = self.frame_store.stats();
            let result = self.config_module.configure_v2(
                encoded,
                &mut self.frame_store,
                &mut self.device,
                &self.port,
                frames,
            )?;
            let after = self.frame_store.stats();
            self.stats.frame_store_hits += after.hits - before.hits;
            self.stats.frame_store_misses += after.misses - before.misses;
            self.stats.frame_store_bytes_deduped += after.bytes_deduped - before.bytes_deduped;
            result
        } else {
            self.config_module
                .configure_collect(encoded, &mut self.device, &self.port, frames)?
        };
        self.details.push(aaod_sim::DetailEvent::Decompress {
            algo: record.algo_id,
            windows: report.windows,
            bytes: report.bytes as u64,
        });
        self.details.push(aaod_sim::DetailEvent::PortWrite {
            algo: record.algo_id,
            frames: report.frames_written as u32,
        });
        if self.decoded.is_enabled() {
            self.stats.decoded_misses += 1;
            self.details.push(aaod_sim::DetailEvent::DecodedCache {
                algo: record.algo_id,
                hit: false,
            });
            self.decoded.insert(key, produced);
        }
        Ok((report, rom_time, false))
    }

    /// Stages one input, executes the decoded payload on it, and
    /// collects the output. Netlist batches are evaluated bit-sliced
    /// up front by [`MiniOs::invoke_batch`] and arrive here as
    /// `precomputed`; a `None` falls back to the scalar walk.
    fn execute_one(
        &mut self,
        algo_id: u16,
        record: &FunctionRecord,
        kind: &FunctionKind,
        input: &[u8],
        precomputed: Option<Vec<u8>>,
    ) -> Result<(Vec<u8>, SimTime, SimTime, SimTime), McuError> {
        let (_, input_time) = self.data_in.stage(
            &mut self.ram,
            &self.mem_timing,
            0,
            input,
            record.input_width,
        )?;
        let output = match (precomputed, kind) {
            (Some(out), _) => out,
            (None, FunctionKind::Netlist { netlist, mode }) => {
                run_decoded_netlist(netlist, *mode, input)?
            }
            (None, FunctionKind::Behavioral { params }) => {
                let kernel = self
                    .bank
                    .kernel(algo_id)
                    .ok_or(McuError::Algo(AlgoError::UnknownAlgorithm(algo_id)))?;
                kernel.execute(params, input)?
            }
        };
        let exec_cycles = match self.bank.kernel(algo_id) {
            Some(k) => k.fabric_cycles(input.len()),
            None => input.len() as u64 + 8,
        };
        let exec_time = self.fabric_clock.cycles(exec_cycles);
        let out_offset = self.ram.size() / 2;
        let (_, output_time) = self.data_out.collect(
            &mut self.ram,
            &self.mem_timing,
            out_offset,
            &output,
            record.output_width,
        )?;
        Ok((output, input_time, exec_time, output_time))
    }

    /// Best-effort speculative configuration of the predicted next
    /// algorithm. Runs off the critical path — the configuration
    /// happens in host think-time, so it costs
    /// [`OsStats::prefetch_time`] but does not delay any request.
    ///
    /// Prefetch may evict per the replacement policy (configuration
    /// prefetching is pointless on a full device otherwise), but it
    /// refuses to evict the function that was just invoked or the
    /// prediction target, and aborts rather than force either out.
    fn maybe_prefetch(&mut self) {
        let Some(next) = self.predictor.predict() else {
            return;
        };
        self.prefetch_hint(next);
    }

    /// Directed speculative configuration of `next` — the entry point
    /// the serving engine's predictive policy drives during a shard's
    /// idle window; [`MiniOs::maybe_prefetch`] routes the built-in
    /// Markov prediction through it too. Returns `true` when the
    /// function ended up resident (already installed or prefetched).
    ///
    /// Prefetches ride the exact same residency machinery as a demand
    /// miss (`configure_resident`): the decoded-bitstream cache and
    /// the DeltaV2 content-addressed frame store both serve them, and
    /// the usual `RomFetch`/`Decompress`/`PortWrite`/`DecodedCache`
    /// detail events are emitted. Evictions it performs emit
    /// [`DetailEvent::Eviction`](aaod_sim::DetailEvent) and charge
    /// `stats.evictions` exactly like demand evictions, but only once
    /// room has actually been made; an eviction pass that cannot free
    /// enough frames is rolled back untouched (nothing was erased). A
    /// speculative configuration that *fails* after its victims were
    /// released cannot resurrect them (the configure may have partly
    /// overwritten their frames), so the ledger records it in
    /// `stats.prefetch_aborted` instead.
    pub fn prefetch_hint(&mut self, next: u16) -> bool {
        if self.mode != ReconfigMode::Partial {
            return false;
        }
        if self.table.contains(next) {
            return true;
        }
        let Some(record) = self.rom.lookup(next) else {
            return false;
        };
        let needed = record.n_frames as usize;
        if needed > self.device.geometry().frames() {
            return false;
        }
        let mut evicted_for_prefetch: Vec<(u16, Vec<aaod_fabric::FrameAddress>)> = Vec::new();
        while self.free.free_count() < needed {
            let Some(victim) = self.policy.victim(&self.table) else {
                break;
            };
            if Some(victim) == self.last_invoked || victim == next {
                break; // never displace the active or target function
            }
            let residency = self
                .table
                .remove(victim)
                .expect("policy returned a resident algorithm");
            self.free.release(&residency.frames);
            self.prefetched.remove(&victim);
            evicted_for_prefetch.push((victim, residency.frames));
        }
        if self.free.free_count() < needed {
            // could not make room without touching protected functions:
            // roll the speculative evictions back (nothing was erased)
            for (victim, frames) in evicted_for_prefetch {
                self.free.reserve(&frames);
                self.table.insert(victim, frames, self.now);
            }
            return false;
        }
        for (victim, frames) in &evicted_for_prefetch {
            self.details.push(aaod_sim::DetailEvent::Eviction {
                algo: *victim,
                frames: frames.len() as u32,
            });
            self.stats.evictions += 1;
        }
        let frames = self
            .free
            .allocate(needed)
            .expect("free count verified above");
        match self.configure_resident(&record, &frames) {
            Ok((report, rom_time, _decoded_hit)) => {
                self.stats.frames_configured += report.frames_written as u64;
                self.stats.prefetches += 1;
                self.stats.prefetch_time += rom_time + report.total();
                self.table.insert(next, frames, self.now);
                self.prefetched.insert(next);
                true
            }
            Err(_) => {
                // speculative work is best-effort: give the frames
                // back and reconcile the ledger — the victims are
                // gone (their frames may be partly overwritten) with
                // no resident target to show for it.
                self.free.release(&frames);
                self.stats.prefetch_aborted += 1;
                false
            }
        }
    }

    /// Executes one host [`Command`](crate::command::Command),
    /// returning its [`Response`](crate::command::Response) and the
    /// controller time consumed. This is the instruction interface of
    /// paper §2.1; the host driver in `aaod-core` ships these over
    /// PCI.
    ///
    /// # Errors
    ///
    /// Propagates the underlying operation's error.
    pub fn dispatch(
        &mut self,
        command: crate::command::Command,
    ) -> Result<(crate::command::Response, SimTime), McuError> {
        use crate::command::{Command, Response};
        // fixed decode/dispatch overhead on the controller
        let overhead = self.mcu_clock.cycles(32);
        match command {
            Command::Download { bitstream } => {
                let t = self.download(&bitstream)?;
                Ok((Response::Done, t + overhead))
            }
            Command::Invoke { algo_id, input } => {
                let (output, report) = self.invoke(algo_id, &input)?;
                Ok((Response::Output(output), report.total() + overhead))
            }
            Command::Evict { algo_id } => {
                let t = self.evict(algo_id)?;
                Ok((Response::Done, t + overhead))
            }
            Command::QueryResident => Ok((Response::Resident(self.resident()), overhead)),
            Command::QueryStats => Ok((
                Response::Stats {
                    requests: self.stats.requests,
                    hits: self.stats.hits,
                    misses: self.stats.misses,
                    evictions: self.stats.evictions,
                },
                overhead,
            )),
            Command::Reset => {
                let t = self.reset();
                Ok((Response::Done, t + overhead))
            }
        }
    }

    /// Fault injection: arms a one-shot configuration-port stall. The
    /// next reconfiguration (a residency *miss* — hits never touch the
    /// port) takes `cycles` extra controller cycles, as if the port
    /// hung mid-configuration before recovering. Arming again before
    /// the stall fires replaces the pending cycle count.
    pub fn arm_config_stall(&mut self, cycles: u64) {
        self.armed_config_stall = cycles;
    }

    /// Pending stall cycles not yet consumed (zero when disarmed).
    pub fn armed_config_stall(&self) -> u64 {
        self.armed_config_stall
    }

    /// Disarms a pending configuration stall, returning the cycle
    /// count that was still armed.
    pub fn disarm_config_stall(&mut self) -> u64 {
        std::mem::take(&mut self.armed_config_stall)
    }

    /// Power-cycles the fabric: erases every frame, clears the free
    /// frame list, replacement table and counters. The ROM contents
    /// (flash) survive, so downloaded functions remain installable.
    /// Returns the time of the full-device erase.
    pub fn reset(&mut self) -> SimTime {
        let geom = self.device.geometry();
        self.device = Device::new(geom);
        self.free.reset();
        self.table = ReplacementTable::new();
        // The watchdog ledger restarts from zero: drop the decoded
        // population AND its counters, so `hits + misses == lookups`
        // holds over the post-reset population alone.
        self.decoded.clear();
        self.decoded.reset_stats();
        self.frame_store.clear();
        self.frame_store.reset_stats();
        self.stats = OsStats::default();
        self.armed_config_stall = 0;
        self.predictor.clear();
        self.prefetched.clear();
        self.last_invoked = None;
        let t = self.port.full_time(geom);
        self.now += t;
        t
    }

    /// Readback scrubbing: re-reads every resident function's frames,
    /// verifies the image digest, and repairs any corrupted function
    /// by reconfiguring it in place from its ROM bitstream.
    ///
    /// Real Virtex-class devices suffer configuration-memory upsets
    /// (SEUs); periodic scrubbing is the standard defence, and the
    /// image digest gives this controller an end-to-end check that
    /// readback-CRC hardware would provide on silicon.
    ///
    /// # Errors
    ///
    /// Returns an error only if a repair itself fails (e.g. the ROM
    /// copy is also corrupt); detection alone never fails.
    pub fn scrub(&mut self) -> Result<ScrubReport, McuError> {
        let geom = self.device.geometry();
        let ids = self.table.resident_ids();
        let mut report = ScrubReport::default();
        for id in ids {
            let frames = &self
                .table
                .get(id)
                .expect("resident id from the table")
                .frames;
            // readback cost: pulling the frames back through the port
            report.time += self.port.frames_time(geom, frames.len());
            report.frames_checked += frames.len();
            let healthy = matches!(
                self.device.decode_function_with(frames, &mut self.frame_flat),
                Ok(img) if img.algo_id() == id
            );
            if healthy {
                continue;
            }
            // repair in place from ROM
            let record = self
                .rom
                .lookup(id)
                .ok_or(McuError::Mem(MemError::RecordNotFound(id)))?;
            let encoded = self.rom.bitstream_bytes(&record);
            report.time += self.mem_timing.rom_read_time(encoded.len() as u64);
            let config =
                self.config_module
                    .configure(encoded, &mut self.device, &self.port, frames)?;
            report.time += config.total();
            report.repaired.push(id);
        }
        self.now += report.time;
        self.stats.scrubs += 1;
        self.stats.scrub_repairs += report.repaired.len() as u64;
        self.stats.scrub_time += report.time;
        Ok(report)
    }

    /// Fault injection: flips one configuration bit of a resident
    /// function (a single-event upset). The flipped bit lands in the
    /// function's first frame, inside the image header/digest region,
    /// so the upset is always detectable on the next decode. Returns
    /// `false` (no injection) when the function is not resident —
    /// radiation can only strike configured frames.
    ///
    /// Injections are free of modelled time: an SEU is an event, not
    /// an operation the controller performs.
    pub fn inject_seu(&mut self, algo_id: u16, rng: &mut SplitMix64) -> bool {
        let Some(residency) = self.table.get(algo_id) else {
            return false;
        };
        let target = residency.frames[0];
        let limit = 64.min(self.device.geometry().frame_bytes());
        let byte = rng.index(limit);
        let bit = rng.index(8) as u8;
        self.device
            .flip_bit(target, byte, bit)
            .expect("resident frame address is valid");
        true
    }

    /// Fault injection: tears a resident function's configuration, as
    /// if a background reconfiguration died partway — the tail half of
    /// its frames (at least one) is erased. Returns `false` when the
    /// function is not resident.
    pub fn inject_torn(&mut self, algo_id: u16) -> bool {
        let Some(residency) = self.table.get(algo_id) else {
            return false;
        };
        let frames = residency.frames.clone();
        let start = (frames.len() / 2).min(frames.len() - 1);
        for &addr in &frames[start..] {
            self.device
                .clear_frame(addr)
                .expect("resident frame address is valid");
        }
        true
    }

    /// Fault injection: corrupts one byte of the function's stored ROM
    /// payload (flash bit-rot), past the header so the damage is
    /// caught by the bitstream CRC rather than rejected at parse. The
    /// function is evicted and its decoded-cache entries purged, so
    /// the next use must re-read the rotten ROM image — guaranteeing
    /// the fault activates instead of hiding behind a cached decode.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::Mem`] with [`MemError::RecordNotFound`] if
    /// the function was never downloaded.
    pub fn inject_rom_rot(&mut self, algo_id: u16, rng: &mut SplitMix64) -> Result<(), McuError> {
        let record = self
            .rom
            .records()
            .into_iter()
            .find(|r| r.algo_id == algo_id)
            .ok_or(McuError::Mem(MemError::RecordNotFound(algo_id)))?;
        let payload_len = record.compressed_len as usize - HEADER_BYTES;
        let offset = HEADER_BYTES + rng.index(payload_len);
        let mask = rng.next_u8() | 1;
        self.rom.corrupt_payload(algo_id, offset, mask)?;
        if self.table.contains(algo_id) {
            self.evict(algo_id)?;
        }
        self.purge_decoded(algo_id);
        Ok(())
    }

    /// Drops every decoded-bitstream cache entry for `algo_id`,
    /// returning how many were held. Recovery calls this after ROM
    /// corruption so a stale decode cannot mask the damage.
    pub fn purge_decoded(&mut self, algo_id: u16) -> usize {
        self.decoded.remove_algo(algo_id)
    }

    /// ROM patrol: CRC-verifies every stored bitstream payload and
    /// returns the ids whose image is corrupt, charging the read time
    /// to the controller clock. The recovery layer runs this as its
    /// final sweep so flash rot that never surfaced during serving is
    /// still found and repaired — zero silent corruption.
    pub fn rom_patrol(&mut self) -> (Vec<u16>, SimTime) {
        let mut corrupt = Vec::new();
        let mut scanned = 0u64;
        for record in self.rom.records() {
            let encoded = self.rom.bitstream_bytes(&record).to_vec();
            scanned += encoded.len() as u64;
            let ok = BitstreamHeader::parse(&encoded)
                .and_then(|h| h.verify_payload(&encoded[HEADER_BYTES..]))
                .is_ok();
            if !ok {
                corrupt.push(record.algo_id);
            }
        }
        let t = self.mem_timing.rom_read_time(scanned);
        self.now += t;
        (corrupt, t)
    }

    /// Corruption recovery: re-downloads a function whose ROM image
    /// went bad. The function is evicted (if resident), its decoded
    /// cache entries are purged, the rotten record is removed from the
    /// ROM, and a fresh image is encoded and downloaded. Returns the
    /// total modelled recovery time, also charged to the clock.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::Mem`] with [`MemError::RecordNotFound`] if
    /// the function was never downloaded, or a ROM error if the fresh
    /// image no longer fits (fragmented flash).
    pub fn redownload(&mut self, algo_id: u16) -> Result<SimTime, McuError> {
        let mut t = SimTime::ZERO;
        if self.table.contains(algo_id) {
            t += self.evict(algo_id)?;
        }
        self.purge_decoded(algo_id);
        self.rom.remove_record(algo_id)?;
        t += self.install(algo_id)?;
        self.stats.redownloads += 1;
        self.stats.redownload_time += t;
        Ok(t)
    }

    /// Manually evicts a resident function, erasing its frames.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::Mem`] with [`MemError::RecordNotFound`] if
    /// the function is not resident.
    pub fn evict(&mut self, algo_id: u16) -> Result<SimTime, McuError> {
        let residency = self
            .table
            .remove(algo_id)
            .ok_or(McuError::Mem(MemError::RecordNotFound(algo_id)))?;
        let mut t = SimTime::ZERO;
        for &addr in &residency.frames {
            t += self.port.clear_frame(&mut self.device, addr)?;
        }
        self.free.release(&residency.frames);
        self.prefetched.remove(&algo_id);
        self.now += t;
        Ok(t)
    }

    /// Currently resident algorithm ids.
    pub fn resident(&self) -> Vec<u16> {
        self.table.resident_ids()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> OsStats {
        self.stats
    }

    /// Enables or disables the observability detail log. When
    /// enabled, residency checks, cache outcomes, evictions, ROM
    /// fetches, decompressions, port writes and config stalls are
    /// buffered as [`aaod_sim::DetailEvent`]s for the trace assembler
    /// to drain. Recording never advances modelled time.
    pub fn set_trace(&mut self, on: bool) {
        self.details.set_enabled(on);
    }

    /// Whether the detail log is recording.
    pub fn trace_enabled(&self) -> bool {
        self.details.enabled()
    }

    /// Drains the buffered detail events.
    pub fn take_details(&mut self) -> Vec<aaod_sim::DetailEvent> {
        self.details.take()
    }

    /// Moves the buffered detail events into `dst` without allocating
    /// (the allocation-free counterpart of
    /// [`MiniOs::take_details`]; see
    /// [`aaod_sim::DetailLog::drain_into_log`]).
    pub fn drain_details_into(&mut self, dst: &mut aaod_sim::DetailLog) {
        self.details.drain_into_log(dst);
    }

    /// The controller's monotonic simulated clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The replacement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The device geometry.
    pub fn geometry(&self) -> DeviceGeometry {
        self.device.geometry()
    }

    /// Free frames currently available.
    pub fn free_frames(&self) -> usize {
        self.free.free_count()
    }

    /// Immutable view of the device (inspection/tests).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable view of the device — the fault-injection hook used by
    /// tests to corrupt configured frames.
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Immutable view of the ROM.
    pub fn rom(&self) -> &Rom {
        &self.rom
    }

    /// The frame replacement table.
    pub fn table(&self) -> &ReplacementTable {
        &self.table
    }

    /// The decoded-bitstream cache (inspection/tests).
    pub fn decoded_cache(&self) -> &DecodedCache {
        &self.decoded
    }

    /// The content-addressed frame store (inspection/tests).
    pub fn frame_store(&self) -> &FrameStore {
        &self.frame_store
    }

    /// The bank the controller dispatches into.
    pub fn bank(&self) -> &AlgorithmBank {
        &self.bank
    }

    /// The mini-OS clock domain.
    pub fn mcu_clock(&self) -> Clock {
        self.mcu_clock
    }

    /// Renders the device's frame ownership as a one-line-per-16-frames
    /// text map: `.` = free, otherwise the owning algorithm id modulo
    /// 16 as a hex digit. Purely diagnostic.
    ///
    /// # Examples
    ///
    /// ```
    /// use aaod_mcu::{MiniOs, MiniOsConfig};
    ///
    /// let os = MiniOs::new(MiniOsConfig::default());
    /// assert!(os.frame_map().chars().filter(|&c| c == '.').count() >= 96);
    /// ```
    pub fn frame_map(&self) -> String {
        let frames = self.device.geometry().frames();
        let mut owner = vec![None::<u16>; frames];
        for (id, residency) in self.table.iter() {
            for f in &residency.frames {
                owner[f.index()] = Some(id);
            }
        }
        let mut out = String::with_capacity(frames + frames / 16 * 8);
        for (i, slot) in owner.iter().enumerate() {
            if i % 16 == 0 {
                if i > 0 {
                    out.push('\n');
                }
                out.push_str(&format!("{i:>4}  "));
            }
            match slot {
                None => out.push('.'),
                Some(id) => out.push(char::from_digit((id % 16) as u32, 16).expect("mod 16 digit")),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaod_algos::ids;

    fn small_os(frames: u16, policy: Box<dyn ReplacementPolicy>) -> MiniOs {
        MiniOs::new(MiniOsConfig {
            geometry: DeviceGeometry::new(frames, 16),
            policy,
            ..MiniOsConfig::default()
        })
    }

    fn os_with(algos: &[u16]) -> MiniOs {
        let mut os = MiniOs::new(MiniOsConfig::default());
        for &id in algos {
            os.install(id).unwrap();
        }
        os
    }

    #[test]
    fn end_to_end_crc32() {
        let mut os = os_with(&[ids::CRC32]);
        let (out, report) = os.invoke(ids::CRC32, b"123456789").unwrap();
        assert_eq!(out, 0xCBF4_3926u32.to_le_bytes().to_vec());
        assert!(!report.hit);
        assert!(report.reconfig_time > SimTime::ZERO);
        let (_, report2) = os.invoke(ids::CRC32, b"123456789").unwrap();
        assert!(report2.hit);
        assert_eq!(report2.reconfig_time, SimTime::ZERO);
        assert!(report2.total() < report.total());
    }

    #[test]
    fn netlist_function_executes_from_bits() {
        let mut os = os_with(&[ids::CRC8]);
        let (out, _) = os.invoke(ids::CRC8, b"123456789").unwrap();
        assert_eq!(out, vec![0xF4]);
    }

    #[test]
    fn aes_on_demand_matches_software() {
        let mut os = os_with(&[ids::AES128]);
        let input = b"exactly 16 bytes";
        let (hw, _) = os.invoke(ids::AES128, input).unwrap();
        let sw = os.bank().execute_software(ids::AES128, input).unwrap();
        assert_eq!(hw, sw);
    }

    #[test]
    fn unknown_function_errors() {
        let mut os = os_with(&[]);
        assert!(matches!(
            os.invoke(777, b"x"),
            Err(McuError::Mem(MemError::RecordNotFound(777)))
        ));
    }

    #[test]
    fn eviction_under_pressure_lru() {
        // Device with 40 frames: AES (24) + SHA1 (12) fit; adding
        // SHA256 (16) must evict the least recently used (AES).
        let mut os = small_os(40, Box::new(LruPolicy));
        for id in [ids::AES128, ids::SHA1, ids::SHA256] {
            os.install(id).unwrap();
        }
        os.invoke(ids::AES128, &[0; 16]).unwrap();
        os.invoke(ids::SHA1, b"x").unwrap(); // SHA1 more recent than AES
        let (_, report) = os.invoke(ids::SHA256, b"y").unwrap();
        assert_eq!(report.evicted, vec![ids::AES128]);
        assert_eq!(os.resident(), vec![ids::SHA1, ids::SHA256]);
        // AES comes back on demand
        let (_, report) = os.invoke(ids::AES128, &[0; 16]).unwrap();
        assert!(!report.hit);
    }

    #[test]
    fn multiple_evictions_when_one_is_not_enough() {
        // 30 frames; CRC32 (2) + XTEA (6) + SHA1 (12) resident = 20 used.
        // AES needs 24 -> must evict enough algorithms to free 14+ frames.
        let mut os = small_os(30, Box::new(LruPolicy));
        for id in [ids::CRC32, ids::XTEA, ids::SHA1, ids::AES128] {
            os.install(id).unwrap();
        }
        os.invoke(ids::CRC32, b"a").unwrap();
        os.invoke(ids::XTEA, &[0; 8]).unwrap();
        os.invoke(ids::SHA1, b"b").unwrap();
        let (_, report) = os.invoke(ids::AES128, &[0; 16]).unwrap();
        assert!(report.evicted.len() >= 2, "evicted {:?}", report.evicted);
        assert!(os.resident().contains(&ids::AES128));
    }

    #[test]
    fn function_too_large_rejected() {
        let mut os = small_os(8, Box::new(LruPolicy));
        os.install(ids::AES128).unwrap(); // needs 24 > 8
        assert!(matches!(
            os.invoke(ids::AES128, &[0; 16]),
            Err(McuError::FunctionTooLarge { frames: 24, .. })
        ));
    }

    #[test]
    fn full_mode_keeps_single_resident() {
        let mut os = MiniOs::new(MiniOsConfig {
            mode: ReconfigMode::Full,
            ..MiniOsConfig::default()
        });
        for id in [ids::CRC32, ids::XTEA] {
            os.install(id).unwrap();
        }
        os.invoke(ids::CRC32, b"a").unwrap();
        assert_eq!(os.resident(), vec![ids::CRC32]);
        let (_, report) = os.invoke(ids::XTEA, &[0; 8]).unwrap();
        assert_eq!(report.evicted, vec![ids::CRC32]);
        assert_eq!(os.resident(), vec![ids::XTEA]);
    }

    #[test]
    fn full_mode_costs_more_than_partial() {
        let mut partial = os_with(&[ids::CRC32]);
        let mut full = MiniOs::new(MiniOsConfig {
            mode: ReconfigMode::Full,
            ..MiniOsConfig::default()
        });
        full.install(ids::CRC32).unwrap();
        let (_, rp) = partial.invoke(ids::CRC32, b"a").unwrap();
        let (_, rf) = full.invoke(ids::CRC32, b"a").unwrap();
        assert!(
            rf.reconfig_time > rp.reconfig_time * 3,
            "full {} vs partial {}",
            rf.reconfig_time,
            rp.reconfig_time
        );
    }

    #[test]
    fn corrupted_frame_detected_at_execution() {
        let mut os = os_with(&[ids::SHA1]);
        os.invoke(ids::SHA1, b"seed").unwrap();
        // corrupt one byte of one frame SHA1 occupies
        let frames = os.table().get(ids::SHA1).unwrap().frames.clone();
        let addr = frames[frames.len() / 2];
        let mut bytes = os.device().read_frame(addr).unwrap().to_vec();
        bytes[7] ^= 0x40;
        os.device_mut().write_frame(addr, &bytes).unwrap();
        let err = os.invoke(ids::SHA1, b"seed").unwrap_err();
        assert!(
            matches!(err, McuError::Fabric(_)),
            "corruption slipped through: {err}"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut os = os_with(&[ids::CRC32, ids::PARITY8]);
        os.invoke(ids::CRC32, b"a").unwrap();
        os.invoke(ids::CRC32, b"b").unwrap();
        os.invoke(ids::PARITY8, b"c").unwrap();
        let s = os.stats();
        assert_eq!(s.requests, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert!(s.total_time() > SimTime::ZERO);
    }

    #[test]
    fn manual_evict_clears_frames() {
        let mut os = os_with(&[ids::CRC32]);
        os.invoke(ids::CRC32, b"a").unwrap();
        let frames = os.table().get(ids::CRC32).unwrap().frames.clone();
        let free_before = os.free_frames();
        os.evict(ids::CRC32).unwrap();
        assert_eq!(os.free_frames(), free_before + frames.len());
        assert!(os.resident().is_empty());
        for addr in frames {
            assert!(os
                .device()
                .read_frame(addr)
                .unwrap()
                .iter()
                .all(|&b| b == 0));
        }
        assert!(os.evict(ids::CRC32).is_err());
    }

    #[test]
    fn time_is_monotonic() {
        let mut os = os_with(&[ids::CRC32]);
        let t0 = os.now();
        os.invoke(ids::CRC32, b"a").unwrap();
        let t1 = os.now();
        os.invoke(ids::CRC32, b"b").unwrap();
        let t2 = os.now();
        assert!(t0 < t1 && t1 < t2);
    }

    #[test]
    fn prefetch_preconfigures_predicted_next() {
        // Alternate XTEA/MATMUL8 so the predictor learns the pattern;
        // after evicting MATMUL8 and invoking XTEA, the controller
        // should speculatively bring MATMUL8 back.
        let mut os = MiniOs::new(MiniOsConfig {
            prefetch: true,
            ..MiniOsConfig::default()
        });
        os.install(ids::XTEA).unwrap();
        os.install(ids::MATMUL8).unwrap();
        os.invoke(ids::XTEA, &[0; 8]).unwrap();
        os.invoke(ids::MATMUL8, &[0; 128]).unwrap();
        os.evict(ids::MATMUL8).unwrap();
        os.invoke(ids::XTEA, &[0; 8]).unwrap();
        assert!(
            os.resident().contains(&ids::MATMUL8),
            "predicted next function was not prefetched: {:?}",
            os.resident()
        );
        let (_, report) = os.invoke(ids::MATMUL8, &[0; 128]).unwrap();
        assert!(report.hit, "prefetched function should hit");
        let s = os.stats();
        assert!(s.prefetches >= 1);
        assert_eq!(s.prefetch_hits, 1);
        assert!(s.prefetch_time > SimTime::ZERO);
    }

    #[test]
    fn prefetch_never_evicts_and_keeps_ledgers_consistent() {
        // Device too small for both big functions: prefetch must
        // refuse to displace the resident one.
        let mut os = MiniOs::new(MiniOsConfig {
            geometry: DeviceGeometry::new(26, 16),
            prefetch: true,
            ..MiniOsConfig::default()
        });
        os.install(ids::AES128).unwrap(); // 24 frames
        os.install(ids::SHA1).unwrap(); // 12 frames
        for _ in 0..3 {
            os.invoke(ids::AES128, &[0; 16]).unwrap();
            os.invoke(ids::SHA1, b"x").unwrap();
        }
        let resident = os.resident();
        let used: usize = resident
            .iter()
            .map(|&id| os.table().get(id).unwrap().frames.len())
            .sum();
        assert_eq!(used + os.free_frames(), 26, "frame ledger out of balance");
        // correctness under prefetch pressure
        let (out, _) = os.invoke(ids::SHA1, b"abc").unwrap();
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn prefetch_rides_the_decoded_cache() {
        // Regression: prefetch used to configure through the raw v1
        // path (ConfigModule::configure + raw ROM read), bypassing
        // the decoded-bitstream cache the demand path uses — so a
        // speculative configure of an already-decoded function still
        // paid full ROM + decompression.
        let mut os = os_with(&[ids::SHA1]);
        os.invoke(ids::SHA1, b"x").unwrap(); // decodes + caches SHA1
        os.evict(ids::SHA1).unwrap();
        let before = os.stats();
        assert!(os.prefetch_hint(ids::SHA1), "prefetch should succeed");
        let s = os.stats();
        assert_eq!(
            s.decoded_hits,
            before.decoded_hits + 1,
            "prefetch bypassed the decoded cache"
        );
        assert_eq!(s.prefetches, before.prefetches + 1);
        assert!(os.resident().contains(&ids::SHA1));
        // the speculative configure must not touch demand-path timers
        assert_eq!(s.rom_time, before.rom_time);
        assert_eq!(s.reconfig_time, before.reconfig_time);
        assert!(s.prefetch_time > before.prefetch_time);
    }

    #[test]
    fn prefetch_deltav2_hits_the_frame_store() {
        // Same regression, v2 arm: a DeltaV2 prefetch must probe the
        // content-addressed frame store like a demand miss does.
        let mut os = MiniOs::new(MiniOsConfig {
            codec: CodecId::DeltaV2,
            decoded_cache_bytes: 0,
            ..MiniOsConfig::default()
        });
        os.install(ids::SHA1).unwrap();
        os.invoke(ids::SHA1, b"x").unwrap(); // populates the store
        os.evict(ids::SHA1).unwrap();
        let before = os.stats();
        assert!(os.prefetch_hint(ids::SHA1));
        let s = os.stats();
        assert!(
            s.frame_store_hits > before.frame_store_hits,
            "prefetch bypassed the frame store: {s:?}"
        );
    }

    #[test]
    fn prefetch_evictions_emit_detail_events() {
        // Regression: prefetch evictions never emitted
        // DetailEvent::Eviction, so trace eviction counts disagreed
        // with stats.evictions whenever prefetch evicted.
        let mut os = MiniOs::new(MiniOsConfig {
            geometry: DeviceGeometry::new(40, 16),
            ..MiniOsConfig::default()
        });
        os.set_trace(true);
        os.install(ids::SHA256).unwrap(); // 16 frames (ROM record)
        os.install(ids::AES128).unwrap(); // 24 frames
        os.install(ids::SHA1).unwrap(); // 12 frames — evicts SHA256
        os.invoke(ids::AES128, &[0; 16]).unwrap();
        os.invoke(ids::SHA1, b"x").unwrap();
        assert!(!os.resident().contains(&ids::SHA256));
        os.take_details(); // discard bring-up + serving details
                           // SHA256 (16 frames) needs room: AES (LRU victim) must go.
        let before = os.stats().evictions;
        assert!(os.prefetch_hint(ids::SHA256));
        let evicted = os.stats().evictions - before;
        assert!(evicted >= 1, "prefetch should have evicted");
        let details = os.take_details();
        let detail_evictions = details
            .iter()
            .filter(|e| matches!(e, aaod_sim::DetailEvent::Eviction { .. }))
            .count() as u64;
        assert_eq!(
            detail_evictions, evicted,
            "trace and ledger eviction counts disagree: {details:?}"
        );
    }

    #[test]
    fn aborted_prefetch_reconciles_the_ledger() {
        // Regression: a speculative configure that failed after its
        // victims were evicted left the card with fewer residents and
        // no installed target, with nothing in OsStats tying the two
        // together. The abort now shows up in `prefetch_aborted`.
        let mut os = MiniOs::new(MiniOsConfig {
            geometry: DeviceGeometry::new(40, 16),
            ..MiniOsConfig::default()
        });
        os.install(ids::SHA256).unwrap(); // 16 frames (ROM record)
        os.install(ids::AES128).unwrap(); // 24 frames
        os.install(ids::SHA1).unwrap(); // 12 frames — evicts SHA256
        os.invoke(ids::AES128, &[0; 16]).unwrap();
        os.invoke(ids::SHA1, b"x").unwrap();
        // Rot SHA256's ROM image so its speculative configure fails
        // at the CRC check, *after* the eviction pass made room.
        let mut rng = SplitMix64::new(42);
        os.inject_rom_rot(ids::SHA256, &mut rng).unwrap();
        let free_before = os.free_frames();
        let before = os.stats();
        assert!(!os.prefetch_hint(ids::SHA256), "rotten image must fail");
        let s = os.stats();
        assert_eq!(s.prefetch_aborted, before.prefetch_aborted + 1);
        assert_eq!(s.prefetches, before.prefetches, "no prefetch charged");
        assert!(!os.resident().contains(&ids::SHA256));
        // The target's frames were released back: the ledger balances
        // (victims stay evicted, and their frames are free again).
        let used: usize = os
            .resident()
            .iter()
            .map(|&id| os.table().get(id).unwrap().frames.len())
            .sum();
        assert_eq!(used + os.free_frames(), 40, "frame ledger out of balance");
        assert!(
            os.free_frames() >= free_before,
            "aborted prefetch leaked frames"
        );
        // The eviction the abort charged is visible in the ledger.
        assert_eq!(s.evictions, before.evictions + 1);
    }

    #[test]
    fn prefetch_disabled_by_default() {
        let mut os = os_with(&[ids::XTEA, ids::CRC32]);
        for _ in 0..4 {
            os.invoke(ids::XTEA, &[0; 8]).unwrap();
            os.invoke(ids::CRC32, b"x").unwrap();
        }
        assert_eq!(os.stats().prefetches, 0);
    }

    #[test]
    fn scrub_clean_device_repairs_nothing() {
        let mut os = os_with(&[ids::SHA1, ids::CRC8]);
        os.invoke(ids::SHA1, b"x").unwrap();
        os.invoke(ids::CRC8, b"y").unwrap();
        let report = os.scrub().unwrap();
        assert!(report.repaired.is_empty());
        assert_eq!(report.frames_checked, 13); // 12 + 1
        assert!(report.time > SimTime::ZERO);
        assert_eq!(os.stats().scrubs, 1);
    }

    #[test]
    fn scrub_repairs_seu_corruption_in_place() {
        let mut os = os_with(&[ids::SHA256]);
        os.invoke(ids::SHA256, b"x").unwrap();
        let frames = os.table().get(ids::SHA256).unwrap().frames.clone();
        let mut bytes = os.device().read_frame(frames[3]).unwrap().to_vec();
        bytes[100] ^= 0x08; // single-event upset
        os.device_mut().write_frame(frames[3], &bytes).unwrap();
        let report = os.scrub().unwrap();
        assert_eq!(report.repaired, vec![ids::SHA256]);
        assert_eq!(os.stats().scrub_repairs, 1);
        // the function works again, still at the same placement
        let (out, r) = os.invoke(ids::SHA256, b"abc").unwrap();
        assert!(r.hit);
        assert_eq!(out[..4], [0xba, 0x78, 0x16, 0xbf]);
        assert_eq!(os.table().get(ids::SHA256).unwrap().frames, frames);
    }

    #[test]
    fn reset_clears_fabric_but_not_rom() {
        let mut os = os_with(&[ids::CRC32]);
        os.invoke(ids::CRC32, b"x").unwrap();
        let t = os.reset();
        assert!(t > SimTime::ZERO);
        assert!(os.resident().is_empty());
        assert_eq!(os.free_frames(), os.geometry().frames());
        assert_eq!(os.stats().requests, 0);
        // ROM survives: re-invoke reconfigures without re-download
        let (out, r) = os.invoke(ids::CRC32, b"123456789").unwrap();
        assert!(!r.hit);
        assert_eq!(out, 0xCBF4_3926u32.to_le_bytes().to_vec());
    }

    #[test]
    fn download_requires_valid_stream() {
        let mut os = os_with(&[]);
        assert!(os.download(&[0u8; 10]).is_err());
    }

    #[test]
    fn frame_map_shows_ownership() {
        let mut os = os_with(&[ids::CRC32, ids::SHA1]);
        os.invoke(ids::CRC32, b"a").unwrap(); // id 5, 2 frames
        os.invoke(ids::SHA1, b"b").unwrap(); // id 3, 12 frames
        let cells: String = os
            .frame_map()
            .lines()
            .map(|l| &l[6..]) // strip the "  NNN  " index prefix
            .collect();
        assert_eq!(cells.matches('5').count(), 2);
        assert_eq!(cells.matches('3').count(), 12);
        assert_eq!(cells.matches('.').count(), 96 - 14);
    }

    #[test]
    fn decoded_cache_hit_skips_rom_and_decompression() {
        let mut os = os_with(&[ids::SHA1]);
        let (out1, first) = os.invoke(ids::SHA1, b"payload").unwrap();
        assert!(!first.hit && !first.decoded_cache_hit);
        assert!(first.rom_time > SimTime::ZERO);
        os.evict(ids::SHA1).unwrap();
        let (out2, second) = os.invoke(ids::SHA1, b"payload").unwrap();
        assert_eq!(out1, out2);
        assert!(!second.hit, "eviction forces a residency miss");
        assert!(second.decoded_cache_hit);
        assert_eq!(second.rom_time, SimTime::ZERO, "ROM fetch skipped");
        assert!(
            second.reconfig_time < first.reconfig_time,
            "port-only reconfig {} must beat decompress+port {}",
            second.reconfig_time,
            first.reconfig_time
        );
        let s = os.stats();
        assert_eq!(s.decoded_misses, 1);
        assert_eq!(s.decoded_hits, 1);
        assert!(s.decoded_bytes_saved >= 12 * 896, "12 frames of 896 bytes");
        assert_eq!(
            s.decoded_clone_bytes_avoided,
            12 * 896,
            "the Arc hit hands out the 12 decoded frames uncopied"
        );
    }

    #[test]
    fn decoded_cache_disabled_always_decompresses() {
        let mut os = MiniOs::new(MiniOsConfig {
            decoded_cache_bytes: 0,
            ..MiniOsConfig::default()
        });
        os.install(ids::CRC32).unwrap();
        os.invoke(ids::CRC32, b"a").unwrap();
        os.evict(ids::CRC32).unwrap();
        let (_, report) = os.invoke(ids::CRC32, b"a").unwrap();
        assert!(!report.decoded_cache_hit);
        assert!(report.rom_time > SimTime::ZERO);
        let s = os.stats();
        assert_eq!(s.decoded_hits, 0);
        assert_eq!(s.decoded_misses, 0);
        assert_eq!(s.decoded_bytes_saved, 0);
    }

    #[test]
    fn decoded_cache_bounded_by_capacity() {
        // Cache sized for one small function only (default geometry
        // has 896-byte frames): CRC32 (2 frames = 1792B) fits, XTEA
        // (6 frames = 5376B) does not.
        let mut os = MiniOs::new(MiniOsConfig {
            decoded_cache_bytes: 2048,
            ..MiniOsConfig::default()
        });
        os.install(ids::CRC32).unwrap();
        os.install(ids::XTEA).unwrap();
        os.invoke(ids::CRC32, b"a").unwrap();
        assert_eq!(os.decoded_cache().len(), 1);
        os.invoke(ids::XTEA, &[0; 8]).unwrap(); // too big to cache
        assert_eq!(os.decoded_cache().len(), 1);
        assert!(os.decoded_cache().bytes() <= 2048);
        os.evict(ids::CRC32).unwrap();
        let (_, r) = os.invoke(ids::CRC32, b"a").unwrap();
        assert!(r.decoded_cache_hit, "small function stayed cached");
    }

    #[test]
    fn deltav2_reconfig_is_served_from_the_frame_store() {
        // Decoded cache off so the second configuration exercises the
        // ROM + frame-store path instead of the decoded cache.
        let mut os = MiniOs::new(MiniOsConfig {
            codec: CodecId::DeltaV2,
            decoded_cache_bytes: 0,
            ..MiniOsConfig::default()
        });
        os.install(ids::SHA1).unwrap();
        let (out, first) = os.invoke(ids::SHA1, b"abc").unwrap();
        assert_eq!(out, os.bank().execute_software(ids::SHA1, b"abc").unwrap());
        let s = os.stats();
        assert!(s.frame_store_misses > 0, "first config decodes: {s:?}");
        assert_eq!(s.frame_store_hits, 0);
        assert!(!os.frame_store().is_empty());
        // The store is content-addressed, so it survives eviction:
        // re-configuring ships only references.
        os.evict(ids::SHA1).unwrap();
        let (out, second) = os.invoke(ids::SHA1, b"abc").unwrap();
        assert_eq!(out, os.bank().execute_software(ids::SHA1, b"abc").unwrap());
        let s = os.stats();
        assert!(s.frame_store_hits > 0, "{s:?}");
        assert!(s.frame_store_bytes_deduped > 0);
        assert!(s.frame_store_hit_rate() > 0.0);
        assert!(
            second.reconfig_time < first.reconfig_time,
            "store hits must undercut decoding: {:?} vs {:?}",
            second.reconfig_time,
            first.reconfig_time
        );
    }

    #[test]
    fn deltav2_store_dedups_across_algorithms() {
        use aaod_algos::AliasKernel;
        use std::sync::Arc;
        let mut bank = aaod_algos::AlgorithmBank::standard();
        bank.register(Arc::new(AliasKernel::new(
            100,
            "sha1-alias",
            Arc::new(aaod_algos::crypto::Sha1),
        )));
        let mut os = MiniOs::new(MiniOsConfig {
            codec: CodecId::DeltaV2,
            decoded_cache_bytes: 0,
            bank,
            ..MiniOsConfig::default()
        });
        os.install(ids::SHA1).unwrap();
        os.install(100).unwrap();
        let (sha, _) = os.invoke(ids::SHA1, b"abc").unwrap();
        let before = os.stats();
        assert_eq!(before.frame_store_hits, 0);
        // The alias's 11 body frames are byte-identical to SHA-1's,
        // so its first-ever configuration is already mostly hits.
        let (alias, _) = os.invoke(100, b"abc").unwrap();
        assert_eq!(alias, sha, "alias behaves exactly like SHA-1");
        let s = os.stats();
        assert!(s.frame_store_hits >= 11, "{s:?}");
        assert!(s.frame_store_bytes_deduped >= 11 * 896, "{s:?}");
    }

    #[test]
    fn non_deltav2_codecs_never_touch_the_frame_store() {
        let mut os = MiniOs::new(MiniOsConfig {
            decoded_cache_bytes: 0,
            ..MiniOsConfig::default() // Lzss
        });
        os.install(ids::SHA1).unwrap();
        os.invoke(ids::SHA1, b"abc").unwrap();
        os.evict(ids::SHA1).unwrap();
        os.invoke(ids::SHA1, b"abc").unwrap();
        let s = os.stats();
        assert_eq!(s.frame_store_hits, 0);
        assert_eq!(s.frame_store_misses, 0);
        assert_eq!(s.frame_store_bytes_deduped, 0);
        assert!(os.frame_store().is_empty());
    }

    #[test]
    fn deltav2_timing_matches_with_store_disabled_or_cold() {
        // With the store disabled the DeltaV2 stream must still
        // configure correctly through the plain decode path.
        let mut os = MiniOs::new(MiniOsConfig {
            codec: CodecId::DeltaV2,
            decoded_cache_bytes: 0,
            frame_store_bytes: 0,
            ..MiniOsConfig::default()
        });
        os.install(ids::SHA1).unwrap();
        let (out, _) = os.invoke(ids::SHA1, b"abc").unwrap();
        assert_eq!(out, os.bank().execute_software(ids::SHA1, b"abc").unwrap());
        let s = os.stats();
        assert_eq!(s.frame_store_hits, 0);
        assert_eq!(s.frame_store_misses, 0);
        assert!(os.frame_store().is_empty());
    }

    #[test]
    fn reset_clears_the_frame_store() {
        let mut os = MiniOs::new(MiniOsConfig {
            codec: CodecId::DeltaV2,
            decoded_cache_bytes: 0,
            ..MiniOsConfig::default()
        });
        os.install(ids::SHA1).unwrap();
        os.invoke(ids::SHA1, b"abc").unwrap();
        assert!(!os.frame_store().is_empty());
        os.reset();
        assert!(os.frame_store().is_empty());
        assert_eq!(os.frame_store().stats(), Default::default());
    }

    #[test]
    fn batch_outputs_match_serial_invokes() {
        let inputs: Vec<&[u8]> = vec![b"alpha", b"beta", b"gamma-long-input"];
        let mut serial = os_with(&[ids::SHA256]);
        let mut expected = Vec::new();
        for &input in &inputs {
            expected.push(serial.invoke(ids::SHA256, input).unwrap());
        }
        let mut batched = os_with(&[ids::SHA256]);
        let got = batched.invoke_batch(ids::SHA256, &inputs).unwrap();
        assert_eq!(got.len(), expected.len());
        for ((out_b, rep_b), (out_s, rep_s)) in got.iter().zip(&expected) {
            assert_eq!(out_b, out_s, "batch output must be byte-identical");
            assert_eq!(rep_b.hit, rep_s.hit);
            assert_eq!(rep_b.exec_time, rep_s.exec_time);
        }
        // both controllers agree on hit/miss bookkeeping
        assert_eq!(batched.stats().hits, serial.stats().hits);
        assert_eq!(batched.stats().misses, serial.stats().misses);
        // the batch pays the record lookup once
        assert!(got[0].1.lookup_time > SimTime::ZERO);
        assert_eq!(got[1].1.lookup_time, SimTime::ZERO);
        assert!(
            batched.stats().lookup_time < serial.stats().lookup_time,
            "batching must shave repeated lookups"
        );
    }

    #[test]
    fn batch_first_request_carries_miss_cost() {
        let mut os = os_with(&[ids::CRC32]);
        let inputs: Vec<&[u8]> = vec![b"a", b"b", b"c"];
        let reports = os.invoke_batch(ids::CRC32, &inputs).unwrap();
        assert!(!reports[0].1.hit);
        assert!(reports[0].1.reconfig_time > SimTime::ZERO);
        for (_, r) in &reports[1..] {
            assert!(r.hit);
            assert_eq!(r.reconfig_time, SimTime::ZERO);
            assert_eq!(r.rom_time, SimTime::ZERO);
        }
        assert_eq!(os.stats().requests, 3);
        assert_eq!(os.stats().misses, 1);
        assert_eq!(os.stats().hits, 2);
    }

    #[test]
    fn batch_empty_is_a_no_op() {
        let mut os = os_with(&[ids::CRC32]);
        let before = os.now();
        assert!(os.invoke_batch(ids::CRC32, &[]).unwrap().is_empty());
        assert_eq!(os.stats().requests, 0);
        assert_eq!(os.now(), before);
    }

    #[test]
    fn config_stall_delays_next_miss_only() {
        let mut clean = os_with(&[ids::CRC32]);
        let (_, clean_miss) = clean.invoke(ids::CRC32, b"123456789").unwrap();
        let mut os = os_with(&[ids::CRC32]);
        os.arm_config_stall(10_000);
        let (out, report) = os.invoke(ids::CRC32, b"123456789").unwrap();
        assert_eq!(out, 0xCBF4_3926u32.to_le_bytes().to_vec());
        let stall = os.mcu_clock().cycles(10_000);
        assert_eq!(report.reconfig_time, clean_miss.reconfig_time + stall);
        assert_eq!(os.armed_config_stall(), 0);
        let s = os.stats();
        assert_eq!(s.config_stalls, 1);
        assert_eq!(s.config_stall_time, stall);
        // the next miss is back to nominal
        os.evict(ids::CRC32).unwrap();
        let (_, again) = os.invoke(ids::CRC32, b"a").unwrap();
        assert!(again.reconfig_time < report.reconfig_time);
        assert_eq!(os.stats().config_stalls, 1);
    }

    #[test]
    fn config_stall_not_consumed_by_residency_hit() {
        let mut os = os_with(&[ids::CRC32]);
        os.invoke(ids::CRC32, b"a").unwrap(); // now resident
        os.arm_config_stall(5_000);
        let (_, hit) = os.invoke(ids::CRC32, b"b").unwrap();
        assert!(hit.hit);
        assert_eq!(hit.reconfig_time, SimTime::ZERO);
        assert_eq!(os.armed_config_stall(), 5_000, "hit must not consume");
        assert_eq!(os.stats().config_stalls, 0);
        assert_eq!(os.disarm_config_stall(), 5_000);
        assert_eq!(os.armed_config_stall(), 0);
    }

    #[test]
    fn reset_clears_armed_config_stall() {
        let mut os = os_with(&[ids::CRC32]);
        os.arm_config_stall(7_000);
        os.reset();
        assert_eq!(os.armed_config_stall(), 0);
    }

    #[test]
    fn duplicate_download_rejected() {
        let mut os = os_with(&[ids::CRC32]);
        assert!(matches!(
            os.install(ids::CRC32),
            Err(McuError::Mem(MemError::DuplicateFunction(_)))
        ));
    }

    #[test]
    fn detail_log_is_off_by_default_and_free() {
        let mut os = os_with(&[ids::CRC32]);
        os.invoke(ids::CRC32, b"123456789").unwrap();
        assert!(!os.trace_enabled());
        assert!(os.take_details().is_empty());
    }

    #[test]
    fn detail_log_records_miss_then_hit_without_time_skew() {
        let mut untraced = os_with(&[ids::CRC32]);
        let mut os = os_with(&[ids::CRC32]);
        os.set_trace(true);
        os.invoke(ids::CRC32, b"123456789").unwrap();
        let details = os.take_details();
        use aaod_sim::DetailEvent as D;
        // Miss path: residency miss, ROM fetch, decompress, port
        // write, decoded-cache miss note.
        assert!(matches!(
            details[0],
            D::Residency { algo, hit: false } if algo == ids::CRC32
        ));
        assert!(details
            .iter()
            .any(|d| matches!(d, D::RomFetch { bytes, .. } if *bytes > 0)));
        assert!(details
            .iter()
            .any(|d| matches!(d, D::Decompress { windows, .. } if *windows > 0)));
        assert!(details
            .iter()
            .any(|d| matches!(d, D::PortWrite { frames, .. } if *frames > 0)));
        assert!(details
            .iter()
            .any(|d| matches!(d, D::DecodedCache { hit: false, .. })));
        // Hit path: just the residency hit.
        os.invoke(ids::CRC32, b"123456789").unwrap();
        let details = os.take_details();
        assert_eq!(details.len(), 1);
        assert!(matches!(details[0], D::Residency { hit: true, .. }));
        // Tracing observed, never perturbed, the modelled clock.
        untraced.invoke(ids::CRC32, b"123456789").unwrap();
        untraced.invoke(ids::CRC32, b"123456789").unwrap();
        assert_eq!(os.now(), untraced.now());
    }

    #[test]
    fn detail_log_records_evictions() {
        // 40 frames: AES (24) + SHA1 (12) fit; SHA256 (16) evicts AES.
        let mut os = small_os(40, Box::new(LruPolicy));
        for id in [ids::AES128, ids::SHA1, ids::SHA256] {
            os.install(id).unwrap();
        }
        os.invoke(ids::AES128, &[0; 16]).unwrap();
        os.invoke(ids::SHA1, b"x").unwrap();
        os.set_trace(true);
        os.invoke(ids::SHA256, b"y").unwrap();
        let details = os.take_details();
        assert!(details.iter().any(|d| matches!(
            d,
            aaod_sim::DetailEvent::Eviction { algo, frames } if *algo == ids::AES128 && *frames > 0
        )));
    }
}

//! Speculative configuration: a first-order Markov next-algorithm
//! predictor.
//!
//! An extension of the paper's on-demand design: request streams have
//! structure (an IPSec flow alternates cipher and authenticator), so
//! after each invocation the controller can use idle bus time to
//! pre-configure the *predicted next* function into free frames. The
//! predictor is deliberately tiny — a table of observed
//! `current → next` transition counts — because it must fit a
//! microcontroller.
//!
//! Prefetching may evict cold functions per the replacement policy —
//! on a full device it would otherwise never fire — but it refuses to
//! displace the just-invoked function or its own prediction target,
//! so a wrong guess can cost at most one extra swap-in later.

use std::collections::BTreeMap;

/// First-order Markov predictor over algorithm ids.
///
/// # Examples
///
/// ```
/// use aaod_mcu::prefetch::MarkovPredictor;
///
/// let mut p = MarkovPredictor::new();
/// for id in [1u16, 2, 1, 2, 1] {
///     p.observe(id);
/// }
/// assert_eq!(p.predict(), Some(2)); // after 1 comes 2
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MarkovPredictor {
    transitions: BTreeMap<u16, BTreeMap<u16, u64>>,
    last: Option<u16>,
}

impl MarkovPredictor {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        MarkovPredictor::default()
    }

    /// Records that `algo_id` was requested (after whatever was
    /// requested before it).
    pub fn observe(&mut self, algo_id: u16) {
        if let Some(prev) = self.last {
            *self
                .transitions
                .entry(prev)
                .or_default()
                .entry(algo_id)
                .or_insert(0) += 1;
        }
        self.last = Some(algo_id);
    }

    /// The most likely next algorithm given the last observation, or
    /// `None` before any transition has been seen. Ties break toward
    /// the smaller id (deterministic).
    pub fn predict(&self) -> Option<u16> {
        let last = self.last?;
        self.transitions
            .get(&last)?
            .iter()
            .max_by_key(|&(id, &count)| (count, std::cmp::Reverse(*id)))
            .map(|(&id, _)| id)
    }

    /// Number of distinct source states observed.
    pub fn states(&self) -> usize {
        self.transitions.len()
    }

    /// Forgets everything (used on reset).
    pub fn clear(&mut self) {
        self.transitions.clear();
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_predicts_nothing() {
        let p = MarkovPredictor::new();
        assert_eq!(p.predict(), None);
        let mut p = MarkovPredictor::new();
        p.observe(5);
        assert_eq!(p.predict(), None, "single observation has no transition");
    }

    #[test]
    fn learns_alternation() {
        let mut p = MarkovPredictor::new();
        for id in [1u16, 2, 1, 2, 1, 2] {
            p.observe(id);
        }
        assert_eq!(p.predict(), Some(1)); // last was 2; 2 -> 1 dominates
        p.observe(1);
        assert_eq!(p.predict(), Some(2));
    }

    #[test]
    fn learns_majority_transition() {
        let mut p = MarkovPredictor::new();
        // 3 -> 4 twice, 3 -> 5 once
        for id in [3u16, 4, 3, 5, 3, 4, 3] {
            p.observe(id);
        }
        assert_eq!(p.predict(), Some(4));
    }

    #[test]
    fn tie_breaks_to_smaller_id() {
        let mut p = MarkovPredictor::new();
        for id in [9u16, 1, 9, 2, 9] {
            p.observe(id);
        }
        assert_eq!(p.predict(), Some(1));
    }

    #[test]
    fn clear_forgets() {
        let mut p = MarkovPredictor::new();
        for id in [1u16, 2, 1] {
            p.observe(id);
        }
        p.clear();
        assert_eq!(p.predict(), None);
        assert_eq!(p.states(), 0);
    }
}

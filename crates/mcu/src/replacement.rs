//! Frame Replacement Table and policies (paper §2.5).
//!
//! The table gives "an indication of the list of frames occupied by
//! each algorithm present on the FPGA along with a time stamp
//! specifying the last moment at which it was accessed. That algorithm
//! which has the oldest time stamp provides extra frames for potential
//! reconfiguration" — i.e. the paper's policy is LRU over whole
//! algorithms. [`LruPolicy`] implements exactly that; [`FifoPolicy`],
//! [`LfuPolicy`], [`RandomPolicy`] and the clairvoyant [`BeladyPolicy`]
//! are provided as baselines and an upper bound for experiment E4.

use aaod_fabric::FrameAddress;
use aaod_sim::{SimTime, SplitMix64};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

/// Per-resident-algorithm bookkeeping: the Frame Replacement Table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Residency {
    /// Frames the algorithm's logic occupies (possibly non-contiguous).
    pub frames: Vec<FrameAddress>,
    /// Timestamp of the most recent access.
    pub last_access: SimTime,
    /// Timestamp at which the algorithm was configured.
    pub loaded_at: SimTime,
    /// Number of accesses since it was configured.
    pub accesses: u64,
}

/// The Frame Replacement Table: resident algorithms and their frames.
///
/// Keyed by algorithm id in a `BTreeMap` so iteration order — and
/// therefore policy tie-breaking — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplacementTable {
    entries: BTreeMap<u16, Residency>,
}

impl ReplacementTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ReplacementTable::default()
    }

    /// Number of resident algorithms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record that `algo_id` now occupies `frames`.
    pub fn insert(&mut self, algo_id: u16, frames: Vec<FrameAddress>, now: SimTime) {
        self.entries.insert(
            algo_id,
            Residency {
                frames,
                last_access: now,
                loaded_at: now,
                accesses: 0,
            },
        );
    }

    /// Removes an algorithm, returning its residency (frames to free).
    pub fn remove(&mut self, algo_id: u16) -> Option<Residency> {
        self.entries.remove(&algo_id)
    }

    /// Looks up a resident algorithm.
    pub fn get(&self, algo_id: u16) -> Option<&Residency> {
        self.entries.get(&algo_id)
    }

    /// Whether `algo_id` is resident.
    pub fn contains(&self, algo_id: u16) -> bool {
        self.entries.contains_key(&algo_id)
    }

    /// Updates the access timestamp and count.
    pub fn touch(&mut self, algo_id: u16, now: SimTime) {
        if let Some(r) = self.entries.get_mut(&algo_id) {
            r.last_access = now;
            r.accesses += 1;
        }
    }

    /// Iterates `(algo_id, residency)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &Residency)> {
        self.entries.iter().map(|(&k, v)| (k, v))
    }

    /// The resident algorithm ids in key order.
    pub fn resident_ids(&self) -> Vec<u16> {
        self.entries.keys().copied().collect()
    }
}

/// Chooses which resident algorithm surrenders its frames when the
/// free-frame list cannot satisfy a new configuration.
///
/// Object-safe: the mini-OS holds the policy as a trait object chosen
/// at construction.
pub trait ReplacementPolicy: fmt::Debug + Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Picks the victim among the algorithms in `table`, or `None` if
    /// the table is empty. Must return a key of `table`.
    fn victim(&mut self, table: &ReplacementTable) -> Option<u16>;

    /// Called once per host request, before residency is checked (the
    /// Belady oracle advances its future window here).
    fn on_request(&mut self, _algo_id: u16) {}
}

/// The paper's policy: evict the algorithm with the oldest
/// last-access timestamp.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruPolicy;

impl ReplacementPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn victim(&mut self, table: &ReplacementTable) -> Option<u16> {
        table
            .iter()
            .min_by_key(|(id, r)| (r.last_access, *id))
            .map(|(id, _)| id)
    }
}

/// Evict the algorithm configured earliest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoPolicy;

impl ReplacementPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn victim(&mut self, table: &ReplacementTable) -> Option<u16> {
        table
            .iter()
            .min_by_key(|(id, r)| (r.loaded_at, *id))
            .map(|(id, _)| id)
    }
}

/// Evict the least-frequently-used algorithm (ties: oldest access).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LfuPolicy;

impl ReplacementPolicy for LfuPolicy {
    fn name(&self) -> &'static str {
        "lfu"
    }

    fn victim(&mut self, table: &ReplacementTable) -> Option<u16> {
        table
            .iter()
            .min_by_key(|(id, r)| (r.accesses, r.last_access, *id))
            .map(|(id, _)| id)
    }
}

/// Evict a uniformly random resident algorithm (seeded, deterministic).
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: SplitMix64,
}

impl RandomPolicy {
    /// Creates the policy with an RNG seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: SplitMix64::new(seed),
        }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn victim(&mut self, table: &ReplacementTable) -> Option<u16> {
        let ids = table.resident_ids();
        if ids.is_empty() {
            None
        } else {
            Some(ids[self.rng.index(ids.len())])
        }
    }
}

/// Belady's clairvoyant policy: evict the resident algorithm whose
/// next use is farthest in the future (or never). Requires the full
/// request trace up front; it is the unreachable upper bound in E4.
#[derive(Debug, Clone)]
pub struct BeladyPolicy {
    future: VecDeque<u16>,
}

impl BeladyPolicy {
    /// Creates the oracle from the upcoming request trace (in order).
    pub fn new<I: IntoIterator<Item = u16>>(trace: I) -> Self {
        BeladyPolicy {
            future: trace.into_iter().collect(),
        }
    }

    /// Remaining future requests (for tests).
    pub fn remaining(&self) -> usize {
        self.future.len()
    }
}

impl ReplacementPolicy for BeladyPolicy {
    fn name(&self) -> &'static str {
        "belady"
    }

    fn on_request(&mut self, algo_id: u16) {
        // Consume the front of the trace; tolerate divergence by
        // scanning forward to the matching request.
        while let Some(front) = self.future.pop_front() {
            if front == algo_id {
                break;
            }
        }
    }

    fn victim(&mut self, table: &ReplacementTable) -> Option<u16> {
        let ids = table.resident_ids();
        if ids.is_empty() {
            return None;
        }
        // distance to next use; None = never used again
        ids.iter()
            .copied()
            .max_by_key(|&id| {
                let next = self.future.iter().position(|&a| a == id);
                match next {
                    None => (usize::MAX, id),
                    Some(d) => (d, id),
                }
            })
            .or(Some(ids[0]))
    }
}

/// Constructs a policy by name (used by benches and examples).
///
/// `"belady"` requires the trace, so it is not constructible here;
/// build it directly with [`BeladyPolicy::new`].
///
/// # Panics
///
/// Panics on an unknown name.
pub fn policy_by_name(name: &str, seed: u64) -> Box<dyn ReplacementPolicy> {
    match name {
        "lru" => Box::new(LruPolicy),
        "fifo" => Box::new(FifoPolicy),
        "lfu" => Box::new(LfuPolicy),
        "random" => Box::new(RandomPolicy::new(seed)),
        other => panic!("unknown replacement policy {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(entries: &[(u16, u64, u64, u64)]) -> ReplacementTable {
        // (id, last_access_ns, loaded_ns, accesses)
        let mut t = ReplacementTable::new();
        for &(id, last, loaded, acc) in entries {
            t.insert(id, vec![FrameAddress(id)], SimTime::from_ns(loaded));
            if let Some(r) = t.entries.get_mut(&id) {
                r.last_access = SimTime::from_ns(last);
                r.accesses = acc;
            }
        }
        t
    }

    #[test]
    fn lru_picks_oldest_timestamp() {
        let t = table_with(&[(1, 100, 0, 5), (2, 50, 0, 9), (3, 200, 0, 1)]);
        assert_eq!(LruPolicy.victim(&t), Some(2));
    }

    #[test]
    fn fifo_picks_earliest_load() {
        let t = table_with(&[(1, 100, 30, 5), (2, 50, 10, 9), (3, 200, 20, 1)]);
        assert_eq!(FifoPolicy.victim(&t), Some(2));
    }

    #[test]
    fn lfu_picks_fewest_accesses() {
        let t = table_with(&[(1, 100, 0, 5), (2, 50, 0, 9), (3, 200, 0, 1)]);
        assert_eq!(LfuPolicy.victim(&t), Some(3));
    }

    #[test]
    fn policies_return_none_on_empty_table() {
        let t = ReplacementTable::new();
        assert_eq!(LruPolicy.victim(&t), None);
        assert_eq!(FifoPolicy.victim(&t), None);
        assert_eq!(LfuPolicy.victim(&t), None);
        assert_eq!(RandomPolicy::new(0).victim(&t), None);
        assert_eq!(BeladyPolicy::new([]).victim(&t), None);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let t = table_with(&[(1, 0, 0, 0), (2, 0, 0, 0), (3, 0, 0, 0)]);
        let mut a = RandomPolicy::new(7);
        let mut b = RandomPolicy::new(7);
        for _ in 0..20 {
            assert_eq!(a.victim(&t), b.victim(&t));
        }
    }

    #[test]
    fn belady_evicts_farthest_next_use() {
        // future: 1, 2, 1, 3 — resident {1,2,3}: 3 is used last, but 3
        // appears at distance 3, while... resident 1 at distance 0,
        // 2 at distance 1, 3 at distance 3 -> victim 3? No: max
        // distance wins, and an algo never used again beats all.
        let t = table_with(&[(1, 0, 0, 0), (2, 0, 0, 0), (3, 0, 0, 0)]);
        let mut p = BeladyPolicy::new([1u16, 2, 1, 3]);
        assert_eq!(p.victim(&t), Some(3));
        // after consuming request 1, future = [2,1,3]; add algo 4 that
        // never recurs — it must be the victim.
        p.on_request(1);
        let t2 = table_with(&[(1, 0, 0, 0), (2, 0, 0, 0), (4, 0, 0, 0)]);
        assert_eq!(p.victim(&t2), Some(4));
    }

    #[test]
    fn belady_consumes_trace() {
        let mut p = BeladyPolicy::new([5u16, 6, 7]);
        p.on_request(5);
        assert_eq!(p.remaining(), 2);
        p.on_request(7); // skips the diverged 6
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    fn table_touch_updates() {
        let mut t = ReplacementTable::new();
        t.insert(9, vec![FrameAddress(0)], SimTime::from_ns(5));
        t.touch(9, SimTime::from_ns(50));
        let r = t.get(9).unwrap();
        assert_eq!(r.last_access, SimTime::from_ns(50));
        assert_eq!(r.loaded_at, SimTime::from_ns(5));
        assert_eq!(r.accesses, 1);
        t.touch(999, SimTime::from_ns(60)); // no-op on absent id
    }

    #[test]
    fn table_remove_returns_frames() {
        let mut t = ReplacementTable::new();
        t.insert(1, vec![FrameAddress(4), FrameAddress(9)], SimTime::ZERO);
        let r = t.remove(1).unwrap();
        assert_eq!(r.frames, vec![FrameAddress(4), FrameAddress(9)]);
        assert!(t.remove(1).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn policy_by_name_constructs() {
        for name in ["lru", "fifo", "lfu", "random"] {
            assert_eq!(policy_by_name(name, 1).name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown replacement policy")]
    fn unknown_policy_panics() {
        let _ = policy_by_name("clock", 0);
    }
}

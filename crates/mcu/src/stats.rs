//! Mini-OS statistics.

use aaod_sim::SimTime;

/// Running counters the mini-OS maintains across requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OsStats {
    /// Invocations serviced.
    pub requests: u64,
    /// Invocations whose function was already resident.
    pub hits: u64,
    /// Invocations that required (re)configuration.
    pub misses: u64,
    /// Algorithms evicted to make room.
    pub evictions: u64,
    /// Frames written through the configuration port.
    pub frames_configured: u64,
    /// Cumulative time in record lookups.
    pub lookup_time: SimTime,
    /// Cumulative time reading bitstreams from ROM.
    pub rom_time: SimTime,
    /// Cumulative time decompressing + configuring.
    pub reconfig_time: SimTime,
    /// Cumulative time staging inputs.
    pub input_time: SimTime,
    /// Cumulative execution time on the fabric.
    pub exec_time: SimTime,
    /// Cumulative time collecting outputs.
    pub output_time: SimTime,
    /// Speculative configurations performed (extension).
    pub prefetches: u64,
    /// Hits served from a speculatively configured function.
    pub prefetch_hits: u64,
    /// Idle time spent on speculative configuration (not on the
    /// request critical path).
    pub prefetch_time: SimTime,
    /// Speculative configurations that failed *after* their victims
    /// were evicted: the card is left with fewer residents and no
    /// installed target, and this counter is the ledger entry tying
    /// the two together (see `MiniOs::prefetch_hint`).
    pub prefetch_aborted: u64,
    /// Scrub passes performed (extension).
    pub scrubs: u64,
    /// Functions repaired from ROM by scrubbing.
    pub scrub_repairs: u64,
    /// Time spent in readback scrubbing.
    pub scrub_time: SimTime,
    /// Misses whose decoded frames were served from the
    /// decoded-bitstream cache, skipping ROM fetch + decompression
    /// (extension; see [`crate::decoded_cache`]).
    pub decoded_hits: u64,
    /// Misses that had to decompress from ROM.
    pub decoded_misses: u64,
    /// Decompressed bytes whose production the decoded cache avoided.
    pub decoded_bytes_saved: u64,
    /// Decoded frame bytes the cache's shared (`Arc`) hit path handed
    /// out *without* copying — the allocation traffic the borrowed
    /// return avoids relative to cloning each hit's frames.
    pub decoded_clone_bytes_avoided: u64,
    /// Corruption-recovery re-downloads: a function whose ROM image
    /// went bad was removed, re-encoded and downloaded afresh
    /// (extension; see [`crate::MiniOs::redownload`]).
    pub redownloads: u64,
    /// Time spent in recovery re-downloads.
    pub redownload_time: SimTime,
    /// Reconfigurations delayed by an injected configuration-port
    /// stall (extension; see [`crate::MiniOs::arm_config_stall`]).
    pub config_stalls: u64,
    /// Extra reconfiguration time the stalls added (subset of
    /// `reconfig_time`).
    pub config_stall_time: SimTime,
    /// DeltaV2 frame records served from the content-addressed frame
    /// store instead of being decoded (extension; see
    /// [`aaod_bitstream::FrameStore`]).
    pub frame_store_hits: u64,
    /// DeltaV2 frame records that missed the store and were decoded.
    pub frame_store_misses: u64,
    /// Frame bytes whose decompression the store hits avoided.
    pub frame_store_bytes_deduped: u64,
}

impl OsStats {
    /// Fraction of requests served without reconfiguration.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Accumulates another controller's counters into this one — used
    /// when aggregating the per-shard controllers of a serving engine.
    pub fn merge(&mut self, other: &OsStats) {
        self.requests += other.requests;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.frames_configured += other.frames_configured;
        self.lookup_time += other.lookup_time;
        self.rom_time += other.rom_time;
        self.reconfig_time += other.reconfig_time;
        self.input_time += other.input_time;
        self.exec_time += other.exec_time;
        self.output_time += other.output_time;
        self.prefetches += other.prefetches;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_time += other.prefetch_time;
        self.prefetch_aborted += other.prefetch_aborted;
        self.scrubs += other.scrubs;
        self.scrub_repairs += other.scrub_repairs;
        self.scrub_time += other.scrub_time;
        self.decoded_hits += other.decoded_hits;
        self.decoded_misses += other.decoded_misses;
        self.decoded_bytes_saved += other.decoded_bytes_saved;
        self.decoded_clone_bytes_avoided += other.decoded_clone_bytes_avoided;
        self.redownloads += other.redownloads;
        self.redownload_time += other.redownload_time;
        self.config_stalls += other.config_stalls;
        self.config_stall_time += other.config_stall_time;
        self.frame_store_hits += other.frame_store_hits;
        self.frame_store_misses += other.frame_store_misses;
        self.frame_store_bytes_deduped += other.frame_store_bytes_deduped;
    }

    /// Fraction of store-probed DeltaV2 frames served without
    /// decoding.
    pub fn frame_store_hit_rate(&self) -> f64 {
        let total = self.frame_store_hits + self.frame_store_misses;
        if total == 0 {
            0.0
        } else {
            self.frame_store_hits as f64 / total as f64
        }
    }

    /// Fraction of misses whose decoded frames were already cached.
    pub fn decoded_hit_rate(&self) -> f64 {
        let total = self.decoded_hits + self.decoded_misses;
        if total == 0 {
            0.0
        } else {
            self.decoded_hits as f64 / total as f64
        }
    }

    /// Total accounted time across all categories.
    pub fn total_time(&self) -> SimTime {
        self.lookup_time
            + self.rom_time
            + self.reconfig_time
            + self.input_time
            + self.exec_time
            + self.output_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(OsStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_fraction() {
        let s = OsStats {
            requests: 4,
            hits: 3,
            misses: 1,
            ..OsStats::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = OsStats {
            requests: 2,
            hits: 1,
            decoded_bytes_saved: 10,
            exec_time: SimTime::from_ns(5),
            ..OsStats::default()
        };
        let b = OsStats {
            requests: 3,
            misses: 2,
            decoded_bytes_saved: 7,
            exec_time: SimTime::from_ns(4),
            ..OsStats::default()
        };
        a.merge(&b);
        assert_eq!(a.requests, 5);
        assert_eq!(a.hits, 1);
        assert_eq!(a.misses, 2);
        assert_eq!(a.decoded_bytes_saved, 17);
        assert_eq!(a.exec_time, SimTime::from_ns(9));
    }

    #[test]
    fn decoded_hit_rate_fraction() {
        assert_eq!(OsStats::default().decoded_hit_rate(), 0.0);
        let s = OsStats {
            decoded_hits: 3,
            decoded_misses: 1,
            ..OsStats::default()
        };
        assert_eq!(s.decoded_hit_rate(), 0.75);
    }

    #[test]
    fn total_time_sums_categories() {
        let s = OsStats {
            lookup_time: SimTime::from_ns(1),
            rom_time: SimTime::from_ns(2),
            reconfig_time: SimTime::from_ns(3),
            input_time: SimTime::from_ns(4),
            exec_time: SimTime::from_ns(5),
            output_time: SimTime::from_ns(6),
            ..OsStats::default()
        };
        assert_eq!(s.total_time(), SimTime::from_ns(21));
    }
}

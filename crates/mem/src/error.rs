//! Memory subsystem error type.

use std::error::Error;
use std::fmt;

/// Errors from the ROM and local RAM models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// A download would make the bitstream region and the record table
    /// collide (paper §2.2: they grow toward each other).
    RomFull {
        /// Bytes the download needs (bitstream + record entry).
        needed: usize,
        /// Bytes left between the two regions.
        free: usize,
    },
    /// A function with this id is already recorded in the ROM.
    DuplicateFunction(u16),
    /// No record exists for this function id.
    RecordNotFound(u16),
    /// An access beyond the end of a memory.
    OutOfBounds {
        /// Which memory was accessed.
        what: &'static str,
        /// First byte of the access.
        offset: usize,
        /// Length of the access.
        len: usize,
        /// Size of the memory.
        size: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::RomFull { needed, free } => {
                write!(
                    f,
                    "rom regions would collide: need {needed} bytes, {free} free"
                )
            }
            MemError::DuplicateFunction(id) => {
                write!(f, "function {id} already present in rom")
            }
            MemError::RecordNotFound(id) => write!(f, "no rom record for function {id}"),
            MemError::OutOfBounds {
                what,
                offset,
                len,
                size,
            } => write!(
                f,
                "{what} access [{offset}, {}) outside size {size}",
                offset + len
            ),
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MemError::DuplicateFunction(5).to_string().contains("5"));
        let e = MemError::OutOfBounds {
            what: "ram",
            offset: 10,
            len: 4,
            size: 12,
        };
        assert!(e.to_string().contains("[10, 14)"));
    }

    #[test]
    fn send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<MemError>();
    }
}

//! Memory subsystem of the co-processor card.
//!
//! Models §2.2 of *"FPGA based Agile Algorithm-On-Demand Co-Processor"*:
//!
//! * [`Rom`] — holds the compressed configuration bitstreams, loaded
//!   from one end, and the function **record table** (start address,
//!   sizes, I/O widths per function) populated from the *other* end.
//!   The two regions grow toward each other; a download that would make
//!   them collide is rejected.
//! * [`FunctionRecord`] — the fixed-size table entry the
//!   microcontroller reads to locate and describe a function.
//! * [`LocalRam`] — the scratch memory where the microcontroller
//!   buffers function inputs (host → RAM → FPGA) and outputs
//!   (FPGA → RAM → host).
//! * [`MemTiming`] — cycle costs for ROM and RAM accesses in the
//!   microcontroller clock domain.
//!
//! # Examples
//!
//! ```
//! use aaod_mem::{Rom, RecordFields};
//!
//! let mut rom = Rom::new(4096);
//! let fields = RecordFields {
//!     algo_id: 3,
//!     uncompressed_len: 512,
//!     codec: 1,
//!     input_width: 8,
//!     output_width: 8,
//!     n_frames: 4,
//! };
//! rom.download(fields, &[0xAB; 100])?;
//! let rec = rom.lookup(3).expect("function present");
//! assert_eq!(rom.bitstream_bytes(&rec), &[0xAB; 100][..]);
//! # Ok::<(), aaod_mem::MemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ram;
pub mod record;
pub mod rom;
pub mod timing;

pub use error::MemError;
pub use ram::LocalRam;
pub use record::{FunctionRecord, RecordFields, RECORD_BYTES};
pub use rom::Rom;
pub use timing::MemTiming;

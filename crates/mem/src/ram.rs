//! The microcontroller's local RAM.
//!
//! Per §2.3 of the paper, the microcontroller "takes inputs for the
//! functions from the host through the PCI and stores them in the local
//! RAM", and symmetrically stages outputs there before returning them.
//! [`LocalRam`] is a flat byte memory with bounds-checked access and
//! traffic counters that feed the timing model.

use crate::error::MemError;

/// Local scratch RAM.
///
/// # Examples
///
/// ```
/// use aaod_mem::LocalRam;
///
/// let mut ram = LocalRam::new(256);
/// ram.write(16, b"payload")?;
/// assert_eq!(ram.read(16, 7)?, b"payload");
/// # Ok::<(), aaod_mem::MemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalRam {
    data: Vec<u8>,
    bytes_written: u64,
    bytes_read: std::cell::Cell<u64>,
}

impl LocalRam {
    /// Creates a zeroed RAM of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "ram must be non-empty");
        LocalRam {
            data: vec![0u8; size],
            bytes_written: 0,
            bytes_read: std::cell::Cell::new(0),
        }
    }

    /// Capacity in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Writes `data` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the write exceeds the RAM.
    pub fn write(&mut self, offset: usize, data: &[u8]) -> Result<(), MemError> {
        let end = offset
            .checked_add(data.len())
            .ok_or(MemError::OutOfBounds {
                what: "ram",
                offset,
                len: data.len(),
                size: self.size(),
            })?;
        if end > self.size() {
            return Err(MemError::OutOfBounds {
                what: "ram",
                offset,
                len: data.len(),
                size: self.size(),
            });
        }
        self.data[offset..end].copy_from_slice(data);
        self.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Reads `len` bytes from `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the read exceeds the RAM.
    pub fn read(&self, offset: usize, len: usize) -> Result<&[u8], MemError> {
        let end = offset.checked_add(len).ok_or(MemError::OutOfBounds {
            what: "ram",
            offset,
            len,
            size: self.size(),
        })?;
        if end > self.size() {
            return Err(MemError::OutOfBounds {
                what: "ram",
                offset,
                len,
                size: self.size(),
            });
        }
        self.bytes_read.set(self.bytes_read.get() + len as u64);
        Ok(&self.data[offset..end])
    }

    /// Total bytes written (timing input).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes read (timing input).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut ram = LocalRam::new(64);
        ram.write(10, &[1, 2, 3]).unwrap();
        assert_eq!(ram.read(10, 3).unwrap(), &[1, 2, 3]);
        assert_eq!(ram.read(9, 1).unwrap(), &[0]);
    }

    #[test]
    fn bounds_enforced() {
        let mut ram = LocalRam::new(16);
        assert!(ram.write(15, &[1, 2]).is_err());
        assert!(ram.read(16, 1).is_err());
        assert!(ram.write(16, &[]).is_ok()); // zero-length at end is fine
        assert!(ram.read(usize::MAX, 2).is_err()); // overflow guarded
    }

    #[test]
    fn counters() {
        let mut ram = LocalRam::new(32);
        ram.write(0, &[0; 8]).unwrap();
        let _ = ram.read(0, 4).unwrap();
        assert_eq!(ram.bytes_written(), 8);
        assert_eq!(ram.bytes_read(), 4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_panics() {
        let _ = LocalRam::new(0);
    }
}

//! Function records — the ROM's table entries.
//!
//! Per §2.2 of the paper, the ROM "contains records that holds the
//! start address of each function's compressed configuration bit-stream
//! on the ROM, its size and the input/output size of the functions".
//! Records are fixed-size so the microcontroller can index the table
//! directly from the top of the ROM.

/// Serialised size of one record.
pub const RECORD_BYTES: usize = 24;

/// The caller-supplied part of a record (the ROM fills in the start
/// address and compressed length during download).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordFields {
    /// Function identifier.
    pub algo_id: u16,
    /// Decompressed bitstream length in bytes.
    pub uncompressed_len: u32,
    /// Compression codec id (see `aaod_bitstream::codec::CodecId`).
    pub codec: u8,
    /// Data-input transfer width in bytes.
    pub input_width: u16,
    /// Output transfer width in bytes.
    pub output_width: u16,
    /// Configuration frames the function occupies.
    pub n_frames: u16,
}

/// A complete ROM record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FunctionRecord {
    /// Function identifier.
    pub algo_id: u16,
    /// Byte offset of the compressed bitstream within the ROM.
    pub start: u32,
    /// Compressed bitstream length in bytes.
    pub compressed_len: u32,
    /// Decompressed bitstream length in bytes.
    pub uncompressed_len: u32,
    /// Compression codec id.
    pub codec: u8,
    /// Data-input transfer width in bytes.
    pub input_width: u16,
    /// Output transfer width in bytes.
    pub output_width: u16,
    /// Configuration frames the function occupies.
    pub n_frames: u16,
}

impl FunctionRecord {
    /// Serialises the record to its fixed ROM layout.
    pub fn to_bytes(&self) -> [u8; RECORD_BYTES] {
        let mut out = [0u8; RECORD_BYTES];
        out[0..2].copy_from_slice(&self.algo_id.to_le_bytes());
        out[2..6].copy_from_slice(&self.start.to_le_bytes());
        out[6..10].copy_from_slice(&self.compressed_len.to_le_bytes());
        out[10..14].copy_from_slice(&self.uncompressed_len.to_le_bytes());
        out[14] = self.codec;
        out[16..18].copy_from_slice(&self.input_width.to_le_bytes());
        out[18..20].copy_from_slice(&self.output_width.to_le_bytes());
        out[20..22].copy_from_slice(&self.n_frames.to_le_bytes());
        out
    }

    /// Deserialises a record from its ROM layout.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than [`RECORD_BYTES`]; the ROM
    /// always hands whole table slots to this function.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() >= RECORD_BYTES, "record slot too short");
        FunctionRecord {
            algo_id: u16::from_le_bytes([bytes[0], bytes[1]]),
            start: u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]),
            compressed_len: u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]),
            uncompressed_len: u32::from_le_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]),
            codec: bytes[14],
            input_width: u16::from_le_bytes([bytes[16], bytes[17]]),
            output_width: u16::from_le_bytes([bytes[18], bytes[19]]),
            n_frames: u16::from_le_bytes([bytes[20], bytes[21]]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let rec = FunctionRecord {
            algo_id: 300,
            start: 0x1234,
            compressed_len: 999,
            uncompressed_len: 2048,
            codec: 4,
            input_width: 16,
            output_width: 32,
            n_frames: 12,
        };
        assert_eq!(FunctionRecord::from_bytes(&rec.to_bytes()), rec);
    }

    #[test]
    #[should_panic(expected = "slot too short")]
    fn short_slot_panics() {
        let _ = FunctionRecord::from_bytes(&[0u8; 5]);
    }
}

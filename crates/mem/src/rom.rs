//! The dual-ended configuration ROM.
//!
//! Bitstreams are "loaded from one end of the ROM while the record
//! table is populated from the other end" (paper §2.2). [`Rom`] models
//! exactly that layout: the bitstream region grows upward from byte 0,
//! the record table grows downward from the top, and a download that
//! would make them overlap fails with [`MemError::RomFull`].

use crate::error::MemError;
use crate::record::{FunctionRecord, RecordFields, RECORD_BYTES};

/// The co-processor's configuration ROM image.
///
/// # Examples
///
/// ```
/// use aaod_mem::{RecordFields, Rom};
///
/// let mut rom = Rom::new(1024);
/// let fields = RecordFields {
///     algo_id: 1, uncompressed_len: 64, codec: 0,
///     input_width: 8, output_width: 8, n_frames: 1,
/// };
/// rom.download(fields, b"stream")?;
/// assert_eq!(rom.record_count(), 1);
/// # Ok::<(), aaod_mem::MemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rom {
    data: Vec<u8>,
    /// First free byte of the bitstream region (grows upward).
    bitstream_end: usize,
    /// Number of records in the table (grows downward from the top).
    n_records: usize,
    /// Bytes read from the ROM since creation (for timing/statistics).
    bytes_read: std::cell::Cell<u64>,
    /// Record-table probes performed by lookups (E6 metric).
    record_probes: std::cell::Cell<u64>,
    /// Payload fetches served (observability-layer gauge).
    fetches: std::cell::Cell<u64>,
}

impl Rom {
    /// Creates an empty ROM of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` cannot hold even one record.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > RECORD_BYTES,
            "rom must be larger than one record"
        );
        Rom {
            data: vec![0u8; capacity],
            bitstream_end: 0,
            n_records: 0,
            bytes_read: std::cell::Cell::new(0),
            record_probes: std::cell::Cell::new(0),
            fetches: std::cell::Cell::new(0),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Bytes used by the bitstream region.
    pub fn bitstream_bytes_used(&self) -> usize {
        self.bitstream_end
    }

    /// Bytes used by the record table.
    pub fn table_bytes_used(&self) -> usize {
        self.n_records * RECORD_BYTES
    }

    /// Bytes still free between the two regions.
    pub fn free_bytes(&self) -> usize {
        self.capacity() - self.bitstream_bytes_used() - self.table_bytes_used()
    }

    /// Number of functions recorded.
    pub fn record_count(&self) -> usize {
        self.n_records
    }

    /// Downloads a compressed bitstream plus its record.
    ///
    /// The bitstream is appended to the low region; the record is
    /// prepended to the high region, with the start address and
    /// compressed length filled in.
    ///
    /// # Errors
    ///
    /// * [`MemError::RomFull`] if the regions would collide.
    /// * [`MemError::DuplicateFunction`] if `fields.algo_id` is already
    ///   recorded.
    pub fn download(&mut self, fields: RecordFields, bitstream: &[u8]) -> Result<(), MemError> {
        if self.lookup_silent(fields.algo_id).is_some() {
            return Err(MemError::DuplicateFunction(fields.algo_id));
        }
        let needed = bitstream.len() + RECORD_BYTES;
        if needed > self.free_bytes() {
            return Err(MemError::RomFull {
                needed,
                free: self.free_bytes(),
            });
        }
        let record = FunctionRecord {
            algo_id: fields.algo_id,
            start: self.bitstream_end as u32,
            compressed_len: bitstream.len() as u32,
            uncompressed_len: fields.uncompressed_len,
            codec: fields.codec,
            input_width: fields.input_width,
            output_width: fields.output_width,
            n_frames: fields.n_frames,
        };
        self.data[self.bitstream_end..self.bitstream_end + bitstream.len()]
            .copy_from_slice(bitstream);
        self.bitstream_end += bitstream.len();
        let slot = self.capacity() - (self.n_records + 1) * RECORD_BYTES;
        self.data[slot..slot + RECORD_BYTES].copy_from_slice(&record.to_bytes());
        self.n_records += 1;
        Ok(())
    }

    fn record_at(&self, i: usize) -> FunctionRecord {
        let slot = self.capacity() - (i + 1) * RECORD_BYTES;
        FunctionRecord::from_bytes(&self.data[slot..slot + RECORD_BYTES])
    }

    fn lookup_silent(&self, algo_id: u16) -> Option<FunctionRecord> {
        (0..self.n_records)
            .map(|i| self.record_at(i))
            .find(|r| r.algo_id == algo_id)
    }

    /// Finds the record for `algo_id` by scanning the table, as the
    /// microcontroller does. Each probe is counted toward
    /// [`Rom::record_probes`].
    pub fn lookup(&self, algo_id: u16) -> Option<FunctionRecord> {
        for i in 0..self.n_records {
            self.record_probes.set(self.record_probes.get() + 1);
            let r = self.record_at(i);
            if r.algo_id == algo_id {
                return Some(r);
            }
        }
        None
    }

    /// Iterates over all records in download order.
    pub fn records(&self) -> Vec<FunctionRecord> {
        (0..self.n_records).map(|i| self.record_at(i)).collect()
    }

    /// The compressed bitstream bytes for `record`.
    ///
    /// # Panics
    ///
    /// Panics if the record does not describe a region inside the
    /// ROM — records produced by [`Rom::lookup`] always do.
    pub fn bitstream_bytes(&self, record: &FunctionRecord) -> &[u8] {
        let start = record.start as usize;
        let end = start + record.compressed_len as usize;
        assert!(end <= self.bitstream_end, "record outside bitstream region");
        self.bytes_read
            .set(self.bytes_read.get() + record.compressed_len as u64);
        self.fetches.set(self.fetches.get() + 1);
        &self.data[start..end]
    }

    /// XORs `mask` into byte `offset` of `algo_id`'s stored payload —
    /// the flash bit-rot injection point used by the fault campaigns.
    /// The record (and its CRC-bearing header, stored in the payload's
    /// first bytes) is found via a silent lookup so probes and timing
    /// stats are unaffected.
    ///
    /// # Errors
    ///
    /// * [`MemError::RecordNotFound`] for an unknown function.
    /// * [`MemError::OutOfBounds`] if `offset` is past the payload.
    pub fn corrupt_payload(
        &mut self,
        algo_id: u16,
        offset: usize,
        mask: u8,
    ) -> Result<(), MemError> {
        let r = self
            .lookup_silent(algo_id)
            .ok_or(MemError::RecordNotFound(algo_id))?;
        let len = r.compressed_len as usize;
        if offset >= len {
            return Err(MemError::OutOfBounds {
                what: "rom payload",
                offset,
                len: 1,
                size: len,
            });
        }
        self.data[r.start as usize + offset] ^= mask;
        Ok(())
    }

    /// Removes `algo_id`'s record from the table so a fresh image can
    /// be re-downloaded (the mini OS's corruption-recovery path).
    ///
    /// Later records shift up one slot, preserving download order. The
    /// payload bytes are reclaimed only when they sit at the top of the
    /// bitstream region; otherwise they remain as dead flash — real
    /// cards fragment the same way until a bulk erase.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RecordNotFound`] for an unknown function.
    pub fn remove_record(&mut self, algo_id: u16) -> Result<(), MemError> {
        let k = (0..self.n_records)
            .find(|&i| self.record_at(i).algo_id == algo_id)
            .ok_or(MemError::RecordNotFound(algo_id))?;
        let removed = self.record_at(k);
        for i in k + 1..self.n_records {
            let moved = self.record_at(i).to_bytes();
            let slot = self.capacity() - i * RECORD_BYTES;
            self.data[slot..slot + RECORD_BYTES].copy_from_slice(&moved);
        }
        let freed = self.capacity() - self.n_records * RECORD_BYTES;
        self.data[freed..freed + RECORD_BYTES].fill(0);
        self.n_records -= 1;
        let end = removed.start as usize + removed.compressed_len as usize;
        if end == self.bitstream_end {
            self.bitstream_end = removed.start as usize;
        }
        Ok(())
    }

    /// Total payload bytes read so far (timing input).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }

    /// Record-table probes performed so far (E6 metric).
    pub fn record_probes(&self) -> u64 {
        self.record_probes.get()
    }

    /// Payload fetches served so far. Together with
    /// [`Rom::bytes_read`] this is the ROM's contribution to the
    /// observability layer's `rom_fetch` accounting: the mini OS
    /// cross-checks its traced fetch events against this gauge.
    pub fn fetch_count(&self) -> u64 {
        self.fetches.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(id: u16) -> RecordFields {
        RecordFields {
            algo_id: id,
            uncompressed_len: 100,
            codec: 1,
            input_width: 8,
            output_width: 8,
            n_frames: 2,
        }
    }

    #[test]
    fn download_and_lookup() {
        let mut rom = Rom::new(1024);
        rom.download(fields(1), &[1u8; 50]).unwrap();
        rom.download(fields(2), &[2u8; 60]).unwrap();
        let r1 = rom.lookup(1).unwrap();
        let r2 = rom.lookup(2).unwrap();
        assert_eq!(r1.start, 0);
        assert_eq!(r2.start, 50);
        assert_eq!(rom.bitstream_bytes(&r1), &[1u8; 50][..]);
        assert_eq!(rom.bitstream_bytes(&r2), &[2u8; 60][..]);
        assert!(rom.lookup(3).is_none());
    }

    #[test]
    fn regions_grow_toward_each_other() {
        let mut rom = Rom::new(1024);
        rom.download(fields(1), &[0u8; 100]).unwrap();
        assert_eq!(rom.bitstream_bytes_used(), 100);
        assert_eq!(rom.table_bytes_used(), RECORD_BYTES);
        assert_eq!(rom.free_bytes(), 1024 - 100 - RECORD_BYTES);
    }

    #[test]
    fn collision_rejected_exactly() {
        let mut rom = Rom::new(200);
        // free = 200; first download: 100 + 24 = 124 -> ok, free = 76
        rom.download(fields(1), &[0u8; 100]).unwrap();
        // second: needs 60 + 24 = 84 > 76 -> reject
        let err = rom.download(fields(2), &[0u8; 60]).unwrap_err();
        assert!(matches!(
            err,
            MemError::RomFull {
                needed: 84,
                free: 76
            }
        ));
        // a 52-byte stream (52+24=76) fits exactly
        rom.download(fields(2), &[0u8; 52]).unwrap();
        assert_eq!(rom.free_bytes(), 0);
    }

    #[test]
    fn duplicate_rejected() {
        let mut rom = Rom::new(1024);
        rom.download(fields(7), &[0u8; 10]).unwrap();
        assert!(matches!(
            rom.download(fields(7), &[0u8; 10]),
            Err(MemError::DuplicateFunction(7))
        ));
    }

    #[test]
    fn failed_download_leaves_rom_unchanged() {
        let mut rom = Rom::new(200);
        rom.download(fields(1), &[0u8; 100]).unwrap();
        let before = rom.clone();
        let _ = rom.download(fields(2), &[0u8; 150]);
        assert_eq!(rom, before);
    }

    #[test]
    fn lookup_counts_probes() {
        let mut rom = Rom::new(4096);
        for i in 0..10 {
            rom.download(fields(i), &[0u8; 8]).unwrap();
        }
        let before = rom.record_probes();
        rom.lookup(9).unwrap(); // last downloaded = 10th probe
        assert_eq!(rom.record_probes() - before, 10);
        let before = rom.record_probes();
        rom.lookup(0).unwrap();
        assert_eq!(rom.record_probes() - before, 1);
    }

    #[test]
    fn records_in_download_order() {
        let mut rom = Rom::new(4096);
        for i in [5u16, 3, 9] {
            rom.download(fields(i), &[0u8; 4]).unwrap();
        }
        let ids: Vec<u16> = rom.records().iter().map(|r| r.algo_id).collect();
        assert_eq!(ids, vec![5, 3, 9]);
    }

    #[test]
    fn bytes_read_accumulates() {
        let mut rom = Rom::new(1024);
        rom.download(fields(1), &[0u8; 30]).unwrap();
        let r = rom.lookup(1).unwrap();
        let _ = rom.bitstream_bytes(&r);
        let _ = rom.bitstream_bytes(&r);
        assert_eq!(rom.bytes_read(), 60);
    }

    #[test]
    #[should_panic(expected = "larger than one record")]
    fn tiny_rom_panics() {
        let _ = Rom::new(10);
    }

    #[test]
    fn corrupt_payload_flips_stored_byte() {
        let mut rom = Rom::new(1024);
        rom.download(fields(1), &[0xAA; 40]).unwrap();
        rom.corrupt_payload(1, 5, 0x0F).unwrap();
        let r = rom.lookup(1).unwrap();
        let bytes = rom.bitstream_bytes(&r);
        assert_eq!(bytes[5], 0xAA ^ 0x0F);
        assert!(bytes.iter().enumerate().all(|(i, &b)| i == 5 || b == 0xAA));
        assert!(matches!(
            rom.corrupt_payload(9, 0, 1),
            Err(MemError::RecordNotFound(9))
        ));
        assert!(matches!(
            rom.corrupt_payload(1, 40, 1),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn remove_middle_record_keeps_order_and_lookup() {
        let mut rom = Rom::new(4096);
        for i in [5u16, 3, 9] {
            rom.download(fields(i), &[i as u8; 16]).unwrap();
        }
        rom.remove_record(3).unwrap();
        let ids: Vec<u16> = rom.records().iter().map(|r| r.algo_id).collect();
        assert_eq!(ids, vec![5, 9]);
        assert!(rom.lookup(3).is_none());
        let r9 = rom.lookup(9).unwrap();
        assert_eq!(rom.bitstream_bytes(&r9), &[9u8; 16][..]);
        // payload of 3 is dead flash: bitstream region did not shrink
        assert_eq!(rom.bitstream_bytes_used(), 48);
        assert_eq!(rom.table_bytes_used(), 2 * RECORD_BYTES);
    }

    #[test]
    fn remove_tail_record_reclaims_payload() {
        let mut rom = Rom::new(1024);
        rom.download(fields(1), &[1u8; 30]).unwrap();
        rom.download(fields(2), &[2u8; 20]).unwrap();
        rom.remove_record(2).unwrap();
        assert_eq!(rom.bitstream_bytes_used(), 30);
        // re-download of the same id now succeeds (no duplicate)
        rom.download(fields(2), &[7u8; 20]).unwrap();
        let r = rom.lookup(2).unwrap();
        assert_eq!(rom.bitstream_bytes(&r), &[7u8; 20][..]);
        assert!(matches!(
            rom.remove_record(42),
            Err(MemError::RecordNotFound(42))
        ));
    }

    #[test]
    fn fetch_count_tracks_payload_reads() {
        let mut rom = Rom::new(1024);
        rom.download(fields(1), &[1u8; 30]).unwrap();
        assert_eq!(rom.fetch_count(), 0);
        let r = rom.lookup(1).unwrap();
        rom.bitstream_bytes(&r);
        rom.bitstream_bytes(&r);
        assert_eq!(rom.fetch_count(), 2);
        assert_eq!(rom.bytes_read(), 60);
    }
}

//! Memory access timing in the microcontroller clock domain.

use aaod_sim::{Clock, SimTime};

/// Cycle costs of the on-card memories.
///
/// Defaults model a slow parallel flash ROM (16-bit data bus, 4 cycles
/// per word at 50 MHz ≈ 25 MB/s) and fast SRAM (32-bit, 1 cycle per
/// word ≈ 200 MB/s).
///
/// # Examples
///
/// ```
/// use aaod_mem::MemTiming;
///
/// let t = MemTiming::default();
/// assert!(t.rom_read_time(1024) > t.ram_time(1024));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTiming {
    clock: Clock,
    rom_word_bytes: u64,
    rom_cycles_per_word: u64,
    ram_word_bytes: u64,
    ram_cycles_per_word: u64,
}

impl MemTiming {
    /// Creates a timing model.
    ///
    /// # Panics
    ///
    /// Panics if any word size is zero.
    pub fn new(
        clock: Clock,
        rom_word_bytes: u64,
        rom_cycles_per_word: u64,
        ram_word_bytes: u64,
        ram_cycles_per_word: u64,
    ) -> Self {
        assert!(
            rom_word_bytes > 0 && ram_word_bytes > 0,
            "word sizes must be non-zero"
        );
        MemTiming {
            clock,
            rom_word_bytes,
            rom_cycles_per_word,
            ram_word_bytes,
            ram_cycles_per_word,
        }
    }

    /// Time to read `bytes` from the ROM.
    pub fn rom_read_time(&self, bytes: u64) -> SimTime {
        self.clock
            .cycles(bytes.div_ceil(self.rom_word_bytes) * self.rom_cycles_per_word)
    }

    /// Time to read or write `bytes` of local RAM.
    pub fn ram_time(&self, bytes: u64) -> SimTime {
        self.clock
            .cycles(bytes.div_ceil(self.ram_word_bytes) * self.ram_cycles_per_word)
    }
}

impl Default for MemTiming {
    fn default() -> Self {
        // 16-bit flash ROM at 4 cycles/word; 64-bit SRAM at 1 cycle/word.
        MemTiming::new(aaod_sim::clock::domains::mcu(), 2, 4, 8, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rom_slower_than_ram() {
        let t = MemTiming::default();
        assert!(t.rom_read_time(4096) > t.ram_time(4096));
    }

    #[test]
    fn scales_linearly() {
        let t = MemTiming::default();
        assert_eq!(t.ram_time(8).as_ps() * 2, t.ram_time(16).as_ps());
    }

    #[test]
    fn partial_words_round_up() {
        let t = MemTiming::default();
        assert_eq!(t.rom_read_time(1), t.rom_read_time(2));
        assert!(t.rom_read_time(3) > t.rom_read_time(2));
    }

    #[test]
    fn zero_bytes_zero_time() {
        let t = MemTiming::default();
        assert_eq!(t.rom_read_time(0), SimTime::ZERO);
        assert_eq!(t.ram_time(0), SimTime::ZERO);
    }
}
